#!/usr/bin/env bash
# Tier-1 gate: release build, the full test suite, and every figure
# harness in quick mode with its shape checks enforced.
#
# `--jobs 2` keeps the harness runs deterministic-by-construction while
# exercising the parallel path (output is byte-identical at any job
# count; see EXPERIMENTS.md "Running the figures").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cargo build --release --workspace

echo "== tidy (determinism / robustness / hygiene audit) =="
# Cold-ish run (whatever the cache holds): emit the findings artifact
# alongside the other bench artifacts. Exit 1 = findings, 2 = error.
cargo run -q -p xtask -- tidy --format json --out target/tidy-findings.json
# Warm run straight from the incremental cache, under a wall-clock
# budget (exit 3 if exceeded): keeps the gate cheap enough to run
# everywhere and catches cache regressions that silently re-analyze
# the world.
cargo run -q -p xtask -- tidy --budget-ms 2000

echo "== lint =="
cargo clippy --workspace --all-targets -q -- -D warnings

echo "== tests =="
cargo test -q --workspace

echo "== figure harnesses (quick, checked, 2 jobs) =="
bins=(fig1 fig2 fig4 fig7 fig8 fig9 fig10 fig11 fig12 fig13
      ablation_threshold ablation_selection ablation_unmap)
for bin in "${bins[@]}"; do
    echo "-- $bin"
    cargo run --release -q -p bench --bin "$bin" -- --quick --check --jobs 2 \
        >/dev/null
done

echo "== perf smoke (hold model + replay, quick, checked) =="
# Quick mode: enough ops to catch a representation regression (the
# --check floor is deliberately below the full-mode target so shared
# CI hosts don't flake); full measurements come from scripts/bench.sh.
cargo run --release -q -p bench --bin perf -- --quick --check \
    --out-dir target/bench-smoke >/dev/null

echo "== cluster smoke (sharded replay, digests across job counts) =="
# Small trace over 8 shards: the digest must be byte-identical at
# --jobs 1/2/4, and a run with one shard killed and recovered
# mid-replay must digest identical to the uninterrupted control. The
# scaling floor (1.5x at 4 jobs) is enforced only on hosts with >= 4
# cores; the harness waives it (and records host_cores) elsewhere.
cluster_out=$(cargo run --release -q -p bench --bin cluster_replay -- \
    --quick --check --out-dir target/bench-smoke)
grep -q "conservation OK" <<<"$cluster_out" \
    || { echo "cluster smoke never printed its conservation line"; exit 1; }

echo "== fleet failure domains (outage / partition / availability SLO) =="
# Shard 5 goes dark for three rounds mid-replay. Down: the shard
# freezes and must heal from its durable checkpoint store, digest
# byte-identical across --jobs 1/2/4 and vs a kill+outage run; hedged
# retries must hold the availability SLO while a retry-less control
# visibly loses requests, and a planned window must drain the warm set
# first. Partitioned: same window as a reachability-only fault — the
# shard keeps executing and nothing heals through the store. Every
# replay must print its request-conservation accounting line.
for gate in --outage --partition; do
    echo "-- cluster_replay $gate"
    gate_out=$(cargo run --release -q -p bench --bin cluster_replay -- \
        --quick --check "$gate" --out-dir target/bench-smoke)
    runs=$(grep -c "conservation OK" <<<"$gate_out" || true)
    if [ "$runs" -lt 4 ]; then
        echo "failure-domain gate $gate printed $runs conservation lines (want >= 4):"
        echo "$gate_out"
        exit 1
    fi
done

echo "== chaos (fault-free + seeded fault schedules) =="
# Default sweep: fault-free baselines plus seeds 11/23/47 at a 1 %
# fault rate, with termination/accounting/determinism checks on.
cargo run --release -q -p bench --bin chaos -- --quick --check >/dev/null
# A harsher schedule: different seed, 5 % rate.
cargo run --release -q -p bench --bin chaos -- --quick --check \
    --fault-seed 99 --fault-rate 0.05 >/dev/null

echo "== kill-recover (crash-consistent checkpoint/restore) =="
# Kill the event loop every 400 events, restore the latest checkpoint,
# replay the request journal, and demand the recovered run's final
# state digest byte-identical to an uninterrupted control.
cargo run --release -q -p bench --bin chaos -- --quick --check \
    --fault-seed 11 --crash-every 400 >/dev/null

echo "== kill-recover under storage faults (torn writes, bit rot) =="
# Same gate, but the checkpoint store itself misbehaves. Torn-write
# schedule: half the checkpoint puts lose their tail at a frame
# boundary; recovery must fall back to older checkpoints (or the
# journal alone) and still digest identical to the control.
cargo run --release -q -p bench --bin chaos -- --quick --check \
    --fault-seed 11 --crash-every 400 --torn-write >/dev/null
# Bit-rot schedule: every checkpoint written gets one bit flipped at a
# fixed offset, so no stored checkpoint ever verifies — recovery is a
# from-scratch journal replay, and the digest must still match.
cargo run --release -q -p bench --bin chaos -- --quick --check \
    --fault-seed 11 --crash-at 500 --corrupt-at 64 >/dev/null

echo "tier1 OK"
