#!/usr/bin/env bash
# Perf trajectory: regenerate the committed BENCH_*.json files at the
# repo root.
#
# Runs the `perf` harness in full mode (4M hold-model ops, best-of-5
# replay rounds) and writes:
#
#   BENCH_eventloop.json  — calendar vs. reference-heap hold model
#   BENCH_replay.json     — replay_30s_sf15 wall time, both queue
#                           impls, vanilla + desiccant, against the
#                           fixed pre-PR baseline
#   BENCH_checkpoint.json — full vs. delta checkpoint bytes and wall
#                           time at a ~2^16-frozen-instance steady
#                           state
#   BENCH_cluster.json    — sharded replay at 1/2/4 worker threads:
#                           wall time, speedup vs. the serial run, and
#                           the kill-recover digest oracle (written by
#                           the separate `cluster_replay` harness)
#   BENCH_availability.json — the fleet failure-domain run: success
#                           rate and latency percentiles fault-free
#                           vs. a three-round shard outage, hedged
#                           and bare, plus heal/drain accounting
#                           (cluster_replay --outage)
#
# Numbers are host-dependent: run on an idle machine and commit the
# refreshed files together with the change that moved them, so the
# repo history doubles as the perf trajectory. `scripts/tier1.sh`
# runs the same harness in `--quick --check` mode as a smoke gate;
# this script is the measurement run.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p bench --bin perf --bin cluster_replay
./target/release/perf --out-dir . "$@"
./target/release/cluster_replay --out-dir . "$@"
./target/release/cluster_replay --outage --out-dir . "$@"
echo "bench OK — review and commit BENCH_*.json"
