//! Property tests over the workload catalog: every function must be
//! executable, deterministic, and within its calibrated budget for any
//! seed and invocation count.

use faas_runtime::{Instance, RuntimeImage};
use proptest::prelude::*;
use simos::{SimDuration, SimTime, System};
use workloads::{catalog, FunctionState};

fn run(spec_idx: usize, seed: u64, iterations: u8) -> (u64, u64, SimDuration) {
    let spec = catalog()[spec_idx];
    let mut sys = System::new();
    let image = RuntimeImage::openwhisk(spec.language);
    let libs = image.register_files(&mut sys);
    let mut total_wall = SimDuration::ZERO;
    let mut uss_sum = 0u64;
    let mut checksum = 0u64;
    let mut stages: Vec<(Instance, FunctionState)> = (0..spec.chain_len)
        .map(|stage| {
            (
                Instance::launch(&mut sys, &image, &libs, 256 << 20, 0.14).expect("fits"),
                FunctionState::new(stage, seed),
            )
        })
        .collect();
    let mut now = SimTime::ZERO;
    for _ in 0..iterations {
        for (inst, state) in stages.iter_mut() {
            let r = inst
                .invoke(&mut sys, now, &spec.exec, |ctx| state.invoke(&spec, ctx))
                .expect("calibrated workload fits its instance");
            now += r.wall_time;
            total_wall += r.wall_time;
            state.complete_transfer(inst.heap_mut().graph_mut());
        }
        now += SimDuration::from_millis(100);
    }
    for (inst, state) in &stages {
        uss_sum += inst.uss(&sys);
        checksum = checksum.wrapping_mul(31).wrapping_add(state.checksum());
    }
    (checksum, uss_sum, total_wall)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any function, any seed, any (small) invocation count: executes
    /// without exhausting its instance budget and stays within it.
    #[test]
    fn every_function_runs_within_budget(
        spec_idx in 0usize..20,
        seed in 0u64..1000,
        iterations in 1u8..8,
    ) {
        let spec = catalog()[spec_idx];
        let (_, uss_sum, wall) = run(spec_idx, seed, iterations);
        // Accumulated chain memory stays within the per-stage budgets.
        prop_assert!(
            uss_sum <= spec.chain_len as u64 * (256 << 20),
            "{}: chain exceeds its budgets", spec.name
        );
        prop_assert!(wall > SimDuration::ZERO);
    }

    /// Identical (seed, iterations) runs are bit-identical in both
    /// computation results and memory outcomes.
    #[test]
    fn runs_are_deterministic(
        spec_idx in 0usize..20,
        seed in 0u64..1000,
        iterations in 1u8..5,
    ) {
        let a = run(spec_idx, seed, iterations);
        let b = run(spec_idx, seed, iterations);
        prop_assert_eq!(a, b);
    }

    /// Different seeds give different computations (the kernels really
    /// consume their inputs) for the non-trivial kernels.
    #[test]
    fn seeds_matter(spec_idx in 1usize..8, seed in 0u64..500) {
        let (a, _, _) = run(spec_idx, seed, 2);
        let (b, _, _) = run(spec_idx, seed + 1, 2);
        prop_assert_ne!(a, b, "checksum insensitive to seed");
    }
}
