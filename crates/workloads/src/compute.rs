//! Miniature real computations backing each kernel.
//!
//! Each function returns a checksum so the work cannot be optimized
//! away and so tests can pin behaviour. Sizes are small (the *simulated*
//! compute cost is charged separately through the latency model); what
//! matters is that the kernels are genuine implementations of the
//! workloads' algorithms, giving the catalog honest, testable
//! semantics.

use crate::spec::KernelKind;

/// Runs one miniature computation, seeded deterministically.
pub fn run_kernel(kind: KernelKind, seed: u64) -> u64 {
    match kind {
        KernelKind::Time => seed ^ 0x5DEECE66D,
        KernelKind::Sort => sort(seed),
        KernelKind::Hash => fnv_hash(seed, 4096),
        KernelKind::Image => stencil(seed),
        KernelKind::Search => search(seed),
        KernelKind::WordCount => word_count(seed),
        KernelKind::Transaction => transaction(seed),
        KernelKind::Fft => fft_checksum(seed),
        KernelKind::Fibonacci => fibonacci(40 + (seed % 10)),
        KernelKind::Matrix => matmul(seed),
        KernelKind::Pi => pi_digits(seed),
        // Bound the input so trial division stays ~10⁴ steps even for
        // near-prime inputs.
        KernelKind::Factor => factorize((seed & 0x0FFF_FFFF) | 1),
        KernelKind::UnionFind => union_find(seed),
        KernelKind::Html => html(seed),
        KernelKind::Aggregate => aggregate(seed),
    }
}

/// xorshift64* PRNG used by the kernels.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

fn sort(seed: u64) -> u64 {
    let mut s = seed | 1;
    let mut v: Vec<u32> = (0..2048).map(|_| xorshift(&mut s) as u32).collect();
    v.sort_unstable();
    v[0] as u64 ^ v[2047] as u64 ^ v[1024] as u64 // tidy:allow(panic-reachability) -- kernel buffer sizes and loop bounds are fixed by the calibrated shape
}

fn fnv_hash(seed: u64, len: usize) -> u64 {
    let mut s = seed | 1;
    let mut h: u64 = 0xcbf29ce484222325;
    for _ in 0..len {
        h ^= xorshift(&mut s) & 0xFF;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn stencil(seed: u64) -> u64 {
    // A 3×3 box blur over a 64×64 "image".
    let mut s = seed | 1;
    let n = 64usize;
    let img: Vec<u16> = (0..n * n).map(|_| (xorshift(&mut s) & 0xFF) as u16).collect();
    let mut out = 0u64;
    for y in 1..n - 1 {
        for x in 1..n - 1 {
            let mut acc = 0u32;
            for dy in 0..3 {
                for dx in 0..3 {
                    acc += img[(y + dy - 1) * n + (x + dx - 1)] as u32; // tidy:allow(panic-reachability) -- kernel buffer sizes and loop bounds are fixed by the calibrated shape
                }
            }
            out = out.wrapping_add((acc / 9) as u64);
        }
    }
    out
}

fn search(seed: u64) -> u64 {
    // Score 512 "hotels" by a preference vector and return the argmax.
    let mut s = seed | 1;
    let mut best = (0u64, 0usize);
    for i in 0..512 {
        let price = xorshift(&mut s) % 500;
        let rating = xorshift(&mut s) % 50;
        let distance = xorshift(&mut s) % 100;
        let score = rating * 20 + (500 - price) + (100 - distance) * 3;
        if score > best.0 {
            best = (score, i);
        }
    }
    best.0 ^ best.1 as u64
}

fn word_count(seed: u64) -> u64 {
    // Count "words" (runs between separator tokens) in generated text.
    let mut s = seed | 1;
    let mut words = 0u64;
    let mut in_word = false;
    for _ in 0..8192 {
        let c = xorshift(&mut s) % 8;
        if c == 0 {
            in_word = false;
        } else if !in_word {
            in_word = true;
            words += 1;
        }
    }
    words
}

fn transaction(seed: u64) -> u64 {
    // A specjbb-like purchase: pick items, compute totals and tax.
    let mut s = seed | 1;
    let mut total = 0u64;
    for _ in 0..64 {
        let qty = xorshift(&mut s) % 5 + 1;
        let price = xorshift(&mut s) % 10_000;
        total += qty * price;
    }
    total + total / 12
}

fn fft_checksum(seed: u64) -> u64 {
    // Iterative radix-2 FFT over 256 points.
    let n = 256usize;
    let mut s = seed | 1;
    let mut re: Vec<f64> = (0..n).map(|_| (xorshift(&mut s) % 1000) as f64 / 1000.0).collect();
    let mut im = vec![0.0f64; n];
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        for i in (0..n).step_by(len) {
            for k in 0..len / 2 {
                let (wr, wi) = ((ang * k as f64).cos(), (ang * k as f64).sin());
                let (ur, ui) = (re[i + k], im[i + k]); // tidy:allow(panic-reachability) -- kernel buffer sizes and loop bounds are fixed by the calibrated shape
                let (vr, vi) = (
                    re[i + k + len / 2] * wr - im[i + k + len / 2] * wi, // tidy:allow(panic-reachability) -- kernel buffer sizes and loop bounds are fixed by the calibrated shape
                    re[i + k + len / 2] * wi + im[i + k + len / 2] * wr, // tidy:allow(panic-reachability) -- kernel buffer sizes and loop bounds are fixed by the calibrated shape
                );
                re[i + k] = ur + vr; // tidy:allow(panic-reachability) -- kernel buffer sizes and loop bounds are fixed by the calibrated shape
                im[i + k] = ui + vi; // tidy:allow(panic-reachability) -- kernel buffer sizes and loop bounds are fixed by the calibrated shape
                re[i + k + len / 2] = ur - vr; // tidy:allow(panic-reachability) -- kernel buffer sizes and loop bounds are fixed by the calibrated shape
                im[i + k + len / 2] = ui - vi; // tidy:allow(panic-reachability) -- kernel buffer sizes and loop bounds are fixed by the calibrated shape
            }
        }
        len <<= 1;
    }
    let energy: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum();
    energy as u64
}

fn fibonacci(n: u64) -> u64 {
    let (mut a, mut b) = (0u64, 1u64);
    for _ in 0..n {
        let t = a.wrapping_add(b);
        a = b;
        b = t;
    }
    a
}

fn matmul(seed: u64) -> u64 {
    let n = 32usize;
    let mut s = seed | 1;
    let a: Vec<i64> = (0..n * n).map(|_| (xorshift(&mut s) % 100) as i64).collect();
    let b: Vec<i64> = (0..n * n).map(|_| (xorshift(&mut s) % 100) as i64).collect();
    let mut acc = 0i64;
    for i in 0..n {
        for j in 0..n {
            let mut c = 0i64;
            for k in 0..n {
                c += a[i * n + k] * b[k * n + j]; // tidy:allow(panic-reachability) -- kernel buffer sizes and loop bounds are fixed by the calibrated shape
            }
            acc = acc.wrapping_add(c);
        }
    }
    acc as u64
}

fn pi_digits(seed: u64) -> u64 {
    // Leibniz series; the seed varies the iteration count slightly.
    let iters = 20_000 + (seed % 1000);
    let mut acc = 0.0f64;
    for k in 0..iters {
        let term = if k % 2 == 0 { 1.0 } else { -1.0 } / (2 * k + 1) as f64;
        acc += term;
    }
    (acc * 4.0 * 1e9) as u64
}

fn factorize(mut n: u64) -> u64 {
    let mut sum = 0u64;
    let mut d = 2u64;
    while d * d <= n {
        while n.is_multiple_of(d) {
            sum = sum.wrapping_add(d);
            n /= d;
        }
        d += 1;
    }
    sum.wrapping_add(n)
}

fn union_find(seed: u64) -> u64 {
    let n = 4096usize;
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x { // tidy:allow(panic-reachability) -- kernel buffer sizes and loop bounds are fixed by the calibrated shape
            parent[x as usize] = parent[parent[x as usize] as usize]; // tidy:allow(panic-reachability) -- kernel buffer sizes and loop bounds are fixed by the calibrated shape
            x = parent[x as usize]; // tidy:allow(panic-reachability) -- kernel buffer sizes and loop bounds are fixed by the calibrated shape
        }
        x
    }
    let mut s = seed | 1;
    for _ in 0..8192 {
        let a = (xorshift(&mut s) % n as u64) as u32;
        let b = (xorshift(&mut s) % n as u64) as u32;
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra as usize] = rb; // tidy:allow(panic-reachability) -- kernel buffer sizes and loop bounds are fixed by the calibrated shape
        }
    }
    // Count components.
    (0..n as u32).filter(|&i| find(&mut parent, i) == i).count() as u64
}

fn html(seed: u64) -> u64 {
    // Render a table template into a string and hash it.
    let mut s = seed | 1;
    let mut page = String::with_capacity(8192);
    page.push_str("<html><body><table>");
    for _ in 0..64 {
        let v = xorshift(&mut s) % 100_000;
        page.push_str("<tr><td>");
        page.push_str(&v.to_string());
        page.push_str("</td></tr>");
    }
    page.push_str("</table></body></html>");
    page.bytes().fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64))
}

fn aggregate(seed: u64) -> u64 {
    // Group-by-sum over generated rows.
    let mut s = seed | 1;
    let mut groups = [0u64; 16];
    for _ in 0..4096 {
        let key = (xorshift(&mut s) % 16) as usize;
        let val = xorshift(&mut s) % 1000;
        groups[key] += val; // tidy:allow(panic-reachability) -- kernel buffer sizes and loop bounds are fixed by the calibrated shape
    }
    groups.iter().fold(0u64, |a, g| a.wrapping_mul(7).wrapping_add(*g))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_are_deterministic() {
        for kind in [
            KernelKind::Time,
            KernelKind::Sort,
            KernelKind::Hash,
            KernelKind::Image,
            KernelKind::Search,
            KernelKind::WordCount,
            KernelKind::Transaction,
            KernelKind::Fft,
            KernelKind::Fibonacci,
            KernelKind::Matrix,
            KernelKind::Pi,
            KernelKind::Factor,
            KernelKind::UnionFind,
            KernelKind::Html,
            KernelKind::Aggregate,
        ] {
            assert_eq!(run_kernel(kind, 42), run_kernel(kind, 42), "{kind:?}");
        }
    }

    #[test]
    fn seeds_change_results() {
        assert_ne!(run_kernel(KernelKind::Sort, 1), run_kernel(KernelKind::Sort, 2));
        assert_ne!(run_kernel(KernelKind::Fft, 1), run_kernel(KernelKind::Fft, 2));
    }

    #[test]
    fn fibonacci_is_correct() {
        assert_eq!(fibonacci(10), 55);
        assert_eq!(fibonacci(20), 6765);
    }

    #[test]
    fn factorize_sums_prime_factors() {
        // 84 = 2·2·3·7 → 14.
        assert_eq!(factorize(84), 14);
        // A prime returns itself.
        assert_eq!(factorize(97), 97);
    }

    #[test]
    fn union_find_counts_components() {
        // With thousands of random unions over 4096 nodes, far fewer
        // components than nodes remain, and at least one.
        let c = union_find(7);
        assert!((1..4096).contains(&c));
    }

    #[test]
    fn fft_energy_is_positive() {
        assert!(fft_checksum(3) > 0);
    }
}
