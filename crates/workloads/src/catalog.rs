//! The Table-1 function catalog with calibrated personalities.
//!
//! Calibration targets (paper magnitudes, reproduced in shape):
//!
//! * Java functions pay a large first-invocation initialization that
//!   balloons the heap (§5.2);
//! * `file-hash` retains ≈1 MiB live in a much larger heap (§3.2.1);
//! * `fft` allocates heavily with survivors held to function exit,
//!   ratcheting V8's young generation to its cap (§3.2.2);
//! * `hotel-searching` has the largest temp-to-live ratio (max ratio
//!   above 5× in Figure 1);
//! * `mapreduce`'s mapper hands multi-MiB intermediates to the reducer
//!   that outlive the exit-time GC (§5.2);
//! * `data-analysis` and `unionfind` are the deopt-sensitive functions
//!   of §5.6 (2.14× / 1.74× slowdown under aggressive GC).

use faas_runtime::{ExecProfile, Language};
use simos::SimDuration;

use crate::spec::{FunctionSpec, KernelKind, MemProfile};

const KIB: u64 = 1 << 10;
const MIB: u64 = 1 << 20;

fn java_exec() -> ExecProfile {
    ExecProfile {
        warmup_factor: 3.0,
        warmup_tau: 8.0,
        deopt_sensitivity: 0.3,
    }
}

fn js_exec(deopt_sensitivity: f64) -> ExecProfile {
    ExecProfile {
        warmup_factor: 2.0,
        warmup_tau: 6.0,
        deopt_sensitivity,
    }
}

#[allow(clippy::too_many_arguments)]
fn mem(
    temp_bytes: u64,
    temp_obj_size: u64,
    hold_fraction: f64,
    init_bytes: u64,
    state_per_invoke: u64,
    state_cap: u64,
    intermediate_bytes: u64,
) -> MemProfile {
    MemProfile {
        temp_bytes,
        temp_obj_size: temp_obj_size as u32,
        hold_fraction,
        init_bytes,
        state_per_invoke,
        state_cap: state_cap.max(state_per_invoke),
        intermediate_bytes,
    }
}

/// All 20 evaluated functions, Java first, in Table-1 order.
pub fn catalog() -> Vec<FunctionSpec> {
    use KernelKind as K;
    use Language::{Java, JavaScript as Js};
    let ms = SimDuration::from_millis;
    vec![
        // ---------------- Java ----------------
        FunctionSpec {
            name: "time",
            language: Java,
            chain_len: 1,
            kernel: K::Time,
            mem: mem(96 * KIB, 8 * KIB, 0.2, 512 * KIB, 0, 0, 0),
            compute: ms(1),
            exec: java_exec(),
        },
        FunctionSpec {
            name: "sort",
            language: Java,
            chain_len: 1,
            kernel: K::Sort,
            mem: mem(6 * MIB, 96 * KIB, 0.5, MIB, 0, 0, 0),
            compute: ms(18),
            exec: java_exec(),
        },
        FunctionSpec {
            name: "file-hash",
            language: Java,
            chain_len: 1,
            kernel: K::Hash,
            mem: mem(4608 * KIB, 128 * KIB, 0.3, 900 * KIB, 16 * KIB, 1100 * KIB, 0),
            compute: ms(12),
            exec: java_exec(),
        },
        FunctionSpec {
            name: "image-resize",
            language: Java,
            chain_len: 1,
            kernel: K::Image,
            mem: mem(11 * MIB, 256 * KIB, 0.4, 2 * MIB, 0, 0, 0),
            compute: ms(35),
            exec: java_exec(),
        },
        FunctionSpec {
            name: "image-pipeline",
            language: Java,
            chain_len: 4,
            kernel: K::Image,
            mem: mem(7 * MIB, 192 * KIB, 0.4, 1536 * KIB, 0, 0, 3 * MIB),
            compute: ms(20),
            exec: java_exec(),
        },
        FunctionSpec {
            name: "hotel-searching",
            language: Java,
            chain_len: 3,
            kernel: K::Search,
            mem: mem(38 * MIB, 64 * KIB, 0.35, 2 * MIB, 0, 0, 512 * KIB),
            compute: ms(25),
            exec: java_exec(),
        },
        FunctionSpec {
            name: "mapreduce",
            language: Java,
            chain_len: 2,
            kernel: K::WordCount,
            mem: mem(MIB, 64 * KIB, 0.10, MIB, 0, 0, 3 * MIB),
            compute: ms(18),
            exec: java_exec(),
        },
        FunctionSpec {
            name: "specjbb2015",
            language: Java,
            chain_len: 3,
            kernel: K::Transaction,
            mem: mem(8 * MIB, 48 * KIB, 0.4, 3 * MIB, 64 * KIB, 6 * MIB, MIB),
            compute: ms(30),
            exec: java_exec(),
        },
        // ---------------- JavaScript ----------------
        FunctionSpec {
            name: "clock",
            language: Js,
            chain_len: 1,
            kernel: K::Time,
            mem: mem(64 * KIB, 4 * KIB, 0.2, 128 * KIB, 0, 0, 0),
            compute: ms(1),
            exec: js_exec(0.3),
        },
        FunctionSpec {
            name: "dynamic-html",
            language: Js,
            chain_len: 1,
            kernel: K::Html,
            mem: mem(2304 * KIB, 16 * KIB, 0.4, 300 * KIB, 0, 0, 0),
            compute: ms(5),
            exec: js_exec(0.4),
        },
        FunctionSpec {
            name: "factor",
            language: Js,
            chain_len: 1,
            kernel: K::Factor,
            mem: mem(1536 * KIB, 16 * KIB, 0.3, 100 * KIB, 0, 0, 0),
            compute: ms(30),
            exec: js_exec(0.4),
        },
        FunctionSpec {
            name: "fft",
            language: Js,
            chain_len: 1,
            kernel: K::Fft,
            mem: mem(18 * MIB, 32 * KIB, 0.7, 600 * KIB, 0, 0, 0),
            compute: ms(22),
            exec: js_exec(0.5),
        },
        FunctionSpec {
            name: "fibonacci",
            language: Js,
            chain_len: 1,
            kernel: K::Fibonacci,
            mem: mem(768 * KIB, 8 * KIB, 0.3, 64 * KIB, 0, 0, 0),
            compute: ms(15),
            exec: js_exec(0.3),
        },
        FunctionSpec {
            name: "filesystem",
            language: Js,
            chain_len: 1,
            kernel: K::Hash,
            mem: mem(3 * MIB, 32 * KIB, 0.35, 200 * KIB, 0, 0, 0),
            compute: ms(8),
            exec: js_exec(0.4),
        },
        FunctionSpec {
            name: "matrix",
            language: Js,
            chain_len: 1,
            kernel: K::Matrix,
            mem: mem(10 * MIB, 64 * KIB, 0.6, MIB, 0, 0, 0),
            compute: ms(28),
            exec: js_exec(0.5),
        },
        FunctionSpec {
            name: "pi",
            language: Js,
            chain_len: 1,
            kernel: K::Pi,
            mem: mem(640 * KIB, 8 * KIB, 0.3, 64 * KIB, 0, 0, 0),
            compute: ms(35),
            exec: js_exec(0.3),
        },
        FunctionSpec {
            name: "unionfind",
            language: Js,
            chain_len: 1,
            kernel: K::UnionFind,
            mem: mem(4608 * KIB, 32 * KIB, 0.5, 2 * MIB, 32 * KIB, 2 * MIB, 0),
            compute: ms(15),
            // §5.6: 1.74× slowdown when its JIT code is collected.
            exec: js_exec(0.74),
        },
        FunctionSpec {
            name: "web-server",
            language: Js,
            chain_len: 1,
            kernel: K::Html,
            mem: mem(2 * MIB, 16 * KIB, 0.4, 3 * MIB, 16 * KIB, 3 * MIB, 0),
            compute: ms(5),
            exec: js_exec(0.4),
        },
        FunctionSpec {
            name: "data-analysis",
            language: Js,
            chain_len: 6,
            kernel: K::Aggregate,
            mem: mem(6 * MIB, 48 * KIB, 0.5, MIB, 0, 0, 2 * MIB),
            compute: ms(12),
            // §5.6: 2.14× slowdown when its JIT code is collected.
            exec: js_exec(1.14),
        },
        FunctionSpec {
            name: "alexa",
            language: Js,
            chain_len: 8,
            kernel: K::Search,
            mem: mem(3 * MIB, 24 * KIB, 0.4, 800 * KIB, 0, 0, 512 * KIB),
            compute: ms(8),
            exec: js_exec(0.4),
        },
    ]
}

/// Looks a function up by its Table-1 name.
pub fn by_name(name: &str) -> Option<FunctionSpec> {
    catalog().into_iter().find(|f| f.name == name)
}

/// All Java functions.
pub fn java_functions() -> Vec<FunctionSpec> {
    catalog()
        .into_iter()
        .filter(|f| f.language == Language::Java)
        .collect()
}

/// All JavaScript functions.
pub fn javascript_functions() -> Vec<FunctionSpec> {
    catalog()
        .into_iter()
        .filter(|f| f.language == Language::JavaScript)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_1() {
        let fns = catalog();
        assert_eq!(fns.len(), 20);
        assert_eq!(java_functions().len(), 8);
        assert_eq!(javascript_functions().len(), 12);
        for f in &fns {
            f.validate();
        }
        // Chain lengths from Table 1.
        for (name, len) in [
            ("image-pipeline", 4),
            ("hotel-searching", 3),
            ("mapreduce", 2),
            ("specjbb2015", 3),
            ("data-analysis", 6),
            ("alexa", 8),
        ] {
            assert_eq!(by_name(name).unwrap().chain_len, len, "{name}");
        }
    }

    #[test]
    fn names_are_unique() {
        let fns = catalog();
        let mut names: Vec<_> = fns.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), fns.len());
    }

    #[test]
    fn deopt_sensitive_functions_are_marked() {
        assert!(by_name("data-analysis").unwrap().exec.deopt_sensitivity > 1.0);
        assert!(by_name("unionfind").unwrap().exec.deopt_sensitivity > 0.7);
    }

    #[test]
    fn nominal_durations_scale_with_chain() {
        let mr = by_name("mapreduce").unwrap();
        let single = by_name("file-hash").unwrap();
        assert!(mr.nominal_duration(0.14) > single.nominal_duration(0.14));
    }
}
