//! Function specifications: language, chain shape, memory personality,
//! compute cost.

use faas_runtime::{ExecProfile, Language};
use simos::SimDuration;

/// Which miniature computation the kernel runs (see [`crate::compute`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Returns the current time (trivial).
    Time,
    /// Sorts an integer array.
    Sort,
    /// Hashes a buffer (file-hash, filesystem).
    Hash,
    /// Image processing (resize / pipeline stages): blur-like stencil.
    Image,
    /// Search with scoring (hotel-searching, alexa intents).
    Search,
    /// Word count (mapreduce).
    WordCount,
    /// Transactional mix (specjbb).
    Transaction,
    /// Fast Fourier transform.
    Fft,
    /// Fibonacci.
    Fibonacci,
    /// Matrix multiplication.
    Matrix,
    /// Monte-Carlo-free Leibniz pi.
    Pi,
    /// Integer factorization by trial division.
    Factor,
    /// Union-find over random edges.
    UnionFind,
    /// Templated HTML generation (dynamic-html, web-server).
    Html,
    /// Group-by aggregation (data-analysis).
    Aggregate,
}

/// The allocation personality of a function.
#[derive(Debug, Clone, Copy)]
pub struct MemProfile {
    /// Bytes of temporary objects allocated per invocation (per chain
    /// stage).
    pub temp_bytes: u64,
    /// Mean size of one temporary object.
    pub temp_obj_size: u32,
    /// Fraction of temporaries held in handles until function exit
    /// (the rest die immediately). High values drive survivor copying
    /// and V8's young-generation doubling.
    pub hold_fraction: f64,
    /// Bytes of state allocated at first invocation (Java functions'
    /// expensive initialization).
    pub init_bytes: u64,
    /// Bytes of state added per invocation (caches).
    pub state_per_invoke: u64,
    /// Cap on retained state; the oldest entries are dropped beyond it.
    pub state_cap: u64,
    /// Intermediate bytes a chain stage hands to the next stage
    /// (retained across the function exit until the transfer
    /// completes — the mapreduce effect of §5.2).
    pub intermediate_bytes: u64,
}

/// A complete function specification.
#[derive(Debug, Clone, Copy)]
pub struct FunctionSpec {
    /// Function name as in Table 1.
    pub name: &'static str,
    /// Implementation language.
    pub language: Language,
    /// Number of chained functions (1 = not a chain).
    pub chain_len: u8,
    /// Which miniature computation the kernel runs.
    pub kernel: KernelKind,
    /// Memory personality.
    pub mem: MemProfile,
    /// Kernel compute per invocation (full-CPU time, before JIT
    /// multipliers).
    pub compute: SimDuration,
    /// JIT model parameters.
    pub exec: ExecProfile,
}

impl FunctionSpec {
    /// Mean end-to-end busy time of the whole chain at `cpu_share`,
    /// ignoring JIT effects — used to match trace functions by
    /// duration (§5.3).
    pub fn nominal_duration(&self, cpu_share: f64) -> SimDuration {
        (self.compute * self.chain_len as u64).mul_f64(1.0 / cpu_share)
    }

    /// Sanity checks for a catalog entry.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent personalities (programming errors in the
    /// catalog).
    pub fn validate(&self) {
        assert!(self.chain_len >= 1);
        assert!(self.mem.temp_obj_size > 0);
        assert!(self.mem.temp_bytes >= self.mem.temp_obj_size as u64);
        assert!((0.0..=1.0).contains(&self.mem.hold_fraction));
        assert!(self.mem.state_cap >= self.mem.state_per_invoke);
        if self.chain_len == 1 {
            assert_eq!(self.mem.intermediate_bytes, 0, "{}: non-chain with intermediate", self.name);
        }
        assert!(self.compute > SimDuration::ZERO);
    }
}
