//! Per-instance kernel state and the generic invocation driver.
//!
//! One [`FunctionState`] lives alongside each runtime instance and
//! carries everything the function retains between invocations: the
//! initialization-time live set, the rolling state cache, the chain
//! intermediate awaiting transfer, and the weakly-held JIT code object.

use std::collections::VecDeque;

use faas_runtime::InvocationCtx;
use gc_core::object::{ObjectId, ObjectKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simos::SimDuration;

use crate::compute::run_kernel;
use crate::spec::FunctionSpec;

/// Size of the JIT code object each function installs once warm.
const CODE_OBJECT_BYTES: u32 = 96 << 10;

/// Retained state of one function instance (one chain stage).
#[derive(Debug)]
pub struct FunctionState {
    /// Which chain stage this instance runs (0-based).
    stage: u8,
    rng: StdRng,
    initialized: bool,
    /// Rolling retained state (globals), oldest first.
    state_queue: VecDeque<(ObjectId, u32)>,
    state_bytes: u64,
    /// Intermediate output retained until the transfer to the next
    /// stage completes.
    intermediate: Vec<ObjectId>,
    /// Root object holding the weakly referenced JIT code.
    code_holder: Option<ObjectId>,
    /// Completed invocations.
    seq: u64,
    /// Checksum of all kernel runs (pins computation in tests).
    checksum: u64,
}

impl FunctionState {
    /// Creates state for chain stage `stage`, seeded deterministically.
    pub fn new(stage: u8, seed: u64) -> FunctionState {
        FunctionState {
            stage,
            rng: StdRng::seed_from_u64(seed ^ (stage as u64) << 32),
            initialized: false,
            state_queue: VecDeque::new(),
            state_bytes: 0,
            intermediate: Vec::new(),
            code_holder: None,
            seq: 0,
            checksum: 0,
        }
    }

    /// The chain stage this state drives.
    pub fn stage(&self) -> u8 {
        self.stage
    }

    /// Completed invocations.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Combined checksum of all kernel runs so far.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Runs one invocation of `spec`'s kernel inside `ctx`.
    ///
    /// The shape is the same for every function; the personality
    /// constants in the spec differentiate them:
    ///
    /// 1. first invocation: allocate the initialization live set and
    ///    install the JIT code object (weakly held);
    /// 2. run the miniature computation and charge compute time;
    /// 3. allocate temporaries, a calibrated fraction held until exit;
    /// 4. roll the retained state forward (allocate, evict past cap);
    /// 5. for non-final chain stages, allocate the intermediate output
    ///    and retain it past function exit (transfer completes later —
    ///    see [`FunctionState::complete_transfer`]).
    pub fn invoke(&mut self, spec: &FunctionSpec, ctx: &mut InvocationCtx<'_>) {
        self.seq += 1;
        if !self.initialized {
            self.initialize(spec, ctx);
        }

        // The real miniature computation.
        let seed = self.rng.gen::<u64>();
        let result = run_kernel(spec.kernel, seed);
        self.checksum = self.checksum.wrapping_mul(31).wrapping_add(result);

        // Temporary allocations. Object sizes jitter ±25 % around the
        // calibrated mean; a calibrated fraction stays handle-rooted
        // until function exit.
        let mem = &spec.mem;
        let mut allocated = 0u64;
        let mut prev: Option<ObjectId> = None;
        while allocated < mem.temp_bytes {
            let jitter = self.rng.gen_range(0.75..1.25);
            let size = ((mem.temp_obj_size as f64 * jitter) as u32).max(16);
            let id = ctx.alloc(size);
            allocated += size as u64;
            if self.rng.gen_bool(mem.hold_fraction) {
                ctx.handle(id);
                // Chain temporaries into small structures.
                if let Some(p) = prev {
                    if self.rng.gen_bool(0.5) {
                        ctx.link(id, p);
                    }
                }
                prev = Some(id);
            }
        }

        // Rolling retained state.
        if mem.state_per_invoke > 0 {
            let size = mem.state_per_invoke.min(u32::MAX as u64) as u32;
            let id = ctx.alloc(size);
            ctx.global(id);
            self.state_queue.push_back((id, size));
            self.state_bytes += size as u64;
            while self.state_bytes > mem.state_cap {
                let (old, sz) = self.state_queue.pop_front().expect("bytes imply entries"); // tidy:allow(panic-reachability) -- positive state_bytes implies the queue holds at least one entry
                ctx.drop_global(old);
                self.state_bytes -= sz as u64;
            }
        }

        // Chain intermediate: everything but the last stage produces
        // output that outlives the function exit.
        if spec.chain_len > 1 && self.stage + 1 < spec.chain_len {
            let mut produced = 0u64;
            while produced < mem.intermediate_bytes {
                let size = mem.temp_obj_size.max(4096);
                let id = ctx.alloc(size);
                ctx.global(id);
                self.intermediate.push(id);
                produced += size as u64;
            }
        }

        // Charge compute (±10 % jitter).
        let jitter = self.rng.gen_range(0.9..1.1);
        ctx.work(spec.compute.mul_f64(jitter));
        let _ = result;
    }

    fn initialize(&mut self, spec: &FunctionSpec, ctx: &mut InvocationCtx<'_>) {
        let mem = &spec.mem;
        let mut allocated = 0u64;
        let mut prev: Option<ObjectId> = None;
        while allocated < mem.init_bytes {
            let size = mem.temp_obj_size.max(8 << 10);
            let id = ctx.alloc(size);
            ctx.global(id);
            if let Some(p) = prev {
                ctx.link(id, p);
            }
            prev = Some(id);
            allocated += size as u64;
        }
        // Install the JIT code object, weakly held as V8 does.
        let holder = ctx.alloc(1024);
        ctx.global(holder);
        let code = ctx.alloc_kind(CODE_OBJECT_BYTES, ObjectKind::Code);
        ctx.link_weak(holder, code);
        self.code_holder = Some(holder);
        // Initialization costs extra compute on top of the kernel.
        ctx.work(spec.compute * 2);
        self.initialized = true;
    }

    /// Completes the transfer of this stage's intermediate output to
    /// the next stage: the retained objects become garbage. The
    /// platform calls this once the downstream stage has consumed the
    /// data — *after* the eager baseline's exit-time GC, which is why
    /// eager GC cannot reclaim chain intermediates (§5.2, mapreduce).
    pub fn complete_transfer(&mut self, graph: &mut gc_core::object::HeapGraph) {
        for id in self.intermediate.drain(..) {
            graph.remove_global(id);
        }
    }

    /// Bytes of intermediate output currently awaiting transfer.
    pub fn pending_intermediate(&self) -> usize {
        self.intermediate.len()
    }

    /// Extra wall-time the function spends off-CPU (I/O waits); derived
    /// from the spec, deterministic per invocation.
    pub fn io_wait(&self, spec: &FunctionSpec) -> SimDuration {
        // Functions touching external systems (hash = file reads,
        // html = network) wait a fraction of their compute time.
        spec.compute.mul_f64(0.2)
    }
}

mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for FunctionState {
        fn snap(&self, w: &mut Writer) {
            let Self {
                stage,
                rng,
                initialized,
                state_queue,
                state_bytes,
                intermediate,
                code_holder,
                seq,
                checksum,
            } = self;
            stage.snap(w);
            w.blob(&rng.state_bytes());
            initialized.snap(w);
            state_queue.snap(w);
            state_bytes.snap(w);
            intermediate.snap(w);
            code_holder.snap(w);
            seq.snap(w);
            checksum.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<FunctionState, SnapError> {
            let stage = u8::restore(r)?;
            let rng_bytes = r.blob()?;
            let rng = StdRng::from_state_bytes(rng_bytes)
                .ok_or(SnapError::Corrupt("FunctionState rng state invalid"))?;
            Ok(FunctionState {
                stage,
                rng,
                initialized: bool::restore(r)?,
                state_queue: VecDeque::restore(r)?,
                state_bytes: u64::restore(r)?,
                intermediate: Vec::restore(r)?,
                code_holder: Option::restore(r)?,
                seq: u64::restore(r)?,
                checksum: u64::restore(r)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faas_runtime::{Instance, Language, RuntimeImage};
    use simos::{SimTime, System};

    fn setup(lang: Language) -> (System, Instance) {
        let mut sys = System::new();
        let image = RuntimeImage::openwhisk(lang);
        let libs = image.register_files(&mut sys);
        let inst = Instance::launch(&mut sys, &image, &libs, 256 << 20, 0.14).unwrap();
        (sys, inst)
    }

    #[test]
    fn state_is_initialized_once_and_retained() {
        let spec = crate::catalog::by_name("file-hash").unwrap();
        let (mut sys, mut inst) = setup(spec.language);
        let mut state = FunctionState::new(0, 7);
        for i in 0..5 {
            inst.invoke(&mut sys, SimTime(i * 1_000_000), &spec.exec, |ctx| {
                state.invoke(&spec, ctx);
            })
            .unwrap();
        }
        assert_eq!(state.seq(), 5);
        // Retained state respects its cap.
        assert!(state.state_bytes <= spec.mem.state_cap);
        // The live set at freeze is at least the init bytes.
        let live = gc_core::trace::mark(inst.heap().graph(), false, true);
        assert!(live.live_bytes >= spec.mem.init_bytes);
    }

    #[test]
    fn chain_stage_retains_intermediate_until_transfer() {
        let spec = crate::catalog::by_name("mapreduce").unwrap();
        assert!(spec.chain_len > 1);
        let (mut sys, mut inst) = setup(spec.language);
        let mut state = FunctionState::new(0, 3);
        inst.invoke(&mut sys, SimTime(0), &spec.exec, |ctx| {
            state.invoke(&spec, ctx);
        })
        .unwrap();
        assert!(state.pending_intermediate() > 0);
        let live_with = gc_core::trace::mark(inst.heap().graph(), false, true).live_bytes;
        state.complete_transfer(inst.heap_mut().graph_mut());
        let live_without = gc_core::trace::mark(inst.heap().graph(), false, true).live_bytes;
        assert!(
            live_without + spec.mem.intermediate_bytes <= live_with + spec.mem.temp_obj_size as u64,
            "transfer did not free the intermediate: {live_with} -> {live_without}"
        );
    }

    #[test]
    fn final_chain_stage_produces_no_intermediate() {
        let spec = crate::catalog::by_name("mapreduce").unwrap();
        let (mut sys, mut inst) = setup(spec.language);
        let last = spec.chain_len - 1;
        let mut state = FunctionState::new(last, 3);
        inst.invoke(&mut sys, SimTime(0), &spec.exec, |ctx| {
            state.invoke(&spec, ctx);
        })
        .unwrap();
        assert_eq!(state.pending_intermediate(), 0);
    }

    #[test]
    fn checksums_are_deterministic_across_replays() {
        let spec = crate::catalog::by_name("fft").unwrap();
        let mut sums = Vec::new();
        for _ in 0..2 {
            let (mut sys, mut inst) = setup(spec.language);
            let mut state = FunctionState::new(0, 99);
            for i in 0..3 {
                inst.invoke(&mut sys, SimTime(i), &spec.exec, |ctx| {
                    state.invoke(&spec, ctx);
                })
                .unwrap();
            }
            sums.push(state.checksum());
        }
        assert_eq!(sums[0], sums[1]);
    }
}
