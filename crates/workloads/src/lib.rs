//! # workloads — the Table-1 FaaS functions
//!
//! The paper evaluates 20 functions (8 Java, 12 JavaScript, including
//! six chains) drawn from FaaS benchmark suites and converted
//! microservices. This crate models each one as a *kernel*: real Rust
//! code that performs a miniature version of the function's computation
//! (an actual FFT, an actual union-find, an actual word count, …) while
//! driving the simulated managed heap with the function's allocation
//! personality — how much it allocates per invocation, how much of that
//! survives until function exit, how much state it retains across
//! invocations, and (for chains) how much intermediate data each stage
//! hands to the next.
//!
//! Those personalities are *calibrated*: the per-function constants in
//! [`catalog`] are chosen so the characterization harnesses reproduce
//! the magnitudes the paper reports (e.g. `fft`'s young generation
//! ratcheting to its cap, `file-hash` holding ≈1 MiB live in a much
//! larger heap, `hotel-searching` peaking above 5× its ideal).
//!
//! # Examples
//!
//! ```
//! use workloads::catalog;
//!
//! let fns = catalog::catalog();
//! assert_eq!(fns.len(), 20);
//! let fft = catalog::by_name("fft").unwrap();
//! assert_eq!(fft.language, faas_runtime::Language::JavaScript);
//! ```

#![forbid(unsafe_code)]

pub mod catalog;
pub mod compute;
pub mod spec;
pub mod state;

pub use catalog::{by_name, catalog};
pub use spec::{FunctionSpec, KernelKind, MemProfile};
pub use state::FunctionState;
