//! Property tests for the container format: arbitrary mutations of a
//! valid container must never panic the verifier and must always be
//! rejected with a typed [`SnapError`].
//!
//! The crate takes no dev-dependencies, so the generator is a small
//! seeded splitmix64 — fixed seeds make every run (and every failure)
//! reproducible by construction.

use snapshot::frame::{Container, ContainerWriter};
use snapshot::{decode, Snapshot};

/// splitmix64: tiny, seedable, full-period. Good enough to fuzz byte
/// mutations deterministically.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A representative container: several frames of varied sizes,
/// including an empty payload, committed as a delta.
fn sample(rng: &mut Rng) -> Vec<u8> {
    let mut cw = ContainerWriter::new();
    let frames = 2 + rng.below(5);
    for kind in 0..frames {
        let len = rng.below(200);
        let payload: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        cw.frame(kind as u32, &payload);
    }
    cw.commit(9, Some(4))
}

#[test]
fn every_truncation_is_rejected() {
    let mut rng = Rng(0x5EED_0001);
    let bytes = sample(&mut rng);
    for cut in 0..bytes.len() {
        let err = Container::open(&bytes[..cut]);
        assert!(err.is_err(), "truncation at {cut} accepted");
    }
}

#[test]
fn random_bit_flips_are_rejected() {
    let mut rng = Rng(0x5EED_0002);
    for _ in 0..64 {
        let clean = sample(&mut rng);
        let mut bytes = clean.clone();
        let flips = 1 + rng.below(4);
        for _ in 0..flips {
            let at = rng.below(bytes.len());
            bytes[at] ^= 1 << rng.below(8);
        }
        // Two flips can land on the same bit and cancel; only a
        // net-changed container must be rejected.
        if bytes != clean {
            assert!(
                Container::open(&bytes).is_err(),
                "flipped container accepted"
            );
        }
    }
}

#[test]
fn duplicated_and_deleted_frames_are_rejected() {
    let mut rng = Rng(0x5EED_0003);
    for _ in 0..64 {
        let bytes = sample(&mut rng);
        let c = Container::open(&bytes).expect("pristine container opens");
        assert!(!c.frames.is_empty());

        // Duplicate: splice a copy of the first frame's extent right
        // after itself. The frame CRC still matches, but the commit's
        // frame count and body CRC no longer do.
        let header = 8;
        let first_end = frame_end(&bytes, header);
        let mut dup = bytes.clone();
        let copy: Vec<u8> = bytes[header..first_end].to_vec();
        dup.splice(first_end..first_end, copy);
        assert!(Container::open(&dup).is_err(), "duplicated frame accepted");

        // Delete: drop the first frame entirely.
        let mut del = bytes.clone();
        del.drain(header..first_end);
        assert!(Container::open(&del).is_err(), "deleted frame accepted");
    }
}

#[test]
fn garbage_splices_are_rejected() {
    let mut rng = Rng(0x5EED_0004);
    for _ in 0..128 {
        let bytes = sample(&mut rng);
        let at = rng.below(bytes.len() + 1);
        let n = 1 + rng.below(64);
        let garbage: Vec<u8> = (0..n).map(|_| rng.next() as u8).collect();
        let mut spliced = bytes.clone();
        spliced.splice(at..at, garbage);
        assert!(
            Container::open(&spliced).is_err(),
            "garbage splice of {n} bytes at {at} accepted"
        );
    }
}

#[test]
fn pure_noise_never_panics_and_never_verifies() {
    let mut rng = Rng(0x5EED_0005);
    for _ in 0..256 {
        let len = rng.below(512);
        let noise: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        assert!(Container::open(&noise).is_err(), "noise accepted");
    }
}

#[test]
fn flat_codec_never_panics_on_mutated_input() {
    // The flat Reader paths (length prefixes, UTF-8 strings, nested
    // containers) must stay panic-free under mutation. A mutation can
    // legitimately decode Ok (e.g. a flipped payload byte inside a
    // string), so the property here is only "no panic, typed result".
    let mut rng = Rng(0x5EED_0006);
    let value: Vec<(u64, String, Vec<u8>)> = vec![
        (1, "alpha".into(), vec![1, 2, 3]),
        (u64::MAX, "β-mixed utf8 ✓".into(), vec![]),
        (42, String::new(), vec![0xFF; 64]),
    ];
    let clean = snapshot::encode(&value);
    for _ in 0..512 {
        let mut bytes = clean.clone();
        match rng.below(3) {
            0 => {
                let at = rng.below(bytes.len());
                bytes[at] ^= 1 << rng.below(8);
            }
            1 => {
                bytes.truncate(rng.below(bytes.len() + 1));
            }
            _ => {
                let at = rng.below(bytes.len() + 1);
                let n = 1 + rng.below(16);
                let garbage: Vec<u8> = (0..n).map(|_| rng.next() as u8).collect();
                bytes.splice(at..at, garbage);
            }
        }
        let _ = decode::<Vec<(u64, String, Vec<u8>)>>(&bytes);
    }
}

#[test]
fn oversized_length_prefix_is_an_error_not_an_allocation() {
    // A corrupt length prefix far past the buffer must fail fast with
    // a typed error, not attempt the allocation.
    let mut w = snapshot::Writer::new();
    w.usize(usize::MAX / 2);
    let bytes = w.into_bytes();
    let mut r = snapshot::Reader::new(&bytes);
    let n = r.seq_len();
    assert!(n.is_err(), "absurd length prefix accepted: {n:?}");
    let err = decode::<Vec<u64>>(&bytes);
    assert!(err.is_err(), "absurd vec length accepted");
}

/// Byte offset one past the end of the frame starting at `start`
/// (kind u32 + usize length prefix + payload + u64 crc), computed with
/// the crate's own Reader so the layout never drifts.
fn frame_end(bytes: &[u8], start: usize) -> usize {
    let mut r = snapshot::Reader::new(&bytes[start..]);
    r.u32().expect("frame kind");
    let n = r.seq_len().expect("frame length");
    r.take(n).expect("frame payload");
    r.u64().expect("frame crc");
    bytes.len() - r.remaining()
}

/// Smoke check that the helper trait is actually in scope (the tests
/// above exercise `decode` via the blanket impls).
#[test]
fn round_trip_sanity() {
    let v: Vec<u64> = (0..16).collect();
    let bytes = snapshot::encode(&v);
    let mut r = snapshot::Reader::new(&bytes);
    let back = Vec::<u64>::restore(&mut r).expect("restore");
    assert_eq!(back, v);
}
