//! CRC64-framed checkpoint containers.
//!
//! The flat codec in the crate root assumes its input is pristine; this
//! module is the durability layer above it. A *container* is a
//! `(magic, version)` header followed by a sequence of *frames*, each
//!
//! ```text
//! kind: u32 | payload_len: u64 | payload | crc64(kind, len, payload)
//! ```
//!
//! and terminated by a *commit frame* written last, whose payload holds
//! the checkpoint epoch, the parent epoch (for deltas), the frame
//! count, and a *body CRC*. The body CRC is a CRC64 over the sequence
//! of per-frame checksums, **not** over the raw frame bytes: a CRC of
//! data that embeds its own CRC collapses to the algorithm's residue
//! constant (`crc(m ++ crc(m))` is the same for every `m`), which
//! would let a stale commit record validate against any body with the
//! same frame count. Hashing the checksum chain binds each frame's
//! content transitively without that degeneracy. A container is valid
//! **iff** its commit frame verifies: a torn write loses the commit, a
//! truncation loses bytes a frame CRC covers, a bit flip breaks a
//! frame CRC, and a stale commit record (an old commit spliced after
//! new frames) disagrees with the body CRC. [`Container::open`] turns
//! every such corruption into a typed [`SnapError`] — it never panics,
//! whatever the bytes.
//!
//! The CRC is CRC-64/XZ (reflected ECMA-182 polynomial), table-driven.

use crate::{read_header, write_header, Reader, SnapError, Snapshot, Writer};

/// Container header magic: `"FRAM"`.
pub const CONTAINER_MAGIC: u32 = 0x4652_414D;

/// Container format version.
pub const CONTAINER_VERSION: u32 = 1;

/// Frame kind reserved for the commit record. Callers choose their own
/// kinds below this value.
pub const COMMIT_KIND: u32 = 0xFFFF_FFFF;

/// Reflected ECMA-182 polynomial (CRC-64/XZ).
const CRC64_POLY: u64 = 0xC96C_5795_D787_0F42;

const CRC64_TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 { (crc >> 1) ^ CRC64_POLY } else { crc >> 1 };
            bit += 1;
        }
        // tidy:allow(unchecked-index) -- const-eval table build; i < 256 by the loop bound
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-64/XZ of `bytes`. Also used for the per-record journal
/// checksums in the resumable-replay write-ahead log.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        let idx = ((crc ^ u64::from(b)) & 0xFF) as usize;
        // tidy:allow(unchecked-index) -- idx is masked to 0xFF into a 256-entry table
        crc = CRC64_TABLE[idx] ^ (crc >> 8); // tidy:allow(panic-reachability) -- idx is a byte and the CRC table has 256 entries
    }
    !crc
}

/// Builds a container frame by frame; [`ContainerWriter::commit`]
/// seals it. Frames are opaque payloads to this layer — the platform
/// decides what a `SLOT` or `PROC` frame means.
#[derive(Debug, Default)]
pub struct ContainerWriter {
    body: Vec<u8>,
    /// Little-endian bytes of every frame's CRC, in order — the input
    /// to the commit record's body CRC (see the module docs for why
    /// the raw body bytes cannot be the input).
    crc_chain: Vec<u8>,
    frames: usize,
}

impl ContainerWriter {
    /// Starts an empty container.
    pub fn new() -> ContainerWriter {
        ContainerWriter::default()
    }

    /// Appends one frame. `kind` must not be [`COMMIT_KIND`] (the
    /// commit record is written only by [`ContainerWriter::commit`]);
    /// a reserved kind is remapped to `COMMIT_KIND - 1` rather than
    /// forging a premature commit.
    pub fn frame(&mut self, kind: u32, payload: &[u8]) {
        let kind = if kind == COMMIT_KIND { COMMIT_KIND - 1 } else { kind };
        let mut f = Writer::new();
        f.u32(kind);
        f.usize(payload.len());
        f.raw(payload);
        let head = f.into_bytes();
        let crc = crc64(&head);
        self.body.extend_from_slice(&head);
        self.body.extend_from_slice(&crc.to_le_bytes());
        self.crc_chain.extend_from_slice(&crc.to_le_bytes());
        self.frames += 1;
    }

    /// Number of frames appended so far.
    pub fn frame_count(&self) -> usize {
        self.frames
    }

    /// Seals the container: writes the commit frame (epoch, parent
    /// epoch for deltas, frame count, body CRC) last and returns the
    /// full container bytes.
    pub fn commit(self, epoch: u64, parent: Option<u64>) -> Vec<u8> {
        let body_crc = crc64(&self.crc_chain);
        let mut payload = Writer::new();
        payload.u64(epoch);
        parent.snap(&mut payload);
        payload.usize(self.frames);
        payload.u64(body_crc);

        let mut f = Writer::new();
        f.u32(COMMIT_KIND);
        let payload = payload.into_bytes();
        f.usize(payload.len());
        f.raw(&payload);
        let head = f.into_bytes();
        let crc = crc64(&head);

        let mut out = Writer::new();
        write_header(&mut out, CONTAINER_MAGIC, CONTAINER_VERSION);
        out.raw(&self.body);
        out.raw(&head);
        out.raw(&crc.to_le_bytes());
        out.into_bytes()
    }
}

/// A verified container: opening checked every frame CRC, the commit
/// record's position, frame count, and body CRC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    /// Monotonic checkpoint epoch from the commit record.
    pub epoch: u64,
    /// Parent epoch this delta chains to; `None` for a base.
    pub parent: Option<u64>,
    /// The data frames, in write order, commit excluded.
    pub frames: Vec<(u32, Vec<u8>)>,
}

impl Container {
    /// Opens and fully verifies a container. Any corruption — torn
    /// tail, truncation, flipped bit, duplicated frame, stale or
    /// missing commit — yields a typed [`SnapError`]; this function
    /// never panics on arbitrary input.
    pub fn open(bytes: &[u8]) -> Result<Container, SnapError> {
        let mut r = Reader::new(bytes);
        read_header(&mut r, CONTAINER_MAGIC, CONTAINER_VERSION)?;
        let mut frames: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut crc_chain: Vec<u8> = Vec::new();
        loop {
            if r.remaining() == 0 {
                // A torn write that lost the commit record lands here.
                return Err(SnapError::Corrupt("container ends without a commit frame"));
            }
            let frame_start = bytes.len() - r.remaining();
            let kind = r.u32()?;
            let n = r.seq_len()?;
            let payload = r.take(n)?;
            let stored_crc = r.u64()?;
            let crced_end = (bytes.len() - r.remaining())
                .checked_sub(8)
                .ok_or(SnapError::Corrupt("frame extent underflow"))?;
            let crced = bytes
                .get(frame_start..crced_end)
                .ok_or(SnapError::Corrupt("frame extent out of bounds"))?;
            if crc64(crced) != stored_crc {
                return Err(SnapError::Corrupt("frame checksum mismatch"));
            }
            if kind != COMMIT_KIND {
                frames.push((kind, payload.to_vec()));
                crc_chain.extend_from_slice(&stored_crc.to_le_bytes());
                continue;
            }
            let mut cr = Reader::new(payload);
            let epoch = cr.u64()?;
            let parent = Option::<u64>::restore(&mut cr)?;
            let frame_count = cr.usize()?;
            let body_crc = cr.u64()?;
            cr.finish()?;
            // The commit must be the last frame.
            r.finish()?;
            if frame_count != frames.len() {
                return Err(SnapError::mismatch(
                    "commit frame count",
                    frames.len(),
                    frame_count,
                ));
            }
            if crc64(&crc_chain) != body_crc {
                // A stale commit record — committed over different
                // frames than the ones on disk — fails here.
                return Err(SnapError::Corrupt("commit body checksum mismatch"));
            }
            if let Some(p) = parent {
                if p >= epoch {
                    return Err(SnapError::mismatch(
                        "delta parent epoch",
                        format!("older than {epoch}"),
                        p,
                    ));
                }
            }
            return Ok(Container {
                epoch,
                parent,
                frames,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut cw = ContainerWriter::new();
        cw.frame(1, b"control state");
        cw.frame(2, b"");
        cw.frame(3, &[0xAB; 100]);
        cw.commit(7, Some(6))
    }

    #[test]
    fn container_round_trips() {
        let bytes = sample();
        let c = Container::open(&bytes).unwrap();
        assert_eq!(c.epoch, 7);
        assert_eq!(c.parent, Some(6));
        assert_eq!(c.frames.len(), 3);
        assert_eq!(c.frames.first().unwrap(), &(1u32, b"control state".to_vec()));
        assert_eq!(c.frames.get(2).unwrap().1, vec![0xAB; 100]);
    }

    #[test]
    fn known_crc64_vector() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                if let Some(b) = bad.get_mut(i) {
                    *b ^= 1 << bit;
                }
                assert!(
                    Container::open(&bad).is_err(),
                    "flip at byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = Container::open(bytes.get(..cut).unwrap()).unwrap_err();
            let _ = err.to_string();
        }
    }

    #[test]
    fn torn_write_without_commit_is_detected() {
        let mut cw = ContainerWriter::new();
        cw.frame(1, b"only data, never committed");
        // Rebuild the same body but do not commit: simulate by cutting
        // a committed container just before its commit frame.
        let full = cw.commit(1, None);
        let c = Container::open(&full).unwrap();
        assert_eq!(c.frames.len(), 1);
    }

    #[test]
    fn stale_commit_record_is_detected() {
        // Commit record from a different body spliced onto new frames.
        let old = {
            let mut cw = ContainerWriter::new();
            cw.frame(1, b"old body");
            cw.commit(3, None)
        };
        let new_body = {
            let mut cw = ContainerWriter::new();
            cw.frame(1, b"new body!!");
            cw.commit(4, None)
        };
        // Find the commit frame of `old`: it is the trailing suffix
        // after its single data frame. Recompute offsets structurally.
        let old_c = Container::open(&old).unwrap();
        assert_eq!(old_c.epoch, 3);
        let old_commit_len = 4 + 8 + (8 + 1 + 8 + 8) + 8; // kind+len+payload+crc
        let splice_at = new_body.len() - old_commit_len;
        let mut forged = new_body.get(..splice_at).unwrap().to_vec();
        forged.extend_from_slice(old.get(old.len() - old_commit_len..).unwrap());
        let err = Container::open(&forged).unwrap_err();
        assert!(matches!(err, SnapError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn duplicated_frame_is_detected() {
        let mut cw = ContainerWriter::new();
        cw.frame(1, b"abc");
        let one = cw.commit(1, None);
        // Duplicate the data frame in place: frame bytes start after the
        // 8-byte header and are (4 + 8 + 3 + 8) long.
        let flen = 4 + 8 + 3 + 8;
        let frame = one.get(8..8 + flen).unwrap().to_vec();
        let mut dup = one.get(..8).unwrap().to_vec();
        dup.extend_from_slice(&frame);
        dup.extend_from_slice(&frame);
        dup.extend_from_slice(one.get(8 + flen..).unwrap());
        let err = Container::open(&dup).unwrap_err();
        assert!(
            matches!(err, SnapError::Mismatch { .. } | SnapError::Corrupt(_)),
            "{err:?}"
        );
    }

    #[test]
    fn delta_parent_must_be_older() {
        let mut cw = ContainerWriter::new();
        cw.frame(1, b"x");
        let bytes = cw.commit(5, Some(5));
        assert!(matches!(
            Container::open(&bytes),
            Err(SnapError::Mismatch { .. })
        ));
    }

    #[test]
    fn empty_container_commits_and_opens() {
        let bytes = ContainerWriter::new().commit(1, None);
        let c = Container::open(&bytes).unwrap();
        assert!(c.frames.is_empty());
        assert_eq!(c.parent, None);
    }
}
