//! # snapshot — a versioned, deterministic, length-prefixed binary codec
//!
//! Crash-consistent checkpoint/restore for the simulation: every piece
//! of sim state implements [`Snapshot`], and a checkpoint is the
//! concatenation of each component's canonical encoding behind a
//! `(magic, version)` header. The codec is std-only (no serde) and
//! deliberately small:
//!
//! * **Deterministic** — the same logical state always encodes to the
//!   same bytes. Integers are little-endian and fixed-width, floats are
//!   encoded as their IEEE-754 bit patterns, map containers are
//!   `BTreeMap`/`BTreeSet` (sorted iteration), and anything whose
//!   in-memory layout is order-unstable (e.g. a `BinaryHeap`) must be
//!   serialized in a canonical order by its `Snapshot` impl. Two runs
//!   that reach the same state therefore produce byte-identical
//!   checkpoints, which is what lets the chaos harness compare a
//!   recovered run against an uninterrupted control with a plain FNV
//!   digest.
//! * **Length-prefixed** — every variable-length value (strings, byte
//!   blobs, sequences, maps) carries a `u64` element count, validated
//!   against the remaining input before allocation, so corrupt input
//!   fails with a typed [`SnapError`] instead of an abort.
//! * **Versioned** — blobs start with [`write_header`]; decoding
//!   rejects foreign magic and unknown versions up front. The single
//!   version covers the whole state tree: any change to any field's
//!   encoding bumps the platform's version constant (old checkpoints
//!   are then rejected, never misread).
//!
//! Decoding never panics: every read returns `Result<_, SnapError>`,
//! and [`Reader::finish`] rejects trailing garbage so a truncated or
//! over-long blob cannot silently restore.

#![forbid(unsafe_code)]

pub mod frame;

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A decode failure. Encoding is infallible; decoding is total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The input ended before the value did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A value decoded but is not a valid encoding (bad enum tag,
    /// out-of-range length, non-UTF-8 string, inconsistent field).
    Corrupt(&'static str),
    /// The blob does not start with the expected magic number.
    BadMagic {
        /// Magic the decoder expected.
        expected: u32,
        /// Magic actually found.
        found: u32,
    },
    /// The blob's format version is not the one this build writes.
    BadVersion {
        /// Version the decoder expected.
        expected: u32,
        /// Version actually found.
        found: u32,
    },
    /// Decoding finished but bytes were left over.
    Trailing {
        /// Unconsumed byte count.
        remaining: usize,
    },
    /// The blob decoded cleanly but disagrees with the state restoring
    /// it: a different configuration (catalog, platform config, manager
    /// kind) or a failed cross-validation (cache-charge sum, event
    /// order, fingerprint). Carries which validation failed and both
    /// sides so a red run names its divergence instead of a bare tag.
    Mismatch {
        /// Which validation failed.
        what: &'static str,
        /// The value the restoring side required.
        expected: String,
        /// The value the blob actually carried.
        actual: String,
    },
}

impl SnapError {
    /// Builds a [`SnapError::Mismatch`] from any displayable pair.
    pub fn mismatch(
        what: &'static str,
        expected: impl fmt::Display,
        actual: impl fmt::Display,
    ) -> SnapError {
        SnapError::Mismatch {
            what,
            expected: expected.to_string(),
            actual: actual.to_string(),
        }
    }
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { needed, remaining } => {
                write!(f, "snapshot truncated: needed {needed} bytes, {remaining} remain")
            }
            SnapError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapError::BadMagic { expected, found } => {
                write!(f, "bad snapshot magic: expected {expected:#010x}, found {found:#010x}")
            }
            SnapError::BadVersion { expected, found } => {
                write!(f, "unsupported snapshot version {found} (this build reads {expected})")
            }
            SnapError::Trailing { remaining } => {
                write!(f, "snapshot has {remaining} trailing bytes after the last field")
            }
            SnapError::Mismatch {
                what,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "snapshot mismatch in {what}: expected {expected}, found {actual}"
                )
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Encoder: an append-only byte buffer with fixed-width primitives.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (lossless on the supported
    /// 64-bit-or-smaller targets).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern — bit-exact, so
    /// accumulated floating-point state (EMAs, core-time counters)
    /// round-trips without drift.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed opaque byte blob (e.g. a nested,
    /// separately-versioned sub-snapshot).
    pub fn blob(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends bytes verbatim, with no length prefix. For splicing a
    /// canonical sub-encoding (produced by another `Writer`) into a
    /// larger stream — the delta-checkpoint fold reassembles full
    /// checkpoints from per-section byte blobs this way.
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Decoder: a cursor over an immutable byte slice. Every read is
/// bounds-checked and returns a typed error on bad input.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf` for decoding.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes exactly `n` bytes.
    ///
    /// Every access goes through `slice::get` — the decode path must
    /// hold against arbitrary bytes, so the `unchecked-index` tidy rule
    /// bans plain indexing in this crate.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SnapError::Corrupt("read length overflows the cursor"))?;
        let out = self.buf.get(self.pos..end).ok_or(SnapError::Truncated {
            needed: n,
            remaining: self.remaining(),
        })?;
        self.pos = end;
        Ok(out)
    }

    /// Takes exactly `N` bytes as a fixed-size array.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], SnapError> {
        <[u8; N]>::try_from(self.take(N)?)
            .map_err(|_| SnapError::Corrupt("fixed-width read changed length"))
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        let [b] = self.take_array()?;
        Ok(b)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads a `u64` and converts it to `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::Corrupt("usize out of range"))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`; any byte other than 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool byte is not 0 or 1")),
        }
    }

    /// Reads a sequence length and validates it against the remaining
    /// input (every element encodes at least one byte), so a corrupt
    /// length prefix cannot drive a huge allocation.
    pub fn seq_len(&mut self) -> Result<usize, SnapError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SnapError::Corrupt("length prefix exceeds input"));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let n = self.seq_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Corrupt("string is not UTF-8"))
    }

    /// Reads a length-prefixed opaque byte blob.
    pub fn blob(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.seq_len()?;
        self.take(n)
    }

    /// Asserts the input is fully consumed.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::Trailing {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Writes a `(magic, version)` blob header.
pub fn write_header(w: &mut Writer, magic: u32, version: u32) {
    w.u32(magic);
    w.u32(version);
}

/// Reads and validates a `(magic, version)` blob header.
pub fn read_header(r: &mut Reader<'_>, magic: u32, version: u32) -> Result<(), SnapError> {
    let found_magic = r.u32()?;
    if found_magic != magic {
        return Err(SnapError::BadMagic {
            expected: magic,
            found: found_magic,
        });
    }
    let found_version = r.u32()?;
    if found_version != version {
        return Err(SnapError::BadVersion {
            expected: version,
            found: found_version,
        });
    }
    Ok(())
}

/// A type whose full state round-trips through the codec.
///
/// The contract is *identity*: `restore(snap(x)) == x` for every
/// reachable state, where equality means "indistinguishable to the
/// simulation" — continuing a restored value must produce byte-for-byte
/// the same trajectory as continuing the original. Impls for sim-state
/// structs must exhaustively destructure (`let Self { .. } = self;`
/// with every field named) so adding a field without snapshotting it is
/// a compile error; the `snapshot-coverage` tidy rule enforces this.
pub trait Snapshot: Sized {
    /// Appends this value's canonical encoding to `w`.
    fn snap(&self, w: &mut Writer);

    /// Decodes one value from `r`.
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError>;
}

macro_rules! prim_snapshot {
    ($ty:ty, $method:ident) => {
        impl Snapshot for $ty {
            fn snap(&self, w: &mut Writer) {
                w.$method(*self);
            }
            fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
                r.$method()
            }
        }
    };
}

prim_snapshot!(u8, u8);
prim_snapshot!(u16, u16);
prim_snapshot!(u32, u32);
prim_snapshot!(u64, u64);
prim_snapshot!(usize, usize);
prim_snapshot!(f64, f64);
prim_snapshot!(bool, bool);

impl Snapshot for String {
    fn snap(&self, w: &mut Writer) {
        w.str(self);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.str()
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn snap(&self, w: &mut Writer) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.snap(w);
            }
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            _ => Err(SnapError::Corrupt("Option tag is not 0 or 1")),
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn snap(&self, w: &mut Writer) {
        w.usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = r.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn snap(&self, w: &mut Writer) {
        w.usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = r.seq_len()?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<K: Snapshot + Ord, V: Snapshot> Snapshot for BTreeMap<K, V> {
    fn snap(&self, w: &mut Writer) {
        w.usize(self.len());
        for (k, v) in self {
            k.snap(w);
            v.snap(w);
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = r.seq_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::restore(r)?;
            let v = V::restore(r)?;
            if out.insert(k, v).is_some() {
                return Err(SnapError::Corrupt("duplicate map key"));
            }
        }
        Ok(out)
    }
}

impl<T: Snapshot + Ord> Snapshot for BTreeSet<T> {
    fn snap(&self, w: &mut Writer) {
        w.usize(self.len());
        for v in self {
            v.snap(w);
        }
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let n = r.seq_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            if !out.insert(T::restore(r)?) {
                return Err(SnapError::Corrupt("duplicate set element"));
            }
        }
        Ok(out)
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn snap(&self, w: &mut Writer) {
        self.0.snap(w);
        self.1.snap(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn snap(&self, w: &mut Writer) {
        self.0.snap(w);
        self.1.snap(w);
        self.2.snap(w);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok((A::restore(r)?, B::restore(r)?, C::restore(r)?))
    }
}

/// Encodes one value to a standalone byte vector.
pub fn encode<T: Snapshot>(v: &T) -> Vec<u8> {
    let mut w = Writer::new();
    v.snap(&mut w);
    w.into_bytes()
}

/// Decodes one value from a standalone byte vector, rejecting trailing
/// bytes.
pub fn decode<T: Snapshot>(bytes: &[u8]) -> Result<T, SnapError> {
    let mut r = Reader::new(bytes);
    let v = T::restore(&mut r)?;
    r.finish()?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Snapshot + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode(&v);
        assert_eq!(decode::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(u16::MAX);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(String::from("naïve — ascii and not"));
        round_trip(String::new());
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, f64::INFINITY, -f64::INFINITY] {
            let bytes = encode(&v);
            let back = decode::<f64>(&bytes).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        let nan_bytes = encode(&f64::NAN);
        assert!(decode::<f64>(&nan_bytes).unwrap().is_nan());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip(VecDeque::from([(1u32, 2u64), (3, 4)]));
        round_trip(BTreeMap::from([(1u64, String::from("a")), (2, String::from("b"))]));
        round_trip(BTreeSet::from([5u64, 9, 11]));
        round_trip((1u8, 2u64, 3.5f64));
    }

    #[test]
    fn encoding_is_deterministic() {
        let m = BTreeMap::from([(3u64, 1u64), (1, 2), (2, 3)]);
        assert_eq!(encode(&m), encode(&m.clone()));
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let bytes = encode(&0xAABBCCDDu32);
        let err = decode::<u32>(&bytes[..2]).unwrap_err();
        assert!(matches!(err, SnapError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&1u8);
        bytes.push(0);
        let err = decode::<u8>(&bytes).unwrap_err();
        assert_eq!(err, SnapError::Trailing { remaining: 1 });
    }

    #[test]
    fn huge_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let err = decode::<Vec<u64>>(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, SnapError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn bad_bool_and_option_tags_are_corrupt() {
        assert!(matches!(decode::<bool>(&[2]), Err(SnapError::Corrupt(_))));
        assert!(matches!(decode::<Option<u8>>(&[9]), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn duplicate_map_keys_are_corrupt() {
        let mut w = Writer::new();
        w.usize(2);
        w.u64(7);
        w.u64(1);
        w.u64(7);
        w.u64(2);
        let err = decode::<BTreeMap<u64, u64>>(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, SnapError::Corrupt(_)), "{err:?}");
    }

    #[test]
    fn header_rejects_foreign_magic_and_version() {
        let mut w = Writer::new();
        write_header(&mut w, 0xD51C_CA17, 3);
        let bytes = w.into_bytes();

        let mut ok = Reader::new(&bytes);
        read_header(&mut ok, 0xD51C_CA17, 3).unwrap();
        ok.finish().unwrap();

        let mut wrong_magic = Reader::new(&bytes);
        assert!(matches!(
            read_header(&mut wrong_magic, 0x0BAD_CAFE, 3),
            Err(SnapError::BadMagic { .. })
        ));

        let mut wrong_version = Reader::new(&bytes);
        assert!(matches!(
            read_header(&mut wrong_version, 0xD51C_CA17, 4),
            Err(SnapError::BadVersion { expected: 4, found: 3 })
        ));
    }

    #[test]
    fn string_must_be_utf8() {
        let mut w = Writer::new();
        w.usize(2);
        w.u8(0xFF);
        w.u8(0xFE);
        let err = decode::<String>(&w.into_bytes()).unwrap_err();
        assert_eq!(err, SnapError::Corrupt("string is not UTF-8"));
    }
}
