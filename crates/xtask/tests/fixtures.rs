//! The auditor's self-test: every rule must fire on its seeded
//! fixture (and only there), markers must suppress and go stale
//! correctly, and the real workspace must audit clean.
//!
//! The fixtures live in `crates/xtask/fixtures/`, which the workspace
//! walker skips, so the seeded violations never pollute a real
//! `cargo run -p xtask -- tidy`.

use std::fs;
use std::path::Path;

use xtask::rules::{self, Finding};
use xtask::{check_files, check_manifest, check_source, RULES};

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// Asserts `findings` is exactly one violation of `rule`.
fn assert_single(findings: &[Finding], rule: &str) {
    let hits: Vec<&Finding> = findings.iter().filter(|f| f.rule == rule).collect();
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one `{rule}` finding, got: {findings:?}"
    );
    assert_eq!(
        findings.len(),
        1,
        "expected no findings besides `{rule}`, got: {findings:?}"
    );
}

#[test]
fn every_source_rule_fires_on_its_seeded_fixture() {
    // (rule, fixture file, pretend in-scope path)
    let cases = [
        (
            "hash-collections",
            "hash_collections.rs",
            "crates/simos/src/fake.rs",
        ),
        ("wall-clock", "wall_clock.rs", "crates/faas/src/fake.rs"),
        (
            "ambient-rng",
            "ambient_rng.rs",
            "crates/workloads/src/fake.rs",
        ),
        ("raw-threads", "raw_threads.rs", "crates/bench/src/fake.rs"),
        ("lossy-casts", "lossy_casts.rs", "crates/v8heap/src/fake.rs"),
        (
            "snapshot-coverage",
            "snapshot_coverage.rs",
            "crates/faas/src/fake.rs",
        ),
        (
            "unchecked-index",
            "unchecked_index.rs",
            "crates/snapshot/src/fake.rs",
        ),
        ("forbid-unsafe", "forbid_unsafe.rs", "crates/fake/src/lib.rs"),
        (
            "shard-isolation",
            "shard_isolation.rs",
            "crates/cluster/src/fake.rs",
        ),
        (
            "shard-isolation",
            "shard_isolation_health.rs",
            "crates/cluster/src/health.rs",
        ),
        (
            "hot-containers",
            "hot_containers.rs",
            "crates/faas/src/fake.rs",
        ),
    ];
    for (rule, file, path) in cases {
        let findings = check_source(path, &fixture(file));
        assert_single(&findings, rule);
    }
}

#[test]
fn seeded_violations_vanish_outside_their_rule_scope() {
    // The same sources are clean where the rule does not apply: a
    // HashMap outside the sim-state crates, a cast outside the
    // accounting modules. (The forbid-unsafe fixture is scanned as a
    // non-root file.)
    let cases = [
        ("hash_collections.rs", "crates/xtask/src/fake.rs"),
        ("lossy_casts.rs", "crates/faas/src/fake.rs"),
        ("snapshot_coverage.rs", "crates/xtask/src/fake.rs"),
        ("unchecked_index.rs", "crates/xtask/src/fake.rs"),
        ("forbid_unsafe.rs", "crates/fake/src/notroot.rs"),
        // Inside shard.rs — the quarantine's one legal home — and in
        // any other crate, the platform surface is fair game.
        ("shard_isolation.rs", "crates/cluster/src/shard.rs"),
        ("shard_isolation.rs", "crates/faas/src/fake.rs"),
        // The cursor peek is legal in shard.rs (its one home) and in
        // any crate outside the cluster quarantine.
        ("shard_isolation_health.rs", "crates/cluster/src/shard.rs"),
        ("shard_isolation_health.rs", "crates/faas/src/fake.rs"),
        ("hot_containers.rs", "crates/xtask/src/fake.rs"),
    ];
    for (file, path) in cases {
        let findings = check_source(path, &fixture(file));
        assert!(
            findings.is_empty(),
            "{file} as {path} should be clean, got: {findings:?}"
        );
    }
}

#[test]
fn path_deps_fires_on_versioned_dependency() {
    let findings = check_manifest("crates/fake/Cargo.toml", &fixture("path_deps.toml"));
    assert_single(&findings, "path-deps");
    assert!(findings[0].message.contains("serde"), "{findings:?}");
}

#[test]
fn shim_surface_flags_only_the_dead_export() {
    let shim_text = fixture("shim_surface.rs");
    let workspace = [(
        "crates/faas/src/fake.rs",
        "fn caller() -> u64 { used_helper() }",
    )];
    let shims = [("crates/shims/fake/src/lib.rs", shim_text.as_str())];
    let findings = xtask::walk::check_shim_surface(&workspace, &shims);
    assert_single(&findings, "shim-surface");
    assert!(findings[0].message.contains("dead_helper"), "{findings:?}");
}

#[test]
fn stale_allow_fires_for_unknown_unjustified_and_unconsumed_markers() {
    let findings = check_source("crates/simos/src/fake.rs", &fixture("stale_allow.rs"));
    assert_eq!(
        findings.len(),
        3,
        "expected three stale-allow findings, got: {findings:?}"
    );
    assert!(findings.iter().all(|f| f.rule == "stale-allow"));
    assert!(findings[0].message.contains("unknown rule"), "{findings:?}");
    assert!(findings[1].message.contains("lacks a"), "{findings:?}");
    assert!(findings[2].message.contains("suppresses nothing"), "{findings:?}");
}

#[test]
fn justified_marker_suppresses_the_violation() {
    let src = "\
// tidy:allow(hash-collections) -- never iterated, lookups only
use std::collections::HashMap;
pub type T = HashMap<u64, u64>;
";
    // Marker covers its own line and the next; the second HashMap
    // token on the `type` line is NOT covered.
    let findings = check_source("crates/simos/src/fake.rs", src);
    assert_single(&findings, "hash-collections");
    assert_eq!(findings[0].line, 3, "{findings:?}");
}

#[test]
fn every_rule_in_the_catalogue_has_family_and_hint() {
    assert_eq!(RULES.len(), 15);
    for r in RULES {
        assert!(
            ["determinism", "robustness", "hygiene", "performance"].contains(&r.family),
            "{} has odd family {}",
            r.name,
            r.family
        );
        assert!(!r.summary.is_empty() && !r.hint.is_empty(), "{}", r.name);
        assert!(rules::rule(r.name).is_some());
    }
}

#[test]
fn panic_reachability_fires_through_the_call_graph() {
    let src = fixture("panic_reachability.rs");
    let findings = check_files(&[("crates/faas/src/platform.rs", &src)]);
    assert_single(&findings, "panic-reachability");
    assert!(findings[0].message.contains(".unwrap()"), "{findings:?}");
    assert!(
        findings[0].message.contains("try_run_until"),
        "finding should carry the call chain from the root: {findings:?}"
    );
}

#[test]
fn determinism_dataflow_fires_on_digest_feeding_float_accum() {
    let src = fixture("determinism_dataflow.rs");
    let findings = check_files(&[("crates/gc-core/src/fake.rs", &src)]);
    assert_single(&findings, "determinism-dataflow");
    assert!(findings[0].message.contains("digest"), "{findings:?}");
}

#[test]
fn barrier_discipline_fires_outside_the_round_drain() {
    let src = fixture("barrier_discipline.rs");
    let findings = check_files(&[("crates/cluster/src/steal.rs", &src)]);
    assert_single(&findings, "barrier-discipline");
    assert!(findings[0].message.contains("sneak_work"), "{findings:?}");
}

#[test]
fn graph_rules_respect_their_scopes() {
    // The same seeded sources are clean where the analyses do not
    // apply: harness code is graph-exempt, non-digest crates are
    // outside the dataflow scope, and shard.rs owns the barrier.
    let cases = [
        ("panic_reachability.rs", "crates/bench/src/fake.rs"),
        ("determinism_dataflow.rs", "crates/parallel/src/fake.rs"),
        ("barrier_discipline.rs", "crates/faas/src/fake.rs"),
    ];
    for (file, path) in cases {
        let src = fixture(file);
        let findings = check_files(&[(path, &src)]);
        assert!(
            findings.is_empty(),
            "{file} as {path} should be clean, got: {findings:?}"
        );
    }
    // The sanctioned owner of the shard drain may call `advance`.
    let sanctioned = fixture("barrier_discipline.rs").replace("sneak_work", "run_round");
    let findings = check_files(&[("crates/cluster/src/fake.rs", &sanctioned)]);
    assert!(findings.is_empty(), "run_round owns the barrier: {findings:?}");
}

#[test]
fn justified_marker_suppresses_a_graph_finding() {
    let src = fixture("panic_reachability.rs").replace(
        "slots.first().unwrap().id",
        "// tidy:allow(panic-reachability) -- fixture invariant\n    slots.first().unwrap().id",
    );
    let findings = check_files(&[("crates/faas/src/platform.rs", &src)]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn the_real_workspace_audits_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let findings = xtask::tidy(&root).expect("tidy runs");
    assert!(
        findings.is_empty(),
        "workspace has tidy violations:\n{}",
        findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
