//! Incremental-cache behaviour against the real workspace: a cold run
//! populates the cache, a warm run hits it for every file and is
//! substantially faster, and editing one file invalidates exactly
//! that file. One test function: the steps share (and briefly
//! mutate) the real workspace, so they must not run concurrently.

use std::fs;
use std::path::{Path, PathBuf};

use xtask::{tidy_with, RunOpts};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn cache_invalidation_and_warm_speedup() {
    let root = workspace_root();
    let cache = root.join("target").join("tidy-cache-test.tsv");
    let _ = fs::remove_file(&cache);
    let opts = RunOpts { cache_file: Some(cache.clone()) };

    #[allow(clippy::disallowed_methods)]
    // tidy:allow(wall-clock) -- this test measures the analyzer's own speed, not simulation time
    let t0 = std::time::Instant::now();
    let cold = tidy_with(&root, &opts).expect("cold run");
    let cold_elapsed = t0.elapsed();
    assert!(cold.findings.is_empty(), "workspace must be clean: {:?}", cold.findings);
    assert_eq!(cold.cache_hits, 0, "cold run starts from nothing");
    assert_eq!(cold.cache_misses, cold.files);

    #[allow(clippy::disallowed_methods)]
    // tidy:allow(wall-clock) -- this test measures the analyzer's own speed, not simulation time
    let t1 = std::time::Instant::now();
    let warm = tidy_with(&root, &opts).expect("warm run");
    let warm_elapsed = t1.elapsed();
    assert_eq!(warm.cache_misses, 0, "nothing changed, nothing re-analyzed");
    assert_eq!(warm.cache_hits, warm.files);
    assert_eq!(warm.findings, cold.findings, "cache must not change results");
    assert!(
        warm_elapsed * 3 <= cold_elapsed,
        "warm run ({warm_elapsed:?}) must be at least 3x faster than cold ({cold_elapsed:?})"
    );

    // Append one comment line to one source: exactly one miss, and
    // the findings are unchanged (a comment means nothing).
    let victim = root.join("crates").join("parallel").join("src").join("lib.rs");
    let original = fs::read_to_string(&victim).expect("read victim");
    let edited = format!("{original}// cache probe\n");
    fs::write(&victim, &edited).expect("edit victim");
    let result = tidy_with(&root, &opts);
    fs::write(&victim, &original).expect("restore victim");
    let after = result.expect("post-edit run");
    assert_eq!(after.cache_misses, 1, "only the edited file re-analyzes");
    assert_eq!(after.cache_hits, after.files - 1);
    assert_eq!(after.findings, cold.findings, "a trailing comment changes nothing");

    let _ = fs::remove_file(&cache);
}
