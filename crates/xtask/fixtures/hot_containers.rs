//! Seeded violation: a heap event queue in a sim-state crate.
//! Scanned by the self-test as `crates/faas/src/fake.rs`.

pub struct InstanceId(pub u64);

/// The commented-out heap and the test-module id-keyed map below must
/// NOT count; only the real `queue` field may be flagged.
// type Shadow = BinaryHeap<u64>;
pub struct Fake {
    queue: std::collections::BinaryHeap<u64>,
    // A BTreeMap keyed on anything else is fine.
    by_name: std::collections::BTreeMap<String, u64>,
}

#[cfg(test)]
mod tests {
    use super::InstanceId;
    // Test code is exempt: oracles may use the slow containers.
    type Lookup = std::collections::BTreeMap<InstanceId, u64>;
}
