//! Seeded violation: a raw thread spawn outside bench::parallel.
//! Scanned by the self-test as `crates/bench/src/fake.rs`.

pub fn fan_out() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}
