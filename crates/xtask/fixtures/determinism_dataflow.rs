//! Seeded violation: a canonical-byte sink (`digest`) transitively
//! calls an f64 accumulation over unordered map iteration. The
//! self-test scans this as a gc-core source, which is in the
//! determinism-dataflow scope.

impl HeapStats {
    pub fn digest(&self) -> u64 {
        self.total_load().to_bits()
    }

    fn total_load(&self) -> f64 {
        let mut acc = 0.0f64;
        for v in self.per_class.values() {
            acc += v;
        }
        acc
    }
}
