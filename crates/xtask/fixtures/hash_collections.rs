//! Seeded violation: a hash collection in a sim-state crate.
//! Scanned by the self-test as `crates/simos/src/fake.rs`.

use std::collections::BTreeMap;

/// The commented-out `HashMap` below must NOT count; only the real
/// token in `Table` may be flagged.
// type Shadow = HashMap<u64, u64>;
pub struct Table {
    by_id: std::collections::HashMap<u64, u64>,
    ordered: BTreeMap<u64, u64>,
}
