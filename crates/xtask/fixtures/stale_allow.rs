//! Seeded stale-allow violations, one of each kind:
//! an allow naming a rule that does not exist, an allow with no
//! justification, and a justified allow whose line has no violation.
//! Scanned by the self-test as `crates/simos/src/fake.rs`.

// tidy:allow(no-such-rule) -- the rule name is bogus
pub const A: u64 = 1;

// tidy:allow(hash-collections)
pub const B: u64 = 2;

// tidy:allow(wall-clock) -- justified, but nothing here violates it
pub const C: u64 = 3;
