// Fixture: one bare slice index in a (pretend) snapshot decode path.
// `.get()` use and slice *types* must not fire.

pub fn decode_len(bytes: &[u8]) -> Option<u64> {
    // Fine: checked access with a typed fallback.
    let first = *bytes.get(0)?;
    let _ = first;
    // Violation: panics when `bytes` is shorter than 8.
    let raw: [u8; 8] = bytes[..8].try_into().ok()?;
    Some(u64::from_le_bytes(raw))
}
