//! Seeded violation: cluster code outside `shard.rs` reaching into a
//! shard's platform internals.
//! Scanned by the self-test as `crates/cluster/src/fake.rs`.

/// The commented-out `restore_chain` call below must NOT count; only
/// the real `Platform` token in the signature may be flagged.
// fn shadow(p: &mut faas::Platform) { let _ = p.restore_chain(&[]); }
pub fn peek(p: &faas::Platform) -> u64 {
    p.frozen_count()
}
