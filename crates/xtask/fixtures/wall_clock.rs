//! Seeded violation: a wall-clock read in a simulation path.
//! Scanned by the self-test as `crates/faas/src/fake.rs`.

/// The string literal and the doc text mentioning Instant::now must
/// not count; only the real call does.
pub fn stamp() -> std::time::Instant {
    let _label = "Instant::now";
    std::time::Instant::now()
}
