//! Seeded violation: a bare `as` integer cast in accounting code.
//! Scanned by the self-test as `crates/v8heap/src/fake.rs`.

pub fn charge(bytes: u64, share: f64) -> u32 {
    // `as f64` is allowed (derived reporting); the `as u32` is not.
    let scaled = bytes as f64 * share;
    scaled.round() as u32
}
