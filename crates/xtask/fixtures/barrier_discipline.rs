//! Seeded violation: a cluster-engine method outside the barrier
//! protocol drives `Shard::advance` directly. The self-test scans
//! this as a cluster source that is not `shard.rs`.

impl Cluster {
    pub fn sneak_work(&mut self, barrier: SimTime) {
        for shard in &mut self.shards {
            shard.advance(barrier);
        }
    }
}
