//! Seeded violation: a helper two hops below the platform event drain
//! unwraps. The self-test scans this as `crates/faas/src/platform.rs`
//! so both declared `Platform` roots resolve.

impl Platform {
    pub fn try_run_until(&mut self) -> Result<(), PlatformError> {
        self.drain_one();
        Ok(())
    }

    pub fn run_until(&mut self) {
        let _ = self.try_run_until();
    }

    fn drain_one(&mut self) {
        hot_helper(&mut self.slots);
    }
}

fn hot_helper(slots: &mut Vec<Slot>) -> u64 {
    slots.first().unwrap().id
}
