//! Seeded violation: a crate root missing `#![forbid(unsafe_code)]`.
//! Scanned by the self-test as `crates/fake/src/lib.rs`.

pub fn answer() -> u64 {
    42
}
