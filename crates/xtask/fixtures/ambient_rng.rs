//! Seeded violation: ambient, unseeded randomness.
//! Scanned by the self-test as `crates/workloads/src/fake.rs`.

pub fn roll() -> u64 {
    // thread_rng in this comment must not count.
    let mut rng = rand::thread_rng();
    rng.gen()
}
