//! Seeded violation: the health/failover layer peeking at a shard's
//! event cursor instead of reading the barrier report.
//! Scanned by the self-test as `crates/cluster/src/health.rs`.

/// `events_handled` is shard.rs's private platform surface; a health
/// probe must judge liveness from the reports the barrier delivers.
/// The `checkpoint_every` ident below must NOT count — exact-token
/// matching only, not substrings.
pub fn probe_liveness(shard: &crate::shard::Shard, checkpoint_every: u64) -> bool {
    shard.platform().events_handled() % checkpoint_every == 0
}
