//! Seeded violation: a shim export nothing references. Fed to the
//! shim-surface pass as `crates/shims/fake/src/lib.rs` against a tiny
//! pretend workspace that uses `used_helper` but not `dead_helper`.

pub fn used_helper() -> u64 {
    7
}

pub fn dead_helper() -> u64 {
    13
}
