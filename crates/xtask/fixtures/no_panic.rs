//! Seeded violation: an `.unwrap()` in a must-degrade hot path.
//! Scanned by the self-test as `crates/desiccant/src/fake.rs`.

pub fn pick(xs: &[u64]) -> u64 {
    // An unwrap inside #[cfg(test)] code is fine; only this one in
    // non-test code may be flagged.
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwrap_is_exempt() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
