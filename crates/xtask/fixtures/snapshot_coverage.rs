//! Seeded violation: a Snapshot impl whose `..` rest pattern lets a
//! new field slip past the codec unserialized. The `Counters` impl is
//! compliant and must not fire.
//! Scanned by the self-test as `crates/faas/src/fake.rs`.

use snapshot::{Reader, SnapError, Snapshot, Writer};

pub struct Counters {
    hits: u64,
    misses: u64,
}

impl Snapshot for Counters {
    fn snap(&self, w: &mut Writer) {
        // Exhaustive: adding a field to Counters breaks this line.
        let Self { hits, misses } = self;
        w.u64(*hits);
        w.u64(*misses);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Counters, SnapError> {
        Ok(Counters {
            hits: r.u64()?,
            misses: r.u64()?,
        })
    }
}

pub struct Gauge {
    value: u64,
    ceiling: u64,
}

impl snapshot::Snapshot for Gauge {
    fn snap(&self, w: &mut Writer) {
        // Rest pattern: a third field would be silently dropped.
        let Self { value, .. } = self;
        w.u64(*value);
    }
    fn restore(r: &mut Reader<'_>) -> Result<Gauge, SnapError> {
        let value = r.u64()?;
        Ok(Gauge { value, ceiling: 0 })
    }
}
