//! `cargo xtask tidy`: a workspace determinism-and-invariant auditor.
//!
//! Everything this repro produces — the figure harnesses, the chaos
//! runs, the golden-replay digest — rests on the simulation being
//! bit-deterministic and panic-free under injected faults. Nothing
//! *statically* prevented a PR from reintroducing nondeterminism
//! (HashMap iteration order leaking into selection, `Instant::now` in
//! a sim path) or panics in platform event handling; this crate is
//! that static gate. See `EXPERIMENTS.md` § "Static analysis gates"
//! for the rule catalogue and the exception workflow.
//!
//! The crate is std-only by necessity (no crates.io access), so it is
//! modelled on rustc's `tidy`: a small lexer blanks comments and
//! literals, then rule passes scan real tokens. Run it with
//! `cargo run -p xtask -- tidy` (tier1.sh does, before the tests).

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod walk;

pub use rules::{check_manifest, check_source, Finding, Rule, RULES};

use std::path::Path;

/// Runs the full audit over `root`; findings come back sorted.
pub fn tidy(root: &Path) -> Result<Vec<Finding>, String> {
    walk::run(root)
}
