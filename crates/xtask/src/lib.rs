//! `cargo xtask tidy`: a workspace determinism-and-invariant auditor.
//!
//! Everything this repro produces — the figure harnesses, the chaos
//! runs, the golden-replay digest — rests on the simulation being
//! bit-deterministic and panic-free under injected faults. Nothing
//! *statically* prevented a PR from reintroducing nondeterminism
//! (HashMap iteration order leaking into selection, `Instant::now` in
//! a sim path) or panics in platform event handling; this crate is
//! that static gate. See `EXPERIMENTS.md` § "Static analysis gates"
//! for the rule catalogue and the exception workflow.
//!
//! The crate is std-only by necessity (no crates.io access), so it is
//! modelled on rustc's `tidy`: a small lexer blanks comments and
//! literals ([`lexer`]), token rule passes scan one file at a time
//! ([`rules`]), and — beyond what rustc's tidy does — an item parser
//! ([`parse`]) feeds a workspace call graph ([`graph`]) whose
//! analyses see *across* files: panic-reachability from hot-path
//! roots, determinism dataflow into canonical bytes, and barrier
//! discipline in the cluster layer. An incremental content-hash cache
//! ([`cache`]) keeps warm runs fast. Run it with
//! `cargo run -p xtask -- tidy` (tier1.sh does, before the tests).

#![forbid(unsafe_code)]

pub mod cache;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod walk;

pub use rules::{check_manifest, check_source, Finding, Rule, RULES};
pub use walk::{check_files, RunOpts, TidyReport};

use std::path::Path;

/// Runs the full audit over `root` with no cache; findings come back
/// sorted by (path, line, rule, message).
pub fn tidy(root: &Path) -> Result<Vec<Finding>, String> {
    walk::run(root)
}

/// Runs the full audit with explicit options (cache location).
pub fn tidy_with(root: &Path, opts: &RunOpts) -> Result<TidyReport, String> {
    walk::run_with(root, opts)
}
