//! CLI driver: `cargo run -p xtask -- tidy [flags]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{RunOpts, TidyReport, RULES};

const USAGE: &str = "usage: cargo run -p xtask -- <command>

commands:
  tidy [flags]   audit the workspace; exit 1 on any violation
  rules          list every rule with its family and rationale

tidy flags:
  --fix-hints        print the suggested replacement under each finding
  --root DIR         audit DIR instead of this workspace
  --format text|json findings format (default text)
  --out FILE         also write the findings (in --format) to FILE
  --no-cache         disable the incremental cache (cold run)
  --cache-file FILE  cache location (default target/tidy-cache.tsv under the root)
  --budget-ms N      exit 3 if the run exceeds N milliseconds

exit codes: 0 clean, 1 findings, 2 usage/io error, 3 over time budget";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("tidy") => tidy(&args[1..]),
        Some("rules") => {
            for r in RULES {
                println!("{:<22} [{}] {}", r.name, r.family, r.summary);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn tidy(flags: &[String]) -> ExitCode {
    let mut fix_hints = false;
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut out_file: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut cache_file: Option<PathBuf> = None;
    let mut budget_ms: Option<u64> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--fix-hints" => fix_hints = true,
            "--no-cache" => no_cache = true,
            "--root" | "--format" | "--out" | "--cache-file" | "--budget-ms" => {
                let Some(value) = it.next() else {
                    eprintln!("{flag} needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                match flag.as_str() {
                    "--root" => root = Some(PathBuf::from(value)),
                    "--out" => out_file = Some(PathBuf::from(value)),
                    "--cache-file" => cache_file = Some(PathBuf::from(value)),
                    "--format" => {
                        if value != "text" && value != "json" {
                            eprintln!("--format must be text or json\n{USAGE}");
                            return ExitCode::from(2);
                        }
                        format = value.clone();
                    }
                    "--budget-ms" => match value.parse() {
                        Ok(ms) => budget_ms = Some(ms),
                        Err(_) => {
                            eprintln!("--budget-ms needs an integer\n{USAGE}");
                            return ExitCode::from(2);
                        }
                    },
                    _ => unreachable!(),
                }
            }
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // Default: the workspace this binary was built from.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });
    let opts = RunOpts {
        cache_file: if no_cache {
            None
        } else {
            Some(cache_file.unwrap_or_else(|| root.join("target").join("tidy-cache.tsv")))
        },
    };

    #[allow(clippy::disallowed_methods)]
    // tidy:allow(wall-clock) -- measuring the analyzer itself, not simulation time
    let started = std::time::Instant::now();
    let report = match xtask::tidy_with(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tidy: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = started.elapsed().as_millis();

    let rendered = match format.as_str() {
        "json" => render_json(&report),
        _ => render_text(&report, fix_hints),
    };
    print!("{rendered}");
    if let Some(out) = out_file {
        if let Some(dir) = out.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&out, &rendered) {
            eprintln!("tidy: write {}: {e}", out.display());
            return ExitCode::from(2);
        }
    }
    eprintln!(
        "tidy: {} file(s), {} cache hit(s), {} miss(es), {elapsed_ms} ms",
        report.files, report.cache_hits, report.cache_misses
    );
    if let Some(budget) = budget_ms {
        if elapsed_ms > u128::from(budget) {
            eprintln!("tidy: exceeded --budget-ms {budget} ({elapsed_ms} ms)");
            return ExitCode::from(3);
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn render_text(report: &TidyReport, fix_hints: bool) -> String {
    let mut out = String::new();
    if report.findings.is_empty() {
        out.push_str(&format!("tidy: OK ({} rules enforced)\n", RULES.len()));
        return out;
    }
    for f in &report.findings {
        out.push_str(&format!("{}:{}: [{}] {}\n", f.path, f.line, f.rule, f.message));
        if fix_hints && !f.hint.is_empty() {
            out.push_str(&format!("    fix: {}\n", f.hint));
        }
    }
    let files: std::collections::BTreeSet<&str> =
        report.findings.iter().map(|f| f.path.as_str()).collect();
    out.push_str(&format!(
        "tidy: {} violation(s) across {} file(s)\n",
        report.findings.len(),
        files.len()
    ));
    out
}

/// Renders findings as a deterministic JSON document. Deliberately
/// excludes timing and cache statistics so artifacts from identical
/// trees are byte-identical and diff cleanly.
fn render_json(report: &TidyReport) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"hint\": {}}}",
            json_str(&f.path),
            f.line,
            json_str(f.rule),
            json_str(&f.message),
            json_str(f.hint)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"total\": {},\n  \"rules_enforced\": {}\n}}\n",
        report.findings.len(),
        RULES.len()
    ));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
