//! CLI driver: `cargo run -p xtask -- tidy [--fix-hints] [--root DIR]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::RULES;

const USAGE: &str = "usage: cargo run -p xtask -- <command>

commands:
  tidy [--fix-hints] [--root DIR]   audit the workspace; exit 1 on any violation
  rules                             list every rule with its family and rationale

tidy flags:
  --fix-hints   print the suggested replacement under each finding
  --root DIR    audit DIR instead of this workspace";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("tidy") => tidy(&args[1..]),
        Some("rules") => {
            for r in RULES {
                println!("{:<18} [{}] {}", r.name, r.family, r.summary);
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn tidy(flags: &[String]) -> ExitCode {
    let mut fix_hints = false;
    let mut root: Option<PathBuf> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--fix-hints" => fix_hints = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // Default: the workspace this binary was built from.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("..")
            .join("..")
    });

    let findings = match xtask::tidy(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tidy: {e}");
            return ExitCode::from(2);
        }
    };
    if findings.is_empty() {
        println!("tidy: OK ({} rules enforced)", RULES.len());
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
        if fix_hints && !f.hint.is_empty() {
            println!("    fix: {}", f.hint);
        }
    }
    let files: std::collections::BTreeSet<&str> =
        findings.iter().map(|f| f.path.as_str()).collect();
    println!(
        "tidy: {} violation(s) across {} file(s)",
        findings.len(),
        files.len()
    );
    ExitCode::FAILURE
}
