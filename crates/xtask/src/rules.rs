//! The tidy rule passes.
//!
//! Every rule scans the blanked token text produced by
//! [`crate::lexer`]; rule applicability is decided from the
//! workspace-relative path (forward slashes). Three families:
//!
//! * **determinism** — `hash-collections`, `wall-clock`, `ambient-rng`,
//!   `raw-threads`, plus the call-graph rules `determinism-dataflow`
//!   and `barrier-discipline` (see [`crate::graph`]): nothing
//!   order-sensitive or wall-clock-dependent may leak into simulation
//!   state, selection, or canonical byte production.
//! * **robustness** — `panic-reachability` (call-graph, see
//!   [`crate::graph`]), `lossy-casts`, `snapshot-coverage`: nothing a
//!   hot-path root can reach may panic; memory accounting must use
//!   checked conversions; checkpoint codecs must destructure every
//!   field they serialize.
//! * **hygiene** — `forbid-unsafe`, `path-deps`, `shim-surface`: every
//!   crate forbids `unsafe`, manifests carry only path dependencies,
//!   vendored shims export nothing dead.
//! * **performance** — `hot-containers`: sim-state crates may not
//!   reintroduce `BinaryHeap` event queues or `BTreeMap<InstanceId, _>`
//!   per-event lookups; the calendar queue and slab arenas replaced
//!   them for a reason.
//!
//! A violation is suppressed by an inline marker on the same or the
//! preceding line:
//!
//! ```text
//! // tidy:allow(<rule>) -- <justification>
//! ```
//!
//! The justification is mandatory, the rule name must exist, and a
//! marker that suppresses nothing is itself an error (`stale-allow`),
//! so the allowlist cannot rot.

use crate::lexer::{self, AllowSite};

/// One rule's name, summary, and fix hint.
pub struct Rule {
    pub name: &'static str,
    pub family: &'static str,
    pub summary: &'static str,
    pub hint: &'static str,
}

/// Every rule tidy knows about (marker names are validated against
/// this list).
pub const RULES: &[Rule] = &[
    Rule {
        name: "hash-collections",
        family: "determinism",
        summary: "HashMap/HashSet in sim-state crates (iteration order leaks)",
        hint: "use BTreeMap/BTreeSet or a sorted Vec; if iteration is provably \
               order-insensitive, add `// tidy:allow(hash-collections) -- why`",
    },
    Rule {
        name: "wall-clock",
        family: "determinism",
        summary: "Instant::now/SystemTime::now outside bench::parallel",
        hint: "use the simulated clock (simos::SimTime); wall time makes replays \
               non-reproducible",
    },
    Rule {
        name: "ambient-rng",
        family: "determinism",
        summary: "thread_rng (ambient, unseeded randomness)",
        hint: "thread a seeded rng (rand::rngs::StdRng::seed_from_u64) through the caller",
    },
    Rule {
        name: "raw-threads",
        family: "determinism",
        summary: "std::thread::{spawn,scope} outside bench::parallel",
        hint: "use bench::parallel::run_indexed, which preserves output ordering \
               at any --jobs N",
    },
    Rule {
        name: "panic-reachability",
        family: "robustness",
        summary: "panic!/unwrap/expect/bare-index transitively reachable from a hot-path root",
        hint: "return a typed error (faas::PlatformError / simos::SimError / SnapError), \
               restructure with let-else / match / .get(), or justify the invariant with \
               `// tidy:allow(panic-reachability) -- why`",
    },
    Rule {
        name: "determinism-dataflow",
        family: "determinism",
        summary: "order-sensitive f64 accumulation or unordered iteration feeding canonical bytes",
        hint: "fix the reduction order (sorted keys, Vec in canonical order, total_cmp) or \
               prove the order invariant with `// tidy:allow(determinism-dataflow) -- why`",
    },
    Rule {
        name: "barrier-discipline",
        family: "determinism",
        summary: "shard-mutating call outside the barrier round's drain",
        hint: "route shard mutation through `Cluster::run_round` (or the sanctioned \
               forwarding method); mid-round mutation breaks the byte-identical \
               replay guarantee",
    },
    Rule {
        name: "lossy-casts",
        family: "robustness",
        summary: "bare `as` integer cast in memory-accounting code",
        hint: "use simos::cast::{to_u64, to_usize, to_u32, to_u16, from_f64} or \
               T::try_from — `as` silently truncates",
    },
    Rule {
        name: "snapshot-coverage",
        family: "robustness",
        summary: "Snapshot impl without exhaustive field destructuring",
        hint: "destructure every field (`let Self { a, b } = self;` / `match self`) so \
               adding a field is a compile error at the codec instead of silent state loss",
    },
    Rule {
        name: "unchecked-index",
        family: "robustness",
        summary: "bare `[...]` slice indexing in snapshot decode paths",
        hint: "decode paths face arbitrary bytes: use .get()/.get_mut() and return a \
               typed SnapError; for provably-in-bounds indexes add \
               `// tidy:allow(unchecked-index) -- why`",
    },
    Rule {
        name: "hot-containers",
        family: "performance",
        summary: "BinaryHeap or BTreeMap<InstanceId, _> on a sim-state hot path",
        hint: "use faas::queue::EventQueue (calendar queue) for scheduling and \
               faas::slab::{Slab, IdMap} for per-instance state; if the container is \
               provably off the per-event path, add `// tidy:allow(hot-containers) -- why`",
    },
    Rule {
        name: "shard-isolation",
        family: "hygiene",
        summary: "cluster code outside shard.rs touching Platform internals",
        hint: "the barrier protocol is the only legal cross-shard channel: route the \
               access through cluster::shard::Shard's API (advance/report/state_bytes) \
               instead of reaching into the platform",
    },
    Rule {
        name: "forbid-unsafe",
        family: "hygiene",
        summary: "crate root missing #![forbid(unsafe_code)]",
        hint: "add `#![forbid(unsafe_code)]` at the top of the crate root",
    },
    Rule {
        name: "path-deps",
        family: "hygiene",
        summary: "non-path dependency in a Cargo.toml",
        hint: "the build environment is offline: vendor the code under crates/shims \
               and depend on it by path",
    },
    Rule {
        name: "shim-surface",
        family: "hygiene",
        summary: "vendored shim exports an item nothing references",
        hint: "delete the item (or demote it from pub); shims carry exactly the API \
               subset the workspace uses",
    },
];

/// Looks a rule up by name.
pub fn rule(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

/// Interns a rule name back to its `&'static str` form (the incremental
/// cache stores names as text). `stale-allow` is the one finding kind
/// that is not itself a catalogued rule.
pub fn static_rule_name(name: &str) -> Option<&'static str> {
    if name == "stale-allow" {
        return Some("stale-allow");
    }
    rule(name).map(|r| r.name)
}

/// One violation (or marker problem) the auditor found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
    pub hint: &'static str,
}

impl Finding {
    fn new(path: &str, line: usize, rule: &'static str, message: String) -> Finding {
        let hint = crate::rules::rule(rule).map_or("", |r| r.hint);
        Finding {
            path: path.to_string(),
            line,
            rule,
            message,
            hint,
        }
    }

    /// Public constructor for the cross-file passes (`crate::graph`).
    pub fn raw(path: &str, line: usize, rule: &'static str, message: String) -> Finding {
        Finding::new(path, line, rule, message)
    }
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

/// Crates whose state feeds simulation outcomes: HashMap/HashSet
/// iteration order there can leak into stats or selection.
const SIM_STATE_CRATES: &[&str] = &[
    "simos",
    "faas",
    "desiccant",
    "hotspot",
    "v8heap",
    "cpython",
    "goruntime",
    "runtime",
    "azure-trace",
    "cluster",
];

/// Files allowed to touch real threads and wall clocks (the scoped
/// worker pool whose output is byte-identical at any job count, plus
/// its historical re-export site in bench).
const THREAD_EXEMPT: &[&str] = &[
    "crates/parallel/src/lib.rs",
    "crates/bench/src/parallel.rs",
];

/// The quarantine boundary of the cluster crate: every module except
/// `shard.rs` must treat a shard as opaque. These idents are the
/// platform surface `shard.rs` wraps; seeing one elsewhere in the
/// crate means the barrier protocol has been bypassed.
const SHARD_INTERNAL_IDENTS: &[&str] = &[
    "Platform",
    "submit",
    "run_until",
    "try_run_until",
    "checkpoint_base",
    "checkpoint_delta",
    "restore_chain",
    "arm_kill",
    "disarm_kill",
    "checkpoint",
    "events_handled",
    "frozen_by_function",
    "request_totals",
];

fn in_shard_isolation_scope(path: &str) -> bool {
    path.starts_with("crates/cluster/src/") && path != "crates/cluster/src/shard.rs"
}

/// Memory-accounting modules where a silently-truncating `as` cast can
/// corrupt byte totals: simos::mem, the stats modules, and the four
/// managed-heap crates.
const CAST_FILES: &[&str] = &["crates/simos/src/mem.rs", "crates/faas/src/stats.rs"];
const CAST_DIRS: &[&str] = &[
    "crates/hotspot/src/",
    "crates/v8heap/src/",
    "crates/cpython/src/",
    "crates/goruntime/src/",
];

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Is `path` inside a crate whose state feeds simulation outcomes?
/// (Public: the graph analyses share this scoping.)
pub fn in_sim_state_crate(path: &str) -> bool {
    SIM_STATE_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

fn thread_exempt(path: &str) -> bool {
    THREAD_EXEMPT.contains(&path)
}

fn in_cast_scope(path: &str) -> bool {
    CAST_FILES.contains(&path) || CAST_DIRS.iter().any(|d| path.starts_with(d))
}

/// Crates whose `Snapshot` impls feed the platform checkpoint but sit
/// outside [`SIM_STATE_CRATES`]: the heap-graph and workload-model
/// crates.
const SNAPSHOT_EXTRA_DIRS: &[&str] = &["crates/gc-core/src/", "crates/workloads/src/"];

fn in_snapshot_scope(path: &str) -> bool {
    in_sim_state_crate(path) || SNAPSHOT_EXTRA_DIRS.iter().any(|d| path.starts_with(d))
}

/// Decode paths that face arbitrary (possibly corrupt) bytes: the
/// snapshot crate's flat codec and framed containers. A bare `[` index
/// there turns a corrupt length into a panic instead of a typed
/// `SnapError`.
const UNCHECKED_INDEX_DIRS: &[&str] = &["crates/snapshot/src/"];

fn in_unchecked_index_scope(path: &str) -> bool {
    UNCHECKED_INDEX_DIRS.iter().any(|d| path.starts_with(d))
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`: lib roots,
/// bin roots, and `src/bin/*` targets (tests/examples/benches are dev
/// targets and cannot ship unsafe into the library).
fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs") || path.ends_with("src/main.rs") || path.contains("/src/bin/")
}

// ---------------------------------------------------------------------------
// Test-region masking
// ---------------------------------------------------------------------------

/// Marks the lines belonging to `#[cfg(test)]` / `#[test]` items, so
/// the robustness rules can exempt test code.
pub fn test_mask(blanked: &str) -> Vec<bool> {
    let starts = lexer::line_starts(blanked);
    // 1-based line indexing: slot 0 is unused padding.
    let mut mask = vec![false; starts.len() + 1];
    let bytes = blanked.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'#' {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 1;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if bytes.get(j) != Some(&b'[') {
            i += 1;
            continue;
        }
        let mut depth = 0usize;
        let content_start = j + 1;
        let mut k = j;
        while k < bytes.len() {
            match bytes[k] {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let content = &blanked[content_start..k.min(bytes.len())];
        if !is_test_attr(content) {
            i = k + 1;
            continue;
        }
        // Consume any further attributes, then the item itself: up to a
        // top-level `;`, or through a balanced `{…}` block.
        let mut m = k + 1;
        loop {
            while m < bytes.len() && bytes[m].is_ascii_whitespace() {
                m += 1;
            }
            if bytes.get(m) == Some(&b'#') {
                while m < bytes.len() && bytes[m] != b']' {
                    m += 1;
                }
                m += 1;
                continue;
            }
            break;
        }
        let mut brace = 0isize;
        while m < bytes.len() {
            match bytes[m] {
                b'{' => brace += 1,
                b'}' => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                b';' if brace == 0 => break,
                _ => {}
            }
            m += 1;
        }
        let end = m.min(bytes.len().saturating_sub(1));
        let first = lexer::line_of(&starts, attr_start);
        let last = lexer::line_of(&starts, end);
        for l in first..=last.min(mask.len() - 1) {
            mask[l] = true;
        }
        i = m + 1;
    }
    mask
}

fn is_test_attr(content: &str) -> bool {
    let c: String = content.split_whitespace().collect();
    if c == "test" {
        return true;
    }
    c.starts_with("cfg") && c.contains("test") && !c.contains("not(test")
}

fn is_test_line(mask: &[bool], line: usize) -> bool {
    mask.get(line).copied().unwrap_or(false)
}

// ---------------------------------------------------------------------------
// Token scanning helpers
// ---------------------------------------------------------------------------

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Yields `(start, end)` ranges of identifier-ish tokens.
fn idents(text: &str) -> Vec<(usize, usize)> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident_byte(bytes[i]) && (i == 0 || !is_ident_byte(bytes[i - 1])) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            out.push((start, i));
        } else {
            i += 1;
        }
    }
    out
}

fn next_nonspace(bytes: &[u8], mut i: usize) -> Option<(usize, u8)> {
    while i < bytes.len() {
        if !bytes[i].is_ascii_whitespace() {
            return Some((i, bytes[i]));
        }
        i += 1;
    }
    None
}

/// After an ident ending at `end`, matches `:: segment` (with optional
/// whitespace) and returns the segment.
fn path_segment_after(text: &str, end: usize) -> Option<&str> {
    let bytes = text.as_bytes();
    let (p, b) = next_nonspace(bytes, end)?;
    if b != b':' || bytes.get(p + 1) != Some(&b':') {
        return None;
    }
    let (s, b2) = next_nonspace(bytes, p + 2)?;
    if !is_ident_byte(b2) {
        return None;
    }
    let mut e = s;
    while e < bytes.len() && is_ident_byte(bytes[e]) {
        e += 1;
    }
    Some(&text[s..e])
}

/// After an ident ending at `end`, matches `< Ident` (or `::< Ident`,
/// the turbofish) and returns the leading ident of the first generic
/// argument.
fn first_generic_arg(text: &str, end: usize) -> Option<&str> {
    let bytes = text.as_bytes();
    let (mut p, mut b) = next_nonspace(bytes, end)?;
    if b == b':' && bytes.get(p + 1) == Some(&b':') {
        (p, b) = next_nonspace(bytes, p + 2)?;
    }
    if b != b'<' {
        return None;
    }
    let (s, b2) = next_nonspace(bytes, p + 1)?;
    if !is_ident_byte(b2) {
        return None;
    }
    let mut e = s;
    while e < bytes.len() && is_ident_byte(bytes[e]) {
        e += 1;
    }
    Some(&text[s..e])
}

// ---------------------------------------------------------------------------
// Source checking
// ---------------------------------------------------------------------------

/// Runs every applicable per-file rule over one source file and
/// applies its allow markers. `path` is the workspace-relative path
/// with forward slashes. (The production pipeline in [`crate::walk`]
/// uses [`scan_blanked`] instead so that graph findings and per-file
/// findings share one allow-application pass.)
pub fn check_source(path: &str, source: &str) -> Vec<Finding> {
    let blanked = lexer::blank(source);
    let raw = scan_blanked(path, &blanked);
    apply_allows(path, &blanked.allows, raw)
}

/// The per-file rule passes over already-blanked text, returning raw
/// findings (no allow markers applied).
pub fn scan_blanked(path: &str, blanked: &lexer::Blanked) -> Vec<Finding> {
    let starts = lexer::line_starts(&blanked.text);
    let mask = test_mask(&blanked.text);
    let mut raw = Vec::new();

    scan_tokens(path, &blanked.text, &starts, &mask, &mut raw);

    if in_snapshot_scope(path) {
        check_snapshot_impls(path, &blanked.text, &starts, &mask, &mut raw);
    }

    if in_unchecked_index_scope(path) {
        check_unchecked_index(path, &blanked.text, &starts, &mask, &mut raw);
    }

    if is_crate_root(path) && !has_forbid_unsafe(&blanked.text) {
        raw.push(Finding::new(
            path,
            1,
            "forbid-unsafe",
            "crate root does not declare #![forbid(unsafe_code)]".to_string(),
        ));
    }

    raw
}

fn scan_tokens(
    path: &str,
    text: &str,
    starts: &[usize],
    mask: &[bool],
    out: &mut Vec<Finding>,
) {
    let sim_state = in_sim_state_crate(path);
    let casts = in_cast_scope(path);
    let threads_ok = thread_exempt(path);
    let shard_iso = in_shard_isolation_scope(path);
    for (s, e) in idents(text) {
        let word = &text[s..e];
        let line = lexer::line_of(starts, s);
        match word {
            "HashMap" | "HashSet" if sim_state => {
                out.push(Finding::new(
                    path,
                    line,
                    "hash-collections",
                    format!("`{word}` in a sim-state crate: iteration order is nondeterministic"),
                ));
            }
            "Instant" | "SystemTime"
                if !threads_ok && path_segment_after(text, e) == Some("now") =>
            {
                out.push(Finding::new(
                    path,
                    line,
                    "wall-clock",
                    format!("`{word}::now` reads the wall clock in a simulation path"),
                ));
            }
            "thread_rng" => {
                out.push(Finding::new(
                    path,
                    line,
                    "ambient-rng",
                    "`thread_rng` is ambient, unseeded randomness".to_string(),
                ));
            }
            "thread" if !threads_ok => {
                if let Some(seg) = path_segment_after(text, e) {
                    if seg == "spawn" || seg == "scope" {
                        out.push(Finding::new(
                            path,
                            line,
                            "raw-threads",
                            format!("`thread::{seg}` outside bench::parallel"),
                        ));
                    }
                }
            }
            "BinaryHeap" if sim_state && !is_test_line(mask, line) => {
                out.push(Finding::new(
                    path,
                    line,
                    "hot-containers",
                    "`BinaryHeap` event queue on a sim-state hot path \
                     (the calendar queue replaced it)"
                        .to_string(),
                ));
            }
            "BTreeMap"
                if sim_state
                    && !is_test_line(mask, line)
                    && first_generic_arg(text, e) == Some("InstanceId") =>
            {
                out.push(Finding::new(
                    path,
                    line,
                    "hot-containers",
                    "`BTreeMap<InstanceId, _>` per-event lookup table \
                     (the slab arena replaced it)"
                        .to_string(),
                ));
            }
            w if shard_iso && SHARD_INTERNAL_IDENTS.contains(&w) => {
                out.push(Finding::new(
                    path,
                    line,
                    "shard-isolation",
                    format!("`{w}` outside shard.rs pierces the shard quarantine"),
                ));
            }
            "as" if casts && !is_test_line(mask, line) => {
                if let Some(target) = path_or_ident_after(text, e) {
                    if INT_TYPES.contains(&target) {
                        out.push(Finding::new(
                            path,
                            line,
                            "lossy-casts",
                            format!("bare `as {target}` in memory accounting silently truncates"),
                        ));
                    }
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot-coverage checking
// ---------------------------------------------------------------------------

/// How an impl block binds the value it serializes.
enum DestructureStyle {
    /// At least one exhaustive `let Self {…}` / `let Self(…)` /
    /// `match self` binding, and no rest patterns.
    Exhaustive,
    /// A destructure exists but uses a `..` rest pattern.
    Rest,
    /// No destructuring at all — fields are read ad hoc.
    Missing,
}

/// Finds every `impl Snapshot for T` (or `impl snapshot::Snapshot for
/// T`) in a checkpointed crate and demands its body destructure the
/// value exhaustively: `let Self { every, field } = self;` (or a
/// `match self` for enums). Field access by name compiles fine when a
/// field is added, so a non-destructuring codec silently drops new
/// state; the exhaustive pattern turns that into a compile error.
fn check_snapshot_impls(
    path: &str,
    text: &str,
    starts: &[usize],
    mask: &[bool],
    out: &mut Vec<Finding>,
) {
    let toks = idents(text);
    let words: Vec<&str> = toks.iter().map(|&(s, e)| &text[s..e]).collect();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < toks.len() {
        if words[i] != "impl" {
            i += 1;
            continue;
        }
        let mut k = i + 1;
        if words.get(k) == Some(&"snapshot") {
            k += 1;
        }
        if words.get(k) != Some(&"Snapshot") || words.get(k + 1) != Some(&"for") {
            i += 1;
            continue;
        }
        let ty = words.get(k + 2).copied().unwrap_or("?");
        let line = lexer::line_of(starts, toks[k].0);
        i = k + 2;
        if is_test_line(mask, line) {
            continue;
        }
        let mut p = toks.get(k + 2).map_or(toks[k].1, |&(_, e)| e);
        while p < bytes.len() && bytes[p] != b'{' {
            p += 1;
        }
        let Some(end) = matching_delim(bytes, p, b'{', b'}') else {
            continue;
        };
        match destructure_style(&text[p..=end], ty) {
            DestructureStyle::Exhaustive => {}
            DestructureStyle::Rest => out.push(Finding::new(
                path,
                line,
                "snapshot-coverage",
                format!(
                    "Snapshot impl for `{ty}` destructures with a `..` rest pattern: \
                     a new field would silently skip the codec"
                ),
            )),
            DestructureStyle::Missing => out.push(Finding::new(
                path,
                line,
                "snapshot-coverage",
                format!(
                    "Snapshot impl for `{ty}` never destructures its fields \
                     (want `let Self {{ … }} = self;` or `match self`)"
                ),
            )),
        }
    }
}

/// Index of the delimiter closing the one at `open`, if balanced.
fn matching_delim(bytes: &[u8], open: usize, lo: u8, hi: u8) -> Option<usize> {
    if bytes.get(open) != Some(&lo) {
        return None;
    }
    let mut depth = 0usize;
    let mut p = open;
    while p < bytes.len() {
        if bytes[p] == lo {
            depth += 1;
        } else if bytes[p] == hi {
            depth -= 1;
            if depth == 0 {
                return Some(p);
            }
        }
        p += 1;
    }
    None
}

/// Classifies the destructuring discipline of one impl body. `ty` is
/// the impl target's leading ident, accepted as an alias for `Self` in
/// `let` patterns.
fn destructure_style(block: &str, ty: &str) -> DestructureStyle {
    let toks = idents(block);
    let bytes = block.as_bytes();
    let mut found = false;
    for w in 0..toks.len() {
        let (s, e) = toks[w];
        match &block[s..e] {
            "match" => {
                let selfed = toks.get(w + 1).is_some_and(|&(s2, e2)| {
                    &block[s2..e2] == "self"
                        && matches!(next_nonspace(bytes, e2), Some((_, b'{')))
                });
                if selfed {
                    found = true;
                }
            }
            "let" => {
                let Some(&(s2, e2)) = toks.get(w + 1) else {
                    continue;
                };
                let name = &block[s2..e2];
                if name != "Self" && name != ty {
                    continue;
                }
                let pattern = match next_nonspace(bytes, e2) {
                    Some((p, b'{')) => matching_delim(bytes, p, b'{', b'}').map(|c| (p, c)),
                    Some((p, b'(')) => matching_delim(bytes, p, b'(', b')').map(|c| (p, c)),
                    _ => None,
                };
                let Some((p, c)) = pattern else {
                    continue;
                };
                if block[p..c].contains("..") {
                    return DestructureStyle::Rest;
                }
                found = true;
            }
            _ => {}
        }
    }
    if found {
        DestructureStyle::Exhaustive
    } else {
        DestructureStyle::Missing
    }
}

// ---------------------------------------------------------------------------
// Unchecked-index checking
// ---------------------------------------------------------------------------

/// Flags bare `expr[...]` indexing in decode paths. Every such index
/// panics when a corrupt length or offset lands out of bounds; decode
/// code must use `.get()`/`.get_mut()` and surface a typed `SnapError`
/// instead. Detection: a `[` whose *immediately* preceding byte is an
/// identifier character, `)`, or `]` is an index expression — slice
/// types (`&[u8]`), array literals, attributes, and `vec![…]` all have
/// a different predecessor, and the no-whitespace-skip rule keeps
/// `&'a [u8]` out.
fn check_unchecked_index(
    path: &str,
    text: &str,
    starts: &[usize],
    mask: &[bool],
    out: &mut Vec<Finding>,
) {
    let bytes = text.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if !is_ident_byte(prev) && prev != b')' && prev != b']' {
            continue;
        }
        let line = lexer::line_of(starts, i);
        if is_test_line(mask, line) {
            continue;
        }
        out.push(Finding::new(
            path,
            line,
            "unchecked-index",
            "bare slice index in a decode path: corrupt input panics here \
             instead of returning a typed error"
                .to_string(),
        ));
    }
}

/// The ident directly after `end` (the cast target position).
fn path_or_ident_after(text: &str, end: usize) -> Option<&str> {
    let bytes = text.as_bytes();
    let (s, b) = next_nonspace(bytes, end)?;
    if !is_ident_byte(b) {
        return None;
    }
    let mut e = s;
    while e < bytes.len() && is_ident_byte(bytes[e]) {
        e += 1;
    }
    Some(&text[s..e])
}

fn has_forbid_unsafe(blanked: &str) -> bool {
    let squeezed: String = blanked.split_whitespace().collect();
    squeezed.contains("#![forbid(unsafe_code)]")
}

// ---------------------------------------------------------------------------
// Allow-marker application
// ---------------------------------------------------------------------------

/// Filters findings through the file's `tidy:allow` markers and emits
/// `stale-allow` errors for markers that are unknown, unjustified, or
/// suppress nothing.
pub fn apply_allows(path: &str, allows: &[AllowSite], raw: Vec<Finding>) -> Vec<Finding> {
    let mut consumed = vec![false; allows.len()];
    let mut out = Vec::new();
    for f in raw {
        // Prefer a same-line marker over one on the preceding line, so
        // two adjacent flagged lines with their own markers each
        // consume their own (neither goes stale).
        let site = allows
            .iter()
            .enumerate()
            .filter(|(_, a)| {
                a.rule == f.rule
                    && (f.rule == "forbid-unsafe" || a.line == f.line || a.line + 1 == f.line)
            })
            .min_by_key(|(idx, a)| (usize::from(a.line != f.line), *idx));
        match site {
            Some((idx, _)) => consumed[idx] = true,
            None => out.push(f),
        }
    }
    for (idx, a) in allows.iter().enumerate() {
        if rule(&a.rule).is_none() {
            out.push(Finding::new(
                path,
                a.line,
                "stale-allow",
                format!("tidy:allow names unknown rule `{}`", a.rule),
            ));
        } else if !a.justified {
            out.push(Finding::new(
                path,
                a.line,
                "stale-allow",
                format!(
                    "tidy:allow({}) lacks a `-- justification` explaining the exception",
                    a.rule
                ),
            ));
        } else if !consumed[idx] {
            out.push(Finding::new(
                path,
                a.line,
                "stale-allow",
                format!("stale tidy:allow({}): it suppresses nothing", a.rule),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Manifest checking
// ---------------------------------------------------------------------------

/// Checks one Cargo.toml: every dependency in every dependency section
/// must be a path (or workspace-inherited) dependency. The build
/// environment has no crates.io access, so a `version`, `git`, or
/// registry dependency can never resolve.
pub fn check_manifest(path: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut section = String::new();
    let mut prev_allow = false;
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let (content, comment) = match raw_line.find('#') {
            Some(p) => (&raw_line[..p], &raw_line[p..]),
            None => (raw_line, ""),
        };
        let allow_here = comment.contains("tidy:allow(path-deps)") && comment.contains("--");
        let allowed = allow_here || prev_allow;
        prev_allow = allow_here;
        let line = content.trim();
        if line.starts_with('[') && line.ends_with(']') {
            section = line[1..line.len() - 1].trim().to_string();
            continue;
        }
        if line.is_empty() || !is_dep_section(&section) {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        if section_is_single_dep(&section) {
            // `[dependencies.foo]` form: flag the offending keys.
            if (key == "version" || key == "git" || key == "registry") && !allowed {
                out.push(Finding::new(
                    path,
                    lineno,
                    "path-deps",
                    format!("`{key}` dependency in [{section}] — only path deps can build offline"),
                ));
            }
            continue;
        }
        if key.ends_with(".workspace") || value.starts_with("true") {
            continue;
        }
        let ok = value.starts_with('{')
            && (value.contains("path") && value.contains('=') || value.contains("workspace"));
        if !ok && !allowed {
            out.push(Finding::new(
                path,
                lineno,
                "path-deps",
                format!("dependency `{key}` is not a path/workspace dependency"),
            ));
        }
    }
    out
}

fn is_dep_section(section: &str) -> bool {
    section_is_single_dep(section)
        || section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section == "workspace.dependencies"
        || section.ends_with(".dependencies")
        || section.ends_with(".dev-dependencies")
        || section.ends_with(".build-dependencies")
}

fn section_is_single_dep(section: &str) -> bool {
    section.starts_with("dependencies.")
        || section.starts_with("dev-dependencies.")
        || section.starts_with("build-dependencies.")
        || section.starts_with("workspace.dependencies.")
}

// ---------------------------------------------------------------------------
// Shim surface checking
// ---------------------------------------------------------------------------

/// A top-level-ish `pub` item exported from a shim.
#[derive(Debug, Clone)]
pub struct ShimItem {
    pub name: String,
    pub line: usize,
}

/// Extracts exported item names from a shim source: `pub fn|struct|
/// enum|trait|type|const|static|mod` plus `#[macro_export]` macros.
/// `pub use` re-exports are skipped (their targets are counted at the
/// definition).
pub fn shim_items(source: &str) -> Vec<ShimItem> {
    let blanked = lexer::blank(source);
    let text = &blanked.text;
    let starts = lexer::line_starts(text);
    let toks = idents(text);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (s, e) = toks[i];
        let word = &text[s..e];
        if word == "macro_rules" {
            // Exported iff preceded by #[macro_export]; cheap check:
            // look back a little in the raw text.
            let back = &text[s.saturating_sub(120)..s];
            if back.contains("macro_export") {
                if let Some(&(ns, ne)) = toks.get(i + 1) {
                    out.push(ShimItem {
                        name: text[ns..ne].to_string(),
                        line: lexer::line_of(&starts, ns),
                    });
                }
            }
            i += 1;
            continue;
        }
        if word != "pub" {
            i += 1;
            continue;
        }
        // Skip `pub(crate)` etc. — not exported surface.
        if matches!(next_nonspace(text.as_bytes(), e), Some((_, b'('))) {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // Item keywords that may precede the name.
        let mut name = None;
        while let Some(&(ks, ke)) = toks.get(j) {
            match &text[ks..ke] {
                "fn" | "struct" | "enum" | "trait" | "type" | "const" | "static" | "mod" => {
                    if let Some(&(ns, ne)) = toks.get(j + 1) {
                        name = Some((ns, ne));
                    }
                    break;
                }
                "unsafe" | "async" | "extern" | "dyn" => j += 1,
                "use" | "impl" | "crate" | "in" | "self" | "super" => break,
                _ => break,
            }
        }
        if let Some((ns, ne)) = name {
            out.push(ShimItem {
                name: text[ns..ne].to_string(),
                line: lexer::line_of(&starts, ns),
            });
        }
        i += 1;
    }
    out
}

/// All identifier tokens of a source, for usage counting.
pub fn ident_set(source: &str) -> Vec<String> {
    let blanked = lexer::blank(source);
    idents(&blanked.text)
        .into_iter()
        .map(|(s, e)| blanked.text[s..e].to_string())
        .collect()
}
