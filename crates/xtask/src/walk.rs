//! Workspace traversal and the cross-file passes.
//!
//! Collects every `.rs` and `Cargo.toml` under the workspace root in a
//! deterministic (sorted) order, derives a [`cache::SourceArtifact`]
//! per source (served from the incremental cache when the file is
//! unchanged), then runs the passes that need a global view: the call
//! graph analyses ([`crate::graph`]), `path-deps` over every manifest,
//! and `shim-surface` over the vendored shims against the whole
//! workspace's identifier usage. Per-file and cross-file findings are
//! merged *before* allow markers are applied, so a single
//! `panic-reachability` allow marker suppresses a graph finding
//! exactly like a token finding — and goes stale exactly like one too.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use crate::cache::{self, Cache, SourceArtifact};
use crate::graph;
use crate::lexer;
use crate::parse;
use crate::rules::{self, Finding};

/// Directories never scanned: build output, VCS metadata, and the
/// seeded-violation fixtures used by xtask's own self-tests.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Vendored third-party stand-ins: exempt from the style rules (their
/// job is to mimic crates.io APIs — the criterion shim *must* read the
/// wall clock), but their manifests are still checked and their export
/// surface is audited by `shim-surface`.
const SHIM_PREFIX: &str = "crates/shims/";

/// Tuning knobs for one tidy run.
#[derive(Debug, Default)]
pub struct RunOpts {
    /// Incremental cache location; `None` disables caching entirely.
    pub cache_file: Option<PathBuf>,
}

/// The result of one tidy run.
#[derive(Debug)]
pub struct TidyReport {
    /// Findings sorted by (path, line, rule, message).
    pub findings: Vec<Finding>,
    /// Number of `.rs` sources scanned (workspace + shims).
    pub files: usize,
    /// Sources served from the incremental cache.
    pub cache_hits: usize,
    /// Sources that had to be lexed/scanned/parsed.
    pub cache_misses: usize,
}

fn walk_files(dir: &Path, rs: &mut Vec<PathBuf>, toml: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk_files(&p, rs, toml);
            }
        } else if name == "Cargo.toml" {
            toml.push(p);
        } else if name.ends_with(".rs") {
            rs.push(p);
        }
    }
}

fn rel_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Identifier occurrence counts capped at 2 (all the shim-surface pass
/// distinguishes is 0, 1, and "2 or more").
fn ident_counts(source: &str) -> Vec<(String, u8)> {
    let mut counts: BTreeMap<String, u8> = BTreeMap::new();
    for id in rules::ident_set(source) {
        let c = counts.entry(id).or_insert(0);
        *c = (*c + 1).min(2);
    }
    counts.into_iter().collect()
}

/// Derives one source file's artifact from scratch (a cache miss).
fn build_artifact(rel: &str, text: &str, is_shim: bool) -> SourceArtifact {
    let blanked = lexer::blank(text);
    if is_shim {
        SourceArtifact {
            findings: Vec::new(),
            allows: blanked.allows,
            summary: parse::FileSummary::default(),
            idents: ident_counts(text),
            shim_items: rules::shim_items(text),
        }
    } else {
        let findings = rules::scan_blanked(rel, &blanked);
        let summary = parse::parse_blanked(&blanked.text);
        SourceArtifact {
            findings,
            allows: blanked.allows,
            summary,
            idents: ident_counts(text),
            shim_items: Vec::new(),
        }
    }
}

fn mtime_ns(meta: &fs::Metadata) -> u128 {
    meta.modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map_or(0, |d| d.as_nanos())
}

/// Runs every tidy pass over the workspace rooted at `root` with no
/// cache. Returns findings sorted by (path, line, rule, message).
pub fn run(root: &Path) -> Result<Vec<Finding>, String> {
    run_with(root, &RunOpts::default()).map(|r| r.findings)
}

/// Runs every tidy pass with explicit options.
pub fn run_with(root: &Path, opts: &RunOpts) -> Result<TidyReport, String> {
    let mut rs = Vec::new();
    let mut tomls = Vec::new();
    walk_files(root, &mut rs, &mut tomls);
    if rs.is_empty() {
        return Err(format!("no Rust sources under {}", root.display()));
    }

    let old_cache = opts
        .cache_file
        .as_deref()
        .map(Cache::load)
        .unwrap_or_default();
    let mut new_cache = Cache::default();
    let mut hits = 0usize;
    let mut misses = 0usize;

    // Per-file artifacts, cache-served where possible.
    let mut workspace: Vec<(String, SourceArtifact)> = Vec::new();
    let mut shims: Vec<(String, SourceArtifact)> = Vec::new();
    for p in rs {
        let rel = rel_path(root, &p);
        let is_shim = rel.starts_with(SHIM_PREFIX);
        let meta = fs::metadata(&p).map_err(|e| format!("stat {rel}: {e}"))?;
        let (len, mtime) = (meta.len(), mtime_ns(&meta));

        let (key, art) = if let Some(key) = old_cache.stat_key(&rel, len, mtime) {
            // Fast path: unchanged stat — the file is not even read.
            hits += 1;
            (key, old_cache.get(key).cloned().unwrap_or_default())
        } else {
            let text = fs::read_to_string(&p).map_err(|e| format!("read {rel}: {e}"))?;
            let key = cache::file_key(&rel, &text);
            match old_cache.get(key) {
                Some(art) => {
                    // Stat changed, content did not (touch/checkout).
                    hits += 1;
                    (key, art.clone())
                }
                None => {
                    misses += 1;
                    (key, build_artifact(&rel, &text, is_shim))
                }
            }
        };
        if opts.cache_file.is_some() {
            new_cache.put(&rel, len, mtime, key, art.clone());
        }
        if is_shim {
            shims.push((rel, art));
        } else {
            workspace.push((rel, art));
        }
    }
    let files = workspace.len() + shims.len();

    // Cross-file pass 1: the call graph analyses.
    let graph_files: Vec<(String, parse::FileSummary)> = workspace
        .iter()
        .map(|(rel, art)| (rel.clone(), art.summary.clone()))
        .collect();
    let graph_findings = graph::analyze(&graph_files);

    // Cross-file pass 2: shim surface.
    let shim_findings = shim_surface_from_artifacts(&workspace, &shims);

    // Merge per-file + cross-file raw findings by path, then apply
    // allow markers once per file.
    let mut by_path: BTreeMap<&str, Vec<Finding>> = BTreeMap::new();
    let mut allows_by_path: BTreeMap<&str, &[lexer::AllowSite]> = BTreeMap::new();
    for (rel, art) in workspace.iter().chain(shims.iter()) {
        by_path.entry(rel).or_default().extend(art.findings.iter().cloned());
        allows_by_path.insert(rel, &art.allows);
    }
    for f in graph_findings.into_iter().chain(shim_findings) {
        match by_path.get_mut(f.path.as_str()) {
            Some(v) => v.push(f),
            None => {
                // A graph finding against a path we did not scan (root
                // drift against a deleted file) — keep it unsuppressed.
                by_path.entry("").or_default().push(f);
            }
        }
    }
    let mut findings = Vec::new();
    for (rel, raw) in by_path {
        if rel.is_empty() {
            findings.extend(raw);
            continue;
        }
        let allows = allows_by_path.get(rel).copied().unwrap_or(&[]);
        findings.extend(rules::apply_allows(rel, allows, raw));
    }

    // Manifests (cheap; their allow markers are handled inline).
    for p in tomls {
        let rel = rel_path(root, &p);
        let text = fs::read_to_string(&p).map_err(|e| format!("read {rel}: {e}"))?;
        findings.extend(rules::check_manifest(&rel, &text));
    }

    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str())
            .cmp(&(b.path.as_str(), b.line, b.rule, b.message.as_str()))
    });

    if let Some(cache_path) = opts.cache_file.as_deref() {
        new_cache.save(cache_path)?;
    }

    Ok(TidyReport {
        findings,
        files,
        cache_hits: hits,
        cache_misses: misses,
    })
}

/// The shim-surface pass over cached artifacts: a shim export is dead
/// when the workspace never names it and the shims themselves reference
/// it at most once (the definition).
fn shim_surface_from_artifacts(
    workspace: &[(String, SourceArtifact)],
    shims: &[(String, SourceArtifact)],
) -> Vec<Finding> {
    let mut outside: BTreeSet<&str> = BTreeSet::new();
    for (_, art) in workspace {
        outside.extend(art.idents.iter().map(|(n, _)| n.as_str()));
    }
    let mut shim_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for (_, art) in shims {
        for (name, count) in &art.idents {
            *shim_counts.entry(name).or_insert(0) += usize::from(*count);
        }
    }
    let mut out = Vec::new();
    for (rel, art) in shims {
        for item in &art.shim_items {
            let internal = shim_counts.get(item.name.as_str()).copied().unwrap_or(0);
            if !outside.contains(item.name.as_str()) && internal <= 1 {
                out.push(Finding::raw(
                    rel,
                    item.line,
                    "shim-surface",
                    format!(
                        "shim export `{}` is referenced nowhere in the workspace",
                        item.name
                    ),
                ));
            }
        }
    }
    out
}

/// Flags shim exports referenced nowhere — neither by the workspace
/// nor anywhere in the shims beyond the single defining occurrence
/// (impl blocks, internal calls, and macro bodies all count as
/// references, so API kept alive internally is never flagged). Takes
/// `(path, text)` pairs so the fixture self-tests can drive it.
pub fn check_shim_surface(
    workspace: &[(&str, &str)],
    shims: &[(&str, &str)],
) -> Vec<Finding> {
    let ws: Vec<(String, SourceArtifact)> = workspace
        .iter()
        .map(|(rel, text)| {
            (
                (*rel).to_string(),
                SourceArtifact {
                    idents: ident_counts(text),
                    ..Default::default()
                },
            )
        })
        .collect();
    let sh: Vec<(String, SourceArtifact)> = shims
        .iter()
        .map(|(rel, text)| {
            let blanked = lexer::blank(text);
            (
                (*rel).to_string(),
                SourceArtifact {
                    allows: blanked.allows,
                    idents: ident_counts(text),
                    shim_items: rules::shim_items(text),
                    ..Default::default()
                },
            )
        })
        .collect();
    let raw = shim_surface_from_artifacts(&ws, &sh);
    let mut by_path: BTreeMap<&str, Vec<Finding>> = BTreeMap::new();
    for f in raw {
        let key = sh
            .iter()
            .find(|(rel, _)| *rel == f.path)
            .map(|(rel, _)| rel.as_str())
            .unwrap_or("");
        by_path.entry(key).or_default().push(f);
    }
    let mut out = Vec::new();
    for (rel, art) in &sh {
        let raw = by_path.remove(rel.as_str()).unwrap_or_default();
        out.extend(rules::apply_allows(rel, &art.allows, raw));
    }
    out
}

/// The full in-memory pipeline over `(path, source)` pairs: per-file
/// scans, the call-graph analyses, and allow-marker application. The
/// fixture self-tests drive the new rules through this.
pub fn check_files(files: &[(&str, &str)]) -> Vec<Finding> {
    let mut arts: Vec<(String, SourceArtifact)> = Vec::new();
    for (rel, text) in files {
        arts.push(((*rel).to_string(), build_artifact(rel, text, false)));
    }
    let graph_files: Vec<(String, parse::FileSummary)> = arts
        .iter()
        .map(|(rel, art)| (rel.clone(), art.summary.clone()))
        .collect();
    let graph_findings = graph::analyze(&graph_files);

    let mut by_path: BTreeMap<&str, Vec<Finding>> = BTreeMap::new();
    for (rel, art) in &arts {
        by_path.entry(rel).or_default().extend(art.findings.iter().cloned());
    }
    for f in graph_findings {
        if let Some(v) = by_path.get_mut(f.path.as_str()) {
            v.push(f);
        }
    }
    let mut out = Vec::new();
    for (rel, art) in &arts {
        let raw = by_path.remove(rel.as_str()).unwrap_or_default();
        out.extend(rules::apply_allows(rel, &art.allows, raw));
    }
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str())
            .cmp(&(b.path.as_str(), b.line, b.rule, b.message.as_str()))
    });
    out
}
