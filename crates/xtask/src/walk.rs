//! Workspace traversal and the cross-file passes.
//!
//! Collects every `.rs` and `Cargo.toml` under the workspace root in a
//! deterministic (sorted) order, runs the per-file rule passes, and
//! then the two passes that need a global view: `path-deps` over every
//! manifest and `shim-surface` over the vendored shims against the
//! whole workspace's identifier usage.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use crate::rules::{self, Finding};

/// Directories never scanned: build output, VCS metadata, and the
/// seeded-violation fixtures used by xtask's own self-tests.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Vendored third-party stand-ins: exempt from the style rules (their
/// job is to mimic crates.io APIs — the criterion shim *must* read the
/// wall clock), but their manifests are still checked and their export
/// surface is audited by `shim-surface`.
const SHIM_PREFIX: &str = "crates/shims/";

/// One loaded source file.
struct SourceFile {
    rel: String,
    text: String,
}

fn walk_files(dir: &Path, rs: &mut Vec<PathBuf>, toml: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk_files(&p, rs, toml);
            }
        } else if name == "Cargo.toml" {
            toml.push(p);
        } else if name.ends_with(".rs") {
            rs.push(p);
        }
    }
}

fn rel_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Runs every tidy pass over the workspace rooted at `root`. Returns
/// findings sorted by (path, line, rule).
pub fn run(root: &Path) -> Result<Vec<Finding>, String> {
    let mut rs = Vec::new();
    let mut tomls = Vec::new();
    walk_files(root, &mut rs, &mut tomls);
    if rs.is_empty() {
        return Err(format!("no Rust sources under {}", root.display()));
    }

    let mut workspace = Vec::new();
    let mut shims = Vec::new();
    for p in rs {
        let rel = rel_path(root, &p);
        let text = fs::read_to_string(&p).map_err(|e| format!("read {rel}: {e}"))?;
        if rel.starts_with(SHIM_PREFIX) {
            shims.push(SourceFile { rel, text });
        } else {
            workspace.push(SourceFile { rel, text });
        }
    }

    let mut findings = Vec::new();
    for f in &workspace {
        findings.extend(rules::check_source(&f.rel, &f.text));
    }
    for p in tomls {
        let rel = rel_path(root, &p);
        let text = fs::read_to_string(&p).map_err(|e| format!("read {rel}: {e}"))?;
        findings.extend(rules::check_manifest(&rel, &text));
    }
    let ws_pairs: Vec<(&str, &str)> = workspace
        .iter()
        .map(|f| (f.rel.as_str(), f.text.as_str()))
        .collect();
    let shim_pairs: Vec<(&str, &str)> = shims
        .iter()
        .map(|f| (f.rel.as_str(), f.text.as_str()))
        .collect();
    findings.extend(check_shim_surface(&ws_pairs, &shim_pairs));

    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
    });
    Ok(findings)
}

/// Flags shim exports referenced nowhere — neither by the workspace
/// nor anywhere in the shims beyond the single defining occurrence
/// (impl blocks, internal calls, and macro bodies all count as
/// references, so API kept alive internally is never flagged). Takes
/// `(path, text)` pairs so the fixture self-tests can drive it.
pub fn check_shim_surface(
    workspace: &[(&str, &str)],
    shims: &[(&str, &str)],
) -> Vec<Finding> {
    let mut outside: BTreeSet<String> = BTreeSet::new();
    for (_, text) in workspace {
        outside.extend(rules::ident_set(text));
    }
    let mut shim_counts: std::collections::BTreeMap<String, usize> = Default::default();
    for (_, text) in shims {
        for id in rules::ident_set(text) {
            *shim_counts.entry(id).or_insert(0) += 1;
        }
    }
    let mut out = Vec::new();
    for (rel, text) in shims {
        let blanked = crate::lexer::blank(text);
        let mut raw = Vec::new();
        for item in rules::shim_items(text) {
            let internal = shim_counts.get(&item.name).copied().unwrap_or(0);
            if !outside.contains(&item.name) && internal <= 1 {
                raw.push(Finding {
                    path: (*rel).to_string(),
                    line: item.line,
                    rule: "shim-surface",
                    message: format!(
                        "shim export `{}` is referenced nowhere in the workspace",
                        item.name
                    ),
                    hint: rules::rule("shim-surface").map_or("", |r| r.hint),
                });
            }
        }
        out.extend(rules::apply_allows(rel, &blanked.allows, raw));
    }
    out
}
