//! A lightweight, std-only Rust *item* parser on top of [`crate::lexer`].
//!
//! The token-level rule passes see one line at a time; the call-graph
//! analyses need to know **which function** a token belongs to and
//! **which functions that function calls**. This module extracts
//! exactly that — no types, no expressions, no macro expansion — by
//! walking the blanked token stream with a scope stack:
//!
//! * `impl` headers (including `impl Trait for Type`) establish an
//!   *owner* — the last path segment of the implemented type — so a
//!   method is identified as `Owner::name`.
//! * `fn` items open a function scope at their body brace; everything
//!   harvested until the matching close brace is attributed to the
//!   innermost open function (closures and nested blocks do not open
//!   scopes, which is the attribution the call graph wants).
//! * Inside a function, call expressions (`free(`, `Qual::assoc(`,
//!   `.method(`), panic sites (`panic!`-family macros, `.unwrap()`,
//!   `.expect(`, bare `expr[...]` indexing), and determinism-dataflow
//!   hints (`f64` accumulation, `.values()`/`.keys()` iteration,
//!   `partial_cmp`) are recorded with their line numbers.
//!
//! The output is a [`FileSummary`] per file: small, serializable (the
//! incremental cache stores it), and sufficient for
//! [`crate::graph`] to build the workspace call graph.

use crate::lexer;
use crate::rules::test_mask;

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `.name(...)` — resolves to any workspace method of that name.
    Method,
    /// `name(...)` — resolves to free functions of that name.
    Free,
    /// `Qual::name(...)` — resolves through the qualifier (the string
    /// is the last path segment before the final `::`; `Self` is
    /// resolved against the caller's owner at graph-build time).
    Qual(String),
}

/// One call expression inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    pub kind: CallKind,
    pub name: String,
    pub line: usize,
}

/// One potential panic inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub line: usize,
    /// Human-readable site kind: `panic!`, `.unwrap()`, `.expect()`,
    /// `unreachable!`, `todo!`, `unimplemented!`, or `bare index`.
    pub what: String,
}

/// A determinism-dataflow hint inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowKind {
    /// `HashMap`/`HashSet` named in the function.
    HashIdent,
    /// A `for … in ….values()/.keys()` loop in a function that also
    /// accumulates `f64`s (`+=` with `f64` in scope, or `.sum::<f64>()`).
    UnorderedFloatAccum,
    /// `.partial_cmp(` — a non-total float comparison.
    PartialCmp,
}

/// One dataflow hint with its location.
#[derive(Debug, Clone)]
pub struct DataflowSite {
    pub kind: DataflowKind,
    pub line: usize,
    pub what: String,
}

/// Everything the analyses need to know about one function.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's name.
    pub name: String,
    /// Owning type's last path segment for methods/assoc fns, `""` for
    /// free functions.
    pub owner: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Declared under `#[test]`/`#[cfg(test)]` — excluded from the
    /// call graph.
    pub is_test: bool,
    pub calls: Vec<Call>,
    pub panics: Vec<PanicSite>,
    pub dataflow: Vec<DataflowSite>,
}

/// The parsed view of one source file.
#[derive(Debug, Clone, Default)]
pub struct FileSummary {
    pub fns: Vec<FnInfo>,
}

/// Keywords that look like call expressions when followed by `(`.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "else", "in", "as", "move", "ref", "mut",
    "let", "fn", "impl", "pub", "use", "where", "struct", "enum", "trait", "type", "const",
    "static", "crate", "super", "self", "Self", "unsafe", "async", "await", "dyn", "break",
    "continue", "yield",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

#[derive(Debug)]
enum Scope {
    /// An `impl` block: the implemented type's name.
    Impl(String),
    /// A function body: index into the output `fns` vec, plus the
    /// accumulation state the post-pass folds into dataflow sites.
    Fn(FnState),
    /// Any other brace pair.
    Block,
}

#[derive(Debug)]
struct FnState {
    idx: usize,
    has_f64: bool,
    plus_assigns: usize,
    /// `for … in ….values()/.keys()` loop lines, pending the f64 check.
    unordered_fors: Vec<usize>,
    /// `.sum::<f64>()` / `.product::<f64>()` lines.
    float_sums: Vec<usize>,
}

/// What the parser is waiting to attach to the next `{`.
enum Pending {
    None,
    Impl(String),
    Fn { name: String, line: usize, is_test: bool },
}

/// Parses one blanked-and-masked source file into its summary.
pub fn parse_file(source: &str) -> FileSummary {
    let blanked = lexer::blank(source);
    parse_blanked(&blanked.text)
}

/// Parses already-blanked text (the production pipeline blanks once and
/// shares the result between the rule passes and the parser).
pub fn parse_blanked(text: &str) -> FileSummary {
    let starts = lexer::line_starts(text);
    let mask = test_mask(text);
    let bytes = text.as_bytes();
    let toks = tokens(text);

    let mut fns: Vec<FnInfo> = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending = Pending::None;

    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i] {
            Tok::Punct(pos, b'{') => {
                let scope = match std::mem::replace(&mut pending, Pending::None) {
                    Pending::Impl(owner) => Scope::Impl(owner),
                    Pending::Fn { name, line, is_test } => {
                        let owner = scopes
                            .iter()
                            .rev()
                            .find_map(|s| match s {
                                Scope::Impl(o) => Some(o.clone()),
                                _ => None,
                            })
                            .unwrap_or_default();
                        fns.push(FnInfo {
                            name,
                            owner,
                            line,
                            is_test: is_test || line_masked(&mask, line),
                            calls: Vec::new(),
                            panics: Vec::new(),
                            dataflow: Vec::new(),
                        });
                        Scope::Fn(FnState {
                            idx: fns.len() - 1,
                            has_f64: false,
                            plus_assigns: 0,
                            unordered_fors: Vec::new(),
                            float_sums: Vec::new(),
                        })
                    }
                    Pending::None => Scope::Block,
                };
                let _ = pos;
                scopes.push(scope);
                i += 1;
            }
            Tok::Punct(_, b'}') => {
                if let Some(Scope::Fn(state)) = scopes.pop() {
                    finish_fn(&mut fns, state);
                }
                i += 1;
            }
            Tok::Punct(_, b';') => {
                // A `;` before the body brace cancels a pending header
                // (trait method declaration, `mod name;`).
                pending = Pending::None;
                i += 1;
            }
            Tok::Punct(pos, b'[') => {
                harvest_index(text, bytes, *pos, &starts, &mask, &scopes, &mut fns);
                i += 1;
            }
            Tok::Punct(pos, b'+') => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    if let Some(state) = innermost_fn(&mut scopes) {
                        state.plus_assigns += 1;
                    }
                }
                i += 1;
            }
            Tok::Punct(..) => {
                i += 1;
            }
            Tok::Ident(s, e) => {
                let word = &text[*s..*e];
                match word {
                    "impl" => {
                        let (owner, next) = parse_impl_header(text, &toks, i + 1);
                        pending = Pending::Impl(owner);
                        i = next;
                    }
                    "fn" => {
                        if let Some(Tok::Ident(ns, ne)) = toks.get(i + 1) {
                            let line = lexer::line_of(&starts, *s);
                            pending = Pending::Fn {
                                name: text[*ns..*ne].to_string(),
                                line,
                                is_test: line_masked(&mask, line),
                            };
                            i += 2;
                        } else {
                            i += 1; // `fn(…)` pointer type
                        }
                    }
                    _ => {
                        harvest_ident(
                            text, bytes, *s, *e, &starts, &mask, &toks, i, &mut scopes, &mut fns,
                        );
                        i += 1;
                    }
                }
            }
        }
    }
    // Close any function scope left open by unbalanced input.
    while let Some(scope) = scopes.pop() {
        if let Scope::Fn(state) = scope {
            finish_fn(&mut fns, state);
        }
    }
    FileSummary { fns }
}

fn line_masked(mask: &[bool], line: usize) -> bool {
    mask.get(line).copied().unwrap_or(false)
}

fn innermost_fn(scopes: &mut [Scope]) -> Option<&mut FnState> {
    scopes.iter_mut().rev().find_map(|s| match s {
        Scope::Fn(state) => Some(state),
        _ => None,
    })
}

fn innermost_fn_idx(scopes: &[Scope]) -> Option<usize> {
    scopes.iter().rev().find_map(|s| match s {
        Scope::Fn(state) => Some(state.idx),
        _ => None,
    })
}

/// Folds a closing function scope's accumulation state into dataflow
/// sites: an unordered `for` only becomes a finding candidate when the
/// function demonstrably accumulates floats.
fn finish_fn(fns: &mut [FnInfo], state: FnState) {
    let accumulates = (state.has_f64 && state.plus_assigns > 0) || !state.float_sums.is_empty();
    let info = &mut fns[state.idx];
    if accumulates {
        for line in state.unordered_fors {
            if info
                .dataflow
                .iter()
                .any(|d| d.kind == DataflowKind::UnorderedFloatAccum && d.line == line)
            {
                continue;
            }
            info.dataflow.push(DataflowSite {
                kind: DataflowKind::UnorderedFloatAccum,
                line,
                what: "f64 accumulation over .values()/.keys() iteration".to_string(),
            });
        }
    }
}

/// One token: an identifier span or a single punctuation byte.
enum Tok {
    Ident(usize, usize),
    Punct(usize, u8),
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn tokens(text: &str) -> Vec<Tok> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if is_ident_byte(b) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            out.push(Tok::Ident(start, i));
        } else {
            if !b.is_ascii_whitespace() {
                out.push(Tok::Punct(i, b));
            }
            i += 1;
        }
    }
    out
}

/// Parses an `impl` header starting at token `start` (just past the
/// `impl` keyword): skips generics, handles `impl Trait for Type`, and
/// returns `(owner, index of the token to resume at)`. The owner is the
/// last path segment of the implemented type at angle-depth 0.
fn parse_impl_header(text: &str, toks: &[Tok], start: usize) -> (String, usize) {
    let mut angle: i32 = 0;
    let mut owner = String::new();
    let mut after_for = false;
    let mut i = start;
    while i < toks.len() {
        match &toks[i] {
            Tok::Punct(_, b'{') | Tok::Punct(_, b';') => break,
            Tok::Punct(pos, b'<') => {
                angle += 1;
                let _ = pos;
            }
            // `->` in a where-clause `Fn(..) -> T` is not a closer.
            Tok::Punct(pos, b'>') if *pos == 0 || text.as_bytes()[pos - 1] != b'-' => {
                angle -= 1;
            }
            Tok::Ident(s, e) => {
                let w = &text[*s..*e];
                if angle == 0 {
                    if w == "for" {
                        after_for = true;
                        owner.clear();
                    } else if w == "where" {
                        break;
                    } else if !after_for || owner.is_empty() || !after_for_path_done(text, *s) {
                        owner = w.to_string();
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    (owner, i)
}

/// After `for`, the implemented type is the first *path*; once a
/// non-`::` gap follows it (a `where` clause ident, a generic bound),
/// later idents must not overwrite the owner. Heuristic: an ident
/// continues the path iff it is immediately preceded by `::`.
fn after_for_path_done(text: &str, start: usize) -> bool {
    let bytes = text.as_bytes();
    let mut j = start;
    while j > 0 && bytes[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    !(j >= 2 && bytes[j - 1] == b':' && bytes[j - 2] == b':')
}

/// Records a bare-index panic site: a `[` whose immediately preceding
/// byte is an identifier character, `)`, or `]` (same detection as the
/// `unchecked-index` token rule — types, attributes, and `vec![…]` all
/// have a different predecessor).
fn harvest_index(
    text: &str,
    bytes: &[u8],
    pos: usize,
    starts: &[usize],
    mask: &[bool],
    scopes: &[Scope],
    fns: &mut [FnInfo],
) {
    if pos == 0 {
        return;
    }
    let prev = bytes[pos - 1];
    if !is_ident_byte(prev) && prev != b')' && prev != b']' {
        return;
    }
    let Some(idx) = innermost_fn_idx(scopes) else {
        return;
    };
    let line = lexer::line_of(starts, pos);
    if line_masked(mask, line) {
        return;
    }
    let _ = text;
    fns[idx].panics.push(PanicSite {
        line,
        what: "bare index".to_string(),
    });
}

/// Harvests calls, panic sites, and dataflow hints at one identifier.
#[allow(clippy::too_many_arguments)]
fn harvest_ident(
    text: &str,
    bytes: &[u8],
    s: usize,
    e: usize,
    starts: &[usize],
    mask: &[bool],
    toks: &[Tok],
    ti: usize,
    scopes: &mut [Scope],
    fns: &mut [FnInfo],
) {
    let Some(fn_idx) = innermost_fn_idx(scopes) else {
        // `f64` outside a fn body (struct fields) is irrelevant.
        return;
    };
    let word = &text[s..e];
    let line = lexer::line_of(starts, s);
    let masked = line_masked(mask, line);

    // `f64` as a type/turbofish ident, or a suffixed literal (`0.0f64`
    // tokenizes as the ident `0f64` after the lexer's digit run).
    if word == "f64"
        || (word.ends_with("f64") && word.as_bytes()[0].is_ascii_digit())
    {
        if let Some(state) = innermost_fn(scopes) {
            state.has_f64 = true;
        }
        return;
    }
    if word == "HashMap" || word == "HashSet" {
        if !masked {
            fns[fn_idx].dataflow.push(DataflowSite {
                kind: DataflowKind::HashIdent,
                line,
                what: format!("`{word}`"),
            });
        }
        return;
    }
    if word == "for" {
        if let Some(l) = unordered_for(text, toks, ti) {
            let _ = l;
            if !masked {
                if let Some(state) = innermost_fn(scopes) {
                    state.unordered_fors.push(line);
                }
            }
        }
        return;
    }

    let next = next_nonspace(bytes, e);
    let is_macro = next == Some(b'!');
    if is_macro {
        if PANIC_MACROS.contains(&word) && !masked {
            fns[fn_idx].panics.push(PanicSite {
                line,
                what: format!("{word}!"),
            });
        }
        return;
    }
    if next != Some(b'(') && !(next == Some(b':') && turbofish_call(bytes, e)) {
        return;
    }

    let method = prev_nonspace(bytes, s) == Some(b'.');
    if method {
        match word {
            "unwrap" | "expect" => {
                if !masked {
                    fns[fn_idx].panics.push(PanicSite {
                        line,
                        what: format!(".{word}()"),
                    });
                }
            }
            "partial_cmp" => {
                if !masked {
                    fns[fn_idx].dataflow.push(DataflowSite {
                        kind: DataflowKind::PartialCmp,
                        line,
                        what: "`.partial_cmp(` (non-total float comparison)".to_string(),
                    });
                }
            }
            "sum" | "product" => {
                if turbofish_is_f64(text, bytes, e) && !masked {
                    // `….values().sum::<f64>()` is itself an unordered
                    // float reduction — flag the line directly when the
                    // receiver chain iterates a map.
                    let back = &text[s.saturating_sub(96)..s];
                    if back.contains("values()") || back.contains("keys()") {
                        fns[fn_idx].dataflow.push(DataflowSite {
                            kind: DataflowKind::UnorderedFloatAccum,
                            line,
                            what: "f64 reduction over .values()/.keys()".to_string(),
                        });
                    }
                    if let Some(state) = innermost_fn(scopes) {
                        state.float_sums.push(line);
                        state.has_f64 = true;
                    }
                }
                fns[fn_idx].calls.push(Call {
                    kind: CallKind::Method,
                    name: word.to_string(),
                    line,
                });
            }
            _ => {
                fns[fn_idx].calls.push(Call {
                    kind: CallKind::Method,
                    name: word.to_string(),
                    line,
                });
            }
        }
        return;
    }

    if KEYWORDS.contains(&word) {
        return;
    }

    // Qualified (`Qual::name(`) vs free (`name(`) call.
    let qual = qualifier_before(text, bytes, s);
    let kind = match qual {
        Some(q) => CallKind::Qual(q),
        None => CallKind::Free,
    };
    fns[fn_idx].calls.push(Call {
        kind,
        name: word.to_string(),
        line,
    });
}

/// Does the `for` loop at token `ti` iterate `.values()` or `.keys()`?
/// Scans ahead to the body `{` (bounded) looking for either method.
fn unordered_for(text: &str, toks: &[Tok], ti: usize) -> Option<usize> {
    for t in toks.iter().skip(ti + 1).take(40) {
        match t {
            Tok::Punct(_, b'{') => return None,
            Tok::Ident(s, e) => {
                let w = &text[*s..*e];
                if w == "values" || w == "keys" || w == "values_mut" {
                    return Some(*s);
                }
            }
            _ => {}
        }
    }
    None
}

/// Is `::<…>(`, i.e. a turbofish call, next after the ident ending at `e`?
fn turbofish_call(bytes: &[u8], e: usize) -> bool {
    let Some((p, b)) = next_nonspace_at(bytes, e) else {
        return false;
    };
    b == b':' && bytes.get(p + 1) == Some(&b':') && {
        matches!(next_nonspace_at(bytes, p + 2), Some((_, b'<')))
    }
}

/// Does `.sum::<f64>` follow — i.e. is the turbofish argument `f64`?
fn turbofish_is_f64(text: &str, bytes: &[u8], e: usize) -> bool {
    let Some((p, b)) = next_nonspace_at(bytes, e) else {
        return false;
    };
    if b != b':' || bytes.get(p + 1) != Some(&b':') {
        return false;
    }
    let Some((q, b2)) = next_nonspace_at(bytes, p + 2) else {
        return false;
    };
    if b2 != b'<' {
        return false;
    }
    let Some((r, _)) = next_nonspace_at(bytes, q + 1) else {
        return false;
    };
    text[r..].starts_with("f64")
}

fn next_nonspace(bytes: &[u8], mut i: usize) -> Option<u8> {
    while i < bytes.len() {
        if !bytes[i].is_ascii_whitespace() {
            return Some(bytes[i]);
        }
        i += 1;
    }
    None
}

fn next_nonspace_at(bytes: &[u8], mut i: usize) -> Option<(usize, u8)> {
    while i < bytes.len() {
        if !bytes[i].is_ascii_whitespace() {
            return Some((i, bytes[i]));
        }
        i += 1;
    }
    None
}

fn prev_nonspace(bytes: &[u8], i: usize) -> Option<u8> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !bytes[j].is_ascii_whitespace() {
            return Some(bytes[j]);
        }
    }
    None
}

/// If the ident starting at `s` is preceded by `::`, returns the path
/// segment before it (`Qual` in `Qual::name`).
fn qualifier_before(text: &str, bytes: &[u8], s: usize) -> Option<String> {
    let mut j = s;
    while j > 0 && bytes[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    if j < 2 || bytes[j - 1] != b':' || bytes[j - 2] != b':' {
        return None;
    }
    let mut k = j - 2;
    while k > 0 && bytes[k - 1].is_ascii_whitespace() {
        k -= 1;
    }
    // `>::name(` — a qualified trait call `<T as Trait>::name`; treat
    // the callee as method-like by returning no qualifier.
    if k == 0 || !is_ident_byte(bytes[k - 1]) {
        return None;
    }
    let end = k;
    while k > 0 && is_ident_byte(bytes[k - 1]) {
        k -= 1;
    }
    Some(text[k..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(src: &str) -> FileSummary {
        parse_file(src)
    }

    #[test]
    fn extracts_free_and_method_fns() {
        let s = summary(
            "fn free_one() { helper(); }\n\
             struct S;\n\
             impl S { fn m(&self) { self.other(); } }\n\
             impl Tr for S { fn t(&self) {} }\n",
        );
        let names: Vec<(String, String)> =
            s.fns.iter().map(|f| (f.owner.clone(), f.name.clone())).collect();
        assert_eq!(
            names,
            vec![
                (String::new(), "free_one".to_string()),
                ("S".to_string(), "m".to_string()),
                ("S".to_string(), "t".to_string()),
            ]
        );
        assert_eq!(s.fns[0].calls.len(), 1);
        assert_eq!(s.fns[0].calls[0].kind, CallKind::Free);
        assert_eq!(s.fns[1].calls[0].kind, CallKind::Method);
    }

    #[test]
    fn impl_for_generic_type_owner_is_last_segment() {
        let s = summary(
            "impl<T: Clone> Snapshot for std::vec::Vec<T> where T: Default {\n\
             fn snap(&self) { body(); } }\n",
        );
        assert_eq!(s.fns[0].owner, "Vec");
        assert_eq!(s.fns[0].name, "snap");
    }

    #[test]
    fn qualified_calls_capture_the_qualifier() {
        let s = summary("fn f() { Foo::bar(); baz::qux(); Self::me(); }\n");
        let kinds: Vec<&CallKind> = s.fns[0].calls.iter().map(|c| &c.kind).collect();
        assert_eq!(kinds.len(), 3);
        assert_eq!(*kinds[0], CallKind::Qual("Foo".to_string()));
        assert_eq!(*kinds[1], CallKind::Qual("baz".to_string()));
        assert_eq!(*kinds[2], CallKind::Qual("Self".to_string()));
    }

    #[test]
    fn panic_sites_are_harvested() {
        let s = summary(
            "fn f(v: &[u32]) -> u32 {\n\
             let x = v.first().unwrap();\n\
             let y: u32 = v.iter().sum();\n\
             if *x > 3 { panic!(\"boom\"); }\n\
             v[0] + y\n}\n",
        );
        let whats: Vec<&str> = s.fns[0].panics.iter().map(|p| p.what.as_str()).collect();
        assert_eq!(whats, vec![".unwrap()", "panic!", "bare index"]);
    }

    #[test]
    fn test_fns_are_marked() {
        let s = summary(
            "fn prod() {}\n\
             #[cfg(test)]\nmod tests {\n#[test]\nfn t() { x.unwrap(); }\n}\n",
        );
        assert!(!s.fns[0].is_test);
        assert!(s.fns[1].is_test);
    }

    #[test]
    fn unordered_float_accum_needs_both_halves() {
        // values() loop + f64 accumulation → flagged.
        let s = summary(
            "fn f(m: &Map) -> f64 { let mut t = 0.0f64;\n\
             for v in m.values() { t += v; }\nt }\n",
        );
        assert!(s.fns[0]
            .dataflow
            .iter()
            .any(|d| d.kind == DataflowKind::UnorderedFloatAccum));
        // values() loop without float accumulation → clean.
        let s2 = summary("fn g(m: &Map) { for v in m.values() { use_it(v); } }\n");
        assert!(s2.fns[0].dataflow.is_empty());
        // ordered iteration with f64 accumulation → clean.
        let s3 = summary(
            "fn h(v: &[f64]) -> f64 { let mut t = 0.0f64;\n\
             for x in v.iter() { t += x; }\nt }\n",
        );
        assert!(s3.fns[0].dataflow.is_empty());
    }

    #[test]
    fn sum_turbofish_f64_is_an_accumulation() {
        let s = summary("fn f(m: &Map) -> f64 { let mut t = 0.0; for v in m.values() { t = t.max(*v); } m.values().sum::<f64>() + t }\n");
        assert!(s.fns[0]
            .dataflow
            .iter()
            .any(|d| d.kind == DataflowKind::UnorderedFloatAccum));
    }

    #[test]
    fn hash_ident_and_partial_cmp_are_dataflow_sites() {
        let s = summary(
            "fn f(a: f64, b: f64) { let m: HashMap<u32, u32> = make();\n\
             let _ = a.partial_cmp(&b); }\n",
        );
        let kinds: Vec<&DataflowKind> = s.fns[0].dataflow.iter().map(|d| &d.kind).collect();
        assert!(kinds.contains(&&DataflowKind::HashIdent));
        assert!(kinds.contains(&&DataflowKind::PartialCmp));
    }

    #[test]
    fn closures_attribute_to_the_enclosing_fn() {
        let s = summary("fn outer() { let c = |x: u32| helper(x); c(3); }\n");
        assert!(s.fns[0].calls.iter().any(|c| c.name == "helper"));
    }

    #[test]
    fn trait_decls_without_bodies_do_not_open_scopes() {
        let s = summary(
            "trait T { fn decl(&self) -> u32; }\n\
             fn after() { real(); }\n",
        );
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "after");
    }

    #[test]
    fn vec_macro_and_attributes_are_not_bare_indexes() {
        let s = summary(
            "#[derive(Debug)]\nfn f() { let v = vec![1, 2]; let a = [0u8; 4]; g(&a); }\n",
        );
        assert!(s.fns[0].panics.is_empty());
    }
}
