//! The content-hash-keyed incremental cache.
//!
//! Lexing, scanning, and parsing every workspace source on every tidy
//! run is the cost that grows as rules multiply; the *cross-file*
//! passes (call graph, shim surface) are cheap by comparison. So the
//! cache stores, per source file, everything the cross-file passes
//! need — the raw per-file findings, the allow markers, the parsed
//! [`FileSummary`], capped identifier counts, and shim export items —
//! keyed by an FNV-64 hash of `path \0 content` (rule scoping depends
//! on the path, so a moved file must miss).
//!
//! Two lookup tiers make the warm path cheap:
//!
//! 1. a **stat index** `path → (len, mtime_ns, key)`: when the length
//!    and mtime match, the file is not even read;
//! 2. the **artifact map** `key → SourceArtifact`: when a stat changed
//!    but the content hash matches (touch, checkout), the read is paid
//!    but the lex/scan/parse is not.
//!
//! The on-disk format is line-oriented text with tab-separated,
//! escaped fields, led by a version header carrying an analyzer
//! revision and a fingerprint of the rule catalogue — any rule change
//! invalidates everything. Parsing is strict: the first anomaly drops
//! the whole cache (a tidy run from scratch is always correct, just
//! slower). Saves rewrite the file from the current run's artifacts
//! only, so entries for deleted files age out automatically.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::lexer::AllowSite;
use crate::parse::{Call, CallKind, DataflowKind, DataflowSite, FileSummary, FnInfo, PanicSite};
use crate::rules::{static_rule_name, Finding, ShimItem, RULES};

/// Bumped whenever artifact *semantics* change without a rule-catalogue
/// change (parser fixes, new harvest kinds).
pub const ANALYZER_REV: u32 = 1;

/// FNV-1a 64-bit over a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache key for one source file: path and content together, since
/// every rule pass scopes on the workspace-relative path.
pub fn file_key(rel: &str, content: &str) -> u64 {
    let mut h = fnv64(rel.as_bytes());
    h ^= 0xff;
    h = h.wrapping_mul(0x0000_0100_0000_01b3);
    for &b in content.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the rule catalogue plus the analyzer revision: the
/// header every cache file must match.
pub fn fingerprint() -> u64 {
    let mut acc = String::new();
    for r in RULES {
        acc.push_str(r.name);
        acc.push('\u{1}');
        acc.push_str(r.summary);
        acc.push('\u{1}');
        acc.push_str(r.hint);
        acc.push('\u{1}');
    }
    fnv64(acc.as_bytes()) ^ u64::from(ANALYZER_REV)
}

/// Everything the pipeline derives from one source file in isolation.
#[derive(Debug, Clone, Default)]
pub struct SourceArtifact {
    /// Raw per-file findings (allow markers not yet applied — the walk
    /// applies them once, after merging in the cross-file findings).
    pub findings: Vec<Finding>,
    /// The file's `tidy:allow` markers.
    pub allows: Vec<AllowSite>,
    /// Parsed functions/calls/panic-sites for the call graph.
    pub summary: FileSummary,
    /// Identifier occurrence counts, capped at 2 (the shim-surface
    /// pass only distinguishes 0, 1, and "2 or more").
    pub idents: Vec<(String, u8)>,
    /// Exported items, for shim sources only.
    pub shim_items: Vec<ShimItem>,
}

/// The loaded (or freshly built) cache.
#[derive(Debug, Default)]
pub struct Cache {
    /// `path → (len, mtime_ns, key)`.
    stats: BTreeMap<String, (u64, u128, u64)>,
    arts: BTreeMap<u64, SourceArtifact>,
}

impl Cache {
    /// Loads a cache file; any anomaly (missing, wrong header, parse
    /// error, unknown rule name) yields an empty cache.
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = fs::read_to_string(path) else {
            return Cache::default();
        };
        parse_cache(&text).unwrap_or_default()
    }

    /// Stat-index lookup: the artifact key for `rel` if its length and
    /// mtime are unchanged since the cache was written.
    pub fn stat_key(&self, rel: &str, len: u64, mtime_ns: u128) -> Option<u64> {
        let &(l, m, key) = self.stats.get(rel)?;
        (l == len && m == mtime_ns && self.arts.contains_key(&key)).then_some(key)
    }

    /// Artifact lookup by content key.
    pub fn get(&self, key: u64) -> Option<&SourceArtifact> {
        self.arts.get(&key)
    }

    /// Records one file's artifact under its stat and content key.
    pub fn put(&mut self, rel: &str, len: u64, mtime_ns: u128, key: u64, art: SourceArtifact) {
        self.stats.insert(rel.to_string(), (len, mtime_ns, key));
        self.arts.insert(key, art);
    }

    /// Writes the cache atomically (temp file + rename).
    pub fn save(&self, path: &Path) -> Result<(), String> {
        let text = self.serialize();
        let tmp = path.with_extension("tmp");
        if let Some(dir) = path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        fs::write(&tmp, text).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        fs::rename(&tmp, path).map_err(|e| format!("rename {}: {e}", path.display()))
    }

    fn serialize(&self) -> String {
        let mut out = format!("tidy-cache {ANALYZER_REV} {:016x}\n", fingerprint());
        for (rel, &(len, mtime, key)) in &self.stats {
            out.push_str(&format!("stat\t{len}\t{mtime}\t{key:016x}\t{}\n", esc(rel)));
        }
        for (key, art) in &self.arts {
            out.push_str(&format!("art\t{key:016x}\n"));
            for f in &art.findings {
                out.push_str(&format!(
                    "F\t{}\t{}\t{}\t{}\n",
                    f.line,
                    f.rule,
                    esc(&f.path),
                    esc(&f.message)
                ));
            }
            for a in &art.allows {
                out.push_str(&format!(
                    "A\t{}\t{}\t{}\n",
                    a.line,
                    u8::from(a.justified),
                    esc(&a.rule)
                ));
            }
            for func in &art.summary.fns {
                out.push_str(&format!(
                    "N\t{}\t{}\t{}\t{}\n",
                    func.line,
                    u8::from(func.is_test),
                    esc(&func.owner),
                    esc(&func.name)
                ));
                for c in &func.calls {
                    let (tag, qual) = match &c.kind {
                        CallKind::Method => ("m", String::new()),
                        CallKind::Free => ("f", String::new()),
                        CallKind::Qual(q) => ("q", q.clone()),
                    };
                    out.push_str(&format!(
                        "C\t{}\t{tag}\t{}\t{}\n",
                        c.line,
                        esc(&c.name),
                        esc(&qual)
                    ));
                }
                for p in &func.panics {
                    out.push_str(&format!("P\t{}\t{}\n", p.line, esc(&p.what)));
                }
                for d in &func.dataflow {
                    let tag = match d.kind {
                        DataflowKind::HashIdent => "h",
                        DataflowKind::UnorderedFloatAccum => "u",
                        DataflowKind::PartialCmp => "p",
                    };
                    out.push_str(&format!("D\t{}\t{tag}\t{}\n", d.line, esc(&d.what)));
                }
            }
            for (name, count) in &art.idents {
                out.push_str(&format!("I\t{count}\t{}\n", esc(name)));
            }
            for item in &art.shim_items {
                out.push_str(&format!("S\t{}\t{}\n", item.line, esc(&item.name)));
            }
            out.push_str(".\n");
        }
        out
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            't' => out.push('\t'),
            'n' => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

/// Strict parse of a serialized cache: `None` on any anomaly.
fn parse_cache(text: &str) -> Option<Cache> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let expect = format!("tidy-cache {ANALYZER_REV} {:016x}", fingerprint());
    if header != expect {
        return None;
    }
    let mut cache = Cache::default();
    let mut cur: Option<(u64, SourceArtifact)> = None;
    for line in lines {
        let mut fields = line.split('\t');
        let tag = fields.next()?;
        match tag {
            "stat" => {
                let len: u64 = fields.next()?.parse().ok()?;
                let mtime: u128 = fields.next()?.parse().ok()?;
                let key = u64::from_str_radix(fields.next()?, 16).ok()?;
                let rel = unesc(fields.next()?)?;
                cache.stats.insert(rel, (len, mtime, key));
            }
            "art" => {
                if cur.is_some() {
                    return None; // unterminated previous artifact
                }
                let key = u64::from_str_radix(fields.next()?, 16).ok()?;
                cur = Some((key, SourceArtifact::default()));
            }
            "." => {
                let (key, art) = cur.take()?;
                cache.arts.insert(key, art);
            }
            "F" => {
                let (_, art) = cur.as_mut()?;
                let line_no: usize = fields.next()?.parse().ok()?;
                let rule = static_rule_name(fields.next()?)?;
                let path = unesc(fields.next()?)?;
                let message = unesc(fields.next()?)?;
                art.findings.push(Finding::raw(&path, line_no, rule, message));
            }
            "A" => {
                let (_, art) = cur.as_mut()?;
                let line_no: usize = fields.next()?.parse().ok()?;
                let justified = fields.next()? == "1";
                let rule = unesc(fields.next()?)?;
                art.allows.push(AllowSite {
                    line: line_no,
                    rule,
                    justified,
                });
            }
            "N" => {
                let (_, art) = cur.as_mut()?;
                let line_no: usize = fields.next()?.parse().ok()?;
                let is_test = fields.next()? == "1";
                let owner = unesc(fields.next()?)?;
                let name = unesc(fields.next()?)?;
                art.summary.fns.push(FnInfo {
                    name,
                    owner,
                    line: line_no,
                    is_test,
                    calls: Vec::new(),
                    panics: Vec::new(),
                    dataflow: Vec::new(),
                });
            }
            "C" => {
                let (_, art) = cur.as_mut()?;
                let line_no: usize = fields.next()?.parse().ok()?;
                let tag = fields.next()?;
                let name = unesc(fields.next()?)?;
                let qual = unesc(fields.next()?)?;
                let kind = match tag {
                    "m" => CallKind::Method,
                    "f" => CallKind::Free,
                    "q" => CallKind::Qual(qual),
                    _ => return None,
                };
                art.summary.fns.last_mut()?.calls.push(Call {
                    kind,
                    name,
                    line: line_no,
                });
            }
            "P" => {
                let (_, art) = cur.as_mut()?;
                let line_no: usize = fields.next()?.parse().ok()?;
                let what = unesc(fields.next()?)?;
                art.summary.fns.last_mut()?.panics.push(PanicSite {
                    line: line_no,
                    what,
                });
            }
            "D" => {
                let (_, art) = cur.as_mut()?;
                let line_no: usize = fields.next()?.parse().ok()?;
                let kind = match fields.next()? {
                    "h" => DataflowKind::HashIdent,
                    "u" => DataflowKind::UnorderedFloatAccum,
                    "p" => DataflowKind::PartialCmp,
                    _ => return None,
                };
                let what = unesc(fields.next()?)?;
                art.summary.fns.last_mut()?.dataflow.push(DataflowSite {
                    kind,
                    line: line_no,
                    what,
                });
            }
            "I" => {
                let (_, art) = cur.as_mut()?;
                let count: u8 = fields.next()?.parse().ok()?;
                let name = unesc(fields.next()?)?;
                art.idents.push((name, count));
            }
            "S" => {
                let (_, art) = cur.as_mut()?;
                let line_no: usize = fields.next()?.parse().ok()?;
                let name = unesc(fields.next()?)?;
                art.shim_items.push(ShimItem {
                    name,
                    line: line_no,
                });
            }
            _ => return None,
        }
    }
    if cur.is_some() {
        return None;
    }
    Some(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parse;
    use crate::rules;

    fn artifact_for(path: &str, src: &str) -> SourceArtifact {
        let blanked = lexer::blank(src);
        let findings = rules::scan_blanked(path, &blanked);
        let summary = parse::parse_blanked(&blanked.text);
        let mut idents: BTreeMap<String, u8> = BTreeMap::new();
        for id in rules::ident_set(src) {
            let c = idents.entry(id).or_insert(0);
            *c = (*c + 1).min(2);
        }
        SourceArtifact {
            findings,
            allows: blanked.allows,
            summary,
            idents: idents.into_iter().collect(),
            shim_items: Vec::new(),
        }
    }

    #[test]
    fn roundtrip_preserves_artifacts() {
        let src = "use std::collections::HashMap;\n\
                   // tidy:allow(hash-collections) -- test marker\n\
                   impl Platform { fn step(&mut self) { self.q.pop().unwrap(); } }\n\
                   fn free(m: &HashMap<u32, f64>) -> f64 {\n\
                       let mut t = 0.0f64;\n\
                       for v in m.values() { t += v; }\n\
                       t\n\
                   }\n";
        let path = "crates/faas/src/platform.rs";
        let art = artifact_for(path, src);
        assert!(!art.findings.is_empty());
        assert!(!art.allows.is_empty());
        assert_eq!(art.summary.fns.len(), 2);

        let key = file_key(path, src);
        let mut cache = Cache::default();
        cache.put(path, src.len() as u64, 42, key, art.clone());
        let text = cache.serialize();
        let back = parse_cache(&text).expect("roundtrip parses");
        assert_eq!(back.stat_key(path, src.len() as u64, 42), Some(key));
        let got = back.get(key).expect("artifact present");
        assert_eq!(got.findings.len(), art.findings.len());
        assert_eq!(got.findings[0].rule, art.findings[0].rule);
        assert_eq!(got.findings[0].message, art.findings[0].message);
        assert_eq!(got.allows.len(), art.allows.len());
        assert_eq!(got.summary.fns.len(), art.summary.fns.len());
        assert_eq!(got.summary.fns[0].calls.len(), art.summary.fns[0].calls.len());
        assert_eq!(got.summary.fns[0].panics.len(), art.summary.fns[0].panics.len());
        assert_eq!(
            got.summary.fns[1].dataflow.len(),
            art.summary.fns[1].dataflow.len()
        );
        assert_eq!(got.idents, art.idents);
    }

    #[test]
    fn wrong_header_drops_the_cache() {
        let mut cache = Cache::default();
        cache.put("a.rs", 1, 1, 7, SourceArtifact::default());
        let mut text = cache.serialize();
        text = text.replacen("tidy-cache", "tidy-cache-old", 1);
        assert!(parse_cache(&text).is_none());
    }

    #[test]
    fn truncated_artifact_drops_the_cache() {
        let mut cache = Cache::default();
        cache.put("a.rs", 1, 1, 7, SourceArtifact::default());
        let text = cache.serialize();
        let cut = text.rfind(".\n").unwrap();
        assert!(parse_cache(&text[..cut]).is_none());
    }

    #[test]
    fn escaping_survives_tabs_and_newlines() {
        assert_eq!(unesc(&esc("a\tb\nc\\d")).unwrap(), "a\tb\nc\\d");
    }

    #[test]
    fn stat_key_requires_exact_match() {
        let mut cache = Cache::default();
        cache.put("a.rs", 10, 99, 7, SourceArtifact::default());
        assert_eq!(cache.stat_key("a.rs", 10, 99), Some(7));
        assert_eq!(cache.stat_key("a.rs", 11, 99), None);
        assert_eq!(cache.stat_key("a.rs", 10, 98), None);
        assert_eq!(cache.stat_key("b.rs", 10, 99), None);
    }
}
