//! The workspace call graph and the three syntax-aware analyses.
//!
//! Nodes are the non-test functions extracted by [`crate::parse`];
//! edges are resolved *by name* (method calls to every workspace
//! method of that name, `Qual::name` calls through the qualifier,
//! free calls to free functions). That is an over-approximation — a
//! `.push(…)` anywhere may resolve to `CalendarQueue::push` — which is
//! exactly the right polarity for a lint: reachability never misses a
//! real path, and a spurious edge can be silenced at the panic site
//! with a justified `tidy:allow`.
//!
//! Three analyses run on the graph:
//!
//! * **panic-reachability** — from the declared hot-path roots (the
//!   platform event drain, the shard round drain, the Desiccant sweep,
//!   calendar-queue push/pop, snapshot decode), every transitively
//!   reachable `panic!`-family macro, `.unwrap()`, `.expect()`, or
//!   bare slice index is a finding. This replaces the old per-file
//!   textual `no-panic` rule: the old rule saw six files; this one
//!   sees every function a hot path can actually reach.
//! * **determinism-dataflow** — functions that canonical byte
//!   producers (`state_bytes`, `digest`, `snap`, checkpoint encoders)
//!   transitively call must not accumulate `f64`s over unordered
//!   iteration, compare floats non-totally, or touch hash collections:
//!   their results flow into the bytes and can differ run-to-run.
//! * **barrier-discipline** — inside `crates/cluster` (outside
//!   `shard.rs`), shard-mutating calls may only occur in the functions
//!   that own the barrier protocol: `advance` in the round drain,
//!   `plan_kill` in its forwarding method.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parse::{CallKind, DataflowKind, FileSummary};
use crate::rules::{in_sim_state_crate, Finding};

/// One declared hot-path root.
#[derive(Debug, Clone)]
pub struct Root {
    /// Workspace-relative path the root function lives in.
    pub path: &'static str,
    /// Owning type (`None` for free functions).
    pub owner: Option<&'static str>,
    /// Function name.
    pub name: &'static str,
}

/// The production root set: the hot paths whose panic-freedom the
/// platform's headline guarantees rest on.
pub const HOT_PATH_ROOTS: &[Root] = &[
    // The platform event drain (PR 2's typed-error discipline).
    Root { path: "crates/faas/src/platform.rs", owner: Some("Platform"), name: "try_run_until" },
    Root { path: "crates/faas/src/platform.rs", owner: Some("Platform"), name: "run_until" },
    // The cluster round drain: place → parallel shard drains → merge.
    Root { path: "crates/cluster/src/engine.rs", owner: Some("Cluster"), name: "run_round" },
    Root { path: "crates/cluster/src/shard.rs", owner: Some("Shard"), name: "advance" },
    // The Desiccant sweep (reclaim selection runs once per sweep tick).
    Root {
        path: "crates/desiccant/src/manager.rs",
        owner: Some("Desiccant"),
        name: "select_reclaims",
    },
    // The calendar queue's per-event operations.
    Root { path: "crates/faas/src/queue.rs", owner: Some("CalendarQueue"), name: "push" },
    Root { path: "crates/faas/src/queue.rs", owner: Some("CalendarQueue"), name: "pop" },
    // Snapshot decode faces arbitrary bytes during recovery.
    Root { path: "crates/snapshot/src/lib.rs", owner: None, name: "decode" },
    Root { path: "crates/snapshot/src/frame.rs", owner: Some("Container"), name: "open" },
];

/// Function names whose bodies produce canonical bytes: checkpoint
/// codecs, state digests, and report serialization. Reverse
/// reachability from these defines the digest-feeding set.
pub const BYTE_SINKS: &[&str] = &[
    "state_bytes",
    "digest",
    "snap",
    "checkpoint_base",
    "checkpoint_delta",
    "canonical_bytes",
];

/// Shard-mutating methods and the cluster-engine functions allowed to
/// call them (the barrier protocol's owners). Everything else in
/// `crates/cluster` outside `shard.rs` calling one of these has
/// bypassed the round structure.
pub const SHARD_MUTATORS: &[(&str, &[&str])] = &[
    ("advance", &["run_round"]),
    ("advance_dark", &["run_round"]),
    ("plan_kill", &["plan_kill"]),
];

/// Paths never entered into the call graph: harness/auditor code that
/// *drives* the simulation rather than being reachable from it, and
/// test-only sources. (Per-file token rules still scan these.)
fn graph_exempt(path: &str) -> bool {
    path.starts_with("crates/bench/")
        || path.starts_with("crates/xtask/")
        || path.starts_with("examples/")
        || path.starts_with("tests/")
        || path.starts_with("src/")
        || path.contains("/tests/")
        || path.contains("/benches/")
}

/// Crates whose digest-feeding functions the determinism-dataflow
/// analysis governs: the sim-state crates plus the checkpoint codec
/// and the heap/workload state it serializes.
fn in_dataflow_scope(path: &str) -> bool {
    in_sim_state_crate(path)
        || path.starts_with("crates/snapshot/src/")
        || path.starts_with("crates/gc-core/src/")
        || path.starts_with("crates/workloads/src/")
}

struct Node<'a> {
    path: &'a str,
    info: &'a crate::parse::FnInfo,
}

/// The resolved call graph over a set of file summaries.
pub struct Graph<'a> {
    nodes: Vec<Node<'a>>,
    /// Forward adjacency (caller → callees), deduplicated.
    edges: Vec<Vec<usize>>,
    /// Every non-exempt file path that went into the graph (root
    /// declarations are only checked for drift against present files).
    paths: BTreeSet<&'a str>,
}

impl<'a> Graph<'a> {
    /// Builds the graph from `(path, summary)` pairs, skipping test
    /// functions and graph-exempt paths.
    pub fn build(files: &'a [(String, FileSummary)]) -> Graph<'a> {
        let mut nodes = Vec::new();
        let mut paths = BTreeSet::new();
        for (path, summary) in files {
            if graph_exempt(path) {
                continue;
            }
            paths.insert(path.as_str());
            for info in &summary.fns {
                if !info.is_test {
                    nodes.push(Node { path, info });
                }
            }
        }
        // Resolution indexes.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut exact: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            if n.info.owner.is_empty() {
                free.entry(&n.info.name).or_default().push(i);
            } else {
                methods.entry(&n.info.name).or_default().push(i);
                exact
                    .entry((&n.info.owner, &n.info.name))
                    .or_default()
                    .push(i);
            }
        }
        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(nodes.len());
        for n in &nodes {
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for call in &n.info.calls {
                let name = call.name.as_str();
                match &call.kind {
                    CallKind::Method => {
                        if let Some(v) = methods.get(name) {
                            out.extend(v.iter().copied());
                        }
                    }
                    CallKind::Free => {
                        if let Some(v) = free.get(name) {
                            out.extend(v.iter().copied());
                        }
                    }
                    CallKind::Qual(q) => {
                        let owner = if q == "Self" { n.info.owner.as_str() } else { q.as_str() };
                        if let Some(v) = exact.get(&(owner, name)) {
                            out.extend(v.iter().copied());
                        } else if let Some(v) = free.get(name) {
                            out.extend(v.iter().copied());
                        } else if let Some(v) = methods.get(name) {
                            // `Type::method(recv)` UFCS form.
                            out.extend(
                                v.iter().copied().filter(|&i| nodes[i].info.owner == *owner),
                            );
                        }
                    }
                }
            }
            edges.push(out.into_iter().collect());
        }
        Graph { nodes, edges, paths }
    }

    fn label(&self, i: usize) -> String {
        let n = &self.nodes[i];
        if n.info.owner.is_empty() {
            n.info.name.clone()
        } else {
            format!("{}::{}", n.info.owner, n.info.name)
        }
    }

    /// Node indices matching a root spec: path equality, name equality,
    /// owner equality when given.
    fn resolve_root(&self, root: &Root) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.path == root.path
                    && n.info.name == root.name
                    && root.owner.is_none_or(|o| n.info.owner == o)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// BFS from `starts` over `adj`; returns the parent array
    /// (`usize::MAX` = unvisited, self-parent = start node).
    fn bfs(&self, starts: &[usize], adj: &[Vec<usize>]) -> Vec<usize> {
        let mut parent = vec![usize::MAX; self.nodes.len()];
        let mut q = VecDeque::new();
        for &s in starts {
            if parent[s] == usize::MAX {
                parent[s] = s;
                q.push_back(s);
            }
        }
        while let Some(u) = q.pop_front() {
            for &v in &adj[u] {
                if parent[v] == usize::MAX {
                    parent[v] = u;
                    q.push_back(v);
                }
            }
        }
        parent
    }

    /// The call chain root → … → `i`, as `A::b → C::d` labels,
    /// truncated in the middle when long.
    fn chain(&self, parent: &[usize], mut i: usize) -> String {
        let mut labels = vec![self.label(i)];
        while parent[i] != i {
            i = parent[i];
            labels.push(self.label(i));
        }
        labels.reverse();
        if labels.len() > 5 {
            let skipped = labels.len() - 4;
            let head = labels[..2].join(" → ");
            let tail = labels[labels.len() - 2..].join(" → ");
            format!("{head} → …{skipped} more… → {tail}")
        } else {
            labels.join(" → ")
        }
    }
}

/// Runs panic-reachability over the graph with the given root set.
/// Returns raw findings (allow markers are applied by the caller).
pub fn panic_reachability(graph: &Graph<'_>, roots: &[Root]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut starts = Vec::new();
    for root in roots {
        let matched = graph.resolve_root(root);
        // A root only counts as drifted when its file was scanned:
        // fixture/self-test runs hand the analysis a partial world.
        if matched.is_empty() && graph.paths.contains(root.path) {
            out.push(Finding::raw(
                root.path,
                1,
                "panic-reachability",
                format!(
                    "declared hot-path root `{}{}` not found — the analyzer's root set \
                     has drifted from the code",
                    root.owner.map(|o| format!("{o}::")).unwrap_or_default(),
                    root.name
                ),
            ));
        }
        starts.extend(matched);
    }
    let parent = graph.bfs(&starts, &graph.edges);
    for (i, n) in graph.nodes.iter().enumerate() {
        if parent[i] == usize::MAX {
            continue;
        }
        for site in &n.info.panics {
            out.push(Finding::raw(
                n.path,
                site.line,
                "panic-reachability",
                format!(
                    "`{}` is reachable from a hot-path root: {}",
                    site.what,
                    graph.chain(&parent, i)
                ),
            ));
        }
    }
    out
}

/// Runs determinism-dataflow: flags unordered float accumulation,
/// non-total float comparison, and hash collections in functions from
/// which a canonical-byte sink is reachable.
pub fn determinism_dataflow(graph: &Graph<'_>, sinks: &[&str]) -> Vec<Finding> {
    // Forward BFS *from* the sink nodes: data flows into canonical
    // bytes through the sink's callees (their return values and the
    // state they compute), so the digest-feeding set is everything a
    // sink transitively calls — the sinks themselves included.
    let sink_nodes: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| sinks.contains(&n.info.name.as_str()))
        .map(|(i, _)| i)
        .collect();
    let parent = graph.bfs(&sink_nodes, &graph.edges);
    let mut out = Vec::new();
    for (i, n) in graph.nodes.iter().enumerate() {
        if parent[i] == usize::MAX || !in_dataflow_scope(n.path) {
            continue;
        }
        // The nearest sink this function feeds, for the message.
        let mut j = i;
        while parent[j] != j {
            j = parent[j];
        }
        let sink = graph.label(j);
        for site in &n.info.dataflow {
            let (skip, msg) = match site.kind {
                // Hash collections in sim-state crates are already
                // banned wholesale by `hash-collections`.
                DataflowKind::HashIdent => (
                    in_sim_state_crate(n.path),
                    format!(
                        "{} in `{}`, whose results feed canonical bytes (`{sink}`): \
                         iteration order varies run-to-run",
                        site.what,
                        graph.label(i)
                    ),
                ),
                DataflowKind::UnorderedFloatAccum => (
                    false,
                    format!(
                        "{} in `{}` feeds canonical bytes (`{sink}`): f64 addition is not \
                         associative, so a varying order changes the digest",
                        site.what,
                        graph.label(i)
                    ),
                ),
                DataflowKind::PartialCmp => (
                    false,
                    format!(
                        "{} in `{}` feeds canonical bytes (`{sink}`): use total_cmp",
                        site.what,
                        graph.label(i)
                    ),
                ),
            };
            if !skip {
                out.push(Finding::raw(n.path, site.line, "determinism-dataflow", msg));
            }
        }
    }
    out
}

/// Runs barrier-discipline over the cluster crate: shard-mutating
/// calls outside their sanctioned owner functions are findings.
pub fn barrier_discipline(files: &[(String, FileSummary)]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (path, summary) in files {
        if !path.starts_with("crates/cluster/src/") || path == "crates/cluster/src/shard.rs" {
            continue;
        }
        for info in &summary.fns {
            if info.is_test {
                continue;
            }
            for call in &info.calls {
                let Some((_, allowed)) =
                    SHARD_MUTATORS.iter().find(|(m, _)| *m == call.name)
                else {
                    continue;
                };
                let relevant = match &call.kind {
                    CallKind::Method => true,
                    CallKind::Qual(q) => q == "Shard",
                    CallKind::Free => false,
                };
                if relevant && !allowed.contains(&info.name.as_str()) {
                    out.push(Finding::raw(
                        path,
                        call.line,
                        "barrier-discipline",
                        format!(
                            "shard-mutating call `.{}(…)` in `{}`: shards may only be \
                             mutated inside the barrier round ({})",
                            call.name,
                            info.name,
                            allowed.join(", ")
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Runs all three graph analyses with the production configuration.
pub fn analyze(files: &[(String, FileSummary)]) -> Vec<Finding> {
    let graph = Graph::build(files);
    let mut out = panic_reachability(&graph, HOT_PATH_ROOTS);
    out.extend(determinism_dataflow(&graph, BYTE_SINKS));
    out.extend(barrier_discipline(files));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;

    fn files(srcs: &[(&str, &str)]) -> Vec<(String, FileSummary)> {
        srcs.iter()
            .map(|(p, s)| ((*p).to_string(), parse_file(s)))
            .collect()
    }

    #[test]
    fn panic_reaches_through_two_hops() {
        let fs = files(&[(
            "crates/faas/src/platform.rs",
            "impl Platform {\n\
             pub fn try_run_until(&mut self) { self.step(); }\n\
             fn step(&mut self) { helper(self); }\n\
             }\n\
             fn helper(p: &mut Platform) { p.slots.get(0).unwrap(); }\n",
        )]);
        let graph = Graph::build(&fs);
        let findings = panic_reachability(&graph, HOT_PATH_ROOTS);
        // The two declared Platform roots resolve (run_until is absent
        // here, so it reports drift) — filter to the reachable-panic
        // finding.
        let hits: Vec<_> = findings
            .iter()
            .filter(|f| f.message.contains(".unwrap()"))
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].line, 5);
        assert!(hits[0].message.contains("try_run_until"), "{:?}", hits[0]);
    }

    #[test]
    fn unreached_panics_are_clean() {
        let fs = files(&[(
            "crates/faas/src/platform.rs",
            "impl Platform { pub fn try_run_until(&mut self) { fine(); } }\n\
             impl Platform { pub fn run_until(&mut self) { self.try_run_until(); } }\n\
             fn fine() {}\n\
             fn cold_path() { boom.unwrap(); }\n",
        )]);
        let graph = Graph::build(&fs);
        let findings = panic_reachability(
            &graph,
            &[
                Root {
                    path: "crates/faas/src/platform.rs",
                    owner: Some("Platform"),
                    name: "try_run_until",
                },
                Root {
                    path: "crates/faas/src/platform.rs",
                    owner: Some("Platform"),
                    name: "run_until",
                },
            ],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn missing_root_reports_drift() {
        let fs = files(&[("crates/faas/src/platform.rs", "fn unrelated() {}\n")]);
        let graph = Graph::build(&fs);
        let findings = panic_reachability(
            &graph,
            &[Root {
                path: "crates/faas/src/platform.rs",
                owner: Some("Platform"),
                name: "try_run_until",
            }],
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("drifted"), "{findings:?}");
    }

    #[test]
    fn test_fns_neither_root_nor_reach() {
        let fs = files(&[(
            "crates/faas/src/queue.rs",
            "impl CalendarQueue { pub fn push(&mut self) { ok(); } \
             pub fn pop(&mut self) { ok(); } }\n\
             fn ok() {}\n\
             #[cfg(test)]\nmod tests {\n#[test]\nfn t() { broken().unwrap(); }\n}\n",
        )]);
        let graph = Graph::build(&fs);
        let findings = panic_reachability(
            &graph,
            &[
                Root { path: "crates/faas/src/queue.rs", owner: Some("CalendarQueue"), name: "push" },
                Root { path: "crates/faas/src/queue.rs", owner: Some("CalendarQueue"), name: "pop" },
            ],
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn dataflow_flags_only_digest_feeding_fns() {
        let fs = files(&[(
            "crates/cluster/src/router.rs",
            "impl Router {\n\
             pub fn state_bytes(&self) -> Vec<u8> { encode_stuff(self.total) }\n\
             fn refresh(&mut self, m: &Map) {\n\
                 let mut t = 0.0f64;\n\
                 for v in m.values() { t += v; }\n\
                 self.total = t;\n\
             }\n\
             fn unrelated(&self, m: &Map) -> f64 {\n\
                 let mut t = 0.0f64;\n\
                 for v in m.values() { t += v; }\n\
                 t\n\
             }\n\
             }\n\
             fn encode_stuff(total: f64) -> Vec<u8> { Vec::new() }\n",
        )]);
        // `refresh` is neither a sink nor called by one, so the
        // digest-feeding set must not include it; `helper` below IS
        // called by the sink and must be flagged.
        let fs2 = files(&[(
            "crates/cluster/src/router.rs",
            "impl Router {\n\
             pub fn state_bytes(&self) -> Vec<u8> { self.helper() }\n\
             fn helper(&self) -> Vec<u8> {\n\
                 let mut t = 0.0f64;\n\
                 for v in self.map.values() { t += v; }\n\
                 encode_stuff(t)\n\
             }\n\
             }\n\
             fn encode_stuff(total: f64) -> Vec<u8> { Vec::new() }\n",
        )]);
        let g2 = Graph::build(&fs2);
        let findings = determinism_dataflow(&g2, BYTE_SINKS);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("state_bytes"), "{findings:?}");

        // The original: refresh/unrelated never reach a sink → clean.
        let g1 = Graph::build(&fs);
        let findings = determinism_dataflow(&g1, BYTE_SINKS);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn barrier_discipline_allows_run_round_only() {
        let fs = files(&[(
            "crates/cluster/src/engine.rs",
            "impl Cluster {\n\
             fn run_round(&mut self, b: SimTime) { self.shards[0].lock().advance(b); }\n\
             fn sneaky(&mut self, b: SimTime) { self.shards[0].lock().advance(b); }\n\
             pub fn plan_kill(&mut self, plan: CrashPlan) { self.shards[0].lock().plan_kill(plan); }\n\
             }\n",
        )]);
        let findings = barrier_discipline(&fs);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);
        assert!(findings[0].message.contains("sneaky"), "{findings:?}");
    }
}
