//! A minimal Rust lexer for the tidy passes.
//!
//! The environment has no crates.io access, so this is modelled on
//! rustc's `tidy` rather than `syn`: instead of parsing, it *blanks*
//! everything that is not code — comments (line, doc, and nested block
//! comments), string literals (plain, raw `r#"…"#`, byte, and raw
//! byte), and char/byte-char literals — replacing each such byte with a
//! space while preserving newlines. Rule passes then scan the blanked
//! text knowing that every identifier they see is a real token, and
//! that byte offsets map 1:1 onto the original source for line
//! reporting.
//!
//! Comments are not discarded before blanking: they are first searched
//! for `// tidy:allow(<rule>) -- <justification>` markers, which feed
//! the allowlist machinery in [`crate::rules`].

/// One `tidy:allow(...)` marker occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowSite {
    /// 1-based line the marker starts on.
    pub line: usize,
    /// The rule name inside the parentheses (one site per name when a
    /// marker lists several).
    pub rule: String,
    /// Whether the marker carries a `-- justification` tail.
    pub justified: bool,
}

/// The blanked view of one source file.
#[derive(Debug)]
pub struct Blanked {
    /// Same byte length as the input; comment and literal bytes are
    /// spaces, newlines are preserved everywhere.
    pub text: String,
    /// Every `tidy:allow` marker found in comments, in source order.
    pub allows: Vec<AllowSite>,
}

/// Blanks `source`, returning code-only text plus the allow markers.
pub fn blank(source: &str) -> Blanked {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut allows = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            parse_markers(&source[start..i], line, &mut allows);
            out.resize(out.len() + (i - start), b' ');
        } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1u32;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            parse_markers(&source[start..i], start_line, &mut allows);
            blank_span(&bytes[start..i], &mut out);
        } else if b == b'"' {
            i = blank_plain_string(source, i, &mut out, &mut line);
        } else if (b == b'r' || b == b'b') && !prev_is_ident(bytes, i) {
            match literal_prefix(bytes, i) {
                Some(Prefix::Raw { hashes, body }) => {
                    i = blank_raw_string(source, i, body, hashes, &mut out, &mut line);
                }
                Some(Prefix::Plain { body }) => {
                    blank_span(&bytes[i..body], &mut out);
                    i = blank_plain_string(source, body, &mut out, &mut line);
                }
                Some(Prefix::Byte { body }) => {
                    blank_span(&bytes[i..body], &mut out);
                    i = blank_char(source, body, &mut out, &mut line);
                }
                None => {
                    out.push(b);
                    i += 1;
                }
            }
        } else if b == b'\'' {
            i = blank_char_or_lifetime(source, i, &mut out, &mut line);
        } else {
            if b == b'\n' {
                line += 1;
            }
            out.push(b);
            i += 1;
        }
    }
    let text = String::from_utf8(out).expect("blanking preserves or spaces out every byte");
    Blanked { text, allows }
}

/// What a `r`/`b` sighting introduces.
enum Prefix {
    /// `r"`, `r#"`, `br##"` …: raw string; `body` is the index of the
    /// opening quote, `hashes` the number of `#`s.
    Raw { hashes: usize, body: usize },
    /// `b"`: byte string; `body` is the index of the quote.
    Plain { body: usize },
    /// `b'`: byte char; `body` is the index of the quote.
    Byte { body: usize },
}

fn literal_prefix(bytes: &[u8], i: usize) -> Option<Prefix> {
    let mut j = i;
    let mut saw_b = false;
    if bytes[j] == b'b' {
        saw_b = true;
        j += 1;
    }
    let saw_r = bytes.get(j) == Some(&b'r');
    if saw_r {
        j += 1;
        let mut hashes = 0;
        while bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if bytes.get(j) == Some(&b'"') {
            return Some(Prefix::Raw { hashes, body: j });
        }
        return None; // `r#ident` raw identifier, or plain ident
    }
    if saw_b {
        match bytes.get(j) {
            Some(&b'"') => return Some(Prefix::Plain { body: j }),
            Some(&b'\'') => return Some(Prefix::Byte { body: j }),
            _ => return None,
        }
    }
    None
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// Pushes spaces for every byte of `span`, keeping newlines.
fn blank_span(span: &[u8], out: &mut Vec<u8>) {
    for &c in span {
        out.push(if c == b'\n' { b'\n' } else { b' ' });
    }
}

/// Blanks a `"…"` string starting at the opening quote; returns the
/// index just past the closing quote.
fn blank_plain_string(source: &str, start: usize, out: &mut Vec<u8>, line: &mut usize) -> usize {
    let bytes = source.as_bytes();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            // An escaped newline is a line continuation: the escape
            // consumes the newline, but the line counter must not
            // miss it or every later marker drifts.
            b'\\' => {
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => {
                i += 1;
                break;
            }
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    let end = i.min(bytes.len());
    blank_span(&bytes[start..end], out);
    end
}

/// Blanks a raw string whose opening quote sits at `quote` with
/// `hashes` leading `#`s (the prefix `start..quote` is blanked too).
fn blank_raw_string(
    source: &str,
    start: usize,
    quote: usize,
    hashes: usize,
    out: &mut Vec<u8>,
    line: &mut usize,
) -> usize {
    let bytes = source.as_bytes();
    let mut i = quote + 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if bytes[i] == b'"' && bytes[i + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes {
            i += 1 + hashes;
            break;
        }
        i += 1;
    }
    let end = i.min(bytes.len());
    blank_span(&bytes[start..end], out);
    end
}

/// Blanks a char (or byte-char) literal starting at the quote; returns
/// the index just past the closing quote.
fn blank_char(source: &str, start: usize, out: &mut Vec<u8>, line: &mut usize) -> usize {
    let bytes = source.as_bytes();
    let mut i = start + 1;
    if bytes.get(i) == Some(&b'\\') {
        i += 2; // skip the escape introducer and the escaped byte
        while i < bytes.len() && bytes[i] != b'\'' {
            i += 1; // \u{…} and friends
        }
        i += 1;
    } else {
        let w = source[i..].chars().next().map_or(1, char::len_utf8);
        i += w + 1;
    }
    let end = i.min(bytes.len());
    for &c in &bytes[start..end] {
        if c == b'\n' {
            *line += 1;
        }
    }
    blank_span(&bytes[start..end], out);
    end
}

/// At a `'` in code position: blanks a char literal, or passes a
/// lifetime/label through untouched.
fn blank_char_or_lifetime(source: &str, start: usize, out: &mut Vec<u8>, line: &mut usize) -> usize {
    let bytes = source.as_bytes();
    if bytes.get(start + 1) == Some(&b'\\') {
        return blank_char(source, start, out, line);
    }
    if let Some(ch) = source[start + 1..].chars().next() {
        let w = ch.len_utf8();
        if bytes.get(start + 1 + w) == Some(&b'\'') {
            return blank_char(source, start, out, line);
        }
    }
    // A lifetime (`'a`) or loop label: real code, keep it.
    out.push(b'\'');
    start + 1
}

/// Extracts `tidy:allow(<rule>) -- <why>` markers from one comment's
/// text. Rule names must be lowercase-kebab (`[a-z][a-z0-9-]*`);
/// anything else — like the `<rule>` placeholder in prose describing
/// the syntax — is not a marker.
fn parse_markers(comment: &str, line: usize, allows: &mut Vec<AllowSite>) {
    const NEEDLE: &str = "tidy:allow(";
    let mut rest = comment;
    while let Some(pos) = rest.find(NEEDLE) {
        let after = &rest[pos + NEEDLE.len()..];
        let Some(close) = after.find(')') else { break };
        let tail = after[close + 1..].trim_start();
        let justified = tail
            .strip_prefix("--")
            .is_some_and(|j| j.trim().chars().filter(|c| c.is_alphanumeric()).count() >= 3);
        for rule in after[..close].split(',') {
            let rule = rule.trim();
            if is_rule_name(rule) {
                allows.push(AllowSite {
                    line,
                    rule: rule.to_string(),
                    justified,
                });
            }
        }
        rest = &after[close + 1..];
    }
}

fn is_rule_name(s: &str) -> bool {
    let mut chars = s.chars();
    chars.next().is_some_and(|c| c.is_ascii_lowercase())
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

/// Byte offsets of each line start, for offset→line lookups.
pub fn line_starts(text: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// 1-based line containing byte `pos`.
pub fn line_of(starts: &[usize], pos: usize) -> usize {
    starts.partition_point(|&s| s <= pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blanked(src: &str) -> String {
        blank(src).text
    }

    #[test]
    fn line_comments_are_blanked() {
        let out = blanked("let x = 1; // HashMap here\nlet y = 2;");
        assert!(!out.contains("HashMap"));
        assert!(out.contains("let y = 2;"));
        assert_eq!(out.len(), "let x = 1; // HashMap here\nlet y = 2;".len());
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let out = blanked(src);
        assert!(!out.contains("inner"));
        assert!(!out.contains("still"));
        assert!(out.starts_with('a'));
        assert!(out.ends_with('b'));
    }

    #[test]
    fn block_comment_preserves_line_numbers() {
        let src = "a\n/* one\ntwo\nthree */\nunwrap";
        let out = blanked(src);
        let starts = line_starts(&out);
        let pos = out.find("unwrap").unwrap();
        assert_eq!(line_of(&starts, pos), 5);
    }

    #[test]
    fn strings_are_blanked_including_escapes() {
        let out = blanked(r#"let s = "say \"HashMap\""; use_it(s);"#);
        assert!(!out.contains("HashMap"));
        assert!(out.contains("use_it(s);"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"contains "quotes" and // HashMap"#; after();"###;
        let out = blanked(src);
        assert!(!out.contains("HashMap"));
        assert!(!out.contains("quotes"));
        assert!(out.contains("after();"));
    }

    #[test]
    fn raw_string_terminator_needs_matching_hashes() {
        // `"#` inside an `r##"…"##` literal must not close it.
        let src = r####"let s = r##"inner "# still in"##; done();"####;
        let out = blanked(src);
        assert!(!out.contains("still"));
        assert!(out.contains("done();"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let out = blanked(r##"let a = b"HashMap"; let b2 = br#"HashSet"#; keep();"##);
        assert!(!out.contains("HashMap"));
        assert!(!out.contains("HashSet"));
        assert!(out.contains("keep();"));
    }

    #[test]
    fn char_literals_with_quote_and_comment_chars() {
        let out = blanked("let a = '\"'; let b = '/'; let c = '\\''; let d = '*'; end()");
        assert!(out.contains("end()"));
        // None of the literal contents survive.
        assert!(!out.contains('"'));
        assert!(!out.contains('/'));
        assert!(!out.contains('*'));
    }

    #[test]
    fn char_literal_slash_does_not_open_comment() {
        let out = blanked("let a = '/'; real_code()");
        assert!(out.contains("real_code()"));
    }

    #[test]
    fn lifetimes_survive() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let out = blanked(src);
        assert_eq!(out, src);
    }

    #[test]
    fn unicode_char_literal() {
        let out = blanked("let arrow = '→'; tail()");
        assert!(out.contains("tail()"));
        assert!(!out.contains('→'));
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let src = "let r#type = 1; let x = r#type;";
        let out = blanked(src);
        assert_eq!(out, src);
    }

    #[test]
    fn ident_ending_in_r_before_string() {
        let out = blanked(r#"var"HashMap""#);
        assert!(out.starts_with("var"));
        assert!(!out.contains("HashMap"));
    }

    #[test]
    fn marker_parsing_single_rule() {
        let b = blank("foo(); // tidy:allow(no-panic) -- documented invariant\n");
        assert_eq!(b.allows.len(), 1);
        assert_eq!(b.allows[0].rule, "no-panic");
        assert_eq!(b.allows[0].line, 1);
        assert!(b.allows[0].justified);
    }

    #[test]
    fn marker_parsing_multiple_rules_and_missing_justification() {
        let b = blank("// tidy:allow(no-panic, lossy-casts)\nx();\n");
        assert_eq!(b.allows.len(), 2);
        assert_eq!(b.allows[0].rule, "no-panic");
        assert_eq!(b.allows[1].rule, "lossy-casts");
        assert!(!b.allows[0].justified);
        assert!(!b.allows[1].justified);
    }

    #[test]
    fn marker_justification_requires_substance() {
        let b = blank("// tidy:allow(no-panic) -- x\n");
        assert!(!b.allows[0].justified, "a bare `-- x` is not a justification");
    }

    #[test]
    fn marker_line_is_recorded() {
        let b = blank("line1();\nline2(); // tidy:allow(wall-clock) -- bench timing only\n");
        assert_eq!(b.allows[0].line, 2);
    }

    #[test]
    fn string_line_continuation_keeps_line_count() {
        // The `\` + newline continuation inside the string must still
        // advance the line counter, or markers after it drift.
        let src = "let s = \"a \\\n   b\";\n// tidy:allow(wall-clock) -- counted correctly\n";
        let b = blank(src);
        assert_eq!(b.allows[0].line, 3);
    }
}
