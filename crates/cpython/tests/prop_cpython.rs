//! Property tests for the CPython model: refcounting must agree with
//! tracing on acyclic graphs, never free live data, and reclaim must be
//! safe and effective.

use cpython_heap::{CPythonConfig, CPythonHeap};
use gc_core::trace::mark;
use proptest::prelude::*;
use simos::System;

#[derive(Debug, Clone)]
struct Invocation {
    temps: u8,
    size: u32,
    cycles: u8,
    keeps: u8,
}

fn invocation() -> impl Strategy<Value = Invocation> {
    (1u8..40, 16u32..4000, 0u8..6, 0u8..3).prop_map(|(temps, size, cycles, keeps)| Invocation {
        temps,
        size,
        cycles,
        keeps,
    })
}

fn world() -> (System, CPythonHeap) {
    let mut sys = System::new();
    let pid = sys.spawn_process();
    let heap = CPythonHeap::new(&mut sys, pid, CPythonConfig::default()).unwrap();
    (sys, heap)
}

fn run_invocation(sys: &mut System, heap: &mut CPythonHeap, inv: &Invocation) -> u64 {
    let scope = heap.graph_mut().push_handle_scope();
    let mut prev = None;
    for i in 0..inv.temps {
        let id = heap.alloc(sys, inv.size).unwrap();
        heap.graph_mut().add_handle(id);
        if let Some(p) = prev {
            if i % 2 == 0 {
                heap.graph_mut().add_ref(id, p);
            }
        }
        prev = Some(id);
    }
    for _ in 0..inv.cycles {
        let a = heap.alloc(sys, inv.size).unwrap();
        heap.graph_mut().add_handle(a);
        let b = heap.alloc(sys, inv.size).unwrap();
        heap.graph_mut().add_handle(b);
        heap.graph_mut().add_ref(a, b);
        heap.graph_mut().add_ref(b, a);
    }
    let mut kept = 0;
    for _ in 0..inv.keeps {
        let id = heap.alloc(sys, inv.size).unwrap();
        heap.graph_mut().add_global(id);
        kept += inv.size as u64;
    }
    heap.graph_mut().pop_handle_scope(scope);
    kept
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After a refcount pass, everything still in the graph is either
    /// live or cyclic garbage — there is no acyclic dead object left.
    #[test]
    fn refcounting_leaves_only_live_and_cycles(invs in prop::collection::vec(invocation(), 1..6)) {
        let (mut sys, mut heap) = world();
        for inv in &invs {
            run_invocation(&mut sys, &mut heap, inv);
            heap.refcount_pass(&mut sys).unwrap();
        }
        let live = mark(heap.graph(), false, true);
        // Every remaining dead object must have an incoming reference
        // from another remaining dead object (i.e. nonzero refcount).
        for (id, _) in heap.graph().iter() {
            if live.is_live(id) {
                continue;
            }
            let referenced = heap
                .graph()
                .iter()
                .any(|(o, obj)| o != id && !live.is_live(o) && obj.refs.contains(&id))
                || heap.graph().get(id).refs.contains(&id);
            prop_assert!(referenced, "acyclic dead object survived refcounting");
        }
    }

    /// Retained bytes are exact after any sequence of passes, and the
    /// cycle collector leaves exactly the live set.
    #[test]
    fn collector_preserves_exactly_the_live_set(invs in prop::collection::vec(invocation(), 1..6)) {
        let (mut sys, mut heap) = world();
        let mut kept = 0;
        for inv in &invs {
            kept += run_invocation(&mut sys, &mut heap, inv);
            heap.refcount_pass(&mut sys).unwrap();
        }
        heap.cycle_collect(&mut sys).unwrap();
        let live = mark(heap.graph(), false, true);
        prop_assert_eq!(live.live_bytes, kept);
        // Object count equals keeps (nothing else survives a full
        // collection).
        prop_assert_eq!(live.live_objects as u64, heap.graph().object_count() as u64);
    }

    /// Reclaim never loses live data, releases monotonically, and the
    /// heap stays usable.
    #[test]
    fn reclaim_is_safe(invs in prop::collection::vec(invocation(), 1..6)) {
        let (mut sys, mut heap) = world();
        let mut kept = 0;
        for inv in &invs {
            kept += run_invocation(&mut sys, &mut heap, inv);
        }
        let resident_before = heap.resident_heap_bytes(&sys);
        let out = heap.reclaim(&mut sys).unwrap();
        prop_assert_eq!(out.live_bytes, kept);
        prop_assert!(heap.resident_heap_bytes(&sys) <= resident_before);
        // Still usable.
        for inv in &invs {
            run_invocation(&mut sys, &mut heap, inv);
        }
    }

    /// Allocator conservation: committed bytes never go below resident,
    /// and dropping everything empties the heap completely (arenas
    /// unmap when fully free).
    #[test]
    fn full_drop_unmaps_everything(invs in prop::collection::vec(invocation(), 1..5)) {
        let (mut sys, mut heap) = world();
        for inv in &invs {
            run_invocation(&mut sys, &mut heap, inv);
            prop_assert!(heap.resident_heap_bytes(&sys) <= heap.committed());
        }
        // Drop the globals too, then collect: every arena must unmap.
        let globals: Vec<_> = heap.graph().globals().to_vec();
        for g in globals {
            heap.graph_mut().remove_global(g);
        }
        heap.cycle_collect(&mut sys).unwrap();
        prop_assert_eq!(heap.committed(), 0, "empty heap still maps arenas");
        prop_assert_eq!(heap.resident_heap_bytes(&sys), 0);
    }
}
