//! The CPython object lifecycle: refcounting, the cycle collector, and
//! the Desiccant reclaim.

use std::collections::VecDeque;

use gc_core::object::{HeapGraph, ObjectId, ObjectKind};
use gc_core::stats::{GcCostModel, GcCounters, GcKind};
use gc_core::trace::mark;
use simos::cost::CostModel;
use simos::{Pid, SimDuration, System, VirtAddr};

use crate::arena::ArenaAllocator;

/// Configuration of a [`CPythonHeap`].
#[derive(Debug, Clone, Copy)]
pub struct CPythonConfig {
    /// Upper bound on mapped memory.
    pub max_heap: u64,
    /// Allocations since the last cycle collection that trigger the
    /// next one (models `gc.set_threshold`'s generation-0 counter, at
    /// object granularity).
    pub gc_allocation_threshold: u64,
}

impl Default for CPythonConfig {
    fn default() -> CPythonConfig {
        CPythonConfig {
            max_heap: 192 << 20,
            gc_allocation_threshold: 700,
        }
    }
}

/// Result of a [`CPythonHeap::reclaim`].
#[derive(Debug, Clone, Copy)]
pub struct CPythonReclaimOutcome {
    /// Bytes released back to the OS.
    pub released_bytes: u64,
    /// Live bytes after the collection.
    pub live_bytes: u64,
    /// Simulated wall time of the reclamation.
    pub wall_time: SimDuration,
}

/// A CPython heap bound to one simulated process.
#[derive(Debug, Clone)]
pub struct CPythonHeap {
    pid: Pid,
    config: CPythonConfig,
    graph: HeapGraph,
    allocator: ArenaAllocator,
    counters: GcCounters,
    gc_cost: GcCostModel,
    os_cost: CostModel,
    pending: SimDuration,
    last_live_bytes: u64,
    allocs_since_gc: u64,
}

impl CPythonHeap {
    /// Creates an empty heap in process `pid`.
    pub fn new(sys: &mut System, pid: Pid, config: CPythonConfig) -> Result<CPythonHeap, simos::SimOsError> {
        let _ = sys;
        Ok(CPythonHeap {
            pid,
            config,
            graph: HeapGraph::new(),
            allocator: ArenaAllocator::new(),
            counters: GcCounters::default(),
            gc_cost: GcCostModel::default(),
            os_cost: CostModel::default(),
            pending: SimDuration::ZERO,
            last_live_bytes: 0,
            allocs_since_gc: 0,
        })
    }

    /// The object graph.
    pub fn graph(&self) -> &HeapGraph {
        &self.graph
    }

    /// Mutable object graph.
    pub fn graph_mut(&mut self) -> &mut HeapGraph {
        &mut self.graph
    }

    /// Allocator counters.
    pub fn allocator(&self) -> &ArenaAllocator {
        &self.allocator
    }

    /// Cumulative collector counters.
    pub fn counters(&self) -> &GcCounters {
        &self.counters
    }

    /// Live bytes found by the most recent collection pass.
    pub fn last_live_bytes(&self) -> u64 {
        self.last_live_bytes
    }

    /// Mapped bytes.
    pub fn committed(&self) -> u64 {
        self.allocator.committed()
    }

    /// Resident heap bytes.
    pub fn resident_heap_bytes(&self, sys: &System) -> u64 {
        self.allocator.resident_bytes(sys, self.pid)
    }

    /// Drains accrued latency.
    pub fn take_elapsed(&mut self) -> SimDuration {
        std::mem::take(&mut self.pending)
    }

    /// Allocates a data object of `size` bytes.
    pub fn alloc(&mut self, sys: &mut System, size: u32) -> Result<ObjectId, simos::SimOsError> {
        if self.committed() + u64::from(size) > self.config.max_heap {
            // Like CPython under memory pressure: collect cycles, then
            // retry; a real MemoryError is out of model scope because
            // the drivers are calibrated to fit.
            self.cycle_collect(sys)?;
        }
        // The threshold collection runs *before* the new allocation so
        // the fresh (not yet rooted) object cannot be swept by its own
        // allocating call.
        self.allocs_since_gc += 1;
        if self.allocs_since_gc >= self.config.gc_allocation_threshold {
            self.cycle_collect(sys)?;
        }
        let addr = self.allocator.alloc(sys, self.pid, size)?;
        self.pending += self.os_cost.zero_fill_fault; // rough touch charge
        let id = self.graph.alloc(size, ObjectKind::Data);
        self.graph.set_addr(id, addr.0);
        Ok(id)
    }

    /// The refcounting pass: frees every dead object *not* on (or
    /// reachable from) a reference cycle, exactly the set CPython's
    /// refcounts free at `Py_DECREF` time. Runs at invocation exit in
    /// the drivers.
    ///
    /// Implementation: Kahn's cascade over the dead subgraph — an
    /// object's refcount is its in-degree among not-yet-freed objects,
    /// so repeatedly freeing zero-in-degree dead objects reproduces the
    /// cascade of `Py_DECREF`s; whatever survives is cyclic garbage
    /// awaiting the cycle collector.
    pub fn refcount_pass(&mut self, sys: &mut System) -> Result<u64, simos::SimOsError> {
        let live = mark(&self.graph, true, true);
        let cap = self.graph.slot_capacity();
        // In-degree of each dead object from other dead objects.
        let mut indeg = vec![0u32; cap];
        for (id, obj) in self.graph.iter() {
            if live.is_live(id) {
                continue;
            }
            for r in &obj.refs {
                if !live.is_live(*r) {
                    indeg[r.index()] += 1;
                }
            }
        }
        let mut queue: VecDeque<ObjectId> = self
            .graph
            .iter()
            .filter(|(id, _)| !live.is_live(*id) && indeg[id.index()] == 0)
            .map(|(id, _)| id)
            .collect();
        let mut freed_ids = Vec::new();
        let mut freed_flag = vec![false; cap];
        while let Some(id) = queue.pop_front() {
            freed_flag[id.index()] = true;
            freed_ids.push(id);
            for r in self.graph.get(id).refs.clone() {
                if live.is_live(r) || freed_flag[r.index()] {
                    continue;
                }
                indeg[r.index()] -= 1;
                if indeg[r.index()] == 0 {
                    queue.push_back(r);
                }
            }
        }
        // Return memory, then drop the slots: everything NOT freed
        // stays (live objects and cyclic garbage).
        let mut freed_bytes = 0;
        for &id in &freed_ids {
            let obj = self.graph.get(id);
            let (addr, size) = (VirtAddr(obj.addr), obj.size);
            self.allocator.free(sys, self.pid, addr, size)?;
            freed_bytes += u64::from(size);
        }
        let mut keep = vec![true; cap];
        for &id in &freed_ids {
            keep[id.index()] = false;
        }
        self.graph.sweep(&keep);
        self.last_live_bytes = live.live_bytes;
        Ok(freed_bytes)
    }

    /// The cycle collector (`gc.collect()`): frees *all* dead objects,
    /// cyclic or not.
    pub fn cycle_collect(&mut self, sys: &mut System) -> Result<u64, simos::SimOsError> {
        let live = mark(&self.graph, true, true);
        self.last_live_bytes = live.live_bytes;
        let dead: Vec<(ObjectId, u64, u32)> = self
            .graph
            .iter()
            .filter(|(id, _)| !live.is_live(*id))
            .map(|(id, o)| (id, o.addr, o.size))
            .collect();
        let mut freed_bytes = 0;
        for &(_, addr, size) in &dead {
            self.allocator.free(sys, self.pid, VirtAddr(addr), size)?;
            freed_bytes += u64::from(size);
        }
        self.graph.sweep(&live.marks);
        let pause = self.gc_cost.full_pause(live.live_objects, 0);
        self.pending += pause;
        self.counters.record(GcKind::Full, 0, 0, freed_bytes, pause);
        self.allocs_since_gc = 0;
        Ok(freed_bytes)
    }

    /// The Desiccant reclaim sketched in §7: run the cycle collector,
    /// then release every whole-free page inside partially-used arenas
    /// (the free lists tell the manager which regions are free; stock
    /// CPython would keep them resident).
    pub fn reclaim(&mut self, sys: &mut System) -> Result<CPythonReclaimOutcome, simos::SimOsError> {
        let pending_before = self.pending;
        self.cycle_collect(sys)?;
        let released = self.allocator.release_free_pages(sys, self.pid)?;
        self.pending += self.os_cost.release_cost(released);
        Ok(CPythonReclaimOutcome {
            released_bytes: released,
            live_bytes: self.last_live_bytes,
            wall_time: self.pending.saturating_sub(pending_before),
        })
    }
}

mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for CPythonConfig {
        fn snap(&self, w: &mut Writer) {
            let Self {
                max_heap,
                gc_allocation_threshold,
            } = self;
            max_heap.snap(w);
            gc_allocation_threshold.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<CPythonConfig, SnapError> {
            Ok(CPythonConfig {
                max_heap: u64::restore(r)?,
                gc_allocation_threshold: u64::restore(r)?,
            })
        }
    }

    impl Snapshot for CPythonHeap {
        fn snap(&self, w: &mut Writer) {
            let Self {
                pid,
                config,
                graph,
                allocator,
                counters,
                gc_cost,
                os_cost,
                pending,
                last_live_bytes,
                allocs_since_gc,
            } = self;
            pid.snap(w);
            config.snap(w);
            graph.snap(w);
            allocator.snap(w);
            counters.snap(w);
            gc_cost.snap(w);
            os_cost.snap(w);
            pending.snap(w);
            last_live_bytes.snap(w);
            allocs_since_gc.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<CPythonHeap, SnapError> {
            Ok(CPythonHeap {
                pid: Pid::restore(r)?,
                config: CPythonConfig::restore(r)?,
                graph: HeapGraph::restore(r)?,
                allocator: ArenaAllocator::restore(r)?,
                counters: GcCounters::restore(r)?,
                gc_cost: GcCostModel::restore(r)?,
                os_cost: CostModel::restore(r)?,
                pending: SimDuration::restore(r)?,
                last_live_bytes: u64::restore(r)?,
                allocs_since_gc: u64::restore(r)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (System, CPythonHeap) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let heap = CPythonHeap::new(&mut sys, pid, CPythonConfig::default()).unwrap();
        (sys, heap)
    }

    #[test]
    fn refcounting_frees_acyclic_garbage_immediately() {
        let (mut sys, mut heap) = world();
        let scope = heap.graph_mut().push_handle_scope();
        let a = heap.alloc(&mut sys, 256).unwrap();
        let b = heap.alloc(&mut sys, 256).unwrap();
        heap.graph_mut().add_ref(a, b);
        heap.graph_mut().add_handle(a);
        heap.graph_mut().pop_handle_scope(scope);
        let freed = heap.refcount_pass(&mut sys).unwrap();
        assert_eq!(freed, 512, "the chain cascades");
        assert!(!heap.graph().exists(a));
        assert!(!heap.graph().exists(b));
    }

    #[test]
    fn cycles_survive_refcounting_but_not_the_collector() {
        let (mut sys, mut heap) = world();
        let scope = heap.graph_mut().push_handle_scope();
        let a = heap.alloc(&mut sys, 256).unwrap();
        let b = heap.alloc(&mut sys, 256).unwrap();
        // A cycle, plus an acyclic object hanging off it.
        heap.graph_mut().add_ref(a, b);
        heap.graph_mut().add_ref(b, a);
        let c = heap.alloc(&mut sys, 512).unwrap();
        heap.graph_mut().add_ref(a, c);
        heap.graph_mut().add_handle(a);
        heap.graph_mut().pop_handle_scope(scope);
        let freed = heap.refcount_pass(&mut sys).unwrap();
        // Nothing freed: a,b cycle; c is held by the cycle.
        assert_eq!(freed, 0);
        assert!(heap.graph().exists(a) && heap.graph().exists(b) && heap.graph().exists(c));
        let freed = heap.cycle_collect(&mut sys).unwrap();
        assert_eq!(freed, 1024);
        assert!(!heap.graph().exists(a));
    }

    #[test]
    fn live_objects_survive_both_passes() {
        let (mut sys, mut heap) = world();
        let keep = heap.alloc(&mut sys, 1024).unwrap();
        heap.graph_mut().add_global(keep);
        let dep = heap.alloc(&mut sys, 512).unwrap();
        heap.graph_mut().add_ref(keep, dep);
        heap.refcount_pass(&mut sys).unwrap();
        heap.cycle_collect(&mut sys).unwrap();
        assert!(heap.graph().exists(keep) && heap.graph().exists(dep));
        assert_eq!(heap.last_live_bytes(), 1536);
    }

    #[test]
    fn reclaim_releases_pinned_arena_pages() {
        let (mut sys, mut heap) = world();
        // One keeper pins the arena; hundreds of temporaries die.
        let keep = heap.alloc(&mut sys, 128).unwrap();
        heap.graph_mut().add_global(keep);
        let scope = heap.graph_mut().push_handle_scope();
        for _ in 0..500 {
            let t = heap.alloc(&mut sys, 128).unwrap();
            heap.graph_mut().add_handle(t);
        }
        heap.graph_mut().pop_handle_scope(scope);
        heap.refcount_pass(&mut sys).unwrap();
        // Stock: memory stays resident (arena not empty).
        let before = heap.resident_heap_bytes(&sys);
        assert!(before > simos::PAGE_SIZE, "frozen garbage is resident: {before}");
        let out = heap.reclaim(&mut sys).unwrap();
        assert!(out.released_bytes > 0);
        assert_eq!(out.live_bytes, 128);
        let after = heap.resident_heap_bytes(&sys);
        assert_eq!(after, simos::PAGE_SIZE, "only the keeper's pool page remains");
    }

    #[test]
    fn allocation_threshold_triggers_cycle_gc() {
        let (mut sys, mut heap) = world();
        let n = heap.config.gc_allocation_threshold + 10;
        let scope = heap.graph_mut().push_handle_scope();
        for _ in 0..n {
            // Cyclic pairs so refcounting could never free them. Root
            // each object before allocating more (the C stack holds
            // them in real CPython, and a threshold GC may run between
            // allocations).
            let a = heap.alloc(&mut sys, 64).unwrap();
            heap.graph_mut().add_handle(a);
            let b = heap.alloc(&mut sys, 64).unwrap();
            heap.graph_mut().add_handle(b);
            heap.graph_mut().add_ref(a, b);
            heap.graph_mut().add_ref(b, a);
        }
        heap.graph_mut().pop_handle_scope(scope);
        assert!(heap.counters().full_collections >= 1, "threshold GC ran");
    }

    #[test]
    fn reclaim_is_idempotent() {
        let (mut sys, mut heap) = world();
        let keep = heap.alloc(&mut sys, 128).unwrap();
        heap.graph_mut().add_global(keep);
        for _ in 0..100 {
            heap.alloc(&mut sys, 128).unwrap();
        }
        heap.reclaim(&mut sys).unwrap();
        let resident = heap.resident_heap_bytes(&sys);
        let second = heap.reclaim(&mut sys).unwrap();
        assert_eq!(second.released_bytes, 0);
        assert_eq!(heap.resident_heap_bytes(&sys), resident);
    }
}
