//! The obmalloc-style arena allocator.
//!
//! Layout, following CPython's `Objects/obmalloc.c` at model fidelity:
//! arenas are 256 KiB mappings split into 4 KiB pools; each pool serves
//! exactly one size class. Objects above the small threshold bypass the
//! arenas and get their own mappings (CPython hands them to the raw
//! allocator).
//!
//! The behaviour the paper's §7 calls out is the release policy: a pool
//! returns to its arena's free list when its last object dies, but the
//! arena's *memory* is unmapped only when **every** pool in it is free.
//! One long-lived object pins 256 KiB of garbage-laden pages resident —
//! frozen garbage, CPython flavour.

use std::collections::BTreeMap;

use simos::cast;
use simos::mem::{page_align_up, MappingKind, Prot};
use simos::{Pid, SimOsResult, System, VirtAddr, PAGE_SIZE};

/// Size of one arena.
pub const ARENA_SIZE: u64 = 256 << 10;

/// Size of one pool (== one page, as in CPython).
pub const POOL_SIZE: u64 = PAGE_SIZE;

/// Pools per arena.
// tidy:allow(lossy-casts) -- const context; both operands are compile-time constants
pub const POOLS_PER_ARENA: usize = (ARENA_SIZE / POOL_SIZE) as usize;

/// Largest size served from pools; bigger allocations get their own
/// mapping. (CPython's threshold is 512 B; the model raises it to half
/// a pool so the workloads' object sizes exercise the arena path.)
// tidy:allow(lossy-casts) -- const context; half a 4 KiB pool fits in u32
pub const SMALL_THRESHOLD: u32 = (POOL_SIZE / 2) as u32;

/// Rounds a request up to its size class (powers of two from 16 bytes).
pub fn size_class(size: u32) -> u32 {
    size.max(16).next_power_of_two()
}

#[derive(Debug, Clone)]
struct Pool {
    class: u32,
    /// Free slot indices within the pool.
    free_slots: Vec<u16>,
    used: u16,
}

impl Pool {
    fn new(class: u32) -> Pool {
        let capacity = cast::to_u16(POOL_SIZE / u64::from(class));
        Pool {
            class,
            free_slots: (0..capacity).rev().collect(),
            used: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct Arena {
    addr: VirtAddr,
    /// `Some` = pool in use for a class; `None` = free pool.
    pools: Vec<Option<Pool>>,
    used_pools: usize,
}

impl Arena {
    fn is_empty(&self) -> bool {
        self.used_pools == 0
    }
}

/// Counters describing allocator state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Mapped arenas.
    pub arenas: usize,
    /// Pools currently serving a size class.
    pub used_pools: usize,
    /// Free pools inside mapped arenas (pinned by stock CPython).
    pub free_pools: usize,
    /// Large objects with their own mappings.
    pub large_objects: usize,
}

/// The allocator.
#[derive(Debug, Clone, Default)]
pub struct ArenaAllocator {
    arenas: Vec<Option<Arena>>,
    /// Arena lookup by base address.
    by_addr: BTreeMap<u64, usize>,
    /// Pools with free slots, per class: `(arena_idx, pool_idx)`.
    partial: BTreeMap<u32, Vec<(usize, usize)>>,
    /// Large allocations: base address → mapped length.
    large: BTreeMap<u64, u64>,
}

impl ArenaAllocator {
    /// Creates an empty allocator.
    pub fn new() -> ArenaAllocator {
        ArenaAllocator::default()
    }

    /// Counters.
    pub fn stats(&self) -> ArenaStats {
        let mut s = ArenaStats {
            large_objects: self.large.len(),
            ..ArenaStats::default()
        };
        for a in self.arenas.iter().flatten() {
            s.arenas += 1;
            s.used_pools += a.used_pools;
            s.free_pools += POOLS_PER_ARENA - a.used_pools;
        }
        s
    }

    /// Total mapped bytes (arenas + large mappings).
    pub fn committed(&self) -> u64 {
        cast::to_u64(self.arenas.iter().flatten().count()) * ARENA_SIZE
            + self.large.values().sum::<u64>()
    }

    /// Allocates `size` bytes; touches the backing page(s).
    pub fn alloc(
        &mut self,
        sys: &mut System,
        pid: Pid,
        size: u32,
    ) -> SimOsResult<VirtAddr> {
        if size > SMALL_THRESHOLD {
            let len = page_align_up(u64::from(size));
            let addr = sys.mmap_named(pid, len, MappingKind::Anonymous, Prot::ReadWrite, "[pymalloc:large]")?;
            sys.touch(pid, addr, len, true)?;
            self.large.insert(addr.0, len);
            return Ok(addr);
        }
        let class = size_class(size);
        // A pool with a free slot?
        if let Some(list) = self.partial.get_mut(&class) {
            if let Some(&(ai, pi)) = list.last() {
                let arena = self.arenas[ai].as_mut().expect("partial refers to live arena"); // tidy:allow(panic-reachability) -- arena and pool indices come from the allocator's own occupancy tables; a miss is an accounting bug
                let pool = arena.pools[pi].as_mut().expect("partial refers to used pool"); // tidy:allow(panic-reachability) -- arena and pool indices come from the allocator's own occupancy tables; a miss is an accounting bug
                let slot = pool.free_slots.pop().expect("partial pool has free slots"); // tidy:allow(panic-reachability) -- arena and pool indices come from the allocator's own occupancy tables; a miss is an accounting bug
                pool.used += 1;
                if pool.free_slots.is_empty() {
                    list.pop();
                }
                let addr = arena
                    .addr
                    .offset(cast::to_u64(pi) * POOL_SIZE + u64::from(slot) * u64::from(class));
                let page = VirtAddr(addr.0 / PAGE_SIZE * PAGE_SIZE);
                sys.touch(pid, page, PAGE_SIZE, true)?;
                return Ok(addr);
            }
        }
        // A free pool in some arena?
        let (ai, pi) = match self.find_free_pool() {
            Some(x) => x,
            None => {
                let ai = self.map_arena(sys, pid)?;
                (ai, 0)
            }
        };
        let arena = self.arenas[ai].as_mut().expect("fresh arena exists"); // tidy:allow(panic-reachability) -- arena and pool indices come from the allocator's own occupancy tables; a miss is an accounting bug
        arena.pools[pi] = Some(Pool::new(class)); // tidy:allow(panic-reachability) -- arena and pool indices come from the allocator's own occupancy tables; a miss is an accounting bug
        arena.used_pools += 1;
        let pool = arena.pools[pi].as_mut().expect("just created"); // tidy:allow(panic-reachability) -- arena and pool indices come from the allocator's own occupancy tables; a miss is an accounting bug
        let slot = pool.free_slots.pop().expect("fresh pool has slots"); // tidy:allow(panic-reachability) -- arena and pool indices come from the allocator's own occupancy tables; a miss is an accounting bug
        pool.used += 1;
        let has_more = !pool.free_slots.is_empty();
        let addr = arena
            .addr
            .offset(cast::to_u64(pi) * POOL_SIZE + u64::from(slot) * u64::from(class));
        if has_more {
            self.partial.entry(class).or_default().push((ai, pi));
        }
        let page = VirtAddr(addr.0 / PAGE_SIZE * PAGE_SIZE);
        sys.touch(pid, page, PAGE_SIZE, true)?;
        Ok(addr)
    }

    fn find_free_pool(&self) -> Option<(usize, usize)> {
        for (ai, arena) in self.arenas.iter().enumerate() {
            let Some(arena) = arena else { continue };
            if arena.used_pools < POOLS_PER_ARENA {
                let pi = arena
                    .pools
                    .iter()
                    .position(Option::is_none)
                    .expect("used_pools below capacity implies a free pool"); // tidy:allow(panic-reachability) -- arena and pool indices come from the allocator's own occupancy tables; a miss is an accounting bug
                return Some((ai, pi));
            }
        }
        None
    }

    fn map_arena(&mut self, sys: &mut System, pid: Pid) -> SimOsResult<usize> {
        let addr = sys.mmap_named(
            pid,
            ARENA_SIZE,
            MappingKind::Anonymous,
            Prot::ReadWrite,
            "[pymalloc:arena]",
        )?;
        let arena = Arena {
            addr,
            pools: vec![None; POOLS_PER_ARENA],
            used_pools: 0,
        };
        let ai = self.arenas.len();
        self.by_addr.insert(addr.0, ai);
        self.arenas.push(Some(arena));
        Ok(ai)
    }

    /// Frees the object at `addr` of request size `size`.
    ///
    /// Implements stock CPython's release policy: an emptied pool joins
    /// the arena's free list; an emptied *arena* is unmapped.
    ///
    /// # Panics
    ///
    /// Panics if `addr` was not returned by this allocator (heap
    /// corruption in a real runtime).
    pub fn free(&mut self, sys: &mut System, pid: Pid, addr: VirtAddr, size: u32) -> SimOsResult<()> {
        if size > SMALL_THRESHOLD {
            let len = self
                .large
                .remove(&addr.0)
                .expect("freeing unknown large object"); // tidy:allow(panic-reachability) -- arena and pool indices come from the allocator's own occupancy tables; a miss is an accounting bug
            let _ = len;
            sys.munmap(pid, addr)?;
            return Ok(());
        }
        let class = size_class(size);
        let (&base, &ai) = self
            .by_addr
            .range(..=addr.0)
            .next_back()
            .expect("freeing address below every arena"); // tidy:allow(panic-reachability) -- arena and pool indices come from the allocator's own occupancy tables; a miss is an accounting bug
        assert!(
            addr.0 < base + ARENA_SIZE,
            "freeing address outside any arena"
        );
        let arena = self.arenas[ai].as_mut().expect("freeing into dead arena"); // tidy:allow(panic-reachability) -- arena and pool indices come from the allocator's own occupancy tables; a miss is an accounting bug
        let offset = addr.0 - base;
        let pi = cast::to_usize(offset / POOL_SIZE);
        let pool = arena.pools[pi].as_mut().expect("freeing into free pool"); // tidy:allow(panic-reachability) -- arena and pool indices come from the allocator's own occupancy tables; a miss is an accounting bug
        assert_eq!(pool.class, class, "size class mismatch on free");
        let slot = cast::to_u16((offset % POOL_SIZE) / u64::from(class));
        debug_assert!(!pool.free_slots.contains(&slot), "double free");
        pool.free_slots.push(slot);
        pool.used -= 1;
        if pool.used == 0 {
            // Pool dissolves back into the arena.
            arena.pools[pi] = None; // tidy:allow(panic-reachability) -- arena and pool indices come from the allocator's own occupancy tables; a miss is an accounting bug
            arena.used_pools -= 1;
            if let Some(list) = self.partial.get_mut(&class) {
                list.retain(|&(a, p)| !(a == ai && p == pi));
            }
            if self.arenas[ai].as_ref().expect("still here").is_empty() { // tidy:allow(panic-reachability) -- arena and pool indices come from the allocator's own occupancy tables; a miss is an accounting bug
                // Stock behaviour: only a fully-empty arena returns its
                // memory.
                let arena = self.arenas[ai].take().expect("emptied arena"); // tidy:allow(panic-reachability) -- arena and pool indices come from the allocator's own occupancy tables; a miss is an accounting bug
                self.by_addr.remove(&arena.addr.0);
                sys.munmap(pid, arena.addr)?;
            }
        } else if pool.free_slots.len() == 1 {
            // First free slot: the pool is partial again.
            self.partial.entry(class).or_default().push((ai, pi));
        }
        Ok(())
    }

    /// The Desiccant extension: releases the pages of every *free pool*
    /// inside still-mapped arenas (stock CPython keeps them resident
    /// until the whole arena empties). Returns released bytes.
    pub fn release_free_pages(&mut self, sys: &mut System, pid: Pid) -> SimOsResult<u64> {
        let mut released = 0;
        for arena in self.arenas.iter().flatten() {
            for (pi, pool) in arena.pools.iter().enumerate() {
                if pool.is_none() {
                    released += sys.release(pid, arena.addr.offset(cast::to_u64(pi) * POOL_SIZE), POOL_SIZE)?;
                }
            }
        }
        Ok(released)
    }

    /// Resident bytes across arenas and large mappings.
    pub fn resident_bytes(&self, sys: &System, pid: Pid) -> u64 {
        let mut total = 0;
        for arena in self.arenas.iter().flatten() {
            total += sys.pmap(pid, arena.addr, ARENA_SIZE).unwrap_or(0);
        }
        for (&addr, &len) in &self.large {
            total += sys.pmap(pid, VirtAddr(addr), len).unwrap_or(0);
        }
        total
    }
}

mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for Pool {
        fn snap(&self, w: &mut Writer) {
            let Self {
                class,
                free_slots,
                used,
            } = self;
            class.snap(w);
            free_slots.snap(w);
            used.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<Pool, SnapError> {
            let class = u32::restore(r)?;
            let free_slots: Vec<u16> = Vec::restore(r)?;
            let used = u16::restore(r)?;
            if class == 0 || class > SMALL_THRESHOLD {
                return Err(SnapError::Corrupt("Pool class out of range"));
            }
            let capacity = POOL_SIZE / u64::from(class);
            if u64::from(used) + cast::to_u64(free_slots.len()) != capacity {
                return Err(SnapError::Corrupt("Pool slot accounting broken"));
            }
            Ok(Pool {
                class,
                free_slots,
                used,
            })
        }
    }

    impl Snapshot for Arena {
        fn snap(&self, w: &mut Writer) {
            let Self {
                addr,
                pools,
                used_pools,
            } = self;
            addr.snap(w);
            pools.snap(w);
            used_pools.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<Arena, SnapError> {
            let addr = VirtAddr::restore(r)?;
            let pools: Vec<Option<Pool>> = Vec::restore(r)?;
            let used_pools = usize::restore(r)?;
            if pools.len() != POOLS_PER_ARENA {
                return Err(SnapError::Corrupt("Arena pool count wrong"));
            }
            if pools.iter().filter(|p| p.is_some()).count() != used_pools {
                return Err(SnapError::Corrupt("Arena used_pools mismatch"));
            }
            Ok(Arena {
                addr,
                pools,
                used_pools,
            })
        }
    }

    impl Snapshot for ArenaAllocator {
        fn snap(&self, w: &mut Writer) {
            let Self {
                arenas,
                by_addr,
                partial,
                large,
            } = self;
            arenas.snap(w);
            by_addr.snap(w);
            partial.snap(w);
            large.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<ArenaAllocator, SnapError> {
            let arenas: Vec<Option<Arena>> = Vec::restore(r)?;
            let by_addr: BTreeMap<u64, usize> = BTreeMap::restore(r)?;
            let partial: BTreeMap<u32, Vec<(usize, usize)>> = BTreeMap::restore(r)?;
            let large: BTreeMap<u64, u64> = BTreeMap::restore(r)?;
            for (&addr, &idx) in &by_addr {
                match arenas.get(idx) {
                    Some(Some(a)) if a.addr.0 == addr => {}
                    _ => return Err(SnapError::Corrupt("ArenaAllocator by_addr mismatch")),
                }
            }
            if by_addr.len() != arenas.iter().filter(|a| a.is_some()).count() {
                return Err(SnapError::Corrupt("ArenaAllocator arena index incomplete"));
            }
            for (&class, list) in &partial {
                for &(ai, pi) in list {
                    let ok = arenas
                        .get(ai)
                        .and_then(|a| a.as_ref())
                        .and_then(|a| a.pools.get(pi))
                        .and_then(|p| p.as_ref())
                        .is_some_and(|p| p.class == class && !p.free_slots.is_empty());
                    if !ok {
                        return Err(SnapError::Corrupt("ArenaAllocator partial list broken"));
                    }
                }
            }
            Ok(ArenaAllocator {
                arenas,
                by_addr,
                partial,
                large,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (System, Pid, ArenaAllocator) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        (sys, pid, ArenaAllocator::new())
    }

    #[test]
    fn size_classes_are_pow2_min16() {
        assert_eq!(size_class(1), 16);
        assert_eq!(size_class(16), 16);
        assert_eq!(size_class(17), 32);
        assert_eq!(size_class(511), 512);
    }

    #[test]
    fn small_objects_pack_into_one_pool() {
        let (mut sys, pid, mut a) = world();
        let first = a.alloc(&mut sys, pid, 64).unwrap();
        let mut last = first;
        for _ in 1..(POOL_SIZE / 64) {
            last = a.alloc(&mut sys, pid, 64).unwrap();
        }
        // All within the same pool page.
        assert_eq!(first.0 / POOL_SIZE, last.0 / POOL_SIZE);
        assert_eq!(a.stats().used_pools, 1);
        // One more spills into a second pool.
        a.alloc(&mut sys, pid, 64).unwrap();
        assert_eq!(a.stats().used_pools, 2);
    }

    #[test]
    fn arena_unmaps_only_when_fully_empty() {
        let (mut sys, pid, mut a) = world();
        let x = a.alloc(&mut sys, pid, 64).unwrap();
        let y = a.alloc(&mut sys, pid, 2048).unwrap();
        assert_eq!(a.stats().arenas, 1);
        a.free(&mut sys, pid, x, 64).unwrap();
        // One object still pins the arena.
        assert_eq!(a.stats().arenas, 1);
        assert!(a.committed() == ARENA_SIZE);
        a.free(&mut sys, pid, y, 2048).unwrap();
        assert_eq!(a.stats().arenas, 0);
        assert_eq!(a.committed(), 0);
    }

    #[test]
    fn freed_pool_pages_stay_resident_until_reclaim() {
        let (mut sys, pid, mut a) = world();
        // Fill several pools, then free all but one object.
        let keep = a.alloc(&mut sys, pid, 128).unwrap();
        let mut trash = Vec::new();
        for _ in 0..200 {
            trash.push(a.alloc(&mut sys, pid, 128).unwrap());
        }
        for t in trash {
            a.free(&mut sys, pid, t, 128).unwrap();
        }
        let resident_before = a.resident_bytes(&sys, pid);
        assert!(resident_before > POOL_SIZE, "garbage pages stayed resident");
        let released = a.release_free_pages(&mut sys, pid).unwrap();
        assert!(released > 0);
        let resident_after = a.resident_bytes(&sys, pid);
        assert_eq!(resident_after, POOL_SIZE, "only the keeper's pool remains");
        let _ = keep;
    }

    #[test]
    fn large_objects_get_their_own_mapping_and_free_immediately() {
        let (mut sys, pid, mut a) = world();
        let big = a.alloc(&mut sys, pid, 100_000).unwrap();
        assert_eq!(a.stats().large_objects, 1);
        assert!(a.committed() >= 100_000);
        a.free(&mut sys, pid, big, 100_000).unwrap();
        assert_eq!(a.stats().large_objects, 0);
        assert_eq!(a.committed(), 0);
    }

    #[test]
    fn slots_are_reused_after_free() {
        let (mut sys, pid, mut a) = world();
        let x = a.alloc(&mut sys, pid, 256).unwrap();
        let y = a.alloc(&mut sys, pid, 256).unwrap();
        a.free(&mut sys, pid, x, 256).unwrap();
        let z = a.alloc(&mut sys, pid, 256).unwrap();
        assert_eq!(x, z, "freed slot is recycled first");
        let _ = y;
    }

    #[test]
    #[should_panic(expected = "size class mismatch")]
    fn wrong_size_free_panics() {
        let (mut sys, pid, mut a) = world();
        let x = a.alloc(&mut sys, pid, 256).unwrap();
        a.free(&mut sys, pid, x, 64).unwrap();
    }
}
