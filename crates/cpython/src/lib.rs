//! # cpython-heap — a model of CPython's memory management
//!
//! The paper's §7 argues that the frozen-garbage problem is not
//! specific to HotSpot and V8: *"the mainstream CPython runtime manages
//! memory in arenas of 256 KB and only releases the entire memory of an
//! arena when it becomes empty. Since CPython is not aware of freeze
//! semantics, the memory in arenas is not returned to the OS when the
//! instance should be frozen."* It then sketches how Desiccant applies:
//! estimate reclamation throughput from collection time and live
//! objects, find free regions through the allocator's internal free
//! lists, and release them with `mmap`.
//!
//! This crate implements that sketch:
//!
//! * [`arena`] — an obmalloc-style allocator: 256 KiB arenas divided
//!   into 4 KiB *pools*, each pool serving one size class. A pool
//!   returns to the arena's free list when its last object dies; stock
//!   CPython unmaps an arena **only when every pool in it is free** —
//!   one surviving object pins 256 KiB resident.
//! * [`heap`] — the object lifecycle: **reference counting** frees
//!   acyclic garbage the moment the invocation's handle scope pops
//!   (modeled with an SCC analysis over the dead subgraph — exactly the
//!   objects CPython's refcounts *cannot* free are those on or
//!   reachable from reference cycles), and the **cycle collector**
//!   (`gc.collect()`) frees the rest when invoked.
//! * [`heap::CPythonHeap::reclaim`] — the Desiccant extension: run the
//!   cycle collector, then release every *whole-free page* inside
//!   partially-used arenas back to the OS (free pools are exactly
//!   page-sized, so fragmentation cost is per-pool, mirroring the
//!   paper's free-list-guided release).
//!
//! Unlike the HotSpot/V8 models, this crate is an *extension beyond the
//! paper's measured evaluation* (its §7 is a discussion section); it is
//! exercised by its own tests and `examples/other_runtimes.rs`, not by
//! the figure harnesses.
//!
//! # Examples
//!
//! ```
//! use cpython_heap::{CPythonConfig, CPythonHeap};
//! use simos::System;
//!
//! let mut sys = System::new();
//! let pid = sys.spawn_process();
//! let mut heap = CPythonHeap::new(&mut sys, pid, CPythonConfig::default()).unwrap();
//!
//! let scope = heap.graph_mut().push_handle_scope();
//! // A reference cycle: refcounting alone cannot free it.
//! let a = heap.alloc(&mut sys, 512).unwrap();
//! let b = heap.alloc(&mut sys, 512).unwrap();
//! heap.graph_mut().add_ref(a, b);
//! heap.graph_mut().add_ref(b, a);
//! heap.graph_mut().add_handle(a);
//! heap.graph_mut().pop_handle_scope(scope);
//! heap.refcount_pass(&mut sys).unwrap();
//! assert!(heap.graph().exists(a), "cyclic garbage survives refcounting");
//! let out = heap.reclaim(&mut sys).unwrap();
//! assert!(!heap.graph().exists(a), "the cycle collector frees it");
//! assert_eq!(out.live_bytes, 0);
//! ```

#![forbid(unsafe_code)]

pub mod arena;
pub mod heap;

pub use arena::{ArenaAllocator, ARENA_SIZE, POOL_SIZE};
pub use heap::{CPythonConfig, CPythonHeap, CPythonReclaimOutcome};
