//! Property tests for the fleet failure domains: arbitrary outage
//! schedules must leave the cluster digest invariant under worker
//! count and mid-run kills, every routed request must be conserved
//! into exactly one typed outcome, and the fleet-level front-end
//! bytes (router health, retry queue, hedge counters) must survive a
//! real checkpoint chain — base, delta, restore — at arbitrary cut
//! points.

use cluster::{Cluster, ClusterConfig, FrontEndConfig, Placement, ShardSetup};
use faas::platform::Platform;
use faas::{CrashPlan, OutageKind, OutagePlan, OutageWindow, PlatformConfig};
use proptest::prelude::*;
use simos::{SimDuration, SimTime};

/// A randomized fleet schedule with one outage window.
#[derive(Debug, Clone)]
struct FleetSchedule {
    /// `(arrival offset ms, function index)` pairs, sorted before use.
    arrivals: Vec<(u64, usize)>,
    shards: u32,
    /// Never shard 0, so the fleet always stays collectively routable.
    dark_shard: u32,
    start: u64,
    len: u64,
    down: bool,
    planned: bool,
    hedge: bool,
    max_retries: u32,
    queue_budget: u64,
    round_ms: u64,
    /// Kill the dark shard after this many events (`None` = no kill).
    kill_after: Option<u64>,
}

fn schedule() -> impl Strategy<Value = FleetSchedule> {
    (
        prop::collection::vec((0u64..20_000, 0usize..20), 12..60),
        (2u32..5, 0u32..4, 1u64..8, 1u64..4),
        (any::<bool>(), any::<bool>(), any::<bool>()),
        (0u32..4, prop_oneof![Just(0u64), Just(3u64)]),
        800u64..3_000,
        (any::<bool>(), 20u64..200),
    )
        .prop_map(
            |(
                arrivals,
                (shards, dark_pick, start, len),
                (down, planned, hedge),
                (max_retries, queue_budget),
                round_ms,
                (chaos, kill_n),
            )| FleetSchedule {
                arrivals,
                shards,
                dark_shard: 1 + dark_pick % (shards - 1),
                start,
                len,
                down,
                planned: planned && down,
                hedge,
                max_retries,
                queue_budget,
                round_ms,
                kill_after: chaos.then_some(kill_n),
            },
        )
}

fn build(s: &FleetSchedule, jobs: usize, with_kill: bool) -> Cluster {
    let mut setup = ShardSetup::vanilla();
    setup.platform = PlatformConfig {
        cache_budget: 2 << 30,
        ..PlatformConfig::default()
    };
    let cfg = ClusterConfig {
        shards: s.shards,
        policy: Placement::HashAffinity,
        jobs,
        round: SimDuration::from_millis(s.round_ms),
        frontend: FrontEndConfig {
            hedge: s.hedge,
            max_retries: s.max_retries,
            queue_budget: s.queue_budget,
            ..FrontEndConfig::default()
        },
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(cfg, &setup);
    c.set_outage_plan(OutagePlan::new(vec![OutageWindow {
        shard: s.dark_shard,
        start: s.start,
        rounds: s.len,
        kind: if s.down { OutageKind::Down } else { OutageKind::Partitioned },
        planned: s.planned,
    }]));
    if with_kill {
        if let Some(n) = s.kill_after {
            c.plan_kill(s.dark_shard, CrashPlan::every(n));
        }
    }
    c
}

fn run(s: &FleetSchedule, jobs: usize, with_kill: bool) -> Cluster {
    let mut c = build(s, jobs, with_kill);
    let mut sorted = s.arrivals.clone();
    sorted.sort_unstable();
    for &(t_ms, f) in &sorted {
        c.enqueue(SimTime(t_ms * 1_000_000), f);
    }
    // Horizon generous enough for the outage to heal and every
    // surviving request to drain.
    c.advance_to(SimTime(20_000_000_000) + SimDuration::from_secs(120));
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Post-heal, the digest — shard states plus fleet front-end
    /// bytes — is a pure function of (schedule, outage plan): worker
    /// count must not leak into it, a kill layered on the outage must
    /// recover to the same bytes, and request conservation must hold
    /// on every variant.
    #[test]
    fn outage_digest_is_invariant_under_jobs_and_kills(s in schedule()) {
        let serial = run(&s, 1, false);
        let parallel = run(&s, 4, false);
        let t = serial.totals();
        prop_assert!(t.conservation(),
            "conservation violated: routed={} delivered={} shed={} failed={} pending={}",
            t.routed, t.delivered, t.shed(), t.frontend_failed(), t.pending_retries);
        prop_assert!(t.outage_rounds > 0, "the window never darkened a round");
        prop_assert_eq!(parallel.totals(), t, "totals diverged across worker counts");
        prop_assert_eq!(parallel.digest(), serial.digest(), "digest depends on worker count");
        if s.kill_after.is_some() {
            let chaos = run(&s, 2, true);
            prop_assert!(chaos.totals().conservation());
            prop_assert_eq!(
                chaos.digest(), serial.digest(),
                "kill + outage diverged from the kill-free control with the same plan"
            );
        }
    }

    /// The fleet front-end bytes at an arbitrary barrier survive a
    /// real incremental checkpoint chain — embedded as an extra frame
    /// in a base, superseded in a delta, and restored on a fresh
    /// platform — and decode back to the same router and counters.
    #[test]
    fn front_bytes_survive_a_real_checkpoint_chain(s in schedule(), cut_ms in 2_000u64..18_000) {
        // Drive the fleet to an arbitrary mid-run barrier and snapshot
        // its front-end bytes there, then to the end for a second cut.
        let mut fleet = build(&s, 1, false);
        let mut sorted = s.arrivals.clone();
        sorted.sort_unstable();
        for &(t_ms, f) in &sorted {
            fleet.enqueue(SimTime(t_ms * 1_000_000), f);
        }
        fleet.advance_to(SimTime(cut_ms * 1_000_000));
        let mid = fleet.frontend_bytes();
        fleet.advance_to(SimTime(20_000_000_000) + SimDuration::from_secs(120));
        let fin = fleet.frontend_bytes();

        // Push both through a real platform chain: base carries the
        // mid-run frame, the delta supersedes it with the final frame.
        let frame = Platform::FRAME_EXTRA_BASE + 1;
        let setup = ShardSetup::vanilla();
        let mk = || Platform::new(
            PlatformConfig::default(), setup.catalog.clone(), setup.mode, None,
        );
        let mut live = mk();
        for (i, &(_, f)) in sorted.iter().take(8).enumerate() {
            live.submit(SimTime(i as u64 * 1_000_000), f % setup.catalog.len());
        }
        live.try_run_until(SimTime(50_000_000)).expect("drain");
        let base = live.checkpoint_base(1, &[(frame, mid.clone())]);
        live.try_run_until(SimTime(250_000_000)).expect("drain");
        let delta = live.checkpoint_delta(2, 1, &[(frame, fin.clone())]);

        let mut restored = mk();
        let (epoch, extra) = restored.restore_chain(&[base, delta]).expect("chain restores");
        prop_assert_eq!(epoch, 2);
        let carried = extra.iter().find(|(k, _)| *k == frame).expect("front frame survives");
        prop_assert_eq!(&carried.1, &fin, "chain restore mangled the front bytes");

        let (router, front, rounds) = Cluster::decode_front(&carried.1).expect("decodes");
        prop_assert_eq!(rounds, fleet.rounds() as u64);
        prop_assert_eq!(front.stats, fleet.front_stats());
        prop_assert_eq!(front.pending(), fleet.pending_retries());
        for shard in 0..s.shards {
            prop_assert_eq!(router.health(shard), fleet.health(shard),
                "restored health state diverged on shard {}", shard);
        }
        // And the mid-run frame decodes too (a heal may restore an
        // older cut than the newest barrier).
        let (_, mid_front, mid_rounds) = Cluster::decode_front(&mid).expect("mid decodes");
        prop_assert!(mid_rounds <= rounds);
        prop_assert!(mid_front.stats.routed <= front.stats.routed);
    }
}
