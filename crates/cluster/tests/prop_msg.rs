//! Property tests for the barrier-message codecs: arbitrary
//! [`ShardReport`]s and [`ClusterTotals`] must survive
//! encode → decode → encode with byte-identical output. The report
//! bytes feed the cluster digest and the router's canonical state, so
//! a codec asymmetry here would silently break every determinism gate
//! downstream.

use cluster::{ClusterTotals, MigrationOffer, ShardReport};
use faas::FrozenFnSummary;
use proptest::prelude::*;
use simos::SimTime;
use snapshot::{Reader, Writer};

fn summary() -> impl Strategy<Value = FrozenFnSummary> {
    (1u64..50, 1u64..(8 << 30), 0u64..100_000_000_000).prop_map(|(count, charge, t)| {
        FrozenFnSummary {
            count,
            charge,
            oldest_frozen: SimTime(t),
        }
    })
}

fn offer() -> impl Strategy<Value = MigrationOffer> {
    (0u32..16, 0usize..64, 0u64..(8 << 30), any::<bool>()).prop_map(
        |(from, fn_idx, charge, drain)| MigrationOffer {
            from,
            fn_idx,
            charge,
            drain,
        },
    )
}

fn report() -> impl Strategy<Value = ShardReport> {
    (
        0u32..16,
        (0u64..10_000, 0u64..(8 << 30), 1u64..(16u64 << 30)),
        (0u64..500, 0u64..500),
        prop::collection::vec((0usize..64, summary()), 0..12)
            .prop_map(|pairs| pairs.into_iter().collect::<std::collections::BTreeMap<_, _>>()),
        prop::collection::vec(offer(), 0..6),
        (0u64..20, 0u64..20, 0u64..20),
    )
        .prop_map(
            |(
                shard,
                (in_flight, cache_used, cache_budget),
                (instances, frozen),
                warm,
                offers,
                (recoveries, scratch_recoveries, heals),
            )| ShardReport {
                shard,
                in_flight,
                cache_used,
                cache_budget,
                instances,
                frozen,
                warm,
                offers,
                recoveries,
                scratch_recoveries,
                heals,
            },
        )
}

fn totals() -> impl Strategy<Value = ClusterTotals> {
    prop::collection::vec(0u64..1_000_000, 22).prop_map(|v| ClusterTotals {
        completed: v[0],
        failed: v[1],
        cold_boots: v[2],
        evictions: v[3],
        instances: v[4],
        frozen: v[5],
        cache_used: v[6],
        recoveries: v[7],
        scratch_recoveries: v[8],
        heals: v[9],
        outage_rounds: v[10],
        routed: v[11],
        delivered: v[12],
        shed_overload: v[13],
        shed_unroutable: v[14],
        failed_deadline: v[15],
        failed_retries: v[16],
        retries: v[17],
        hedges: v[18],
        hedge_wins: v[19],
        hedge_extra: v[20],
        pending_retries: v[21],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode → encode is the identity on bytes. (Full struct
    /// equality cannot hold: the fault counters are deliberately
    /// excluded from the encoding so chaos runs digest like their
    /// controls — they come back zero.)
    #[test]
    fn shard_report_codec_round_trips_bytes(rep in report()) {
        let mut w = Writer::new();
        rep.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = ShardReport::decode(&mut r).expect("decode");
        r.finish().expect("no trailing bytes");
        let mut w2 = Writer::new();
        back.encode(&mut w2);
        prop_assert_eq!(w2.into_bytes(), bytes, "re-encoded report differs");
        // Everything the encoding carries survives.
        prop_assert_eq!(back.shard, rep.shard);
        prop_assert_eq!(back.warm, rep.warm);
        prop_assert_eq!(back.offers, rep.offers);
        prop_assert_eq!(back.recoveries, 0u64);
        prop_assert_eq!(back.heals, 0u64);
    }

    /// Cluster totals encode every counter; the round trip is the
    /// identity on the struct and on the bytes.
    #[test]
    fn cluster_totals_codec_round_trips(t in totals()) {
        let mut w = Writer::new();
        t.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = ClusterTotals::decode(&mut r).expect("decode");
        r.finish().expect("no trailing bytes");
        prop_assert_eq!(back, t);
        let mut w2 = Writer::new();
        back.encode(&mut w2);
        prop_assert_eq!(w2.into_bytes(), bytes);
    }
}
