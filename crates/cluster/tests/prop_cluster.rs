//! Property tests for the barrier engine's determinism contract:
//! arbitrary cross-shard schedules must produce identical digests at
//! `jobs = 1` and `jobs = N` — with an arbitrary mid-run shard kill
//! recovered through the checkpoint lattice along the way.

use cluster::{Cluster, ClusterConfig, Placement, ShardDurability, ShardSetup};
use faas::{CrashPlan, PlatformConfig};
use proptest::prelude::*;
use simos::{SimDuration, SimTime};

/// A randomized cluster schedule.
#[derive(Debug, Clone)]
struct Schedule {
    /// `(arrival offset ms, function index)` pairs, sorted before use.
    arrivals: Vec<(u64, usize)>,
    shards: u32,
    policy: Placement,
    round_ms: u64,
    cache_mib: u64,
    /// Kill one shard after this many events (`None` = no chaos).
    kill_after: Option<u64>,
    kill_shard: u32,
}

fn schedule() -> impl Strategy<Value = Schedule> {
    (
        prop::collection::vec((0u64..20_000, 0usize..20), 8..60),
        (2u32..5, 0u32..5),
        prop_oneof![
            Just(Placement::HashAffinity),
            Just(Placement::LeastLoaded),
            Just(Placement::ColdStartAware),
        ],
        500u64..4_000,
        512u64..2048,
        (any::<bool>(), 5u64..200),
    )
        .prop_map(
            |(arrivals, (shards, kill_shard), policy, round_ms, cache_mib, (chaos, kill_n))| {
                Schedule {
                    arrivals,
                    shards,
                    policy,
                    round_ms,
                    cache_mib,
                    kill_after: chaos.then_some(kill_n),
                    kill_shard,
                }
            },
        )
}

fn run(s: &Schedule, jobs: usize) -> (u64, u64, u64) {
    let mut setup = ShardSetup::vanilla();
    setup.platform = PlatformConfig {
        cache_budget: s.cache_mib << 20,
        ..PlatformConfig::default()
    };
    let cfg = ClusterConfig {
        shards: s.shards,
        policy: s.policy,
        jobs,
        round: SimDuration::from_millis(s.round_ms),
        durability: ShardDurability {
            checkpoint_every: 2,
            base_every: 3,
        },
        ..ClusterConfig::default()
    };
    let mut c = Cluster::new(cfg, &setup);
    if let Some(n) = s.kill_after {
        c.plan_kill(s.kill_shard % s.shards, CrashPlan::every(n));
    }
    let mut sorted = s.arrivals.clone();
    sorted.sort_unstable();
    for &(t_ms, f) in &sorted {
        c.enqueue(SimTime(t_ms * 1_000_000), f);
    }
    // Horizon generous enough for every request to drain.
    c.advance_to(SimTime(20_000_000_000) + SimDuration::from_secs(140));
    let totals = c.totals();
    (c.digest(), totals.completed, totals.recoveries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The digest — shard states plus router state — is a pure
    /// function of the schedule: worker count must not leak into it,
    /// and neither must a mid-run kill that the checkpoint lattice
    /// recovers.
    #[test]
    fn digest_is_invariant_under_jobs_and_kills(s in schedule()) {
        let (serial, completed_serial, _) = run(&s, 1);
        let (parallel, completed_parallel, _) = run(&s, 4);
        prop_assert_eq!(completed_serial, completed_parallel, "completions diverged");
        prop_assert_eq!(serial, parallel, "digest depends on worker count");
        if s.kill_after.is_some() {
            // The same schedule with chaos disabled is the control: a
            // recovered run must land on the very same digest.
            let calm = Schedule { kill_after: None, ..s.clone() };
            let (control, completed_control, recoveries) = run(&calm, 2);
            prop_assert_eq!(recoveries, 0u64);
            prop_assert_eq!(completed_control, completed_serial);
            prop_assert_eq!(control, serial, "kill-recovery left a residue in the digest");
        }
    }
}
