//! Integration gates for the barrier engine: jobs-invariance,
//! kill-recover digest identity, migration under pressure, placement
//! policy behaviour, and the fleet failure domains — outages, router
//! failover, deadlines/retries/hedging, admission control, and the
//! durability of fleet state across checkpoint cuts.

use cluster::{
    Cluster, ClusterConfig, FrontEndConfig, Placement, ShardDurability, ShardSetup,
};
use desiccant::{Desiccant, DesiccantConfig};
use faas::{
    CrashPlan, MemoryManager, OutageKind, OutagePlan, OutageWindow, PlatformConfig,
    StorageFaultPlan,
};
use simos::{SimDuration, SimTime};

fn desiccant_manager(_shard: u32) -> Option<Box<dyn MemoryManager>> {
    Some(Box::new(Desiccant::new(DesiccantConfig::default())))
}

fn setup(cache_budget: u64, desiccant: bool) -> ShardSetup {
    let mut s = ShardSetup::vanilla();
    s.platform = PlatformConfig {
        cache_budget,
        ..PlatformConfig::default()
    };
    if desiccant {
        s.manager = desiccant_manager;
    }
    s
}

/// A small synthetic workload: a steady drizzle over the catalog, hot
/// on a few functions, spanning `secs` simulated seconds.
fn drizzle(catalog_len: usize, secs: u64, seed: u64) -> Vec<(SimTime, usize)> {
    let mut out = Vec::new();
    let mut state = seed;
    let mut split = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut t = 0u64;
    while t < secs * 1_000_000_000 {
        t += 40_000_000 + split() % 120_000_000;
        let fn_idx = (split() % catalog_len as u64) as usize;
        out.push((SimTime(t), fn_idx));
    }
    out
}

fn run(
    setup: &ShardSetup,
    cfg: ClusterConfig,
    arrivals: &[(SimTime, usize)],
    end: SimTime,
    kill: Option<(u32, CrashPlan)>,
) -> (u64, cluster::ClusterTotals, u64) {
    let mut c = Cluster::new(cfg, setup);
    if let Some((shard, plan)) = kill {
        c.plan_kill(shard, plan);
    }
    for &(t, f) in arrivals {
        c.enqueue(t, f);
    }
    c.advance_to(end);
    (c.digest(), c.totals(), c.migrations())
}

#[test]
fn digest_identical_across_job_counts() {
    let s = setup(6 << 30, true);
    let arrivals = drizzle(s.catalog.len(), 30, 3);
    let end = SimTime(36_000_000_000);
    let base = ClusterConfig {
        shards: 8,
        policy: Placement::ColdStartAware,
        ..ClusterConfig::default()
    };
    let mut digests = Vec::new();
    for jobs in [1, 2, 4, 8] {
        let cfg = ClusterConfig { jobs, ..base };
        let (digest, totals, _) = run(&s, cfg, &arrivals, end, None);
        assert!(totals.completed > 0);
        digests.push(digest);
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "digest varies with job count: {digests:?}"
    );
}

#[test]
fn killed_shard_recovers_to_control_digest() {
    let s = setup(6 << 30, true);
    let arrivals = drizzle(s.catalog.len(), 30, 5);
    let end = SimTime(36_000_000_000);
    let cfg = ClusterConfig {
        shards: 4,
        jobs: 2,
        ..ClusterConfig::default()
    };
    let (control, control_totals, _) = run(&s, cfg, &arrivals, end, None);
    let (chaos, chaos_totals, _) = run(&s, cfg, &arrivals, end, Some((2, CrashPlan::every(60))));
    assert!(chaos_totals.recoveries > 0, "kill schedule never fired");
    assert_eq!(control_totals.completed, chaos_totals.completed);
    assert_eq!(
        control, chaos,
        "recovered cluster diverged from the uninterrupted control"
    );
}

#[test]
fn storage_faults_on_one_shard_cost_recency_not_correctness() {
    let mut s = setup(6 << 30, false);
    let arrivals = drizzle(s.catalog.len(), 24, 7);
    let end = SimTime(30_000_000_000);
    let cfg = ClusterConfig {
        shards: 3,
        jobs: 3,
        durability: ShardDurability {
            checkpoint_every: 2,
            base_every: 2,
        },
        ..ClusterConfig::default()
    };
    let (control, ..) = run(&s, cfg, &arrivals, end, None);
    // Every checkpoint write bit-flips at a fixed offset: no stored
    // chain ever verifies, so the killed shard recovers from nothing
    // and replays its whole journal.
    s.storage_faults = Some(StorageFaultPlan::corrupt_at(13, 80));
    let (chaos, totals, _) = run(&s, cfg, &arrivals, end, Some((1, CrashPlan::at(100))));
    assert_eq!(totals.recoveries, 1);
    assert_eq!(totals.scratch_recoveries, 1);
    assert_eq!(control, chaos, "journal-only recovery diverged");
}

#[test]
fn pressure_triggers_migration_offers_and_rehoming() {
    // A tiny cache and a hash policy that keeps hammering the same
    // shards: pressure must produce accepted migration offers.
    let s = setup(768 << 20, false);
    let arrivals = drizzle(s.catalog.len(), 40, 11);
    let end = SimTime(48_000_000_000);
    let cfg = ClusterConfig {
        shards: 2,
        jobs: 1,
        pressure: 0.5,
        ..ClusterConfig::default()
    };
    let (_, totals, migrations) = run(&s, cfg, &arrivals, end, None);
    assert!(totals.completed > 0);
    assert!(migrations > 0, "no migration offer was ever accepted");
}

#[test]
fn single_shard_cluster_matches_itself() {
    let s = setup(4 << 30, true);
    let arrivals = drizzle(s.catalog.len(), 20, 13);
    let end = SimTime(26_000_000_000);
    let cfg = ClusterConfig {
        shards: 1,
        ..ClusterConfig::default()
    };
    let (a, ta, _) = run(&s, cfg, &arrivals, end, None);
    let (b, tb, _) = run(&s, cfg, &arrivals, end, None);
    assert_eq!(a, b);
    assert_eq!(ta, tb);
    assert!(ta.completed > 0);
}

#[test]
fn policies_spread_load_differently() {
    let s = setup(6 << 30, false);
    let arrivals = drizzle(s.catalog.len(), 24, 17);
    let end = SimTime(30_000_000_000);
    let mut digests = Vec::new();
    for policy in [
        Placement::HashAffinity,
        Placement::LeastLoaded,
        Placement::ColdStartAware,
    ] {
        let cfg = ClusterConfig {
            shards: 4,
            policy,
            jobs: 2,
            ..ClusterConfig::default()
        };
        let (digest, totals, _) = run(&s, cfg, &arrivals, end, None);
        assert!(totals.completed > 0, "{policy:?} completed nothing");
        digests.push(digest);
    }
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), 3, "placement policies were indistinguishable");
}

// ---------------------------------------------------------------------------
// Fleet failure domains
// ---------------------------------------------------------------------------

/// Runs a fleet under an optional outage plan and kill schedule,
/// returning the cluster itself so tests can interrogate availability,
/// health, and recovered fleet state.
fn run_fleet(
    setup: &ShardSetup,
    cfg: ClusterConfig,
    arrivals: &[(SimTime, usize)],
    end: SimTime,
    plan: Option<OutagePlan>,
    kill: Option<(u32, CrashPlan)>,
) -> Cluster {
    let mut c = Cluster::new(cfg, setup);
    if let Some(plan) = plan {
        c.set_outage_plan(plan);
    }
    if let Some((shard, kill_plan)) = kill {
        c.plan_kill(shard, kill_plan);
    }
    for &(t, f) in arrivals {
        c.enqueue(t, f);
    }
    c.advance_to(end);
    let totals = c.totals();
    assert!(
        totals.conservation(),
        "conservation violated: routed={} delivered={} shed={} failed={} pending={}",
        totals.routed,
        totals.delivered,
        totals.shed(),
        totals.frontend_failed(),
        totals.pending_retries
    );
    c
}

fn down_window(shard: u32, start: u64, rounds: u64) -> OutagePlan {
    OutagePlan::new(vec![OutageWindow {
        shard,
        start,
        rounds,
        kind: OutageKind::Down,
        planned: false,
    }])
}

#[test]
fn outage_digest_matches_across_jobs_and_kill_schedules() {
    let s = setup(6 << 30, true);
    let arrivals = drizzle(s.catalog.len(), 30, 19);
    let end = SimTime(36_000_000_000);
    let base = ClusterConfig {
        shards: 4,
        ..ClusterConfig::default()
    };
    let plan = down_window(2, 4, 3);
    let mut digests = Vec::new();
    for jobs in [1, 2, 4] {
        let cfg = ClusterConfig { jobs, ..base };
        let c = run_fleet(&s, cfg, &arrivals, end, Some(plan.clone()), None);
        let avail = c.availability();
        assert_eq!(avail.down_rounds, vec![0, 0, 3, 0]);
        assert!(avail.stats.retries > 0, "stranded requests never retried");
        assert!(c.totals().heals > 0, "a Down window must heal via the store");
        assert!(avail.conservation_holds(), "{}", avail.conservation_line());
        digests.push(c.digest());
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "outage digest varies with job count: {digests:?}"
    );
    // A kill layered on top of the outage recovers to the same digest:
    // the kill-free run with the same plan is the control.
    let cfg = ClusterConfig { jobs: 2, ..base };
    let chaos = run_fleet(
        &s,
        cfg,
        &arrivals,
        end,
        Some(plan),
        Some((1, CrashPlan::every(80))),
    );
    assert!(chaos.totals().recoveries > 0, "kill schedule never fired");
    assert_eq!(
        chaos.digest(),
        digests[0],
        "kill + outage diverged from the kill-free control with the same plan"
    );
}

#[test]
fn partitioned_shard_drains_in_place_without_heal() {
    let s = setup(6 << 30, false);
    let arrivals = drizzle(s.catalog.len(), 24, 23);
    let end = SimTime(30_000_000_000);
    let cfg = ClusterConfig {
        shards: 4,
        jobs: 2,
        ..ClusterConfig::default()
    };
    let plan = OutagePlan::new(vec![OutageWindow {
        shard: 3,
        start: 3,
        rounds: 4,
        kind: OutageKind::Partitioned,
        planned: false,
    }]);
    let c = run_fleet(&s, cfg, &arrivals, end, Some(plan), None);
    let totals = c.totals();
    assert_eq!(totals.outage_rounds, 4);
    assert_eq!(totals.heals, 0, "a partition keeps executing; no rebuild");
    assert!(totals.retries > 0, "requests placed onto the partition must strand");
    assert!(totals.delivered > 0);
}

#[test]
fn planned_outage_drains_the_warm_set_before_going_dark() {
    let s = setup(6 << 30, true);
    let arrivals = drizzle(s.catalog.len(), 40, 29);
    let end = SimTime(48_000_000_000);
    let cfg = ClusterConfig {
        shards: 2,
        jobs: 2,
        policy: Placement::ColdStartAware,
        ..ClusterConfig::default()
    };
    let plan = OutagePlan::new(vec![OutageWindow {
        shard: 1,
        start: 10,
        rounds: 3,
        kind: OutageKind::Down,
        planned: true,
    }]);
    let calm = run_fleet(&s, cfg, &arrivals, end, None, None);
    let drained = run_fleet(&s, cfg, &arrivals, end, Some(plan), None);
    assert!(
        drained.migrations() > calm.migrations(),
        "the drain round must re-home warm functions beyond pressure migration \
         (drained {} vs calm {})",
        drained.migrations(),
        calm.migrations()
    );
}

#[test]
fn queue_budget_sheds_with_typed_reasons() {
    let s = setup(6 << 30, false);
    let arrivals = drizzle(s.catalog.len(), 24, 31);
    let end = SimTime(30_000_000_000);
    let cfg = ClusterConfig {
        shards: 2,
        jobs: 1,
        frontend: FrontEndConfig {
            queue_budget: 2,
            ..FrontEndConfig::default()
        },
        ..ClusterConfig::default()
    };
    let c = run_fleet(&s, cfg, &arrivals, end, None, None);
    let stats = c.front_stats();
    assert!(stats.shed_overload > 0, "a 2-deep budget must shed under drizzle");
    assert!(stats.delivered > 0, "shedding everything means the budget is broken");
}

#[test]
fn hedging_rescues_requests_that_otherwise_fail() {
    let s = setup(6 << 30, false);
    let arrivals = drizzle(s.catalog.len(), 30, 37);
    let end = SimTime(36_000_000_000);
    let plan = down_window(1, 4, 4);
    let run_with = |hedge: bool| {
        let cfg = ClusterConfig {
            shards: 4,
            jobs: 2,
            frontend: FrontEndConfig {
                hedge,
                max_retries: 0,
                ..FrontEndConfig::default()
            },
            ..ClusterConfig::default()
        };
        run_fleet(&s, cfg, &arrivals, end, Some(plan.clone()), None)
    };
    let bare = run_with(false).front_stats();
    let hedged = run_with(true).front_stats();
    assert!(bare.failed_retries > 0, "without retries, strandings must fail");
    assert_eq!(bare.hedges, 0);
    assert!(hedged.hedge_wins > 0, "hedges never rescued a stranded request");
    assert!(
        hedged.failed_retries < bare.failed_retries,
        "hedging must strictly reduce failures ({} vs {})",
        hedged.failed_retries,
        bare.failed_retries
    );
}

#[test]
fn short_deadlines_expire_while_stranded() {
    let s = setup(6 << 30, false);
    let arrivals = drizzle(s.catalog.len(), 30, 41);
    let end = SimTime(36_000_000_000);
    let cfg = ClusterConfig {
        shards: 4,
        jobs: 2,
        frontend: FrontEndConfig {
            deadline: SimDuration::from_secs(1),
            max_retries: 10,
            ..FrontEndConfig::default()
        },
        ..ClusterConfig::default()
    };
    let c = run_fleet(&s, cfg, &arrivals, end, Some(down_window(2, 4, 4)), None);
    let stats = c.front_stats();
    assert!(
        stats.failed_deadline > 0,
        "a 1s deadline cannot survive a multi-round stranding"
    );
    assert!(stats.delivered > 0);
}

#[test]
fn fleet_state_rides_shard_zero_checkpoints() {
    let s = setup(6 << 30, true);
    let arrivals = drizzle(s.catalog.len(), 30, 43);
    let end = SimTime(36_000_000_000);
    let cfg = ClusterConfig {
        shards: 4,
        jobs: 2,
        ..ClusterConfig::default()
    };
    // Kill shard 0 repeatedly: the last recovery restores a cut late
    // in the run, after several front-end frames have been embedded.
    let c = run_fleet(&s, cfg, &arrivals, end, None, Some((0, CrashPlan::every(60))));
    assert!(c.totals().recoveries > 0, "kill never fired");
    let bytes = c
        .recovered_front(0)
        .expect("restored cut carries no front-end frame");
    let (router, front, rounds) = Cluster::decode_front(&bytes).expect("front frame decodes");
    assert!(rounds > 0, "recovery restored the round-zero cut");
    assert!(
        rounds.is_multiple_of(cfg.durability.checkpoint_every as u64),
        "front frame must come from a cut round (got round {rounds})"
    );
    assert!(front.stats.routed > 0, "checkpointed front end saw no traffic");
    // The decoded router re-encodes to the same canonical bytes.
    let mut r = snapshot::Reader::new(&bytes);
    let router_bytes = r.blob().expect("router blob").to_vec();
    assert_eq!(router.state_bytes(), router_bytes);
}
