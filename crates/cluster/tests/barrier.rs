//! Integration gates for the barrier engine: jobs-invariance,
//! kill-recover digest identity, migration under pressure, and the
//! placement policies' observable behaviour.

use cluster::{Cluster, ClusterConfig, Placement, ShardDurability, ShardSetup};
use desiccant::{Desiccant, DesiccantConfig};
use faas::{CrashPlan, MemoryManager, PlatformConfig, StorageFaultPlan};
use simos::SimTime;

fn desiccant_manager(_shard: u32) -> Option<Box<dyn MemoryManager>> {
    Some(Box::new(Desiccant::new(DesiccantConfig::default())))
}

fn setup(cache_budget: u64, desiccant: bool) -> ShardSetup {
    let mut s = ShardSetup::vanilla();
    s.platform = PlatformConfig {
        cache_budget,
        ..PlatformConfig::default()
    };
    if desiccant {
        s.manager = desiccant_manager;
    }
    s
}

/// A small synthetic workload: a steady drizzle over the catalog, hot
/// on a few functions, spanning `secs` simulated seconds.
fn drizzle(catalog_len: usize, secs: u64, seed: u64) -> Vec<(SimTime, usize)> {
    let mut out = Vec::new();
    let mut state = seed;
    let mut split = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut t = 0u64;
    while t < secs * 1_000_000_000 {
        t += 40_000_000 + split() % 120_000_000;
        let fn_idx = (split() % catalog_len as u64) as usize;
        out.push((SimTime(t), fn_idx));
    }
    out
}

fn run(
    setup: &ShardSetup,
    cfg: ClusterConfig,
    arrivals: &[(SimTime, usize)],
    end: SimTime,
    kill: Option<(u32, CrashPlan)>,
) -> (u64, cluster::ClusterTotals, u64) {
    let mut c = Cluster::new(cfg, setup);
    if let Some((shard, plan)) = kill {
        c.plan_kill(shard, plan);
    }
    for &(t, f) in arrivals {
        c.enqueue(t, f);
    }
    c.advance_to(end);
    (c.digest(), c.totals(), c.migrations())
}

#[test]
fn digest_identical_across_job_counts() {
    let s = setup(6 << 30, true);
    let arrivals = drizzle(s.catalog.len(), 30, 3);
    let end = SimTime(36_000_000_000);
    let base = ClusterConfig {
        shards: 8,
        policy: Placement::ColdStartAware,
        ..ClusterConfig::default()
    };
    let mut digests = Vec::new();
    for jobs in [1, 2, 4, 8] {
        let cfg = ClusterConfig { jobs, ..base };
        let (digest, totals, _) = run(&s, cfg, &arrivals, end, None);
        assert!(totals.completed > 0);
        digests.push(digest);
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "digest varies with job count: {digests:?}"
    );
}

#[test]
fn killed_shard_recovers_to_control_digest() {
    let s = setup(6 << 30, true);
    let arrivals = drizzle(s.catalog.len(), 30, 5);
    let end = SimTime(36_000_000_000);
    let cfg = ClusterConfig {
        shards: 4,
        jobs: 2,
        ..ClusterConfig::default()
    };
    let (control, control_totals, _) = run(&s, cfg, &arrivals, end, None);
    let (chaos, chaos_totals, _) = run(&s, cfg, &arrivals, end, Some((2, CrashPlan::every(60))));
    assert!(chaos_totals.recoveries > 0, "kill schedule never fired");
    assert_eq!(control_totals.completed, chaos_totals.completed);
    assert_eq!(
        control, chaos,
        "recovered cluster diverged from the uninterrupted control"
    );
}

#[test]
fn storage_faults_on_one_shard_cost_recency_not_correctness() {
    let mut s = setup(6 << 30, false);
    let arrivals = drizzle(s.catalog.len(), 24, 7);
    let end = SimTime(30_000_000_000);
    let cfg = ClusterConfig {
        shards: 3,
        jobs: 3,
        durability: ShardDurability {
            checkpoint_every: 2,
            base_every: 2,
        },
        ..ClusterConfig::default()
    };
    let (control, ..) = run(&s, cfg, &arrivals, end, None);
    // Every checkpoint write bit-flips at a fixed offset: no stored
    // chain ever verifies, so the killed shard recovers from nothing
    // and replays its whole journal.
    s.storage_faults = Some(StorageFaultPlan::corrupt_at(13, 80));
    let (chaos, totals, _) = run(&s, cfg, &arrivals, end, Some((1, CrashPlan::at(100))));
    assert_eq!(totals.recoveries, 1);
    assert_eq!(totals.scratch_recoveries, 1);
    assert_eq!(control, chaos, "journal-only recovery diverged");
}

#[test]
fn pressure_triggers_migration_offers_and_rehoming() {
    // A tiny cache and a hash policy that keeps hammering the same
    // shards: pressure must produce accepted migration offers.
    let s = setup(768 << 20, false);
    let arrivals = drizzle(s.catalog.len(), 40, 11);
    let end = SimTime(48_000_000_000);
    let cfg = ClusterConfig {
        shards: 2,
        jobs: 1,
        pressure: 0.5,
        ..ClusterConfig::default()
    };
    let (_, totals, migrations) = run(&s, cfg, &arrivals, end, None);
    assert!(totals.completed > 0);
    assert!(migrations > 0, "no migration offer was ever accepted");
}

#[test]
fn single_shard_cluster_matches_itself() {
    let s = setup(4 << 30, true);
    let arrivals = drizzle(s.catalog.len(), 20, 13);
    let end = SimTime(26_000_000_000);
    let cfg = ClusterConfig {
        shards: 1,
        ..ClusterConfig::default()
    };
    let (a, ta, _) = run(&s, cfg, &arrivals, end, None);
    let (b, tb, _) = run(&s, cfg, &arrivals, end, None);
    assert_eq!(a, b);
    assert_eq!(ta, tb);
    assert!(ta.completed > 0);
}

#[test]
fn policies_spread_load_differently() {
    let s = setup(6 << 30, false);
    let arrivals = drizzle(s.catalog.len(), 24, 17);
    let end = SimTime(30_000_000_000);
    let mut digests = Vec::new();
    for policy in [
        Placement::HashAffinity,
        Placement::LeastLoaded,
        Placement::ColdStartAware,
    ] {
        let cfg = ClusterConfig {
            shards: 4,
            policy,
            jobs: 2,
            ..ClusterConfig::default()
        };
        let (digest, totals, _) = run(&s, cfg, &arrivals, end, None);
        assert!(totals.completed > 0, "{policy:?} completed nothing");
        digests.push(digest);
    }
    digests.sort_unstable();
    digests.dedup();
    assert_eq!(digests.len(), 3, "placement policies were indistinguishable");
}
