//! Barrier messages: everything a shard tells the router.
//!
//! These are the *only* bytes that cross a shard boundary. A shard
//! summarizes itself into a [`ShardReport`] at each barrier; the
//! router folds the reports in canonical shard order. Nothing in here
//! names an instance or any other piece of shard-local simulation
//! state — placement works on aggregates, which is what makes the
//! `shard-isolation` tidy rule enforceable at the token level.

use std::collections::BTreeMap;

use faas::FrozenFnSummary;
use snapshot::Writer;

/// One shard's barrier summary: load and warm-set signals for the
/// placement policies, plus any migration offers made under memory
/// pressure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// The reporting shard.
    pub shard: u32,
    /// Requests somewhere between submission and completion.
    pub in_flight: u64,
    /// Bytes charged against the instance cache.
    pub cache_used: u64,
    /// The shard's cache budget (constant, but carried so the router
    /// never has to reach into shard configuration).
    pub cache_budget: u64,
    /// Live instances (any status).
    pub instances: u64,
    /// Frozen (warm, thaw-able) instances.
    pub frozen: u64,
    /// Per-function summary of the frozen cache: the warm set the
    /// cold-start-aware policy routes on.
    pub warm: BTreeMap<usize, FrozenFnSummary>,
    /// Functions this shard wants re-homed (memory pressure).
    pub offers: Vec<MigrationOffer>,
    /// Cumulative kill-recoveries on this shard.
    pub recoveries: u64,
    /// Cumulative recoveries that found no usable checkpoint chain.
    pub scratch_recoveries: u64,
}

impl ShardReport {
    /// Serializes the report into `w` deterministically — part of the
    /// cluster digest and of the router's own state bytes.
    ///
    /// The recovery counters are deliberately *excluded*: they count
    /// kills survived, not simulation state, and the kill-recover gates
    /// demand a chaos run digest byte-identical to its uninterrupted
    /// control. Encoding them would make that impossible by
    /// construction.
    pub fn encode(&self, w: &mut Writer) {
        let ShardReport {
            shard,
            in_flight,
            cache_used,
            cache_budget,
            instances,
            frozen,
            warm,
            offers,
            recoveries: _,
            scratch_recoveries: _,
        } = self;
        w.u32(*shard);
        w.u64(*in_flight);
        w.u64(*cache_used);
        w.u64(*cache_budget);
        w.u64(*instances);
        w.u64(*frozen);
        w.usize(warm.len());
        for (fn_idx, s) in warm {
            w.usize(*fn_idx);
            w.u64(s.count);
            w.u64(s.charge);
            w.u64(s.oldest_frozen.0);
        }
        w.usize(offers.len());
        for o in offers {
            o.encode(w);
        }
    }
}

/// A shard under memory pressure asking the router to re-home one
/// function's *future* placements elsewhere.
///
/// Migration is affinity reassignment, not state surgery: the offering
/// shard keeps (and eventually evicts or reclaims) the instances it
/// already holds, while new arrivals of the function land on the
/// target the router picks at the barrier. That keeps every byte of
/// shard-local state shard-local.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationOffer {
    /// The overloaded shard making the offer.
    pub from: u32,
    /// Catalog index of the function to re-home.
    pub fn_idx: usize,
    /// USS charge the function's frozen instances hold on the offering
    /// shard — the router's signal for how much pressure moves.
    pub charge: u64,
}

impl MigrationOffer {
    fn encode(&self, w: &mut Writer) {
        let MigrationOffer { from, fn_idx, charge } = self;
        w.u32(*from);
        w.usize(*fn_idx);
        w.u64(*charge);
    }
}

/// End-of-run aggregate counters summed over shards by the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterTotals {
    /// Requests completed across all shards.
    pub completed: u64,
    /// Requests that terminated with a failure.
    pub failed: u64,
    /// Cold boots started.
    pub cold_boots: u64,
    /// Frozen instances evicted under pressure.
    pub evictions: u64,
    /// Live instances at observation time.
    pub instances: u64,
    /// Frozen instances at observation time.
    pub frozen: u64,
    /// Cache bytes charged at observation time.
    pub cache_used: u64,
    /// Kill-recoveries across all shards.
    pub recoveries: u64,
    /// Recoveries that restarted from nothing (journal-only).
    pub scratch_recoveries: u64,
}
