//! Barrier messages: everything a shard tells the router.
//!
//! These are the *only* bytes that cross a shard boundary. A shard
//! summarizes itself into a [`ShardReport`] at each barrier; the
//! router folds the reports in canonical shard order. Nothing in here
//! names an instance or any other piece of shard-local simulation
//! state — placement works on aggregates, which is what makes the
//! `shard-isolation` tidy rule enforceable at the token level.

use std::collections::BTreeMap;

use faas::FrozenFnSummary;
use simos::SimTime;
use snapshot::{Reader, SnapError, Writer};

/// One shard's barrier summary: load and warm-set signals for the
/// placement policies, plus any migration offers made under memory
/// pressure or ahead of a planned outage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// The reporting shard.
    pub shard: u32,
    /// Requests somewhere between submission and completion.
    pub in_flight: u64,
    /// Bytes charged against the instance cache.
    pub cache_used: u64,
    /// The shard's cache budget (constant, but carried so the router
    /// never has to reach into shard configuration).
    pub cache_budget: u64,
    /// Live instances (any status).
    pub instances: u64,
    /// Frozen (warm, thaw-able) instances.
    pub frozen: u64,
    /// Per-function summary of the frozen cache: the warm set the
    /// cold-start-aware policy routes on.
    pub warm: BTreeMap<usize, FrozenFnSummary>,
    /// Functions this shard wants re-homed (memory pressure or a
    /// planned-outage drain).
    pub offers: Vec<MigrationOffer>,
    /// Cumulative kill-recoveries on this shard.
    pub recoveries: u64,
    /// Cumulative recoveries that found no usable checkpoint chain.
    pub scratch_recoveries: u64,
    /// Cumulative outage heals (durable-store re-admissions).
    pub heals: u64,
}

impl ShardReport {
    /// The all-zero report the router's view starts from for a shard
    /// that has never reported (same routing behavior as no view row).
    pub fn empty(shard: u32) -> ShardReport {
        ShardReport {
            shard,
            in_flight: 0,
            cache_used: 0,
            cache_budget: 0,
            instances: 0,
            frozen: 0,
            warm: BTreeMap::new(),
            offers: Vec::new(),
            recoveries: 0,
            scratch_recoveries: 0,
            heals: 0,
        }
    }

    /// Serializes the report into `w` deterministically — part of the
    /// cluster digest and of the router's own state bytes.
    ///
    /// The recovery and heal counters are deliberately *excluded*:
    /// they count kills and outages survived, not simulation state,
    /// and the chaos gates demand a faulted run digest byte-identical
    /// to its uninterrupted control. Encoding them would make that
    /// impossible by construction.
    pub fn encode(&self, w: &mut Writer) {
        let ShardReport {
            shard,
            in_flight,
            cache_used,
            cache_budget,
            instances,
            frozen,
            warm,
            offers,
            recoveries: _,
            scratch_recoveries: _,
            heals: _,
        } = self;
        w.u32(*shard);
        w.u64(*in_flight);
        w.u64(*cache_used);
        w.u64(*cache_budget);
        w.u64(*instances);
        w.u64(*frozen);
        w.usize(warm.len());
        for (fn_idx, s) in warm {
            w.usize(*fn_idx);
            w.u64(s.count);
            w.u64(s.charge);
            w.u64(s.oldest_frozen.0);
        }
        w.usize(offers.len());
        for o in offers {
            o.encode(w);
        }
    }

    /// Decodes a report encoded by [`ShardReport::encode`]. The
    /// excluded counters come back zero.
    pub fn decode(r: &mut Reader<'_>) -> Result<ShardReport, SnapError> {
        let shard = r.u32()?;
        let in_flight = r.u64()?;
        let cache_used = r.u64()?;
        let cache_budget = r.u64()?;
        let instances = r.u64()?;
        let frozen = r.u64()?;
        let n_warm = r.seq_len()?;
        let mut warm = BTreeMap::new();
        for _ in 0..n_warm {
            let fn_idx = r.usize()?;
            let summary = FrozenFnSummary {
                count: r.u64()?,
                charge: r.u64()?,
                oldest_frozen: SimTime(r.u64()?),
            };
            if warm.insert(fn_idx, summary).is_some() {
                return Err(SnapError::Corrupt("duplicate warm-set key"));
            }
        }
        let n_offers = r.seq_len()?;
        let mut offers = Vec::with_capacity(n_offers);
        for _ in 0..n_offers {
            offers.push(MigrationOffer::decode(r)?);
        }
        Ok(ShardReport {
            shard,
            in_flight,
            cache_used,
            cache_budget,
            instances,
            frozen,
            warm,
            offers,
            recoveries: 0,
            scratch_recoveries: 0,
            heals: 0,
        })
    }
}

/// A shard asking the router to re-home one function's *future*
/// placements elsewhere — because of memory pressure, or because the
/// shard is about to enter a planned outage and is draining its warm
/// set.
///
/// Migration is affinity reassignment, not state surgery: the offering
/// shard keeps (and eventually evicts or reclaims) the instances it
/// already holds, while new arrivals of the function land on the
/// target the router picks at the barrier. That keeps every byte of
/// shard-local state shard-local.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationOffer {
    /// The offering shard.
    pub from: u32,
    /// Catalog index of the function to re-home.
    pub fn_idx: usize,
    /// USS charge the function's frozen instances hold on the offering
    /// shard — the router's signal for how much pressure moves.
    pub charge: u64,
    /// True when the offer is a planned-outage drain: the router
    /// remembers the origin and restores hash affinity once the shard
    /// heals.
    pub drain: bool,
}

impl MigrationOffer {
    fn encode(&self, w: &mut Writer) {
        let MigrationOffer { from, fn_idx, charge, drain } = self;
        w.u32(*from);
        w.usize(*fn_idx);
        w.u64(*charge);
        w.bool(*drain);
    }

    fn decode(r: &mut Reader<'_>) -> Result<MigrationOffer, SnapError> {
        Ok(MigrationOffer {
            from: r.u32()?,
            fn_idx: r.usize()?,
            charge: r.u64()?,
            drain: r.bool()?,
        })
    }
}

/// End-of-run aggregate counters summed over shards by the engine,
/// plus the front end's request-lifecycle accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterTotals {
    /// Requests completed across all shards.
    pub completed: u64,
    /// Requests that terminated with a failure inside a platform.
    pub failed: u64,
    /// Cold boots started.
    pub cold_boots: u64,
    /// Frozen instances evicted under pressure.
    pub evictions: u64,
    /// Live instances at observation time.
    pub instances: u64,
    /// Frozen instances at observation time.
    pub frozen: u64,
    /// Cache bytes charged at observation time.
    pub cache_used: u64,
    /// Kill-recoveries across all shards.
    pub recoveries: u64,
    /// Recoveries that restarted from nothing (journal-only).
    pub scratch_recoveries: u64,
    /// Outage heals: durable-store re-admissions after `Down` windows.
    pub heals: u64,
    /// Shard-rounds spent unreachable (down or partitioned).
    pub outage_rounds: u64,
    /// Requests that entered front-end placement.
    pub routed: u64,
    /// Requests handed to a reachable shard.
    pub delivered: u64,
    /// Requests shed at admission: chosen shard over budget.
    pub shed_overload: u64,
    /// Requests shed at admission: no routable shard.
    pub shed_unroutable: u64,
    /// Requests whose deadline expired while stranded.
    pub failed_deadline: u64,
    /// Requests stranded past the retry cap.
    pub failed_retries: u64,
    /// Retry placements performed.
    pub retries: u64,
    /// Hedge copies placed.
    pub hedges: u64,
    /// Deliveries that succeeded only through the hedge copy.
    pub hedge_wins: u64,
    /// Hedge copies that duplicated a live primary.
    pub hedge_extra: u64,
    /// Requests still queued for retry at observation time.
    pub pending_retries: u64,
}

impl ClusterTotals {
    /// Requests shed, all reasons.
    pub fn shed(&self) -> u64 {
        self.shed_overload + self.shed_unroutable
    }

    /// Requests failed at the front end, all reasons.
    pub fn frontend_failed(&self) -> u64 {
        self.failed_deadline + self.failed_retries
    }

    /// The conservation invariant: every request that entered
    /// placement terminated in exactly one typed outcome (or is still
    /// queued for retry at observation time).
    pub fn conservation(&self) -> bool {
        self.routed == self.delivered + self.shed() + self.frontend_failed() + self.pending_retries
    }

    /// Serializes every counter (diagnostic codec, not digest-fed, so
    /// the fault counters are included).
    pub fn encode(&self, w: &mut Writer) {
        let ClusterTotals {
            completed,
            failed,
            cold_boots,
            evictions,
            instances,
            frozen,
            cache_used,
            recoveries,
            scratch_recoveries,
            heals,
            outage_rounds,
            routed,
            delivered,
            shed_overload,
            shed_unroutable,
            failed_deadline,
            failed_retries,
            retries,
            hedges,
            hedge_wins,
            hedge_extra,
            pending_retries,
        } = self;
        for v in [
            completed, failed, cold_boots, evictions, instances, frozen, cache_used, recoveries,
            scratch_recoveries, heals, outage_rounds, routed, delivered, shed_overload,
            shed_unroutable, failed_deadline, failed_retries, retries, hedges, hedge_wins,
            hedge_extra, pending_retries,
        ] {
            w.u64(*v);
        }
    }

    /// Decodes totals encoded by [`ClusterTotals::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<ClusterTotals, SnapError> {
        Ok(ClusterTotals {
            completed: r.u64()?,
            failed: r.u64()?,
            cold_boots: r.u64()?,
            evictions: r.u64()?,
            instances: r.u64()?,
            frozen: r.u64()?,
            cache_used: r.u64()?,
            recoveries: r.u64()?,
            scratch_recoveries: r.u64()?,
            heals: r.u64()?,
            outage_rounds: r.u64()?,
            routed: r.u64()?,
            delivered: r.u64()?,
            shed_overload: r.u64()?,
            shed_unroutable: r.u64()?,
            failed_deadline: r.u64()?,
            failed_retries: r.u64()?,
            retries: r.u64()?,
            hedges: r.u64()?,
            hedge_wins: r.u64()?,
            hedge_extra: r.u64()?,
            pending_retries: r.u64()?,
        })
    }
}
