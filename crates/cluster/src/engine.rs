//! The deterministic parallel time-barrier replay engine.
//!
//! A [`Cluster`] advances all shards in coarse rounds. Each round:
//!
//! 1. **Place** (engine thread, serial): the round's arrivals — every
//!    pending arrival at or before the next barrier — are routed in
//!    canonical arrival order against the router's *last-barrier*
//!    view. Nothing a shard does mid-round can influence this round's
//!    placement, so the partition of work is a pure function of
//!    history up to the previous barrier.
//! 2. **Drain** (parallel): every shard independently executes the
//!    round — journals the batch, maybe cuts a checkpoint, submits,
//!    and drains its event queue up to the barrier — on the scoped
//!    worker pool. Shards share no mutable state; each sits behind its
//!    own `Mutex`, locked once per round by whichever worker claims
//!    it. [`parallel::run_jobs`] returns the reports in input order.
//! 3. **Merge** (engine thread, serial): the reports are folded into
//!    the router in canonical shard order — stats views refresh,
//!    migration offers become placement overrides.
//!
//! Because step 1 and 3 are serial folds over canonically ordered data
//! and step 2 is a pure per-shard function of (journal, barrier), the
//! entire trajectory — and therefore [`Cluster::digest`] — is
//! byte-identical at `--jobs 1` and `--jobs N`, kills and recoveries
//! included. The gates in `bench` and the crate's proptests pin
//! exactly that.

use std::collections::VecDeque;
use std::sync::Mutex;

use faas::fault::CrashPlan;
use simos::{SimDuration, SimTime};

use crate::fnv64_update;
use crate::msg::{ClusterTotals, ShardReport};
use crate::router::{Placement, Router};
use crate::shard::{Shard, ShardDurability, ShardSetup};

/// Shape of a cluster run.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of shards (simulated machines).
    pub shards: u32,
    /// Barrier period: shards run independently for this long per
    /// round. Coarser rounds amortize barrier cost; placement reacts
    /// one round late either way.
    pub round: SimDuration,
    /// Placement policy of the front-end router.
    pub policy: Placement,
    /// Worker threads draining shards each round (`1` = serial). Has
    /// no effect on any simulation outcome, only on wall time.
    pub jobs: usize,
    /// Per-shard checkpoint cadence.
    pub durability: ShardDurability,
    /// Cache-occupancy fraction above which a shard offers migrations.
    pub pressure: f64,
    /// Migration offers per shard per barrier.
    pub max_offers: usize,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            shards: 8,
            round: SimDuration::from_secs(2),
            policy: Placement::HashAffinity,
            jobs: 1,
            durability: ShardDurability::default(),
            pressure: 0.85,
            max_offers: 2,
        }
    }
}

/// A cluster of shards behind a placement router.
pub struct Cluster {
    cfg: ClusterConfig,
    shards: Vec<Mutex<Shard>>,
    router: Router,
    /// Arrivals accepted but not yet barrier-assigned, in canonical
    /// (time, enqueue order) — enforced monotone on the way in.
    pending: VecDeque<(SimTime, usize)>,
    /// Time of the last completed barrier.
    now: SimTime,
    /// Rounds completed.
    rounds: usize,
    /// Stats reset requested for the start of the next round.
    reset_pending: bool,
    /// Reports of the last completed barrier.
    last_reports: Vec<ShardReport>,
}

/// One round's work order for one shard — what a pool worker consumes.
struct RoundWork<'a> {
    shard: &'a Mutex<Shard>,
    round: usize,
    barrier: SimTime,
    reset: bool,
    batch: Vec<(SimTime, usize)>,
    pressure: f64,
    max_offers: usize,
}

impl Cluster {
    /// Builds `cfg.shards` identically-configured shards.
    pub fn new(cfg: ClusterConfig, setup: &ShardSetup) -> Cluster {
        assert!(cfg.shards > 0, "a cluster needs at least one shard");
        let shards: Vec<Mutex<Shard>> = (0..cfg.shards)
            .map(|id| Mutex::new(Shard::new(id, setup.clone(), cfg.durability)))
            .collect();
        let now = shards[0].lock().expect("shard lock").now();
        Cluster {
            router: Router::new(cfg.policy, cfg.shards),
            shards,
            pending: VecDeque::new(),
            now,
            rounds: 0,
            reset_pending: false,
            last_reports: Vec::new(),
            cfg,
        }
    }

    /// The configuration the cluster runs under.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Time of the last completed barrier.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Rounds completed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Total arrivals routed.
    pub fn routed(&self) -> u64 {
        self.router.routed()
    }

    /// Migration overrides the router has accepted.
    pub fn migrations(&self) -> u64 {
        self.router.migrations()
    }

    /// Changes the worker count for subsequent rounds. Outcome-neutral
    /// by construction (the determinism gates run the same cluster at
    /// several job counts).
    pub fn set_jobs(&mut self, jobs: usize) {
        self.cfg.jobs = jobs;
    }

    /// Accepts an arrival for placement at the next barrier it falls
    /// under. Arrivals must be enqueued in canonical order: time
    /// non-decreasing, never behind the last completed barrier.
    pub fn enqueue(&mut self, t: SimTime, fn_idx: usize) {
        assert!(t >= self.now, "arrival behind the last barrier");
        if let Some(&(last, _)) = self.pending.back() {
            assert!(t >= last, "arrivals must be enqueued in time order");
        }
        self.pending.push_back((t, fn_idx));
    }

    /// Resets every shard's stats counters at the start of the next
    /// round (the measured-window cut of the replay protocol). The
    /// reset is journaled, so a kill-recovery replays it at the same
    /// round.
    pub fn reset_stats(&mut self) {
        self.reset_pending = true;
    }

    /// Arms a kill schedule on one shard.
    pub fn plan_kill(&mut self, shard: u32, plan: CrashPlan) {
        self.shards[shard as usize]
            .lock()
            .expect("shard lock")
            .plan_kill(plan);
    }

    /// Advances every shard to `t_end` in barrier rounds.
    pub fn advance_to(&mut self, t_end: SimTime) {
        assert!(t_end >= self.now, "cannot advance into the past");
        while self.now < t_end {
            let barrier = (self.now + self.cfg.round).min(t_end);
            self.run_round(barrier);
        }
    }

    /// One barrier round: place, drain in parallel, merge.
    fn run_round(&mut self, barrier: SimTime) {
        let n = self.cfg.shards as usize;
        let mut batches: Vec<Vec<(SimTime, usize)>> = vec![Vec::new(); n];
        while self.pending.front().is_some_and(|&(t, _)| t <= barrier) {
            let Some((t, fn_idx)) = self.pending.pop_front() else { break };
            let shard = self.router.route(fn_idx);
            // tidy:allow(panic-reachability) -- the router only ever returns shard < cfg.shards == n
            batches[shard as usize].push((t, fn_idx));
        }
        let reset = self.reset_pending;
        self.reset_pending = false;
        let round = self.rounds;
        let (pressure, max_offers) = (self.cfg.pressure, self.cfg.max_offers);
        let work: Vec<RoundWork<'_>> = self
            .shards
            .iter()
            .zip(batches)
            .map(|(shard, batch)| RoundWork {
                shard,
                round,
                barrier,
                reset,
                batch,
                pressure,
                max_offers,
            })
            .collect();
        // The parallel fan-out. Reports come back in input (= shard)
        // order regardless of completion order, so the merge below is
        // canonical at any job count.
        let reports = parallel::run_jobs(self.cfg.jobs, &work, |w| {
            // tidy:allow(panic-reachability) -- poisoned only if a worker already panicked; propagating is correct
            w.shard.lock().expect("shard lock").advance(
                w.round,
                w.barrier,
                w.reset,
                &w.batch,
                w.pressure,
                w.max_offers,
            )
        });
        self.router.absorb(&reports);
        self.last_reports = reports;
        self.rounds += 1;
        self.now = barrier;
    }

    /// Reports of the last completed barrier (canonical shard order).
    pub fn last_reports(&self) -> &[ShardReport] {
        &self.last_reports
    }

    /// Total simulation events handled across all shards — the scale
    /// against which event-count kill schedules are sized.
    pub fn events_seen(&self) -> u64 {
        self.shards
            .iter()
            .map(|m| m.lock().expect("shard lock").events_seen())
            .sum()
    }

    /// FNV-1a digest over every shard's canonical state bytes (shard
    /// order) and the router's state. Two runs of the same workload
    /// produce the same digest if — and only if — every shard and the
    /// router ended in identical states, whatever `jobs` was and
    /// however many kills were recovered along the way.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325;
        for m in &self.shards {
            let shard = m.lock().expect("shard lock");
            fnv64_update(&mut h, &shard.state_bytes());
        }
        fnv64_update(&mut h, &self.router.state_bytes());
        h
    }

    /// Aggregate counters summed over all shards.
    pub fn totals(&self) -> ClusterTotals {
        let mut out = ClusterTotals::default();
        for m in &self.shards {
            let shard = m.lock().expect("shard lock");
            let t = shard.totals();
            out.completed += t.completed;
            out.failed += t.failed;
            out.cold_boots += t.cold_boots;
            out.evictions += t.evictions;
            out.instances += t.instances;
            out.frozen += t.frozen;
            out.cache_used += t.cache_used;
            out.recoveries += t.recoveries;
            out.scratch_recoveries += t.scratch_recoveries;
        }
        out
    }
}
