//! The deterministic parallel time-barrier replay engine.
//!
//! A [`Cluster`] advances all shards in coarse rounds. Each round:
//!
//! 1. **Place** (engine thread, serial): the round's intake — stranded
//!    retries first, then every pending arrival at or before the next
//!    barrier — is routed in canonical order against the router's
//!    *last-barrier* view. Nothing a shard does mid-round can influence
//!    this round's placement, so the partition of work is a pure
//!    function of history up to the previous barrier.
//! 2. **Drain** (parallel): every reachable shard independently
//!    executes the round — journals the batch, maybe cuts a
//!    checkpoint, submits, and drains its event queue up to the
//!    barrier — on the scoped worker pool. Shards share no mutable
//!    state; each sits behind its own `Mutex`, locked once per round
//!    by whichever worker claims it. [`parallel::run_jobs`] returns
//!    the report slots in input order.
//! 3. **Merge** (engine thread, serial): the report slots are folded
//!    into the router in canonical shard order — stats views refresh,
//!    health machines observe hits and misses, migration offers become
//!    placement overrides — and requests placed onto shards that
//!    turned out to be dark are resolved (hedge win, retry, or typed
//!    failure).
//!
//! Because steps 1 and 3 are serial folds over canonically ordered
//! data and step 2 is a pure per-shard function of (journal, barrier),
//! the entire trajectory — and therefore [`Cluster::digest`] — is
//! byte-identical at `--jobs 1` and `--jobs N`, kills, outages, and
//! recoveries included. The gates in `bench` and the crate's proptests
//! pin exactly that.
//!
//! # Failure domains
//!
//! An installed [`OutagePlan`] marks shard-rounds dark. The engine
//! evaluates the plan purely by round index (serial, before placement),
//! withholds dark shards' reports from the router, and drops the batch
//! placed onto them — those requests strand and re-enter placement at
//! the next barrier. The router learns about the outage the only way a
//! real front end can: the report never arrived.

use std::collections::VecDeque;
use std::sync::Mutex;

use faas::fault::{CrashPlan, OutageKind, OutagePlan};
use faas::LatencyHistogram;
use simos::{SimDuration, SimTime};
use snapshot::{Reader, SnapError, Writer};

use crate::fnv64_update;
use crate::frontend::{AvailabilityReport, FrontEnd, FrontEndConfig, FrontReq, FrontStats, ShedReason};
use crate::health::HealthState;
use crate::msg::{ClusterTotals, ShardReport};
use crate::router::{Placement, Router, Routing};
use crate::shard::{Shard, ShardDurability, ShardSetup};

/// Shape of a cluster run.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of shards (simulated machines).
    pub shards: u32,
    /// Barrier period: shards run independently for this long per
    /// round. Coarser rounds amortize barrier cost; placement reacts
    /// one round late either way.
    pub round: SimDuration,
    /// Placement policy of the front-end router.
    pub policy: Placement,
    /// Worker threads draining shards each round (`1` = serial). Has
    /// no effect on any simulation outcome, only on wall time.
    pub jobs: usize,
    /// Per-shard checkpoint cadence.
    pub durability: ShardDurability,
    /// Cache-occupancy fraction above which a shard offers migrations.
    pub pressure: f64,
    /// Migration offers per shard per barrier.
    pub max_offers: usize,
    /// Front-end request lifecycle: deadlines, retries, hedging,
    /// admission control, and health thresholds.
    pub frontend: FrontEndConfig,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            shards: 8,
            round: SimDuration::from_secs(2),
            policy: Placement::HashAffinity,
            jobs: 1,
            durability: ShardDurability::default(),
            pressure: 0.85,
            max_offers: 2,
            frontend: FrontEndConfig::default(),
        }
    }
}

/// A cluster of shards behind a placement router.
pub struct Cluster {
    cfg: ClusterConfig,
    shards: Vec<Mutex<Shard>>,
    router: Router,
    front: FrontEnd,
    /// Shard-rounds the plan darkens, evaluated round by round.
    outages: Option<OutagePlan>,
    /// Dark rounds observed so far, per shard.
    outage_rounds: Vec<u64>,
    /// Arrivals accepted but not yet barrier-assigned, in canonical
    /// (time, enqueue order) — enforced monotone on the way in.
    pending: VecDeque<(SimTime, usize)>,
    /// Time of the last completed barrier.
    now: SimTime,
    /// Rounds completed.
    rounds: usize,
    /// Stats reset requested for the start of the next round.
    reset_pending: bool,
    /// Report slots of the last completed barrier (`None` = the shard
    /// was dark that round).
    last_reports: Vec<Option<ShardReport>>,
}

/// How one shard spends one round.
enum RoundMode {
    /// Reachable: execute the batch and report at the barrier.
    Live {
        batch: Vec<(SimTime, usize)>,
        drain: bool,
    },
    /// Unreachable: no batch arrives, no report leaves.
    Dark(OutageKind),
}

/// One round's work order for one shard — what a pool worker consumes.
struct RoundWork<'a> {
    shard: &'a Mutex<Shard>,
    round: usize,
    barrier: SimTime,
    reset: bool,
    mode: RoundMode,
    pressure: f64,
    max_offers: usize,
    /// Engine front-end bytes for this round's checkpoint cut (shard 0
    /// on cut rounds only).
    front: Option<Vec<u8>>,
}

impl Cluster {
    /// Builds `cfg.shards` identically-configured shards.
    pub fn new(cfg: ClusterConfig, setup: &ShardSetup) -> Cluster {
        assert!(cfg.shards > 0, "a cluster needs at least one shard");
        let shards: Vec<Mutex<Shard>> = (0..cfg.shards)
            .map(|id| Mutex::new(Shard::new(id, setup.clone(), cfg.durability)))
            .collect();
        let now = shards[0].lock().expect("shard lock").now();
        Cluster {
            router: Router::new(cfg.policy, cfg.shards, cfg.frontend.health),
            front: FrontEnd::new(),
            outages: None,
            outage_rounds: vec![0; cfg.shards as usize],
            shards,
            pending: VecDeque::new(),
            now,
            rounds: 0,
            reset_pending: false,
            last_reports: Vec::new(),
            cfg,
        }
    }

    /// The configuration the cluster runs under.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Time of the last completed barrier.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Rounds completed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Requests that entered front-end placement (arrivals and drained
    /// retries are one request each; placement attempts are not
    /// double-counted).
    pub fn routed(&self) -> u64 {
        self.front.stats.routed
    }

    /// Migration overrides the router has accepted.
    pub fn migrations(&self) -> u64 {
        self.router.migrations()
    }

    /// Lifetime front-end outcome counters.
    pub fn front_stats(&self) -> FrontStats {
        self.front.stats
    }

    /// Requests queued for retry at the last barrier.
    pub fn pending_retries(&self) -> u64 {
        self.front.pending()
    }

    /// The router's health view of one shard.
    pub fn health(&self, shard: u32) -> HealthState {
        self.router.health(shard)
    }

    /// Installs the outage plan. Must happen before the first round so
    /// a faulted run and its control replay identical schedules.
    pub fn set_outage_plan(&mut self, plan: OutagePlan) {
        assert_eq!(self.rounds, 0, "outage plan must be installed before the first round");
        plan.validate(self.cfg.shards);
        self.outages = Some(plan);
    }

    /// Changes the worker count for subsequent rounds. Outcome-neutral
    /// by construction (the determinism gates run the same cluster at
    /// several job counts).
    pub fn set_jobs(&mut self, jobs: usize) {
        self.cfg.jobs = jobs;
    }

    /// Accepts an arrival for placement at the next barrier it falls
    /// under. Arrivals must be enqueued in canonical order: time
    /// non-decreasing, never behind the last completed barrier.
    pub fn enqueue(&mut self, t: SimTime, fn_idx: usize) {
        assert!(t >= self.now, "arrival behind the last barrier");
        if let Some(&(last, _)) = self.pending.back() {
            assert!(t >= last, "arrivals must be enqueued in time order");
        }
        self.pending.push_back((t, fn_idx));
    }

    /// Resets every shard's stats counters at the start of the next
    /// round (the measured-window cut of the replay protocol). The
    /// reset is journaled, so a kill-recovery replays it at the same
    /// round. Front-end lifecycle counters are run-lifetime and do
    /// *not* reset — conservation is exact over the whole run.
    pub fn reset_stats(&mut self) {
        self.reset_pending = true;
    }

    /// Arms a kill schedule on one shard.
    pub fn plan_kill(&mut self, shard: u32, plan: CrashPlan) {
        self.shards[shard as usize]
            .lock()
            .expect("shard lock")
            .plan_kill(plan);
    }

    /// Advances every shard to `t_end` in barrier rounds.
    pub fn advance_to(&mut self, t_end: SimTime) {
        assert!(t_end >= self.now, "cannot advance into the past");
        while self.now < t_end {
            let barrier = (self.now + self.cfg.round).min(t_end);
            self.run_round(barrier);
        }
    }

    /// One barrier round: place, drain in parallel, merge.
    fn run_round(&mut self, barrier: SimTime) {
        let n = self.cfg.shards as usize;
        let round = self.rounds;
        // The round's dark set — a pure function of the round index,
        // evaluated serially so every job count sees the same fleet.
        let dark: Vec<Option<OutageKind>> = (0..self.cfg.shards)
            .map(|s| self.outages.as_ref().and_then(|p| p.dark(s, round as u64)))
            .collect();
        // Front-end frame for this round's checkpoint cut, captured
        // *before* placement mutates router or front end — a heal's
        // journal replay re-cuts byte-identical checkpoints.
        let front_frame = round
            .is_multiple_of(self.cfg.durability.checkpoint_every)
            .then(|| self.frontend_bytes());
        // Intake: stranded retries first (they were re-timed to the
        // stranding barrier, which is `self.now`, so batch time order
        // is preserved), then fresh arrivals.
        let mut intake: Vec<FrontReq> = self.front.drain_retries();
        while self.pending.front().is_some_and(|&(t, _)| t <= barrier) {
            let Some((t, fn_idx)) = self.pending.pop_front() else { break };
            self.front.stats.routed += 1;
            intake.push(FrontReq {
                t,
                fn_idx,
                attempts: 0,
                deadline: t + self.cfg.frontend.deadline,
            });
        }
        let mut batches: Vec<Vec<(SimTime, usize)>> = vec![Vec::new(); n];
        // Requests handed out this round, pending outcome resolution
        // against the dark set at the barrier.
        let mut handed: Vec<(u32, Option<u32>, FrontReq)> = Vec::new();
        for req in intake {
            if req.attempts > 0 {
                self.front.stats.retries += 1;
                if req.deadline < self.now {
                    self.front.stats.failed_deadline += 1;
                    continue;
                }
            }
            match self
                .router
                .place(req.fn_idx, self.cfg.frontend.queue_budget, self.cfg.frontend.hedge)
            {
                Routing::Shed(ShedReason::Overload) => self.front.stats.shed_overload += 1,
                Routing::Shed(ShedReason::Unroutable) => self.front.stats.shed_unroutable += 1,
                Routing::Placed { primary, hedge } => {
                    if let Some(b) = batches.get_mut(primary as usize) {
                        b.push((req.t, req.fn_idx));
                    }
                    if let Some(h) = hedge {
                        self.front.stats.hedges += 1;
                        if let Some(b) = batches.get_mut(h as usize) {
                            b.push((req.t, req.fn_idx));
                        }
                    }
                    handed.push((primary, hedge, req));
                }
            }
        }
        let reset = self.reset_pending;
        self.reset_pending = false;
        let (pressure, max_offers) = (self.cfg.pressure, self.cfg.max_offers);
        let outages = self.outages.as_ref();
        let work: Vec<RoundWork<'_>> = self
            .shards
            .iter()
            .zip(batches)
            .zip(&dark)
            .enumerate()
            .map(|(s, ((shard, batch), kind))| RoundWork {
                shard,
                round,
                barrier,
                reset,
                mode: match kind {
                    // The batch placed onto a dark shard never arrives:
                    // it is dropped here and resolved below as hedge
                    // wins, retries, or typed failures.
                    Some(kind) => RoundMode::Dark(*kind),
                    None => RoundMode::Live {
                        batch,
                        // A planned window opens next round: drain the
                        // warm set while the shard is still reachable.
                        drain: outages
                            .is_some_and(|p| p.planned_entry(s as u32, round as u64 + 1)),
                    },
                },
                pressure,
                max_offers,
                front: if s == 0 { front_frame.clone() } else { None },
            })
            .collect();
        // The parallel fan-out. Report slots come back in input
        // (= shard) order regardless of completion order, so the merge
        // below is canonical at any job count.
        let reports = parallel::run_jobs(self.cfg.jobs, &work, |w| {
            // tidy:allow(panic-reachability) -- poisoned only if a worker already panicked; propagating is correct
            let mut shard = w.shard.lock().expect("shard lock");
            match &w.mode {
                RoundMode::Live { batch, drain } => Some(shard.advance(
                    w.round,
                    w.barrier,
                    w.reset,
                    batch,
                    w.pressure,
                    w.max_offers,
                    *drain,
                    w.front.clone(),
                )),
                RoundMode::Dark(kind) => {
                    shard.advance_dark(w.round, w.barrier, w.reset, &[], *kind, w.front.clone());
                    None
                }
            }
        });
        for (count, kind) in self.outage_rounds.iter_mut().zip(&dark) {
            if kind.is_some() {
                *count += 1;
            }
        }
        // Resolve this round's hand-offs against the dark set: a
        // request on a dark primary is rescued by a live hedge or
        // stranded — and a stranded request retries (re-timed to this
        // barrier) or terminates with a typed failure.
        let is_dark =
            |s: u32| -> bool { dark.get(s as usize).copied().flatten().is_some() };
        for (primary, hedge, mut req) in handed {
            let hedge_live = hedge.is_some_and(|h| !is_dark(h));
            if !is_dark(primary) {
                self.front.stats.delivered += 1;
                if hedge_live {
                    self.front.stats.hedge_extra += 1;
                }
            } else if hedge_live {
                self.front.stats.delivered += 1;
                self.front.stats.hedge_wins += 1;
            } else if req.attempts >= self.cfg.frontend.max_retries {
                self.front.stats.failed_retries += 1;
            } else {
                req.attempts += 1;
                req.t = barrier;
                self.front.retry.push_back(req);
            }
        }
        self.router.absorb(&reports);
        self.last_reports = reports;
        self.rounds += 1;
        self.now = barrier;
    }

    /// Report slots of the last completed barrier (canonical shard
    /// order; `None` = the shard was dark).
    pub fn last_reports(&self) -> &[Option<ShardReport>] {
        &self.last_reports
    }

    /// Total simulation events handled across all shards — the scale
    /// against which event-count kill schedules are sized.
    pub fn events_seen(&self) -> u64 {
        self.shards
            .iter()
            .map(|m| m.lock().expect("shard lock").events_seen())
            .sum()
    }

    /// The engine's fleet-level canonical bytes: router state, front
    /// end (retry queue and lifetime counters), and the round count.
    /// Folded into the digest, and embedded as a checkpoint frame on
    /// shard 0's cuts so fleet state is durable alongside shard state.
    pub fn frontend_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.blob(&self.router.state_bytes());
        self.front.encode(&mut w);
        w.u64(self.rounds as u64);
        w.into_bytes()
    }

    /// Decodes bytes produced by [`Cluster::frontend_bytes`] back into
    /// the fleet state they serialize: `(router, front end, rounds)`.
    /// The restore half of the health/retry/hedge checkpoint contract.
    pub fn decode_front(bytes: &[u8]) -> Result<(Router, FrontEnd, u64), SnapError> {
        let mut r = Reader::new(bytes);
        let router_bytes = r.blob()?.to_vec();
        let front = FrontEnd::decode(&mut r)?;
        let rounds = r.u64()?;
        r.finish()?;
        let mut rr = Reader::new(&router_bytes);
        let router = Router::decode(&mut rr)?;
        rr.finish()?;
        Ok((router, front, rounds))
    }

    /// Front-end bytes recovered from shard `shard`'s most recent
    /// store rebuild, if its restored cut carried a front frame.
    pub fn recovered_front(&self, shard: u32) -> Option<Vec<u8>> {
        self.shards
            .get(shard as usize)?
            .lock()
            .expect("shard lock")
            .recovered_front()
            .map(<[u8]>::to_vec)
    }

    /// FNV-1a digest over every shard's canonical state bytes (shard
    /// order) and the fleet-level front-end bytes. Two runs of the
    /// same workload produce the same digest if — and only if — every
    /// shard, the router (health included), and the front end ended in
    /// identical states, whatever `jobs` was and however many kills
    /// and outages were recovered along the way.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325;
        for m in &self.shards {
            let mut shard = m.lock().expect("shard lock");
            fnv64_update(&mut h, &shard.state_bytes());
        }
        fnv64_update(&mut h, &self.frontend_bytes());
        h
    }

    /// The fleet's availability summary: downtime, outcome counters,
    /// success rate, and tail latency merged across shards in
    /// canonical order.
    pub fn availability(&self) -> AvailabilityReport {
        let mut latency = LatencyHistogram::new();
        for m in &self.shards {
            latency.merge(&m.lock().expect("shard lock").latency_histogram());
        }
        let stats = self.front.stats;
        let success_rate = if stats.routed == 0 {
            1.0
        } else {
            stats.delivered as f64 / stats.routed as f64
        };
        AvailabilityReport {
            rounds: self.rounds as u64,
            down_rounds: self.outage_rounds.clone(),
            stats,
            pending_retries: self.front.pending(),
            success_rate,
            p50: latency.percentile(0.5),
            p99: latency.percentile(0.99),
        }
    }

    /// Aggregate counters summed over all shards, with the front end's
    /// request-lifecycle accounting layered on top.
    pub fn totals(&self) -> ClusterTotals {
        let mut out = ClusterTotals::default();
        for m in &self.shards {
            let mut shard = m.lock().expect("shard lock");
            let t = shard.totals();
            out.completed += t.completed;
            out.failed += t.failed;
            out.cold_boots += t.cold_boots;
            out.evictions += t.evictions;
            out.instances += t.instances;
            out.frozen += t.frozen;
            out.cache_used += t.cache_used;
            out.recoveries += t.recoveries;
            out.scratch_recoveries += t.scratch_recoveries;
            out.heals += t.heals;
            out.outage_rounds += t.outage_rounds;
        }
        let f = self.front.stats;
        out.routed = f.routed;
        out.delivered = f.delivered;
        out.shed_overload = f.shed_overload;
        out.shed_unroutable = f.shed_unroutable;
        out.failed_deadline = f.failed_deadline;
        out.failed_retries = f.failed_retries;
        out.retries = f.retries;
        out.hedges = f.hedges;
        out.hedge_wins = f.hedge_wins;
        out.hedge_extra = f.hedge_extra;
        out.pending_retries = self.front.pending();
        out
    }
}
