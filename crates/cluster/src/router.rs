//! The cluster front-end: placement policies, per-shard health, and
//! barrier-state folds.
//!
//! The router is the only component that sees more than one shard, and
//! it sees shards *only* through their [`ShardReport`]s. Its decision
//! inputs are therefore frozen at the last barrier: every arrival of a
//! round is placed from the same snapshot, in the one canonical
//! arrival order, on the engine's thread — which is what makes
//! placement (and hence the whole replay) independent of `--jobs N`.
//!
//! Three policies:
//!
//! * **hash-affinity** — FNV-1a of the catalog index, modulo the shard
//!   count. Stable, stateless, maximizes warm-instance reuse per
//!   function; the baseline every FaaS front-end starts from.
//! * **least-loaded** — the shard with the fewest in-flight requests
//!   at the last barrier (plus the assignments already made this
//!   round, so one round's burst cannot herd onto one shard).
//! * **cold-start-aware** — COCOA-style: prefer a shard holding a
//!   frozen (thaw-able) instance of the function; fall back to
//!   hash-affinity when no shard is warm.
//!
//! # Failure awareness
//!
//! A [`Health`] tracker per shard turns missing barrier reports into
//! an Up → Suspect → Down → Probing machine; every policy places only
//! onto routable (non-`Down`) shards. Hash affinity fails over by
//! probing `(home + k) % shards` for the first routable candidate, so
//! the moment the home shard reports again the failover evaporates
//! and affinity snaps back — nothing to garbage-collect.
//!
//! Migration offers accepted at a barrier become *overrides*: the
//! function's future placements re-home to the least-pressured other
//! routable shard. Overrides take precedence under every policy — they
//! exist to bleed pressure off a shard, which any policy must respect.
//! Drain offers (planned outages) additionally record their origin,
//! and the override is dropped the moment the origin shard is
//! routable again — restoring hash affinity on heal.

use std::collections::BTreeMap;

use snapshot::{Reader, SnapError, Writer};

use crate::fnv64_bytes;
use crate::frontend::ShedReason;
use crate::health::{Health, HealthPolicy, HealthState};
use crate::msg::{MigrationOffer, ShardReport};

/// Placement policy of the cluster front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// FNV(fn_idx) % shards.
    HashAffinity,
    /// Fewest in-flight requests at the last barrier.
    LeastLoaded,
    /// Prefer shards with a frozen instance of the function.
    ColdStartAware,
}

impl Placement {
    fn tag(self) -> u8 {
        match self {
            Placement::HashAffinity => 0,
            Placement::LeastLoaded => 1,
            Placement::ColdStartAware => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<Placement, SnapError> {
        match tag {
            0 => Ok(Placement::HashAffinity),
            1 => Ok(Placement::LeastLoaded),
            2 => Ok(Placement::ColdStartAware),
            _ => Err(SnapError::Corrupt("unknown placement tag")),
        }
    }

    /// Short name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Placement::HashAffinity => "hash-affinity",
            Placement::LeastLoaded => "least-loaded",
            Placement::ColdStartAware => "cold-start-aware",
        }
    }
}

/// One placement decision of the front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// The request goes to `primary`, with an optional same-round
    /// hedge copy on a second shard.
    Placed {
        /// The shard the request lands on.
        primary: u32,
        /// The hedge target, when hedging is on and the primary is
        /// `Suspect` or `Probing`.
        hedge: Option<u32>,
    },
    /// The request is refused at admission.
    Shed(ShedReason),
}

/// The front-end router: placement state, per-shard health, and the
/// last-barrier view of every shard.
#[derive(Debug, PartialEq)]
pub struct Router {
    policy: Placement,
    shards: u32,
    health_policy: HealthPolicy,
    /// Migration re-homes: `fn_idx -> shard`. Consulted before the
    /// policy under every policy.
    overrides: BTreeMap<usize, u32>,
    /// Drain re-homes still waiting for their origin shard to heal:
    /// `fn_idx -> origin shard`. Dropped (with the override) when the
    /// origin is routable again.
    drain_origin: BTreeMap<usize, u32>,
    /// Per-shard health trackers (index = shard id).
    health: Vec<Health>,
    /// Last-barrier report per shard (index = shard id). A shard that
    /// has never reported holds [`ShardReport::empty`].
    view: Vec<ShardReport>,
    /// Assignments made in the current round, per shard — the
    /// intra-round tie-breaker that stops least-loaded herding.
    assigned: Vec<u64>,
    /// Placement attempts performed (initial placements plus retries
    /// and hedges are *not* separated here; request-level accounting
    /// lives in the front end).
    routed: u64,
    /// Migration offers accepted (overrides written).
    migrations: u64,
    /// View rows actually copied by `absorb` — a cost counter for the
    /// skip-unchanged fast path, never part of the canonical state.
    view_copies: u64,
}

impl Router {
    /// A router over `shards` shards with the given policy.
    pub fn new(policy: Placement, shards: u32, health_policy: HealthPolicy) -> Router {
        assert!(shards > 0, "a cluster needs at least one shard");
        Router {
            policy,
            shards,
            health_policy,
            overrides: BTreeMap::new(),
            drain_origin: BTreeMap::new(),
            health: vec![Health::new(); shards as usize],
            view: (0..shards).map(ShardReport::empty).collect(),
            assigned: vec![0; shards as usize],
            routed: 0,
            migrations: 0,
            view_copies: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> Placement {
        self.policy
    }

    /// Migration overrides currently in force.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Placement attempts performed so far (includes retries).
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// The health state of one shard (`Up` for out-of-range ids).
    pub fn health(&self, shard: u32) -> HealthState {
        self.health.get(shard as usize).map_or(HealthState::Up, |h| h.state())
    }

    /// Shards currently declared `Down`.
    pub fn down_count(&self) -> u32 {
        self.health.iter().filter(|h| h.state() == HealthState::Down).count() as u32
    }

    /// View rows copied by `absorb` so far (cost counter for the
    /// skip-unchanged fast path; not part of the canonical state).
    pub fn view_copies(&self) -> u64 {
        self.view_copies
    }

    /// Places one request, returning where it goes — or a typed shed
    /// when admission refuses it. Must be called in canonical arrival
    /// order on the engine thread.
    ///
    /// `queue_budget > 0` sheds the request when the chosen shard's
    /// queue depth (last-barrier in-flight plus this round's
    /// assignments) has reached the budget. `hedge` places a second
    /// copy on the least-loaded other routable shard whenever the
    /// primary is `Suspect` or `Probing`.
    pub fn place(&mut self, fn_idx: usize, queue_budget: u64, hedge: bool) -> Routing {
        let n = self.shards as usize;
        let routable: Vec<bool> = (0..n)
            .map(|s| self.health.get(s).is_none_or(|h| h.state().routable()))
            .collect();
        if !routable.iter().any(|&r| r) {
            return Routing::Shed(ShedReason::Unroutable);
        }
        let primary = match self.overrides.get(&fn_idx) {
            Some(&s) if routable.get(s as usize).copied().unwrap_or(false) => s,
            // An override pointing at an unroutable shard falls back
            // to the policy (which routes around Down shards itself).
            _ => match self.policy {
                Placement::HashAffinity => self.affine(fn_idx, &routable),
                Placement::LeastLoaded => self.least_loaded(&routable),
                Placement::ColdStartAware => self.warmest(fn_idx, &routable),
            },
        };
        if queue_budget > 0 && self.load(primary as usize) >= queue_budget {
            return Routing::Shed(ShedReason::Overload);
        }
        let hedge_to = if hedge
            && matches!(self.health(primary), HealthState::Suspect | HealthState::Probing)
        {
            self.backup(primary, &routable)
        } else {
            None
        };
        self.routed += 1;
        if let Some(count) = self.assigned.get_mut(primary as usize) {
            *count += 1;
        }
        if let Some(h) = hedge_to {
            if let Some(count) = self.assigned.get_mut(h as usize) {
                *count += 1;
            }
        }
        Routing::Placed { primary, hedge: hedge_to }
    }

    fn hash_shard(&self, fn_idx: usize) -> u32 {
        let h = fnv64_bytes(&(fn_idx as u64).to_le_bytes());
        (h % u64::from(self.shards)) as u32
    }

    /// Hash affinity with linear failover: the first routable shard in
    /// `(home + k) % shards` order. With everything Up this is exactly
    /// the home shard, so affinity restores itself on heal.
    fn affine(&self, fn_idx: usize, routable: &[bool]) -> u32 {
        let home = self.hash_shard(fn_idx);
        (0..self.shards)
            .map(|k| ((u64::from(home) + u64::from(k)) % u64::from(self.shards)) as u32)
            .find(|&c| routable.get(c as usize).copied().unwrap_or(false))
            .unwrap_or(home)
    }

    /// Effective load of shard `s`: last-barrier in-flight plus what
    /// this round has already assigned to it.
    fn load(&self, s: usize) -> u64 {
        let at_barrier = self.view.get(s).map_or(0, |r| r.in_flight);
        at_barrier + self.assigned.get(s).copied().unwrap_or(0)
    }

    fn least_loaded(&self, routable: &[bool]) -> u32 {
        (0..self.shards as usize)
            .filter(|&s| routable.get(s).copied().unwrap_or(false))
            .min_by_key(|&s| {
                let cache = self.view.get(s).map_or(0, |r| r.cache_used);
                (self.load(s), cache, s)
            })
            .map_or(0, |s| s as u32)
    }

    fn warmest(&self, fn_idx: usize, routable: &[bool]) -> u32 {
        let warm = (0..self.shards as usize)
            .filter(|&s| routable.get(s).copied().unwrap_or(false))
            .filter(|&s| self.view.get(s).is_some_and(|r| r.warm.contains_key(&fn_idx)))
            .min_by_key(|&s| {
                let cache = self.view.get(s).map_or(0, |r| r.cache_used);
                (self.load(s), cache, s)
            });
        match warm {
            Some(s) => s as u32,
            None => self.affine(fn_idx, routable),
        }
    }

    /// The hedge target: least-loaded routable shard other than the
    /// primary.
    fn backup(&self, primary: u32, routable: &[bool]) -> Option<u32> {
        (0..self.shards as usize)
            .filter(|&s| s as u32 != primary && routable.get(s).copied().unwrap_or(false))
            .min_by_key(|&s| {
                let cache = self.view.get(s).map_or(0, |r| r.cache_used);
                (self.load(s), cache, s)
            })
            .map(|s| s as u32)
    }

    /// Folds the barrier's report slots (canonical shard order; `None`
    /// = the shard was unreachable this round) into the routing view,
    /// advances the health machine, and accepts migration offers.
    ///
    /// The view refresh skips shards whose report is byte-identical to
    /// the held row — most shards most rounds — without changing the
    /// resulting state by a single byte (pinned by this module's
    /// tests). An accepted offer re-homes the function to the
    /// least-pressured *routable* shard other than the offerer; the
    /// target's viewed cache charge is bumped by the offered charge
    /// immediately, so a barrier full of offers spreads instead of
    /// dog-piling one target.
    pub fn absorb(&mut self, reports: &[Option<ShardReport>]) {
        self.absorb_inner(reports, true);
    }

    /// The unconditional-copy reference fold the skip-path tests pin
    /// `absorb` against.
    #[cfg(test)]
    pub fn absorb_clone_all(&mut self, reports: &[Option<ShardReport>]) {
        self.absorb_inner(reports, false);
    }

    fn absorb_inner(&mut self, reports: &[Option<ShardReport>], skip_unchanged: bool) {
        assert_eq!(reports.len(), self.shards as usize, "one report slot per shard");
        for (s, slot) in reports.iter().enumerate() {
            let Some(rep) = slot else { continue };
            if let Some(row) = self.view.get_mut(s) {
                if !skip_unchanged || row != rep {
                    *row = rep.clone();
                    self.view_copies += 1;
                }
            }
        }
        for (s, slot) in reports.iter().enumerate() {
            let was_down = self
                .health
                .get(s)
                .is_some_and(|h| h.state() == HealthState::Down);
            if let Some(h) = self.health.get_mut(s) {
                h.observe(slot.is_some(), self.health_policy);
            }
            let routable_now = self.health.get(s).is_none_or(|h| h.state().routable());
            if was_down && routable_now {
                // The shard is reachable again: drop the drain
                // re-homes it emitted before going dark, restoring
                // hash affinity for its functions.
                let healed: Vec<usize> = self
                    .drain_origin
                    .iter()
                    .filter(|&(_, &origin)| origin as usize == s)
                    .map(|(&fn_idx, _)| fn_idx)
                    .collect();
                for fn_idx in healed {
                    self.overrides.remove(&fn_idx);
                    self.drain_origin.remove(&fn_idx);
                }
            }
        }
        for a in &mut self.assigned {
            *a = 0;
        }
        let offers: Vec<MigrationOffer> = reports
            .iter()
            .flatten()
            .flat_map(|r| r.offers.iter().copied())
            .collect();
        for offer in offers {
            let target = (0..self.shards as usize)
                .filter(|&s| s as u32 != offer.from)
                .filter(|&s| self.health.get(s).is_none_or(|h| h.state().routable()))
                .min_by_key(|&s| {
                    let cached = self.view.get(s).map_or(0, |r| r.cache_used);
                    (cached, self.load(s), s)
                })
                .map(|s| s as u32);
            // No routable target (single shard, or everything else is
            // dark): the offer has nowhere to go.
            let Some(target) = target else { continue };
            if offer.drain {
                self.drain_origin.insert(offer.fn_idx, offer.from);
            }
            // Re-homing to where the function already lives is a no-op
            // offer; skip it so `migrations` counts real moves.
            if self.overrides.get(&offer.fn_idx) == Some(&target) {
                continue;
            }
            self.overrides.insert(offer.fn_idx, target);
            if let Some(row) = self.view.get_mut(target as usize) {
                row.cache_used += offer.charge;
            }
            self.migrations += 1;
        }
    }

    /// Serializes every routing-relevant byte of state. Folded into
    /// the cluster digest: two runs that routed identically — and only
    /// those — produce identical bytes.
    pub fn state_bytes(&self) -> Vec<u8> {
        let Router {
            policy,
            shards,
            health_policy,
            overrides,
            drain_origin,
            health,
            view,
            assigned,
            routed,
            migrations,
            // A wall-cost counter for the absorb fast path; identical
            // state reached through different skip decisions must
            // digest identically.
            view_copies: _,
        } = self;
        let mut w = Writer::new();
        w.u8(policy.tag());
        w.u32(*shards);
        w.u32(health_policy.suspect_to_down);
        w.u32(health_policy.probe_rounds);
        w.usize(overrides.len());
        for (fn_idx, shard) in overrides {
            w.usize(*fn_idx);
            w.u32(*shard);
        }
        w.usize(drain_origin.len());
        for (fn_idx, origin) in drain_origin {
            w.usize(*fn_idx);
            w.u32(*origin);
        }
        w.usize(health.len());
        for h in health {
            h.encode(&mut w);
        }
        w.usize(view.len());
        for r in view {
            r.encode(&mut w);
        }
        w.usize(assigned.len());
        for a in assigned {
            w.u64(*a);
        }
        w.u64(*routed);
        w.u64(*migrations);
        w.into_bytes()
    }

    /// Rebuilds a router from [`Router::state_bytes`] — the
    /// restore half of the health-state checkpoint contract. The
    /// cost counter comes back zero.
    pub fn decode(r: &mut Reader<'_>) -> Result<Router, SnapError> {
        let policy = Placement::from_tag(r.u8()?)?;
        let shards = r.u32()?;
        if shards == 0 {
            return Err(SnapError::Corrupt("router over zero shards"));
        }
        let health_policy = HealthPolicy {
            suspect_to_down: r.u32()?,
            probe_rounds: r.u32()?,
        };
        let n_over = r.seq_len()?;
        let mut overrides = BTreeMap::new();
        for _ in 0..n_over {
            let fn_idx = r.usize()?;
            let shard = r.u32()?;
            overrides.insert(fn_idx, shard);
        }
        let n_drain = r.seq_len()?;
        let mut drain_origin = BTreeMap::new();
        for _ in 0..n_drain {
            let fn_idx = r.usize()?;
            let origin = r.u32()?;
            drain_origin.insert(fn_idx, origin);
        }
        let n_health = r.seq_len()?;
        let mut health = Vec::with_capacity(n_health);
        for _ in 0..n_health {
            health.push(Health::decode(r)?);
        }
        let n_view = r.seq_len()?;
        let mut view = Vec::with_capacity(n_view);
        for _ in 0..n_view {
            view.push(ShardReport::decode(r)?);
        }
        let n_assigned = r.seq_len()?;
        let mut assigned = Vec::with_capacity(n_assigned);
        for _ in 0..n_assigned {
            assigned.push(r.u64()?);
        }
        let routed = r.u64()?;
        let migrations = r.u64()?;
        Ok(Router {
            policy,
            shards,
            health_policy,
            overrides,
            drain_origin,
            health,
            view,
            assigned,
            routed,
            migrations,
            view_copies: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fnv64_bytes as fnv;
    use simos::SimTime;

    fn report(shard: u32, in_flight: u64, cache_used: u64) -> ShardReport {
        ShardReport {
            in_flight,
            cache_used,
            cache_budget: 1 << 30,
            ..ShardReport::empty(shard)
        }
    }

    fn slots(reports: Vec<ShardReport>) -> Vec<Option<ShardReport>> {
        reports.into_iter().map(Some).collect()
    }

    /// Satellite pin: the skip-unchanged absorb must land on bytes
    /// identical to the unconditional-copy fold over any sequence of
    /// barriers, while actually skipping the untouched rows.
    #[test]
    fn absorb_skip_path_pins_the_digest() {
        let mk = || Router::new(Placement::LeastLoaded, 4, HealthPolicy::default());
        let (mut fast, mut naive) = (mk(), mk());
        let barriers: Vec<Vec<Option<ShardReport>>> = vec![
            slots((0..4).map(|s| report(s, 5, 100)).collect()),
            // Identical barrier: every row unchanged.
            slots((0..4).map(|s| report(s, 5, 100)).collect()),
            // Only shard 2 changes.
            slots(
                (0..4)
                    .map(|s| if s == 2 { report(s, 9, 400) } else { report(s, 5, 100) })
                    .collect(),
            ),
            // Shard 1 unreachable, shard 3 changes.
            vec![
                Some(report(0, 5, 100)),
                None,
                Some(report(2, 9, 400)),
                Some(report(3, 1, 50)),
            ],
        ];
        for reports in &barriers {
            fast.absorb(reports);
            naive.absorb_clone_all(reports);
        }
        let (a, b) = (fast.state_bytes(), naive.state_bytes());
        assert_eq!(a, b, "skip path changed the canonical bytes");
        assert_eq!(fnv(&a), fnv(&b));
        // The fast path must have skipped real work: barrier 2 copies
        // nothing, barrier 3 copies one row (shard 2), and barrier 4
        // copies one (shard 3 — shard 2's report repeats barrier 3's).
        assert_eq!(naive.view_copies(), 15);
        assert_eq!(fast.view_copies(), 4 + 1 + 1);
    }

    #[test]
    fn missed_reports_drive_the_health_machine_and_failover() {
        let mut r = Router::new(Placement::HashAffinity, 4, HealthPolicy::default());
        let full = || slots((0..4).map(|s| report(s, 0, 0)).collect());
        r.absorb(&full());
        // Find a function whose home is shard 1.
        let fn_idx = (0..64)
            .find(|&f| {
                matches!(r.place(f, 0, false), Routing::Placed { primary: 1, .. })
            })
            .expect("some function homes on shard 1");
        // Shard 1 stops reporting: Suspect (still routable, still the
        // affinity target), then Down (failover).
        let dark = |down: u32| -> Vec<Option<ShardReport>> {
            (0..4u32)
                .map(|s| (s != down).then(|| report(s, 0, 0)))
                .collect()
        };
        r.absorb(&dark(1));
        assert_eq!(r.health(1), HealthState::Suspect);
        assert!(matches!(r.place(fn_idx, 0, false), Routing::Placed { primary: 1, .. }));
        r.absorb(&dark(1));
        assert_eq!(r.health(1), HealthState::Down);
        let Routing::Placed { primary, .. } = r.place(fn_idx, 0, false) else {
            panic!("placement must not shed with three shards up");
        };
        assert_ne!(primary, 1, "Down shard still targeted");
        // Heal: probation, then affinity snaps back.
        r.absorb(&full());
        assert_eq!(r.health(1), HealthState::Probing);
        r.absorb(&full());
        assert_eq!(r.health(1), HealthState::Up);
        assert!(matches!(r.place(fn_idx, 0, false), Routing::Placed { primary: 1, .. }));
    }

    #[test]
    fn whole_fleet_down_sheds_unroutable() {
        let mut r = Router::new(Placement::LeastLoaded, 2, HealthPolicy::default());
        let nothing: Vec<Option<ShardReport>> = vec![None, None];
        for _ in 0..3 {
            r.absorb(&nothing);
        }
        assert_eq!(r.down_count(), 2);
        assert_eq!(r.place(0, 0, false), Routing::Shed(ShedReason::Unroutable));
    }

    #[test]
    fn queue_budget_sheds_overload() {
        let mut r = Router::new(Placement::LeastLoaded, 2, HealthPolicy::default());
        r.absorb(&slots(vec![report(0, 3, 0), report(1, 3, 0)]));
        // Budget 4: one assignment per shard fits, then depth hits the
        // budget everywhere and the next request sheds.
        assert!(matches!(r.place(0, 4, false), Routing::Placed { .. }));
        assert!(matches!(r.place(1, 4, false), Routing::Placed { .. }));
        assert_eq!(r.place(2, 4, false), Routing::Shed(ShedReason::Overload));
    }

    #[test]
    fn hedge_fires_only_for_suspect_or_probing_primaries() {
        let mut r = Router::new(Placement::HashAffinity, 4, HealthPolicy::default());
        let fn_idx = (0..64)
            .find(|&f| matches!(r.place(f, 0, true), Routing::Placed { primary: 2, .. }))
            .expect("some function homes on shard 2");
        assert!(matches!(r.place(fn_idx, 0, true), Routing::Placed { hedge: None, .. }));
        let dark: Vec<Option<ShardReport>> = (0..4u32)
            .map(|s| (s != 2).then(|| report(s, 0, 0)))
            .collect();
        r.absorb(&dark);
        assert_eq!(r.health(2), HealthState::Suspect);
        let Routing::Placed { primary, hedge } = r.place(fn_idx, 0, true) else {
            panic!("hedged placement must not shed");
        };
        assert_eq!(primary, 2);
        let backup = hedge.expect("suspect primary gets a hedge");
        assert_ne!(backup, 2);
    }

    #[test]
    fn drain_offers_rehome_and_release_on_heal() {
        let mut r = Router::new(Placement::HashAffinity, 4, HealthPolicy::default());
        let fn_idx = (0..64)
            .find(|&f| matches!(r.place(f, 0, false), Routing::Placed { primary: 3, .. }))
            .expect("some function homes on shard 3");
        // Shard 3 announces a drain of fn_idx, then goes dark.
        let mut draining = report(3, 0, 0);
        draining.offers.push(MigrationOffer { from: 3, fn_idx, charge: 64 << 20, drain: true });
        let mut reports = slots((0..4).map(|s| report(s, 0, 0)).collect());
        reports[3] = Some(draining);
        r.absorb(&reports);
        assert_eq!(r.migrations(), 1);
        let Routing::Placed { primary: rehomed, .. } = r.place(fn_idx, 0, false) else {
            panic!("drained function must still place");
        };
        assert_ne!(rehomed, 3, "drain must re-home off the announcing shard");
        let dark: Vec<Option<ShardReport>> =
            (0..4u32).map(|s| (s != 3).then(|| report(s, 0, 0))).collect();
        r.absorb(&dark);
        r.absorb(&dark);
        assert_eq!(r.health(3), HealthState::Down);
        // Heal: the drain override is released and affinity restores.
        let full = slots((0..4).map(|s| report(s, 0, 0)).collect());
        r.absorb(&full);
        assert_eq!(r.health(3), HealthState::Probing);
        assert!(matches!(r.place(fn_idx, 0, false), Routing::Placed { primary: 3, .. }));
    }

    #[test]
    fn state_bytes_decode_round_trips() {
        let mut r = Router::new(Placement::ColdStartAware, 3, HealthPolicy::default());
        let mut rep1 = report(1, 7, 900);
        rep1.warm.insert(
            4,
            faas::FrozenFnSummary { count: 2, charge: 300, oldest_frozen: SimTime(17) },
        );
        rep1.offers.push(MigrationOffer { from: 1, fn_idx: 4, charge: 300, drain: true });
        r.absorb(&[Some(report(0, 2, 100)), Some(rep1), None]);
        let _ = r.place(4, 0, true);
        let bytes = r.state_bytes();
        let mut reader = Reader::new(&bytes);
        let back = Router::decode(&mut reader).expect("decode");
        reader.finish().expect("no trailing bytes");
        assert_eq!(back.state_bytes(), bytes);
        assert_eq!(back.health(2), r.health(2));
    }
}
