//! The cluster front-end: placement policies and barrier-state folds.
//!
//! The router is the only component that sees more than one shard, and
//! it sees shards *only* through their [`ShardReport`]s. Its decision
//! inputs are therefore frozen at the last barrier: every arrival of a
//! round is placed from the same snapshot, in the one canonical
//! arrival order, on the engine's thread — which is what makes
//! placement (and hence the whole replay) independent of `--jobs N`.
//!
//! Three policies:
//!
//! * **hash-affinity** — FNV-1a of the catalog index, modulo the shard
//!   count. Stable, stateless, maximizes warm-instance reuse per
//!   function; the baseline every FaaS front-end starts from.
//! * **least-loaded** — the shard with the fewest in-flight requests
//!   at the last barrier (plus the assignments already made this
//!   round, so one round's burst cannot herd onto one shard).
//! * **cold-start-aware** — COCOA-style: prefer a shard holding a
//!   frozen (thaw-able) instance of the function; fall back to
//!   hash-affinity when no shard is warm.
//!
//! Migration offers accepted at a barrier become *overrides*: the
//! function's future placements re-home to the least-pressured other
//! shard. Overrides take precedence under every policy — they exist to
//! bleed pressure off a shard, which any policy must respect.

use std::collections::BTreeMap;

use snapshot::Writer;

use crate::fnv64_bytes;
use crate::msg::ShardReport;

/// Placement policy of the cluster front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// FNV(fn_idx) % shards.
    HashAffinity,
    /// Fewest in-flight requests at the last barrier.
    LeastLoaded,
    /// Prefer shards with a frozen instance of the function.
    ColdStartAware,
}

impl Placement {
    fn tag(self) -> u8 {
        match self {
            Placement::HashAffinity => 0,
            Placement::LeastLoaded => 1,
            Placement::ColdStartAware => 2,
        }
    }

    /// Short name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Placement::HashAffinity => "hash-affinity",
            Placement::LeastLoaded => "least-loaded",
            Placement::ColdStartAware => "cold-start-aware",
        }
    }
}

/// The front-end router: placement state plus the last-barrier view of
/// every shard.
#[derive(Debug)]
pub struct Router {
    policy: Placement,
    shards: u32,
    /// Migration re-homes: `fn_idx -> shard`. Consulted before the
    /// policy under every policy.
    overrides: BTreeMap<usize, u32>,
    /// Last-barrier report per shard (index = shard id). Empty until
    /// the first barrier.
    view: Vec<ShardReport>,
    /// Assignments made in the current round, per shard — the
    /// intra-round tie-breaker that stops least-loaded herding.
    assigned: Vec<u64>,
    /// Total arrivals routed.
    routed: u64,
    /// Migration offers accepted (overrides written).
    migrations: u64,
}

impl Router {
    /// A router over `shards` shards with the given policy.
    pub fn new(policy: Placement, shards: u32) -> Router {
        assert!(shards > 0, "a cluster needs at least one shard");
        Router {
            policy,
            shards,
            overrides: BTreeMap::new(),
            view: Vec::new(),
            assigned: vec![0; shards as usize],
            routed: 0,
            migrations: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> Placement {
        self.policy
    }

    /// Migration overrides currently in force.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Total arrivals routed so far.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Places one arrival, returning the shard it lands on. Must be
    /// called in canonical arrival order on the engine thread.
    pub fn route(&mut self, fn_idx: usize) -> u32 {
        let shard = match self.overrides.get(&fn_idx) {
            Some(&s) => s,
            None => match self.policy {
                Placement::HashAffinity => self.hash_shard(fn_idx),
                Placement::LeastLoaded => self.least_loaded(),
                Placement::ColdStartAware => self.warmest(fn_idx),
            },
        };
        if let Some(count) = self.assigned.get_mut(shard as usize) {
            *count += 1;
        }
        self.routed += 1;
        shard
    }

    fn hash_shard(&self, fn_idx: usize) -> u32 {
        let h = fnv64_bytes(&(fn_idx as u64).to_le_bytes());
        (h % u64::from(self.shards)) as u32
    }

    /// Effective load of shard `s`: last-barrier in-flight plus what
    /// this round has already assigned to it.
    fn load(&self, s: usize) -> u64 {
        let at_barrier = self.view.get(s).map_or(0, |r| r.in_flight);
        at_barrier + self.assigned.get(s).copied().unwrap_or(0)
    }

    fn least_loaded(&self) -> u32 {
        (0..self.shards as usize)
            .min_by_key(|&s| {
                let cache = self.view.get(s).map_or(0, |r| r.cache_used);
                (self.load(s), cache, s)
            })
            .map_or(0, |s| s as u32)
    }

    fn warmest(&self, fn_idx: usize) -> u32 {
        let warm = (0..self.shards as usize)
            .filter(|&s| self.view.get(s).is_some_and(|r| r.warm.contains_key(&fn_idx)))
            .min_by_key(|&s| {
                let cache = self.view.get(s).map_or(0, |r| r.cache_used);
                (self.load(s), cache, s)
            });
        match warm {
            Some(s) => s as u32,
            None => self.hash_shard(fn_idx),
        }
    }

    /// Folds the barrier's reports (canonical shard order) into the
    /// routing view and accepts migration offers.
    ///
    /// An accepted offer re-homes the function to the least-pressured
    /// shard other than the offerer; the target's viewed cache charge
    /// is bumped by the offered charge immediately, so a barrier full
    /// of offers spreads instead of dog-piling one target.
    pub fn absorb(&mut self, reports: &[ShardReport]) {
        assert_eq!(reports.len(), self.shards as usize, "one report per shard");
        self.view = reports.to_vec();
        for a in &mut self.assigned {
            *a = 0;
        }
        let offers: Vec<_> = reports.iter().flat_map(|r| r.offers.iter().copied()).collect();
        for offer in offers {
            if self.shards == 1 {
                break;
            }
            let target = (0..self.shards as usize)
                .filter(|&s| s as u32 != offer.from)
                .min_by_key(|&s| {
                    let cached = self.view.get(s).map_or(0, |r| r.cache_used);
                    (cached, self.load(s), s)
                })
                .map_or(0, |s| s as u32);
            // Re-homing to where the function already lives is a no-op
            // offer; skip it so `migrations` counts real moves.
            if self.overrides.get(&offer.fn_idx) == Some(&target) {
                continue;
            }
            self.overrides.insert(offer.fn_idx, target);
            if let Some(row) = self.view.get_mut(target as usize) {
                row.cache_used += offer.charge;
            }
            self.migrations += 1;
        }
    }

    /// Serializes every routing-relevant byte of state. Folded into
    /// the cluster digest: two runs that routed identically — and only
    /// those — produce identical bytes.
    pub fn state_bytes(&self) -> Vec<u8> {
        let Router {
            policy,
            shards,
            overrides,
            view,
            assigned,
            routed,
            migrations,
        } = self;
        let mut w = Writer::new();
        w.u8(policy.tag());
        w.u32(*shards);
        w.usize(overrides.len());
        for (fn_idx, shard) in overrides {
            w.usize(*fn_idx);
            w.u32(*shard);
        }
        w.usize(view.len());
        for r in view {
            r.encode(&mut w);
        }
        w.usize(assigned.len());
        for a in assigned {
            w.u64(*a);
        }
        w.u64(*routed);
        w.u64(*migrations);
        w.into_bytes()
    }
}
