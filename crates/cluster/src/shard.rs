//! One simulated machine: a [`Platform`] plus its durability envelope.
//!
//! This is the **only** module in the crate that names the platform or
//! drives its event loop — the `shard-isolation` tidy rule bans those
//! tokens everywhere else under `crates/cluster/src/`, so the engine
//! and router are statically incapable of reaching into shard-local
//! simulation state. Everything a shard exposes goes out as plain
//! data: a [`ShardReport`] at each barrier, canonical state bytes for
//! the digest, and aggregate totals.
//!
//! # Rounds, journals, and recovery
//!
//! [`Shard::advance`] executes barrier rounds. Each round is journaled
//! (barrier time, stats-reset flag, arrival batch) before it runs, and
//! every `checkpoint_every`-th round starts with an incremental
//! checkpoint cut into a per-shard [`CheckpointStore`] — a full base
//! every `base_every`-th cut, an O(dirty) delta otherwise, with the
//! shard's round cursor riding along as a driver frame.
//!
//! When an armed [`CrashPlan`] kills the event loop mid-round, the
//! shard rebuilds a fresh platform, restores the newest verifiable
//! checkpoint chain from the store's recovery lattice (or nothing, if
//! storage faults destroyed every chain), and replays the journal
//! **round by round** — re-submitting each round's batch and running
//! to that round's barrier, exactly as the dead run did. Round-by-round
//! replay matters: the platform's event sequence numbers interleave
//! submission with execution, so bulk resubmission would renumber
//! arrivals and reorder same-time events. Replayed this way, the
//! recovered shard retraces the dead run's trajectory event for event
//! and its barrier state bytes are identical to an uninterrupted
//! control — the cluster digest cannot tell the difference.
//!
//! # Outages
//!
//! [`Shard::advance_dark`] executes a round the router cannot see.
//! A **partitioned** shard keeps executing (the machine is fine, the
//! network is not) — only its report is withheld. A **down** shard is
//! frozen: the round is journaled but nothing runs, and the first
//! reachable round afterwards *heals* — fresh platform, durable-store
//! restore, journal catch-up — exactly the kill-recovery path, which
//! is why both outage kinds converge to state bytes identical to an
//! uninterrupted control.

use faas::fault::CrashPlan;
use faas::platform::Platform;
use faas::{
    CheckpointStore, GcMode, LatencyHistogram, MemoryManager, PlatformConfig, PlatformError,
    QueueImpl, StorageFaultPlan,
};
use simos::SimTime;
use snapshot::{Reader, SnapError, Writer};
use workloads::FunctionSpec;

use faas::fault::OutageKind;

use crate::msg::{ClusterTotals, MigrationOffer, ShardReport};

/// Builds the (optional) memory manager for shard `id`. A plain `fn`
/// pointer: trivially `Send + Copy`, and it forces the factory to be
/// deterministic in the shard id alone — recovery rebuilds the
/// platform with the *same* call and must get an identically
/// configured manager.
pub type ManagerFn = fn(u32) -> Option<Box<dyn MemoryManager>>;

/// Everything needed to build — and rebuild, after a kill — one
/// shard's platform.
#[derive(Clone)]
pub struct ShardSetup {
    /// Per-shard platform configuration (cache budget, cores, ...).
    pub platform: PlatformConfig,
    /// The function catalog, shared by every shard.
    pub catalog: Vec<FunctionSpec>,
    /// Exit-time GC mode.
    pub mode: GcMode,
    /// Event-queue representation.
    pub queue: QueueImpl,
    /// Memory-manager factory (`|_| None` for vanilla shards).
    pub manager: ManagerFn,
    /// Storage faults to inject into this shard's checkpoint store;
    /// the seed is offset by the shard id so shards draw independent
    /// fault streams.
    pub storage_faults: Option<StorageFaultPlan>,
}

impl ShardSetup {
    /// A vanilla setup over the standard catalog.
    pub fn vanilla() -> ShardSetup {
        ShardSetup {
            platform: PlatformConfig::default(),
            catalog: workloads::catalog(),
            mode: GcMode::Vanilla,
            queue: QueueImpl::Calendar,
            manager: |_| None,
            storage_faults: None,
        }
    }
}

/// Checkpoint cadence of a shard (in barrier rounds / cuts).
#[derive(Debug, Clone, Copy)]
pub struct ShardDurability {
    /// Cut a checkpoint at the start of every `checkpoint_every`-th
    /// round.
    pub checkpoint_every: usize,
    /// Every `base_every`-th cut is a full base; the rest are deltas.
    pub base_every: usize,
}

impl Default for ShardDurability {
    fn default() -> ShardDurability {
        ShardDurability {
            checkpoint_every: 4,
            base_every: 4,
        }
    }
}

/// One journaled barrier round.
#[derive(Debug, Clone)]
struct RoundEntry {
    /// Upper time bound of the round (inclusive).
    barrier: SimTime,
    /// Whether platform stats reset at the start of this round.
    reset: bool,
    /// The round's arrival batch, in canonical order.
    batch: Vec<(SimTime, usize)>,
    /// Engine front-end bytes to embed in the checkpoint cut at the
    /// start of this round (shard 0 only, on cut rounds). Journaled so
    /// replay re-cuts byte-identical checkpoints.
    front: Option<Vec<u8>>,
}

/// Container frame kind of the shard's round cursor. Anything at or
/// above `FRAME_EXTRA_BASE` is opaque to the platform and comes back
/// verbatim from a chain restore.
const FRAME_SHARD: u32 = Platform::FRAME_EXTRA_BASE;

/// Container frame kind of the engine's front-end bytes (router +
/// retry queue + lifecycle counters), riding shard 0's cuts so fleet
/// state is durable alongside shard state.
const FRAME_FRONT: u32 = Platform::FRAME_EXTRA_BASE + 1;

fn encode_cursor(round: usize) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(round);
    w.into_bytes()
}

fn decode_cursor(payload: &[u8]) -> Result<usize, SnapError> {
    let mut r = Reader::new(payload);
    let round = r.usize()?;
    r.finish()?;
    Ok(round)
}

/// One simulated machine of the cluster.
pub struct Shard {
    id: u32,
    setup: ShardSetup,
    durability: ShardDurability,
    platform: Platform,
    store: CheckpointStore,
    journal: Vec<RoundEntry>,
    /// Rounds fully executed. Normally `journal.len()`; rewound by a
    /// recovery, re-advanced by journal replay.
    cursor: usize,
    /// Epoch of the last checkpoint cut (parent of the next delta).
    parent_epoch: Option<u64>,
    crash: Option<CrashPlan>,
    /// The machine is in a `Down` outage window: rounds are journaled
    /// but nothing executes until a heal.
    needs_restore: bool,
    recoveries: u64,
    scratch_recoveries: u64,
    heals: u64,
    outage_rounds: u64,
    /// Front-end bytes recovered from the newest restored checkpoint,
    /// if that cut carried a [`FRAME_FRONT`] frame.
    recovered_front: Option<Vec<u8>>,
}

fn build_platform(setup: &ShardSetup, id: u32) -> Platform {
    let mut p = Platform::new(
        setup.platform,
        setup.catalog.clone(),
        setup.mode,
        (setup.manager)(id),
    );
    p.set_queue_impl(setup.queue)
        // tidy:allow(panic-reachability) -- a fresh, empty platform always accepts a queue swap
        .expect("a fresh platform's queue always converts");
    p
}

impl Shard {
    /// Builds shard `id` from its setup and checkpoint cadence.
    pub fn new(id: u32, setup: ShardSetup, durability: ShardDurability) -> Shard {
        assert!(durability.checkpoint_every > 0, "checkpoint interval must be positive");
        assert!(durability.base_every > 0, "base interval must be positive");
        let platform = build_platform(&setup, id);
        let store = match setup.storage_faults {
            Some(mut plan) => {
                plan.seed ^= u64::from(id).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                CheckpointStore::with_faults(plan)
            }
            None => CheckpointStore::new(),
        };
        Shard {
            id,
            setup,
            durability,
            platform,
            store,
            journal: Vec::new(),
            cursor: 0,
            parent_epoch: None,
            crash: None,
            needs_restore: false,
            recoveries: 0,
            scratch_recoveries: 0,
            heals: 0,
            outage_rounds: 0,
            recovered_front: None,
        }
    }

    /// This shard's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The shard's current simulated time.
    pub fn now(&self) -> SimTime {
        self.platform.now()
    }

    /// Events the shard's platform has handled (for pinning kill
    /// schedules).
    pub fn events_seen(&self) -> u64 {
        self.platform.events_handled()
    }

    /// Arms a kill schedule: the event loop dies at the plan's event
    /// counts and the shard recovers through its checkpoint lattice
    /// and journal.
    pub fn plan_kill(&mut self, plan: CrashPlan) {
        self.crash = Some(plan);
        if let Some(at) = plan.next_after(self.platform.events_handled()) {
            self.platform.arm_kill(at);
        }
    }

    /// Executes barrier round `round`: journal, heal if the shard is
    /// coming back from a `Down` window, optional checkpoint cut,
    /// optional stats reset, submit the batch, drain to the barrier —
    /// recovering from kills until the round completes — then report.
    ///
    /// `pressure` and `max_offers` shape the migration offers in the
    /// report: when the cache is charged above `pressure × budget`,
    /// up to `max_offers` of the heaviest frozen functions are offered
    /// away. `drain` instead offers the *entire* warm set (the shard is
    /// about to enter a planned outage). `front` is the engine's
    /// front-end frame for this round's checkpoint cut, if any.
    #[allow(clippy::too_many_arguments)]
    pub fn advance(
        &mut self,
        round: usize,
        barrier: SimTime,
        reset: bool,
        batch: &[(SimTime, usize)],
        pressure: f64,
        max_offers: usize,
        drain: bool,
        front: Option<Vec<u8>>,
    ) -> ShardReport {
        assert_eq!(round, self.journal.len(), "rounds must advance in order");
        assert!(
            self.cursor == round || self.needs_restore,
            "previous round left incomplete"
        );
        self.journal.push(RoundEntry {
            barrier,
            reset,
            batch: batch.to_vec(),
            front,
        });
        if self.needs_restore {
            self.heal();
        }
        self.execute_rounds();
        self.report(pressure, max_offers, drain)
    }

    /// Executes one barrier round the router cannot observe. Returns
    /// no report — the missing report *is* the router's signal.
    ///
    /// `Partitioned` keeps executing (only the report is withheld);
    /// `Down` freezes the machine: the round is journaled so the heal
    /// can replay it, but nothing runs until a reachable round.
    pub fn advance_dark(
        &mut self,
        round: usize,
        barrier: SimTime,
        reset: bool,
        batch: &[(SimTime, usize)],
        kind: OutageKind,
        front: Option<Vec<u8>>,
    ) {
        assert_eq!(round, self.journal.len(), "rounds must advance in order");
        assert!(
            self.cursor == round || self.needs_restore,
            "previous round left incomplete"
        );
        self.journal.push(RoundEntry {
            barrier,
            reset,
            batch: batch.to_vec(),
            front,
        });
        self.outage_rounds += 1;
        match kind {
            OutageKind::Down => {
                self.needs_restore = true;
            }
            OutageKind::Partitioned => {
                if self.needs_restore {
                    self.heal();
                }
                self.execute_rounds();
            }
        }
    }

    /// Replays journaled rounds from the cursor to the journal head.
    fn execute_rounds(&mut self) {
        while self.cursor < self.journal.len() {
            let r = self.cursor;
            if r.is_multiple_of(self.durability.checkpoint_every) {
                self.cut_checkpoint(r);
            }
            let Some(round) = self.journal.get(r) else { break };
            if round.reset {
                self.platform.reset_stats();
            }
            for &(t, fn_idx) in &round.batch {
                self.platform.submit(t, fn_idx);
            }
            let end = round.barrier;
            match self.platform.try_run_until(end) {
                Ok(()) => self.cursor = r + 1,
                Err(PlatformError::Killed { events_handled }) => self.recover(events_handled),
                // tidy:allow(panic-reachability) -- any non-Killed error is a simulator bug; replay must not continue
                Err(e) => panic!(
                    "shard {} platform invariant violated: {e} (round {r}, \
                     events_handled={})",
                    self.id,
                    self.platform.events_handled()
                ),
            }
        }
    }

    /// Cuts an incremental checkpoint at the start of round `r`.
    fn cut_checkpoint(&mut self, r: usize) {
        // Epoch = puts + 1: derivable from durable state alone and
        // strictly monotonic across recoveries.
        let epoch = self.store.len() as u64 + 1;
        let mut extra = vec![(FRAME_SHARD, encode_cursor(r))];
        if let Some(front) = self.journal.get(r).and_then(|e| e.front.clone()) {
            extra.push((FRAME_FRONT, front));
        }
        let bytes = match self.parent_epoch {
            Some(parent) if !self.store.len().is_multiple_of(self.durability.base_every) => {
                self.platform.checkpoint_delta(epoch, parent, &extra)
            }
            _ => self.platform.checkpoint_base(epoch, &extra),
        };
        self.store.put(&bytes);
        self.parent_epoch = Some(epoch);
    }

    /// Kill recovery: fresh platform, newest verifiable chain (or
    /// scratch), cursor rewound; the execution loop replays the journal
    /// from there.
    fn recover(&mut self, events_handled: u64) {
        self.recoveries += 1;
        self.rebuild_from_store(events_handled);
        if let Some(plan) = self.crash {
            match plan.next_after(events_handled) {
                Some(at) => self.platform.arm_kill(at),
                None => self.platform.disarm_kill(),
            }
        }
    }

    /// Outage heal: the machine comes back from a `Down` window with
    /// nothing but its durable store and journal — the same rebuild
    /// path as a kill, entered from a round boundary. Kill schedules
    /// re-arm from the rebuilt platform's event count (replayed kills
    /// are state-neutral: each one recovers to the same trajectory).
    fn heal(&mut self) {
        self.heals += 1;
        self.needs_restore = false;
        let events_handled = self.platform.events_handled();
        self.rebuild_from_store(events_handled);
        if let Some(plan) = self.crash {
            match plan.next_after(self.platform.events_handled()) {
                Some(at) => self.platform.arm_kill(at),
                None => self.platform.disarm_kill(),
            }
        }
    }

    /// Discards the live platform and rebuilds from the newest
    /// verifiable checkpoint chain (or from scratch when storage
    /// faults destroyed every chain), rewinding the cursor for journal
    /// replay.
    fn rebuild_from_store(&mut self, events_handled: u64) {
        self.platform = build_platform(&self.setup, self.id);
        match self.store.recover() {
            Some((head_epoch, chain)) => {
                let (_, extra) = self.platform.restore_chain(&chain).unwrap_or_else(|e| {
                    // tidy:allow(panic-reachability) -- the chain passed CRC verification; failure here is a codec bug
                    panic!(
                        "shard {}: verified chain (head epoch {head_epoch}) failed to \
                         restore: {e} (rebuilt at events_handled={events_handled})",
                        self.id
                    )
                });
                let frame = extra
                    .iter()
                    .find(|(kind, _)| *kind == FRAME_SHARD)
                    .unwrap_or_else(|| {
                        // tidy:allow(panic-reachability) -- every shard checkpoint embeds its cursor frame at cut time
                        panic!(
                            "shard {}: checkpoint epoch {head_epoch} carries no cursor \
                             frame (rebuilt at events_handled={events_handled})",
                            self.id
                        )
                    });
                self.cursor = decode_cursor(&frame.1).unwrap_or_else(|e| {
                    // tidy:allow(panic-reachability) -- frame bytes already passed the checkpoint CRCs
                    panic!(
                        "shard {}: cursor frame of epoch {head_epoch} is corrupt past \
                         its CRCs: {e}",
                        self.id
                    )
                });
                self.recovered_front = extra
                    .iter()
                    .find(|(kind, _)| *kind == FRAME_FRONT)
                    .map(|(_, bytes)| bytes.clone());
                self.parent_epoch = Some(head_epoch);
            }
            None => {
                // Every stored checkpoint is unusable: restart from
                // nothing and let the journal replay the whole shard
                // history.
                self.scratch_recoveries += 1;
                self.cursor = 0;
                self.parent_epoch = None;
            }
        }
    }

    /// The shard's barrier summary.
    fn report(&self, pressure: f64, max_offers: usize, drain: bool) -> ShardReport {
        let warm = self.platform.frozen_by_function();
        let cache_budget = self.platform.config().cache_budget;
        let cache_used = self.platform.cache_used();
        let mut offers = Vec::new();
        let mut ranked: Vec<(&usize, &faas::FrozenFnSummary)> = warm.iter().collect();
        // Heaviest charge first, oldest freeze first among equals —
        // deterministic and aligned with what LRU eviction would shed.
        ranked.sort_by(|a, b| {
            b.1.charge
                .cmp(&a.1.charge)
                .then(a.1.oldest_frozen.cmp(&b.1.oldest_frozen))
                .then(a.0.cmp(b.0))
        });
        if drain {
            // Planned outage next round: offer the whole warm set away
            // so the fleet keeps its thaw-able instances reachable.
            offers = ranked
                .into_iter()
                .map(|(&fn_idx, s)| MigrationOffer {
                    from: self.id,
                    fn_idx,
                    charge: s.charge,
                    drain: true,
                })
                .collect();
        } else if max_offers > 0 && cache_used as f64 > pressure * cache_budget as f64 {
            offers = ranked
                .into_iter()
                .take(max_offers)
                .map(|(&fn_idx, s)| MigrationOffer {
                    from: self.id,
                    fn_idx,
                    charge: s.charge,
                    drain: false,
                })
                .collect();
        }
        ShardReport {
            shard: self.id,
            in_flight: self.platform.in_flight(),
            cache_used,
            cache_budget,
            instances: self.platform.instance_count() as u64,
            frozen: self.platform.frozen_count() as u64,
            warm,
            offers,
            recoveries: self.recoveries,
            scratch_recoveries: self.scratch_recoveries,
            heals: self.heals,
        }
    }

    /// Canonical state bytes: the platform's full checkpoint. Equal
    /// shard states yield equal bytes — the unit the cluster digest is
    /// built from.
    ///
    /// A shard frozen inside a `Down` window heals first (the digest
    /// is only sampled at reachable points, and a healed shard must be
    /// indistinguishable from an uninterrupted control).
    pub fn state_bytes(&mut self) -> Vec<u8> {
        if self.needs_restore {
            self.heal();
            self.execute_rounds();
        }
        self.platform.checkpoint()
    }

    /// The measured-window latency distribution of this shard.
    pub fn latency_histogram(&self) -> LatencyHistogram {
        self.platform.stats().latency.clone()
    }

    /// Front-end bytes recovered by the most recent store rebuild (the
    /// [`FRAME_FRONT`] frame of the restored cut), if any.
    pub fn recovered_front(&self) -> Option<&[u8]> {
        self.recovered_front.as_deref()
    }

    /// End-of-run aggregate counters (the engine layers front-end
    /// accounting on top).
    pub fn totals(&mut self) -> ClusterTotals {
        if self.needs_restore {
            self.heal();
            self.execute_rounds();
        }
        let stats = self.platform.stats();
        ClusterTotals {
            completed: stats.completed,
            failed: stats.failed,
            cold_boots: stats.cold_boots,
            evictions: stats.evictions,
            instances: self.platform.instance_count() as u64,
            frozen: self.platform.frozen_count() as u64,
            cache_used: self.platform.cache_used(),
            recoveries: self.recoveries,
            scratch_recoveries: self.scratch_recoveries,
            heals: self.heals,
            outage_rounds: self.outage_rounds,
            ..ClusterTotals::default()
        }
    }
}
