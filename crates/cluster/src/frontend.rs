//! The cluster front end: request lifecycle around placement.
//!
//! Every arrival becomes a [`FrontReq`] with a deadline, and every
//! request terminates in **exactly one** typed outcome:
//!
//! * **delivered** — handed to a reachable shard (possibly via its
//!   hedge copy when the primary turned out to be dark);
//! * **shed(reason)** — refused at admission, either because no shard
//!   was routable or because the chosen shard's queue depth crossed
//!   the configured budget;
//! * **failed** — the deadline expired while stranded, or the capped
//!   retry budget ran out.
//!
//! The conservation invariant `routed == delivered + shed + failed +
//! pending` is checked by [`crate::msg::ClusterTotals::conservation`]
//! and asserted by the replay drivers on every run. A request handed
//! to a shard that silently went dark the same round is *stranded*:
//! the front end learns at the barrier (it observes the missing
//! report) and re-times the request to the barrier for the next
//! round's placement — capped by `max_retries` and its deadline.
//!
//! All counters here are run-lifetime (they never reset with the
//! platform's measured-window stats), so conservation is exact over a
//! whole run.

use std::collections::VecDeque;

use simos::{SimDuration, SimTime};
use snapshot::{Reader, SnapError, Writer};

use crate::health::HealthPolicy;

/// Why the front end refused a request at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The chosen shard's queue depth (last-barrier in-flight plus
    /// this round's assignments) crossed the configured budget.
    Overload,
    /// No routable shard exists (the whole fleet is `Down`).
    Unroutable,
}

impl ShedReason {
    /// Short name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::Overload => "overload",
            ShedReason::Unroutable => "unroutable",
        }
    }
}

/// Front-end request lifecycle knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontEndConfig {
    /// Per-request deadline, measured from arrival time. A stranded
    /// request whose deadline has passed at placement time fails
    /// instead of retrying.
    pub deadline: SimDuration,
    /// Retry attempts after the initial placement (0 = fail on the
    /// first stranding).
    pub max_retries: u32,
    /// Hedge placements onto a second shard whenever the primary is
    /// `Suspect` or `Probing`. The hedge copy executes too when both
    /// shards are live — hedging trades duplicate work for tail
    /// availability.
    pub hedge: bool,
    /// Queue-depth budget per shard for admission control; `0`
    /// disables shedding.
    pub queue_budget: u64,
    /// Thresholds of the per-shard health machine.
    pub health: HealthPolicy,
}

impl Default for FrontEndConfig {
    fn default() -> FrontEndConfig {
        FrontEndConfig {
            deadline: SimDuration::from_secs(12),
            max_retries: 3,
            hedge: false,
            queue_budget: 0,
            health: HealthPolicy::default(),
        }
    }
}

/// One request moving through the front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontReq {
    /// Effective arrival time for the next placement (re-timed to the
    /// stranding barrier on retry).
    pub t: SimTime,
    /// Catalog index of the requested function.
    pub fn_idx: usize,
    /// Placement attempts already consumed.
    pub attempts: u32,
    /// Absolute deadline (arrival time plus the configured deadline).
    pub deadline: SimTime,
}

impl FrontReq {
    fn encode(&self, w: &mut Writer) {
        let FrontReq { t, fn_idx, attempts, deadline } = self;
        w.u64(t.0);
        w.usize(*fn_idx);
        w.u32(*attempts);
        w.u64(deadline.0);
    }

    fn decode(r: &mut Reader<'_>) -> Result<FrontReq, SnapError> {
        Ok(FrontReq {
            t: SimTime(r.u64()?),
            fn_idx: r.usize()?,
            attempts: r.u32()?,
            deadline: SimTime(r.u64()?),
        })
    }
}

/// Run-lifetime front-end counters. Every routed request lands in
/// exactly one of `delivered`, `shed_*`, or `failed_*` (or is still
/// queued for retry at observation time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontStats {
    /// Requests that entered placement (arrivals, not attempts).
    pub routed: u64,
    /// Requests handed to a reachable shard.
    pub delivered: u64,
    /// Requests shed because the chosen shard was over budget.
    pub shed_overload: u64,
    /// Requests shed because no shard was routable.
    pub shed_unroutable: u64,
    /// Requests whose deadline expired while stranded.
    pub failed_deadline: u64,
    /// Requests stranded more times than the retry cap allows.
    pub failed_retries: u64,
    /// Retry placements performed (attempts, may exceed request count).
    pub retries: u64,
    /// Hedge copies placed alongside a suspect primary.
    pub hedges: u64,
    /// Deliveries that only succeeded through the hedge copy.
    pub hedge_wins: u64,
    /// Hedge copies that executed although the primary was live
    /// (duplicate work, the cost side of hedging).
    pub hedge_extra: u64,
}

impl FrontStats {
    /// Requests shed, all reasons.
    pub fn shed(&self) -> u64 {
        self.shed_overload + self.shed_unroutable
    }

    /// Requests failed, all reasons.
    pub fn failed(&self) -> u64 {
        self.failed_deadline + self.failed_retries
    }

    /// Serializes the counters (part of the cluster digest).
    pub fn encode(&self, w: &mut Writer) {
        let FrontStats {
            routed,
            delivered,
            shed_overload,
            shed_unroutable,
            failed_deadline,
            failed_retries,
            retries,
            hedges,
            hedge_wins,
            hedge_extra,
        } = self;
        for v in [
            routed, delivered, shed_overload, shed_unroutable, failed_deadline, failed_retries,
            retries, hedges, hedge_wins, hedge_extra,
        ] {
            w.u64(*v);
        }
    }

    /// Decodes counters encoded by [`FrontStats::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<FrontStats, SnapError> {
        Ok(FrontStats {
            routed: r.u64()?,
            delivered: r.u64()?,
            shed_overload: r.u64()?,
            shed_unroutable: r.u64()?,
            failed_deadline: r.u64()?,
            failed_retries: r.u64()?,
            retries: r.u64()?,
            hedges: r.u64()?,
            hedge_wins: r.u64()?,
            hedge_extra: r.u64()?,
        })
    }
}

/// The front end's mutable state: the retry queue and the lifetime
/// counters. Owned by the engine; placement itself lives in the
/// router.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrontEnd {
    /// Requests stranded at the last barrier, waiting for the next
    /// round's placement, in canonical (stranding) order.
    pub retry: VecDeque<FrontReq>,
    /// Lifetime outcome counters.
    pub stats: FrontStats,
}

impl FrontEnd {
    /// A fresh front end.
    pub fn new() -> FrontEnd {
        FrontEnd::default()
    }

    /// Takes every queued retry for this round's placement.
    pub fn drain_retries(&mut self) -> Vec<FrontReq> {
        self.retry.drain(..).collect()
    }

    /// Requests queued for retry at observation time.
    pub fn pending(&self) -> u64 {
        self.retry.len() as u64
    }

    /// Serializes queue and counters (part of the cluster digest and
    /// of the checkpoint frame riding shard 0's cuts).
    pub fn encode(&self, w: &mut Writer) {
        let FrontEnd { retry, stats } = self;
        w.usize(retry.len());
        for req in retry {
            req.encode(w);
        }
        stats.encode(w);
    }

    /// Decodes a front end encoded by [`FrontEnd::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<FrontEnd, SnapError> {
        let n = r.seq_len()?;
        let mut retry = VecDeque::with_capacity(n);
        for _ in 0..n {
            retry.push_back(FrontReq::decode(r)?);
        }
        let stats = FrontStats::decode(r)?;
        Ok(FrontEnd { retry, stats })
    }
}

/// The fleet's availability summary over one run.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityReport {
    /// Barrier rounds executed.
    pub rounds: u64,
    /// Dark (unreachable) rounds per shard, in shard order.
    pub down_rounds: Vec<u64>,
    /// The lifetime front-end counters.
    pub stats: FrontStats,
    /// Requests still queued for retry at observation time (zero after
    /// a full drain unless the run ended mid-outage).
    pub pending_retries: u64,
    /// `delivered / routed` (1.0 when nothing was routed).
    pub success_rate: f64,
    /// Median completion latency over the measured window, merged
    /// across shards.
    pub p50: Option<SimDuration>,
    /// 99th-percentile completion latency, merged across shards.
    pub p99: Option<SimDuration>,
}

impl AvailabilityReport {
    /// Whether every routed request is accounted for by exactly one
    /// outcome (or still pending).
    pub fn conservation_holds(&self) -> bool {
        self.stats.routed
            == self.stats.delivered + self.stats.shed() + self.stats.failed() + self.pending_retries
    }

    /// The one-line accounting statement the gates grep for.
    pub fn conservation_line(&self) -> String {
        let verdict = if self.conservation_holds() { "OK" } else { "VIOLATED" };
        format!(
            "conservation {verdict}: routed={} delivered={} shed={} failed={} pending={}",
            self.stats.routed,
            self.stats.delivered,
            self.stats.shed(),
            self.stats.failed(),
            self.pending_retries
        )
    }

    /// Total dark rounds across the fleet.
    pub fn total_down_rounds(&self) -> u64 {
        self.down_rounds.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_front() -> FrontEnd {
        let mut fe = FrontEnd::new();
        fe.retry.push_back(FrontReq {
            t: SimTime(1_000),
            fn_idx: 7,
            attempts: 2,
            deadline: SimTime(9_000),
        });
        fe.stats.routed = 10;
        fe.stats.delivered = 8;
        fe.stats.shed_overload = 1;
        fe.stats.retries = 3;
        fe.stats.hedge_wins = 2;
        fe
    }

    #[test]
    fn front_end_codec_round_trips() {
        let fe = sample_front();
        let mut w = Writer::new();
        fe.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = FrontEnd::decode(&mut r).expect("decode");
        r.finish().expect("no trailing bytes");
        assert_eq!(fe, back);
        let mut w2 = Writer::new();
        back.encode(&mut w2);
        assert_eq!(bytes, w2.into_bytes());
    }

    #[test]
    fn conservation_accounts_for_every_outcome() {
        let report = AvailabilityReport {
            rounds: 5,
            down_rounds: vec![0, 2],
            stats: FrontStats {
                routed: 10,
                delivered: 6,
                shed_overload: 1,
                shed_unroutable: 1,
                failed_deadline: 0,
                failed_retries: 1,
                ..FrontStats::default()
            },
            pending_retries: 1,
            success_rate: 0.6,
            p50: None,
            p99: None,
        };
        assert!(report.conservation_holds());
        assert!(report.conservation_line().starts_with("conservation OK:"));
        assert_eq!(report.total_down_rounds(), 2);
        let mut broken = report;
        broken.pending_retries = 0;
        assert!(!broken.conservation_holds());
        assert!(broken.conservation_line().contains("VIOLATED"));
    }
}
