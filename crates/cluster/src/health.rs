//! The router-side per-shard health state machine.
//!
//! The router never probes a shard directly — its only signal is
//! whether the shard's barrier report arrived. That observation is
//! folded here, once per shard per barrier, in canonical shard order
//! on the engine thread, which keeps the whole machine deterministic
//! at any worker count:
//!
//! ```text
//!            miss                miss > suspect_to_down
//!   Up ───────────▶ Suspect ───────────────────────────▶ Down
//!    ▲                 │ report                            │ report
//!    │                 ▼                                   ▼
//!    └───────────── (back to Up)                        Probing
//!    ▲                                                     │
//!    └── report × probe_rounds ────────────────────────────┘
//!                       (a miss while Probing relapses to Down)
//! ```
//!
//! `Down` is the only non-routable state: `Suspect` keeps taking
//! traffic (one missed barrier is usually a partition blip, and
//! hedging covers the risk), and `Probing` takes traffic on probation
//! so a healed shard re-earns its place — which is also what lets
//! hash-affinity snap back to the home shard the moment it reports
//! again.

use snapshot::{Reader, SnapError, Writer};

/// Router-observed availability of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Reporting normally.
    Up,
    /// Missed at least one barrier report; still routable.
    Suspect,
    /// Missed enough consecutive reports to be declared unavailable.
    /// Not routable.
    Down,
    /// Reporting again after `Down`; routable on probation.
    Probing,
}

impl HealthState {
    /// Whether the placement policies may target the shard.
    pub fn routable(self) -> bool {
        self != HealthState::Down
    }

    /// Short name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Up => "up",
            HealthState::Suspect => "suspect",
            HealthState::Down => "down",
            HealthState::Probing => "probing",
        }
    }

    fn tag(self) -> u8 {
        match self {
            HealthState::Up => 0,
            HealthState::Suspect => 1,
            HealthState::Down => 2,
            HealthState::Probing => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<HealthState, SnapError> {
        match tag {
            0 => Ok(HealthState::Up),
            1 => Ok(HealthState::Suspect),
            2 => Ok(HealthState::Down),
            3 => Ok(HealthState::Probing),
            _ => Err(SnapError::Corrupt("unknown health-state tag")),
        }
    }
}

/// Thresholds of the health machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive missed barriers tolerated in `Suspect` before the
    /// shard is declared `Down` (the first miss enters `Suspect`, so a
    /// shard goes dark after `1 + suspect_to_down` total misses).
    pub suspect_to_down: u32,
    /// Consecutive successful barriers required in `Probing` before
    /// the shard is trusted `Up` again.
    pub probe_rounds: u32,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            suspect_to_down: 1,
            probe_rounds: 2,
        }
    }
}

/// One shard's health tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Health {
    state: HealthState,
    /// Consecutive missed barriers while `Suspect`.
    misses: u32,
    /// Consecutive successful barriers while `Probing`.
    probes: u32,
}

impl Default for Health {
    fn default() -> Health {
        Health::new()
    }
}

impl Health {
    /// A fresh tracker: every shard starts trusted.
    pub fn new() -> Health {
        Health {
            state: HealthState::Up,
            misses: 0,
            probes: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Folds one barrier observation: `reported` is whether the
    /// shard's report arrived at this barrier.
    pub fn observe(&mut self, reported: bool, policy: HealthPolicy) {
        self.state = match (self.state, reported) {
            (HealthState::Up, true) => HealthState::Up,
            (HealthState::Up, false) => {
                self.misses = 1;
                HealthState::Suspect
            }
            (HealthState::Suspect, true) => {
                self.misses = 0;
                HealthState::Up
            }
            (HealthState::Suspect, false) => {
                self.misses += 1;
                if self.misses > policy.suspect_to_down {
                    HealthState::Down
                } else {
                    HealthState::Suspect
                }
            }
            (HealthState::Down, true) => {
                self.probes = 1;
                if self.probes >= policy.probe_rounds {
                    HealthState::Up
                } else {
                    HealthState::Probing
                }
            }
            (HealthState::Down, false) => HealthState::Down,
            (HealthState::Probing, true) => {
                self.probes += 1;
                if self.probes >= policy.probe_rounds {
                    self.probes = 0;
                    HealthState::Up
                } else {
                    HealthState::Probing
                }
            }
            (HealthState::Probing, false) => {
                self.probes = 0;
                HealthState::Down
            }
        };
        if self.state == HealthState::Up {
            self.misses = 0;
        }
    }

    /// Serializes the tracker (part of the router's canonical state).
    pub fn encode(&self, w: &mut Writer) {
        let Health { state, misses, probes } = self;
        w.u8(state.tag());
        w.u32(*misses);
        w.u32(*probes);
    }

    /// Decodes a tracker encoded by [`Health::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Health, SnapError> {
        let state = HealthState::from_tag(r.u8()?)?;
        let misses = r.u32()?;
        let probes = r.u32()?;
        Ok(Health { state, misses, probes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy { suspect_to_down: 1, probe_rounds: 2 }
    }

    #[test]
    fn misses_walk_up_suspect_down() {
        let mut h = Health::new();
        h.observe(false, policy());
        assert_eq!(h.state(), HealthState::Suspect);
        assert!(h.state().routable());
        h.observe(false, policy());
        assert_eq!(h.state(), HealthState::Down);
        assert!(!h.state().routable());
        h.observe(false, policy());
        assert_eq!(h.state(), HealthState::Down);
    }

    #[test]
    fn one_blip_recovers_without_leaving_routable() {
        let mut h = Health::new();
        h.observe(false, policy());
        h.observe(true, policy());
        assert_eq!(h.state(), HealthState::Up);
    }

    #[test]
    fn heal_goes_through_probation() {
        let mut h = Health::new();
        for _ in 0..3 {
            h.observe(false, policy());
        }
        assert_eq!(h.state(), HealthState::Down);
        h.observe(true, policy());
        assert_eq!(h.state(), HealthState::Probing);
        assert!(h.state().routable());
        h.observe(true, policy());
        assert_eq!(h.state(), HealthState::Up);
    }

    #[test]
    fn probing_relapses_on_a_miss() {
        let mut h = Health::new();
        for _ in 0..2 {
            h.observe(false, policy());
        }
        h.observe(true, policy());
        assert_eq!(h.state(), HealthState::Probing);
        h.observe(false, policy());
        assert_eq!(h.state(), HealthState::Down);
        // Probation starts over.
        h.observe(true, policy());
        assert_eq!(h.state(), HealthState::Probing);
    }

    #[test]
    fn single_probe_round_heals_immediately() {
        let pol = HealthPolicy { suspect_to_down: 0, probe_rounds: 1 };
        let mut h = Health::new();
        h.observe(false, pol);
        h.observe(false, pol);
        assert_eq!(h.state(), HealthState::Down);
        h.observe(true, pol);
        assert_eq!(h.state(), HealthState::Up);
    }

    #[test]
    fn codec_round_trips() {
        let mut h = Health::new();
        for reported in [false, false, false, true] {
            h.observe(reported, policy());
        }
        let mut w = Writer::new();
        h.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = Health::decode(&mut r).expect("decode");
        r.finish().expect("no trailing bytes");
        assert_eq!(h, back);
    }
}
