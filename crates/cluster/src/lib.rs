//! # cluster — sharded FaaS simulation with deterministic parallel replay
//!
//! The paper evaluates Desiccant on one machine; production FaaS
//! traffic spans thousands. This crate scales the simulator out: a
//! [`Cluster`] owns N independent platform shards (one simulated
//! machine each, Desiccant managers and all), a front-end [`Router`]
//! places arrivals under a pluggable [`Placement`] policy, and a
//! time-barrier engine advances all shards in coarse rounds — shards
//! drain their event queues up to each barrier concurrently on the
//! scoped worker pool, then exchange messages (per-shard stats, warm
//! sets, migration offers) at the barrier in canonical shard order.
//!
//! The design invariant, inherited from every gate in this repo: the
//! outcome is **byte-identical** whatever the worker count. Placement
//! and merge are serial folds over canonically ordered data; the
//! parallel section is a pure per-shard function. [`Cluster::digest`]
//! — FNV-1a over every shard's canonical checkpoint bytes plus the
//! fleet-level front-end bytes — is the oracle the determinism gates
//! compare at `--jobs 1/2/N`, and it also survives killing any shard
//! mid-round: each shard carries its own incremental-checkpoint store
//! and write-ahead round journal, and recovers through the same
//! lattice the single-machine resumable replay uses.
//!
//! # Failure domains
//!
//! Fleet-level faults layer on top of per-shard kills: a seeded
//! outage plan darkens whole shard-rounds (down or partitioned), a
//! per-shard [`Health`] machine on the router turns missing barrier
//! reports into Up → Suspect → Down → Probing transitions, every
//! placement policy routes around `Down` shards, and a [`FrontEnd`]
//! gives each request a deadline, capped retries, optional same-round
//! hedging, and typed load shedding — with the conservation invariant
//! (`routed == delivered + shed + failed + pending`) checked in
//! [`ClusterTotals`] and asserted by the chaos gates.
//!
//! Module layout mirrors the isolation boundary the `shard-isolation`
//! tidy rule enforces: [`shard`] is the only module allowed to name
//! the platform; [`router`], [`msg`], [`health`], [`frontend`], and
//! [`engine`] deal in plain data.

#![forbid(unsafe_code)]

pub mod engine;
pub mod frontend;
pub mod health;
pub mod msg;
pub mod router;
pub mod shard;

pub use engine::{Cluster, ClusterConfig};
pub use frontend::{
    AvailabilityReport, FrontEnd, FrontEndConfig, FrontReq, FrontStats, ShedReason,
};
pub use health::{Health, HealthPolicy, HealthState};
pub use msg::{ClusterTotals, MigrationOffer, ShardReport};
pub use router::{Placement, Router, Routing};
pub use shard::{ManagerFn, Shard, ShardDurability, ShardSetup};

/// FNV-1a over `bytes` from the standard offset basis.
pub fn fnv64_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325;
    fnv64_update(&mut h, bytes);
    h
}

/// Folds `bytes` into a running FNV-1a state.
pub fn fnv64_update(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}
