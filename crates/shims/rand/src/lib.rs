//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand` it actually uses. The generator is
//! **bit-exact** with `rand 0.8`'s `StdRng`:
//!
//! * `SeedableRng::seed_from_u64` expands the seed with the same PCG32
//!   stream `rand_core 0.6` uses;
//! * `StdRng` is ChaCha12 with a 64-bit block counter and the 4-block
//!   output buffering of `rand_chacha 0.3` (`BlockRng`), including its
//!   `next_u64` word-pairing behaviour across buffer refills;
//! * `gen::<f64>()`, `gen_range` (Lemire for integers, the `[1, 2)`
//!   mantissa trick for floats) and `gen_bool` reproduce the exact
//!   value streams of `rand 0.8`'s `Standard`, `Uniform*` and
//!   `Bernoulli` distributions.
//!
//! Keeping the streams identical preserves the calibration of every
//! seeded workload in this reproduction.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u32().to_le_bytes();
            let n = (dest.len() - i).min(4);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

/// Seedable RNG interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with PCG32, exactly as
    /// `rand_core 0.6` does.
    fn seed_from_u64(mut state: u64) -> Self {
        fn pcg32(state: &mut u64) -> [u8; 4] {
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            *state = state.wrapping_mul(MUL).wrapping_add(INC);
            let state = *state;
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            xorshifted.rotate_right(rot).to_le_bytes()
        }
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = pcg32(&mut state);
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const CHACHA_WORDS: usize = 16;
    /// `rand_chacha` buffers four 64-byte blocks per refill.
    const BUF_WORDS: usize = 4 * CHACHA_WORDS;

    /// The standard generator: ChaCha12, bit-exact with `rand 0.8`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        /// Key words (state words 4..12).
        key: [u32; 8],
        /// 64-bit block counter (state words 12, 13).
        counter: u64,
        /// Stream id (state words 14, 15); zero for `from_seed`.
        stream: u64,
        /// Buffered output of four consecutive blocks.
        buf: [u32; BUF_WORDS],
        /// Next unread word in `buf`; `BUF_WORDS` means empty.
        index: usize,
    }

    #[inline(always)]
    fn quarter(s: &mut [u32; CHACHA_WORDS], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    impl StdRng {
        fn block(&self, counter: u64, out: &mut [u32]) {
            const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
            let mut s: [u32; CHACHA_WORDS] = [
                SIGMA[0],
                SIGMA[1],
                SIGMA[2],
                SIGMA[3],
                self.key[0],
                self.key[1],
                self.key[2],
                self.key[3],
                self.key[4],
                self.key[5],
                self.key[6],
                self.key[7],
                counter as u32,
                (counter >> 32) as u32,
                self.stream as u32,
                (self.stream >> 32) as u32,
            ];
            let init = s;
            // ChaCha12: six double rounds.
            for _ in 0..6 {
                quarter(&mut s, 0, 4, 8, 12);
                quarter(&mut s, 1, 5, 9, 13);
                quarter(&mut s, 2, 6, 10, 14);
                quarter(&mut s, 3, 7, 11, 15);
                quarter(&mut s, 0, 5, 10, 15);
                quarter(&mut s, 1, 6, 11, 12);
                quarter(&mut s, 2, 7, 8, 13);
                quarter(&mut s, 3, 4, 9, 14);
            }
            for i in 0..CHACHA_WORDS {
                out[i] = s[i].wrapping_add(init[i]);
            }
        }

        fn refill(&mut self) {
            for b in 0..4 {
                let (lo, hi) = (b * CHACHA_WORDS, (b + 1) * CHACHA_WORDS);
                let counter = self.counter.wrapping_add(b as u64);
                let mut out = [0u32; CHACHA_WORDS];
                self.block(counter, &mut out);
                self.buf[lo..hi].copy_from_slice(&out);
            }
            self.counter = self.counter.wrapping_add(4);
            self.index = 0;
        }

        /// Byte length of [`StdRng::state_bytes`] / accepted by
        /// [`StdRng::from_state_bytes`].
        pub const STATE_BYTES: usize = 32 + 8 + 8 + 4 * BUF_WORDS + 8;

        /// Serializes the generator's full internal state (key, block
        /// counter, stream id, output buffer, and read cursor) as a
        /// fixed-width little-endian byte string, for checkpointing.
        /// A generator rebuilt by [`StdRng::from_state_bytes`] produces
        /// exactly the same output stream from this point on.
        pub fn state_bytes(&self) -> Vec<u8> {
            let mut out = Vec::with_capacity(Self::STATE_BYTES);
            for k in self.key {
                out.extend_from_slice(&k.to_le_bytes());
            }
            out.extend_from_slice(&self.counter.to_le_bytes());
            out.extend_from_slice(&self.stream.to_le_bytes());
            for w in self.buf {
                out.extend_from_slice(&w.to_le_bytes());
            }
            out.extend_from_slice(&(self.index as u64).to_le_bytes());
            out
        }

        /// Rebuilds a generator from [`StdRng::state_bytes`] output.
        /// Returns `None` if the input has the wrong length or an
        /// out-of-range cursor.
        pub fn from_state_bytes(bytes: &[u8]) -> Option<StdRng> {
            if bytes.len() != Self::STATE_BYTES {
                return None;
            }
            let word = |at: usize| {
                u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
            };
            let quad = |at: usize| {
                let mut b = [0u8; 8];
                b.copy_from_slice(&bytes[at..at + 8]);
                u64::from_le_bytes(b)
            };
            let mut key = [0u32; 8];
            for (i, k) in key.iter_mut().enumerate() {
                *k = word(i * 4);
            }
            let counter = quad(32);
            let stream = quad(40);
            let mut buf = [0u32; BUF_WORDS];
            for (i, w) in buf.iter_mut().enumerate() {
                *w = word(48 + i * 4);
            }
            let index = usize::try_from(quad(48 + 4 * BUF_WORDS)).ok()?;
            if index > BUF_WORDS {
                return None;
            }
            Some(StdRng {
                key,
                counter,
                stream,
                buf,
                index,
            })
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut key = [0u32; 8];
            for (i, chunk) in seed.chunks_exact(4).enumerate() {
                key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
            }
            StdRng {
                key,
                counter: 0,
                stream: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.refill();
            }
            let v = self.buf[self.index];
            self.index += 1;
            v
        }

        // Mirrors `rand_core::block::BlockRng::next_u64`: pairs of
        // consecutive u32 words (low first), straddling a refill when
        // only one word is left in the buffer.
        fn next_u64(&mut self) -> u64 {
            let index = self.index;
            if index < BUF_WORDS - 1 {
                self.index += 2;
                (u64::from(self.buf[index + 1]) << 32) | u64::from(self.buf[index])
            } else if index >= BUF_WORDS {
                self.refill();
                self.index = 2;
                (u64::from(self.buf[1]) << 32) | u64::from(self.buf[0])
            } else {
                let x = u64::from(self.buf[BUF_WORDS - 1]);
                self.refill();
                self.index = 1;
                (u64::from(self.buf[0]) << 32) | x
            }
        }
    }

    /// `SmallRng` aliases the standard generator here: everything in
    /// this workspace needs determinism, not speed differentiation.
    pub type SmallRng = StdRng;

    #[cfg(test)]
    mod tests {
        use super::*;

        /// RFC 7539 §2.3.2: the ChaCha20 block function test vector.
        /// ChaCha20 and ChaCha12 share the quarter-round and the
        /// state-addition structure; validating 10 double rounds
        /// against the RFC pins the core arithmetic this generator
        /// builds on.
        #[test]
        fn chacha_core_matches_rfc7539() {
            let mut s: [u32; CHACHA_WORDS] = [
                0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574,
                0x0302_0100, 0x0706_0504, 0x0b0a_0908, 0x0f0e_0d0c,
                0x1312_1110, 0x1716_1514, 0x1b1a_1918, 0x1f1e_1d1c,
                0x0000_0001, 0x0900_0000, 0x4a00_0000, 0x0000_0000,
            ];
            let init = s;
            for _ in 0..10 {
                quarter(&mut s, 0, 4, 8, 12);
                quarter(&mut s, 1, 5, 9, 13);
                quarter(&mut s, 2, 6, 10, 14);
                quarter(&mut s, 3, 7, 11, 15);
                quarter(&mut s, 0, 5, 10, 15);
                quarter(&mut s, 1, 6, 11, 12);
                quarter(&mut s, 2, 7, 8, 13);
                quarter(&mut s, 3, 4, 9, 14);
            }
            for i in 0..CHACHA_WORDS {
                s[i] = s[i].wrapping_add(init[i]);
            }
            let expected: [u32; CHACHA_WORDS] = [
                0xe4e7_f110, 0x1559_3bd1, 0x1fdd_0f50, 0xc471_20a3,
                0xc7f4_d1c7, 0x0368_c033, 0x9aaa_2204, 0x4e6c_d4c3,
                0x4664_82d2, 0x09aa_9f07, 0x05d7_c214, 0xa202_8bd9,
                0xd19c_12b5, 0xb94e_16de, 0xe883_d0cb, 0x4e3c_50a2,
            ];
            assert_eq!(s, expected);
        }

        /// A generator rebuilt from `state_bytes` mid-stream (cursor
        /// inside a buffered block) must continue identically.
        #[test]
        fn state_bytes_round_trips_mid_stream() {
            let mut rng = StdRng::from_seed([7u8; 32]);
            for _ in 0..13 {
                rng.next_u32();
            }
            let saved = rng.state_bytes();
            assert_eq!(saved.len(), StdRng::STATE_BYTES);
            let mut rebuilt = StdRng::from_state_bytes(&saved).expect("valid state");
            for _ in 0..200 {
                assert_eq!(rebuilt.next_u64(), rng.next_u64());
            }
        }

        #[test]
        fn bad_state_bytes_are_rejected() {
            assert!(StdRng::from_state_bytes(&[0u8; 3]).is_none());
            let mut saved = StdRng::from_seed([1u8; 32]).state_bytes();
            let at = saved.len() - 8;
            saved[at..].copy_from_slice(&u64::MAX.to_le_bytes());
            assert!(StdRng::from_state_bytes(&saved).is_none());
        }
    }
}

/// Marker for types `gen::<T>()` can produce (the `Standard`
/// distribution subset used here).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // rand 0.8 compares the most significant bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // rand 0.8 `Standard` for f64: 53 mantissa bits, [0, 1).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// One Lemire widening-multiply rejection draw, matching `rand 0.8`'s
/// `UniformInt::sample_single`. `$large` is the sampled width: u32 for
/// the 8/16/32-bit types, u64 for the 64-bit ones, exactly as rand's
/// `uniform_int_impl!` instantiations choose.
macro_rules! uniform_int {
    ($($ty:ty => $large:ty, $unsigned:ty, $wide:ty, $next:ident);+ $(;)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = ((self.end as $unsigned).wrapping_sub(self.start as $unsigned))
                    as $large;
                // range > 0 always (start < end) and the shift-based
                // zone is correct because $large exceeds u16.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $large = rng.$next() as $large;
                    let m = (v as $wide).wrapping_mul(range as $wide);
                    let (hi, lo) = ((m >> <$large>::BITS) as $large, m as $large);
                    if lo <= zone {
                        return (self.start as $unsigned)
                            .wrapping_add(hi as $unsigned) as $ty;
                    }
                }
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let range = ((end as $unsigned).wrapping_sub(start as $unsigned) as $large)
                    .wrapping_add(1);
                if range == 0 {
                    // Full domain.
                    return rng.$next() as $unsigned as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $large = rng.$next() as $large;
                    let m = (v as $wide).wrapping_mul(range as $wide);
                    let (hi, lo) = ((m >> <$large>::BITS) as $large, m as $large);
                    if lo <= zone {
                        return (start as $unsigned).wrapping_add(hi as $unsigned) as $ty;
                    }
                }
            }
        }
    )+};
}

uniform_int! {
    u8 => u32, u8, u64, next_u32;
    u16 => u32, u16, u64, next_u32;
    u32 => u32, u32, u64, next_u32;
    u64 => u64, u64, u128, next_u64;
    usize => u64, usize, u128, next_u64;
    i8 => u32, u8, u64, next_u32;
    i16 => u32, u16, u64, next_u32;
    i32 => u32, u32, u64, next_u32;
    i64 => u64, u64, u128, next_u64;
    isize => u64, usize, u128, next_u64;
}

macro_rules! uniform_float {
    ($($ty:ty => $uty:ty, $bits_to_discard:expr, $next:ident);+ $(;)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (self.start, self.end);
                assert!(low < high, "cannot sample empty range");
                let scale = high - low;
                loop {
                    // Value in [1, 2): fresh mantissa under exponent 0.
                    let value1_2 = <$ty>::from_bits(
                        (rng.$next() >> $bits_to_discard) | <$ty>::to_bits(1.0),
                    );
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                }
            }
        }
    )+};
}

uniform_float! {
    f64 => u64, 12u32, next_u64;
    f32 => u32, 9u32, next_u32;
}

/// The user-facing RNG extension trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples from the `Standard` distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`, exactly as `rand 0.8`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside range [0.0, 1.0]");
        if p == 1.0 {
            return true;
        }
        // rand 0.8 Bernoulli: threshold = p * 2^64 compared to a u64.
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn u32_pairs_compose_u64() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let lo = a.next_u32() as u64;
        let hi = a.next_u32() as u64;
        assert_eq!(b.next_u64(), (hi << 32) | lo);
    }

    #[test]
    fn straddled_refill_matches_word_pairing() {
        // Drain 255 u32s so one word remains, then draw a u64: the low
        // half must be the last word, the high half the first word of
        // the next refill.
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut last = 0u32;
        for _ in 0..256 {
            last = a.next_u32();
        }
        let _ = last;
        for _ in 0..255 {
            b.next_u32();
        }
        let straddle = b.next_u64();
        assert_eq!(straddle as u32, last);
    }

    #[test]
    fn distributions_are_in_range() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let x = r.gen_range(0.75..1.25);
            assert!((0.75..1.25).contains(&x));
            let n = r.gen_range(5u64..17);
            assert!((5..17).contains(&n));
            let i = r.gen_range(-3i32..4);
            assert!((-3..4).contains(&i));
        }
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let a: u64 = StdRng::seed_from_u64(1).gen();
        let b: u64 = StdRng::seed_from_u64(1).gen();
        let c: u64 = StdRng::seed_from_u64(2).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
