//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors the benchmark-harness subset it uses: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `Bencher::{iter, iter_batched}`, `BenchmarkId`, `BatchSize`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: after a short warm-up the
//! routine is run in timed batches until the target measurement time
//! (default 1 s, scaled down by `sample_size`) elapses, and the mean,
//! minimum and maximum per-iteration wall times are printed in a
//! criterion-like format. There is no statistical analysis, HTML
//! report, or saved baseline — the printed numbers are the deliverable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` works as in the real crate.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (ignored by this harness beyond
/// batch sizing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: large batches.
    SmallInput,
    /// Large inputs: small batches.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function_name/parameter` style id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Drives iterations of one benchmark routine.
pub struct Bencher {
    /// Total measured time across all timed iterations.
    elapsed: Duration,
    /// Number of timed iterations.
    iters: u64,
    /// Minimum observed per-batch mean.
    min: Duration,
    /// Maximum observed per-batch mean.
    max: Duration,
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            min: Duration::MAX,
            max: Duration::ZERO,
            budget,
        }
    }

    fn record(&mut self, batch: Duration, batch_iters: u64) {
        self.elapsed += batch;
        self.iters += batch_iters;
        let per = batch / batch_iters.max(1) as u32;
        self.min = self.min.min(per);
        self.max = self.max.max(per);
    }

    /// Times `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and batch-size calibration: aim for batches of
        // roughly 10 ms so the Instant overhead vanishes.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch_iters = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64;
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            self.record(t.elapsed(), batch_iters);
        }
        if self.iters == 0 {
            self.record(once, 1);
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + self.budget;
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.record(t.elapsed(), 1);
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<50} time:   [no samples]");
            return;
        }
        let mean = self.elapsed / self.iters.max(1) as u32;
        println!(
            "{name:<50} time:   [{} {} {}]  ({} iterations)",
            fmt_duration(self.min),
            fmt_duration(mean),
            fmt_duration(self.max),
            self.iters,
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Top-level harness state.
pub struct Criterion {
    measurement_time: Duration,
    /// Substring filter from the command line, as real criterion.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(300),
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies command-line arguments (`<filter>`, `--bench` ignored).
    pub fn configure_from_args(mut self) -> Criterion {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--") && !a.is_empty());
        self.filter = filter;
        self
    }

    /// Overrides the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    fn enabled(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_scale: 1.0,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        name: &str,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_one(name, self.measurement_time, self.enabled(name), f);
        self
    }
}

fn run_one(name: &str, budget: Duration, enabled: bool, mut f: impl FnMut(&mut Bencher)) {
    if !enabled {
        return;
    }
    let mut b = Bencher::new(budget);
    f(&mut b);
    b.report(name);
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_scale: f64,
}

impl BenchmarkGroup<'_> {
    /// Criterion-compatible knob; scales the measurement budget down
    /// for expensive benchmarks (real criterion's default is 100).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_scale = (n as f64 / 100.0).clamp(0.05, 1.0);
        self
    }

    /// Measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    fn budget(&self) -> Duration {
        self.criterion.measurement_time.mul_f64(self.sample_scale)
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let enabled = self.criterion.enabled(&full);
        run_one(&full, self.budget(), enabled, |b| f(b, input));
        self
    }

    /// Runs one benchmark without an input.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let enabled = self.criterion.enabled(&full);
        run_one(&full, self.budget(), enabled, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function, as real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default().measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = quick();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_batched_iters_run() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(4usize), &4usize, |b, &n| {
            b.iter_batched(|| vec![0u8; n], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }
}
