//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors the subset of the proptest API its property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//! * integer-range, tuple, [`Just`], `any::<bool>()` and
//!   `prop::collection::vec` strategies,
//! * [`prop_oneof!`] unions,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (derived from the test name), there is
//! **no shrinking** — a failing case panics with the `Debug` rendering
//! of its inputs so it can be replayed by hand — and
//! `.proptest-regressions` files are ignored.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-case generation RNG (a seeded [`StdRng`]).
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.0.gen_range(0..n)
    }

    /// Raw 64 random bits.
    pub fn bits(&mut self) -> u64 {
        self.0.gen()
    }
}

/// Error type carried by `prop_assert!` failures.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the
    /// strategy `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// `prop_map` combinator.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` combinator.
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (what [`prop_oneof!`] unions hold).
pub struct BoxedStrategy<V>(Box<dyn StrategyObject<V>>);

/// Object-safe strategy view.
trait StrategyObject<V> {
    fn generate_obj(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> StrategyObject<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_obj(rng)
    }
}

/// Uniform choice between boxed strategies ([`prop_oneof!`]).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Always produces a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($ty:ty),+) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Full-width 64-bit range (`any::<u64>()` et al.):
                    // the span overflows u64, but every bit pattern is
                    // a valid draw.
                    return rng.bits() as $ty;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $ty
            }
        }
    )+};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($S:ident / $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Strategy type for the blanket [`any`].
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for `bool` under [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_ints {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            type Strategy = std::ops::RangeInclusive<$ty>;
            fn arbitrary() -> Self::Strategy {
                <$ty>::MIN..=<$ty>::MAX
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive size window for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Matches real proptest's default.
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Runs `body` for `config.cases` generated cases; panics (with the
/// inputs) on the first failure. Used by the [`proptest!`] expansion.
pub fn run_cases<I: std::fmt::Debug>(
    name: &str,
    config: &ProptestConfig,
    generate: impl Fn(&mut TestRng) -> I,
    body: impl Fn(&I) -> TestCaseResult,
) {
    for case in 0..config.cases as u64 {
        let mut rng = TestRng::for_case(name, case);
        let input = generate(&mut rng);
        if let Err(TestCaseError(msg)) = body(&input) {
            panic!(
                "proptest case {case}/{} failed for `{name}`: {msg}\ninput: {input:#?}",
                config.cases
            );
        }
    }
}

/// The `proptest!` macro: generates one `#[test]` per contained fn.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(
                    stringify!($name),
                    &config,
                    |rng| ($($crate::Strategy::generate(&($strat), rng),)+),
                    |input| {
                        let ($(ref $arg,)+) = *input;
                        $(let $arg = ::std::clone::Clone::clone($arg);)+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_oneof!`: uniform choice between the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirrors `proptest::prelude::prop` (module-path access like
    /// `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..=4, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            let _ = b;
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|x| *x < 10));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u8..4).prop_map(|x| x as u32),
                (10u8..14).prop_map(|x| x as u32),
            ]
        ) {
            prop_assert!(v < 4 || (10..14).contains(&v), "v = {v}");
        }

        #[test]
        fn flat_map_threads_values(pair in (2usize..8).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0usize..n, n..n + 1))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|x| *x < n));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let s = (0u64..1000, 0u64..1000);
        let mut rng1 = crate::TestRng::for_case("t", 5);
        let mut rng2 = crate::TestRng::for_case("t", 5);
        assert_eq!(s.generate(&mut rng1), s.generate(&mut rng2));
    }

    /// Regression: full-width integer ranges (`any::<u64>()`) used to
    /// overflow the span computation to zero and panic.
    #[test]
    fn full_width_ranges_generate() {
        let mut rng = crate::TestRng::for_case("full-width", 0);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..16 {
            distinct.insert(any::<u64>().generate(&mut rng));
            let _ = any::<i64>().generate(&mut rng);
            let _ = any::<usize>().generate(&mut rng);
        }
        assert!(distinct.len() > 1, "full-width draws are not varying");
    }
}
