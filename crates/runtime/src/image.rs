//! Runtime images: the fixed cost of a language runtime.
//!
//! A managed runtime brings more than a heap: shared libraries
//! (`libjvm.so` for HotSpot, the `node` binary for V8), private native
//! allocations (metaspace, code cache, malloc arenas), and startup
//! time. The paper's §4.6 optimization unmaps libraries that are
//! *private to a single frozen instance*; whether libraries are shared
//! at all is an environment property — OpenWhisk containers on one host
//! share them through the page cache, Lambda instances do not (§5.4).

use simos::{FileId, SimDuration, System};

/// The two managed languages the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Language {
    /// Java on the HotSpot serial collector.
    Java,
    /// JavaScript on Node.js / V8.
    JavaScript,
}

impl Language {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Language::Java => "java",
            Language::JavaScript => "javascript",
        }
    }
}

/// Description of a runtime image.
#[derive(Debug, Clone)]
pub struct RuntimeImage {
    /// The language this image hosts.
    pub language: Language,
    /// Shared libraries: `(name, size_bytes)`.
    pub libs: Vec<(String, u64)>,
    /// Private anonymous native memory touched at startup (metaspace,
    /// code cache, malloc arenas).
    pub native_bytes: u64,
    /// Runtime initialization time (JVM boot / node boot), charged on
    /// cold start.
    pub startup: SimDuration,
    /// Whether library files may be shared between instances of this
    /// image through the page cache.
    pub share_libs: bool,
}

impl RuntimeImage {
    /// The OpenWhisk image: libraries shared across same-language
    /// containers on the host.
    pub fn openwhisk(language: Language) -> RuntimeImage {
        match language {
            Language::Java => RuntimeImage {
                language,
                libs: vec![
                    ("libjvm.so".into(), 18 << 20),
                    ("libjava+deps.so".into(), 8 << 20),
                ],
                native_bytes: 30 << 20,
                startup: SimDuration::from_millis(420),
                share_libs: true,
            },
            Language::JavaScript => RuntimeImage {
                language,
                libs: vec![("node".into(), 52 << 20), ("libc+deps.so".into(), 6 << 20)],
                native_bytes: 18 << 20,
                startup: SimDuration::from_millis(180),
                share_libs: true,
            },
        }
    }

    /// The Lambda image (§5.4): same runtimes packed as container
    /// images, but Lambda never shares library pages between instances,
    /// which makes the §4.6 unmap optimization more effective. The
    /// Corretto/levelled images are also somewhat larger.
    pub fn lambda(language: Language) -> RuntimeImage {
        let mut image = RuntimeImage::openwhisk(language);
        image.share_libs = false;
        for (_, size) in &mut image.libs {
            *size += *size / 4;
        }
        image.startup += SimDuration::from_millis(80);
        image
    }

    /// Total library bytes.
    pub fn lib_bytes(&self) -> u64 {
        self.libs.iter().map(|(_, s)| *s).sum()
    }

    /// Registers this image's library files with the system.
    ///
    /// For a sharing image this is done once per host; for a
    /// non-sharing (Lambda) image, call it once *per instance* so that
    /// every instance maps distinct files and nothing is shared.
    pub fn register_files(&self, sys: &mut System) -> SharedLibs {
        let files = self
            .libs
            .iter()
            .map(|(name, size)| sys.register_file(name, *size))
            .collect();
        SharedLibs { files }
    }
}

/// Registered library files of one image on one host.
#[derive(Debug, Clone)]
pub struct SharedLibs {
    /// File ids in registration order (parallel to
    /// [`RuntimeImage::libs`]).
    pub files: Vec<FileId>,
}

impl snapshot::Snapshot for Language {
    fn snap(&self, w: &mut snapshot::Writer) {
        let tag: u8 = match self {
            Language::Java => 0,
            Language::JavaScript => 1,
        };
        tag.snap(w);
    }

    fn restore(r: &mut snapshot::Reader<'_>) -> Result<Language, snapshot::SnapError> {
        match u8::restore(r)? {
            0 => Ok(Language::Java),
            1 => Ok(Language::JavaScript),
            _ => Err(snapshot::SnapError::Corrupt("unknown Language tag")),
        }
    }
}

impl snapshot::Snapshot for SharedLibs {
    fn snap(&self, w: &mut snapshot::Writer) {
        let Self { files } = self;
        files.snap(w);
    }

    fn restore(r: &mut snapshot::Reader<'_>) -> Result<SharedLibs, snapshot::SnapError> {
        Ok(SharedLibs {
            files: Vec::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openwhisk_images_share_lambda_ones_do_not() {
        for lang in [Language::Java, Language::JavaScript] {
            assert!(RuntimeImage::openwhisk(lang).share_libs);
            assert!(!RuntimeImage::lambda(lang).share_libs);
        }
    }

    #[test]
    fn lambda_images_are_larger_and_slower_to_boot() {
        for lang in [Language::Java, Language::JavaScript] {
            let ow = RuntimeImage::openwhisk(lang);
            let l = RuntimeImage::lambda(lang);
            assert!(l.lib_bytes() > ow.lib_bytes());
            assert!(l.startup > ow.startup);
        }
    }

    #[test]
    fn register_files_creates_one_file_per_lib() {
        let mut sys = System::new();
        let image = RuntimeImage::openwhisk(Language::Java);
        let libs = image.register_files(&mut sys);
        assert_eq!(libs.files.len(), image.libs.len());
        for (file, (name, size)) in libs.files.iter().zip(&image.libs) {
            assert_eq!(sys.files().name(*file), name);
            assert!(sys.files().size(*file) >= *size);
        }
    }
}
