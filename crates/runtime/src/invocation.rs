//! The invocation context handed to workload kernels.
//!
//! A kernel is ordinary Rust code that expresses a FaaS function's
//! *allocation and compute behaviour*: it allocates objects in the
//! instance's managed heap, wires references, retains state in globals,
//! and charges compute time. The context hides the heap façade behind
//! a small API so kernels read like the functions they model.

use gc_core::object::{ObjectId, ObjectKind};
use simos::{SimDuration, System};

use crate::heap::RuntimeHeap;

/// Context for one function invocation.
///
/// Created by [`crate::Instance::invoke`]; a handle scope is already
/// open, so [`InvocationCtx::handle`] roots temporaries for the length
/// of the invocation and everything not retained via
/// [`InvocationCtx::global`] dies when the function exits.
pub struct InvocationCtx<'a> {
    pub(crate) sys: &'a mut System,
    pub(crate) heap: &'a mut RuntimeHeap,
    pub(crate) compute: SimDuration,
}

impl<'a> InvocationCtx<'a> {
    /// Allocates a data object of `size` bytes.
    ///
    /// # Panics
    ///
    /// Panics on heap exhaustion; workload kernels are calibrated to
    /// fit their instance budget, so exhaustion is a calibration bug.
    pub fn alloc(&mut self, size: u32) -> ObjectId {
        self.alloc_kind(size, ObjectKind::Data)
    }

    /// Allocates an object of a specific kind (e.g. JIT code).
    ///
    /// # Panics
    ///
    /// Panics on heap exhaustion (see [`InvocationCtx::alloc`]).
    pub fn alloc_kind(&mut self, size: u32, kind: ObjectKind) -> ObjectId {
        self.heap
            .alloc(self.sys, size, kind)
            .expect("workload exceeds calibrated heap budget") // tidy:allow(panic-reachability) -- heap demand is calibrated below the budget when the spec is built
    }

    /// Roots `id` for the rest of this invocation (a local variable).
    pub fn handle(&mut self, id: ObjectId) {
        self.heap.graph_mut().add_handle(id);
    }

    /// Retains `id` across invocations (function state, caches).
    pub fn global(&mut self, id: ObjectId) {
        self.heap.graph_mut().add_global(id);
    }

    /// Releases a previously retained global root.
    pub fn drop_global(&mut self, id: ObjectId) {
        self.heap.graph_mut().remove_global(id);
    }

    /// Adds a strong reference `from → to`.
    pub fn link(&mut self, from: ObjectId, to: ObjectId) {
        self.heap.graph_mut().add_ref(from, to);
    }

    /// Adds a weak reference `from → to` (JIT code caches).
    pub fn link_weak(&mut self, from: ObjectId, to: ObjectId) {
        self.heap.graph_mut().add_weak_ref(from, to);
    }

    /// Severs a strong reference `from → to`.
    pub fn unlink(&mut self, from: ObjectId, to: ObjectId) {
        self.heap.graph_mut().remove_ref(from, to);
    }

    /// Charges `d` of pure kernel compute time (at full CPU; the
    /// instance's CPU share scales it into wall time).
    pub fn work(&mut self, d: SimDuration) {
        self.compute += d;
    }

    /// The current global roots (to find state retained by earlier
    /// invocations of this instance).
    pub fn globals(&self) -> &[ObjectId] {
        self.heap.graph().globals()
    }

    /// True if `id` is still a live slot (for defensive kernels).
    pub fn exists(&self, id: ObjectId) -> bool {
        self.heap.graph().exists(id)
    }

    /// Size of an object (kernels sizing follow-up allocations).
    pub fn size_of(&self, id: ObjectId) -> u32 {
        self.heap.graph().get(id).size
    }
}
