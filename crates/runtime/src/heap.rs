//! A uniform façade over the two heap models.
//!
//! The FaaS platform and Desiccant must not care which language an
//! instance runs — the paper's reclaim API is deliberately narrow so
//! that supporting a runtime costs tens of lines (§4.4). This enum is
//! that narrow interface.

use gc_core::object::{HeapGraph, ObjectId, ObjectKind};
use gc_core::stats::GcCounters;
use hotspot::{HeapError, HotSpotConfig, HotSpotHeap};
use simos::{Pid, SimDuration, SimTime, System, VirtAddr};
use v8heap::{V8Config, V8Heap, V8HeapError};

use crate::image::Language;

/// Errors from either heap model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeHeapError {
    /// HotSpot failure.
    HotSpot(HeapError),
    /// V8 failure.
    V8(V8HeapError),
}

impl std::fmt::Display for RuntimeHeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeHeapError::HotSpot(e) => write!(f, "{e}"),
            RuntimeHeapError::V8(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RuntimeHeapError {}

impl From<HeapError> for RuntimeHeapError {
    fn from(e: HeapError) -> Self {
        RuntimeHeapError::HotSpot(e)
    }
}

impl From<V8HeapError> for RuntimeHeapError {
    fn from(e: V8HeapError) -> Self {
        RuntimeHeapError::V8(e)
    }
}

/// The §4.4 reclamation profile: what the runtime reports back to the
/// platform after a `reclaim` call. The platform extends it with the
/// CPU time the reclamation consumed before handing it to Desiccant.
#[derive(Debug, Clone, Copy)]
pub struct ReclaimReport {
    /// Bytes of physical memory returned to the OS.
    pub released_bytes: u64,
    /// In-heap live bytes measured by the collection.
    pub live_bytes: u64,
    /// Wall time the reclamation took inside the instance.
    pub wall_time: SimDuration,
}

/// A managed heap of either language.
#[derive(Debug, Clone)]
pub enum RuntimeHeap {
    /// HotSpot serial-GC heap (Java).
    HotSpot(HotSpotHeap),
    /// V8 heap (JavaScript).
    V8(V8Heap),
}

impl RuntimeHeap {
    /// Creates the heap appropriate for `language` in process `pid`,
    /// sized for an instance memory budget of `budget` bytes.
    pub fn for_language(
        sys: &mut System,
        pid: Pid,
        language: Language,
        budget: u64,
    ) -> Result<RuntimeHeap, RuntimeHeapError> {
        Ok(match language {
            Language::Java => {
                RuntimeHeap::HotSpot(HotSpotHeap::new(sys, pid, HotSpotConfig::for_budget(budget))?)
            }
            Language::JavaScript => {
                RuntimeHeap::V8(V8Heap::new(sys, pid, V8Config::for_budget(budget))?)
            }
        })
    }

    /// The language this heap serves.
    pub fn language(&self) -> Language {
        match self {
            RuntimeHeap::HotSpot(_) => Language::Java,
            RuntimeHeap::V8(_) => Language::JavaScript,
        }
    }

    /// The object graph.
    pub fn graph(&self) -> &HeapGraph {
        match self {
            RuntimeHeap::HotSpot(h) => h.graph(),
            RuntimeHeap::V8(h) => h.graph(),
        }
    }

    /// Mutable object graph.
    pub fn graph_mut(&mut self) -> &mut HeapGraph {
        match self {
            RuntimeHeap::HotSpot(h) => h.graph_mut(),
            RuntimeHeap::V8(h) => h.graph_mut(),
        }
    }

    /// Allocates an object.
    pub fn alloc(
        &mut self,
        sys: &mut System,
        size: u32,
        kind: ObjectKind,
    ) -> Result<ObjectId, RuntimeHeapError> {
        match self {
            RuntimeHeap::HotSpot(h) => Ok(h.alloc(sys, size, kind)?),
            RuntimeHeap::V8(h) => Ok(h.alloc(sys, size, kind)?),
        }
    }

    /// Advances the heap's mutator clock (drives V8's allocation-rate
    /// estimate; a no-op for HotSpot).
    pub fn set_now(&mut self, now: SimTime) {
        if let RuntimeHeap::V8(h) = self {
            h.set_now(now);
        }
    }

    /// The *eager baseline*'s GC call at function exit: `System.gc()`
    /// for HotSpot, the aggressive `global.gc()` for V8 (stock
    /// interfaces only, §3.2).
    pub fn eager_gc(&mut self, sys: &mut System) -> Result<(), RuntimeHeapError> {
        match self {
            RuntimeHeap::HotSpot(h) => Ok(h.system_gc(sys)?),
            RuntimeHeap::V8(h) => Ok(h.global_gc(sys)?),
        }
    }

    /// The Desiccant `reclaim` interface. `keep_weak` selects the §4.7
    /// non-aggressive mode (meaningful for V8; HotSpot's serial full GC
    /// does not clear JIT code either way in this model).
    pub fn reclaim(
        &mut self,
        sys: &mut System,
        keep_weak: bool,
    ) -> Result<ReclaimReport, RuntimeHeapError> {
        Ok(match self {
            RuntimeHeap::HotSpot(h) => {
                let o = h.reclaim(sys)?;
                ReclaimReport {
                    released_bytes: o.released_bytes,
                    live_bytes: o.live_bytes,
                    wall_time: o.wall_time,
                }
            }
            RuntimeHeap::V8(h) => {
                let o = h.reclaim(sys, keep_weak)?;
                ReclaimReport {
                    released_bytes: o.released_bytes,
                    live_bytes: o.live_bytes,
                    wall_time: o.wall_time,
                }
            }
        })
    }

    /// Live bytes *right now*, computed by a fresh marking pass over
    /// the persistent roots (handle scopes are closed at freeze
    /// points). This is the oracle measurement behind the §3.1 ideal
    /// baseline, not something a production runtime exposes cheaply.
    pub fn current_live_bytes(&self) -> u64 {
        gc_core::trace::mark(self.graph(), false, true).live_bytes
    }

    /// Live bytes found by the most recent collection.
    pub fn last_live_bytes(&self) -> u64 {
        match self {
            RuntimeHeap::HotSpot(h) => h.last_live_bytes(),
            RuntimeHeap::V8(h) => h.last_live_bytes(),
        }
    }

    /// Committed heap bytes.
    pub fn committed(&self) -> u64 {
        match self {
            RuntimeHeap::HotSpot(h) => h.committed(),
            RuntimeHeap::V8(h) => h.committed(),
        }
    }

    /// Resident bytes inside the heap (the platform's `pmap`-or-
    /// internal-counters probe of §4.5.2).
    pub fn resident_heap_bytes(&self, sys: &System) -> u64 {
        match self {
            RuntimeHeap::HotSpot(h) => h.resident_heap_bytes(sys),
            RuntimeHeap::V8(h) => h.resident_heap_bytes(sys),
        }
    }

    /// The heap's address range for `pmap`, if contiguous (HotSpot
    /// reports its reservation; V8 heaps are chunked and report
    /// `None` — the platform reads their internal counters instead,
    /// exactly the §4.5.2 distinction).
    pub fn heap_range(&self) -> Option<(VirtAddr, u64)> {
        match self {
            RuntimeHeap::HotSpot(h) => Some(h.heap_range()),
            RuntimeHeap::V8(_) => None,
        }
    }

    /// Cumulative GC statistics.
    pub fn counters(&self) -> &GcCounters {
        match self {
            RuntimeHeap::HotSpot(h) => h.counters(),
            RuntimeHeap::V8(h) => h.counters(),
        }
    }

    /// Drains accrued heap latency (GC pauses + fault costs).
    pub fn take_elapsed(&mut self) -> SimDuration {
        match self {
            RuntimeHeap::HotSpot(h) => h.take_elapsed(),
            RuntimeHeap::V8(h) => h.take_elapsed(),
        }
    }

    /// Drains code bytes lost to aggressive collections (V8 only).
    pub fn take_deopt_code_bytes(&mut self) -> u64 {
        match self {
            RuntimeHeap::HotSpot(_) => 0,
            RuntimeHeap::V8(h) => h.take_deopt_code_bytes(),
        }
    }
}

impl snapshot::Snapshot for RuntimeHeap {
    fn snap(&self, w: &mut snapshot::Writer) {
        match self {
            RuntimeHeap::HotSpot(h) => {
                0u8.snap(w);
                h.snap(w);
            }
            RuntimeHeap::V8(h) => {
                1u8.snap(w);
                h.snap(w);
            }
        }
    }

    fn restore(r: &mut snapshot::Reader<'_>) -> Result<RuntimeHeap, snapshot::SnapError> {
        match u8::restore(r)? {
            0 => Ok(RuntimeHeap::HotSpot(HotSpotHeap::restore(r)?)),
            1 => Ok(RuntimeHeap::V8(V8Heap::restore(r)?)),
            _ => Err(snapshot::SnapError::Corrupt("unknown RuntimeHeap tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_dispatches_both_languages() {
        for lang in [Language::Java, Language::JavaScript] {
            let mut sys = System::new();
            let pid = sys.spawn_process();
            let mut heap = RuntimeHeap::for_language(&mut sys, pid, lang, 256 << 20).unwrap();
            assert_eq!(heap.language(), lang);
            let scope = heap.graph_mut().push_handle_scope();
            let id = heap.alloc(&mut sys, 64 << 10, ObjectKind::Data).unwrap();
            heap.graph_mut().add_handle(id);
            heap.graph_mut().pop_handle_scope(scope);
            let report = heap.reclaim(&mut sys, true).unwrap();
            assert!(report.released_bytes > 0);
            assert_eq!(report.live_bytes, 0);
            assert!(heap.take_elapsed() > SimDuration::ZERO);
        }
    }

    #[test]
    fn heap_range_only_for_hotspot() {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let java = RuntimeHeap::for_language(&mut sys, pid, Language::Java, 256 << 20).unwrap();
        assert!(java.heap_range().is_some());
        let pid2 = sys.spawn_process();
        let js =
            RuntimeHeap::for_language(&mut sys, pid2, Language::JavaScript, 256 << 20).unwrap();
        assert!(js.heap_range().is_none());
    }
}
