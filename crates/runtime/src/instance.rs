//! A managed-runtime instance: heap + native memory + libraries + JIT.

use simos::cost::CostModel;
use simos::mem::{page_align_up, MappingKind, Prot};
use simos::{FileId, Pid, SimDuration, SimTime, System, VirtAddr};

use crate::heap::{ReclaimReport, RuntimeHeap, RuntimeHeapError};
use crate::image::{RuntimeImage, SharedLibs};
use crate::invocation::InvocationCtx;

/// Per-function execution characteristics used by the latency model.
#[derive(Debug, Clone, Copy)]
pub struct ExecProfile {
    /// Extra compute multiplier when the JIT is cold; decays over
    /// [`ExecProfile::warmup_tau`] invocations.
    pub warmup_factor: f64,
    /// Warm-up time constant in invocations.
    pub warmup_tau: f64,
    /// Compute multiplier applied while deoptimization debt is
    /// outstanding (after an aggressive GC cleared JIT code, §4.7).
    /// The paper measures 2.14× for data-analysis and 1.74× for
    /// unionfind.
    pub deopt_sensitivity: f64,
}

impl Default for ExecProfile {
    fn default() -> ExecProfile {
        ExecProfile {
            warmup_factor: 2.0,
            warmup_tau: 6.0,
            deopt_sensitivity: 0.6,
        }
    }
}

/// What one invocation cost, by component.
#[derive(Debug, Clone, Copy)]
pub struct InvocationReport {
    /// End-to-end wall time at the instance's CPU share.
    pub wall_time: SimDuration,
    /// Kernel compute after JIT multipliers (full-CPU time).
    pub compute: SimDuration,
    /// GC pauses plus page-fault refills (full-CPU time).
    pub heap_overhead: SimDuration,
}

/// Fraction of library pages re-touched on the first invocation after
/// the §4.6 unmap optimization (the hot part of the library).
const LIB_HOT_FRACTION: f64 = 0.25;

/// One managed-runtime process: the unit the platform launches,
/// freezes, thaws, and reclaims.
#[derive(Debug, Clone)]
pub struct Instance {
    pid: Pid,
    budget: u64,
    cpu_share: f64,
    heap: RuntimeHeap,
    /// Mapped libraries: `(file, base, len)`.
    libs: Vec<(FileId, VirtAddr, u64)>,
    native_addr: VirtAddr,
    native_len: u64,
    /// JIT warmth: completed invocations.
    warmth: u64,
    /// Outstanding deoptimization debt in `[0, 1]`.
    deopt_debt: f64,
    /// Set by the unmap optimization; cleared by the next invocation's
    /// refault.
    libs_unmapped: bool,
    /// Non-heap latency accrued (library faults, native setup).
    pending: SimDuration,
    os_cost: CostModel,
    /// Runtime initialization time from the image, charged on cold
    /// boot by the platform.
    startup: SimDuration,
}

impl Instance {
    /// Launches a runtime instance: spawns a process, maps the image's
    /// libraries (from `libs`), touches the native working set, and
    /// creates the managed heap.
    ///
    /// For sharing images pass the host-wide [`SharedLibs`]; for
    /// non-sharing (Lambda) images register a fresh
    /// [`RuntimeImage::register_files`] per instance.
    pub fn launch(
        sys: &mut System,
        image: &RuntimeImage,
        libs: &SharedLibs,
        budget: u64,
        cpu_share: f64,
    ) -> Result<Instance, RuntimeHeapError> {
        assert!(cpu_share > 0.0, "instance needs a CPU share");
        assert_eq!(
            libs.files.len(),
            image.libs.len(),
            "library registration does not match the image"
        );
        let pid = sys.spawn_process();
        let os_cost = CostModel::default();
        let mut pending = SimDuration::ZERO;
        let mut mapped = Vec::new();
        for (file, (_, size)) in libs.files.iter().zip(&image.libs) {
            let addr = sys.map_library(pid, *file).map_err(map_os)?;
            // Library pages fault in from the page cache.
            pending += os_cost.file_fault * (size / simos::PAGE_SIZE);
            mapped.push((*file, addr, page_align_up(*size)));
        }
        let native_len = page_align_up(image.native_bytes);
        let native_addr = sys
            .mmap_named(
                pid,
                native_len,
                MappingKind::Anonymous,
                Prot::ReadWrite,
                "[native]",
            )
            .map_err(map_os)?;
        let out = sys.touch(pid, native_addr, native_len, true).map_err(map_os)?;
        pending += os_cost.touch_cost(out);
        let heap = RuntimeHeap::for_language(sys, pid, image.language, budget)?;
        Ok(Instance {
            pid,
            budget,
            cpu_share,
            heap,
            libs: mapped,
            native_addr,
            native_len,
            warmth: 0,
            deopt_debt: 0.0,
            libs_unmapped: false,
            pending,
            os_cost,
            startup: image.startup,
        })
    }

    /// The instance's process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The instance's memory budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// The instance's CPU share.
    pub fn cpu_share(&self) -> f64 {
        self.cpu_share
    }

    /// Runtime initialization time (part of the cold-boot cost).
    pub fn startup_time(&self) -> SimDuration {
        self.startup + SimDuration::from_nanos(
            (self.pending.as_nanos() as f64 / self.cpu_share) as u64,
        )
    }

    /// The native (non-heap) anonymous mapping: `(base, len)`.
    pub fn native_range(&self) -> (VirtAddr, u64) {
        (self.native_addr, self.native_len)
    }

    /// The managed heap.
    pub fn heap(&self) -> &RuntimeHeap {
        &self.heap
    }

    /// Mutable managed heap.
    pub fn heap_mut(&mut self) -> &mut RuntimeHeap {
        &mut self.heap
    }

    /// Completed invocations (JIT warmth).
    pub fn warmth(&self) -> u64 {
        self.warmth
    }

    /// Runs one function invocation at simulated time `now`.
    ///
    /// Opens a handle scope, runs the kernel, closes the scope (killing
    /// every temporary), and prices the invocation: JIT-adjusted kernel
    /// compute plus GC pauses plus page-fault refills, all divided by
    /// the instance's CPU share.
    pub fn invoke<F>(
        &mut self,
        sys: &mut System,
        now: SimTime,
        exec: &ExecProfile,
        kernel: F,
    ) -> Result<InvocationReport, RuntimeHeapError>
    where
        F: FnOnce(&mut InvocationCtx<'_>),
    {
        self.heap.set_now(now);
        // Refault the hot part of unmapped libraries (§4.6 aftermath).
        if self.libs_unmapped {
            self.refault_hot_libs(sys)?;
            self.libs_unmapped = false;
        }
        let scope = self.heap.graph_mut().push_handle_scope();
        let mut ctx = InvocationCtx {
            sys,
            heap: &mut self.heap,
            compute: SimDuration::ZERO,
        };
        kernel(&mut ctx);
        let compute_raw = ctx.compute;
        self.heap.graph_mut().pop_handle_scope(scope);

        let multiplier = 1.0
            + exec.warmup_factor * (-(self.warmth as f64) / exec.warmup_tau).exp()
            + exec.deopt_sensitivity * self.deopt_debt;
        // Re-JITting pays the debt down slowly: recompiling the hot
        // paths takes many invocations, so a §5.6-style 10-invocation
        // window after an aggressive collection runs almost fully
        // deoptimized (the paper measures 2.14x / 1.74x there).
        self.deopt_debt *= 0.98;
        if self.deopt_debt < 0.01 {
            self.deopt_debt = 0.0;
        }
        self.warmth += 1;

        let compute = compute_raw.mul_f64(multiplier);
        let heap_overhead = self.heap.take_elapsed() + std::mem::take(&mut self.pending);
        let full_cpu = compute + heap_overhead;
        let wall = full_cpu.mul_f64(1.0 / self.cpu_share);
        Ok(InvocationReport {
            wall_time: wall,
            compute,
            heap_overhead,
        })
    }

    fn refault_hot_libs(&mut self, sys: &mut System) -> Result<(), RuntimeHeapError> {
        let mut pending = SimDuration::ZERO;
        for (_, addr, len) in &self.libs {
            let hot = page_align_up((*len as f64 * LIB_HOT_FRACTION) as u64).min(*len);
            if hot == 0 {
                continue;
            }
            let out = sys.touch(self.pid, *addr, hot, false).map_err(map_os)?;
            pending += self.os_cost.touch_cost(out);
        }
        self.pending += pending;
        Ok(())
    }

    /// The eager baseline's GC at function exit (§3.2): stock
    /// `System.gc()` / `global.gc()`. Returns the wall time it took.
    /// For V8 this is the aggressive collection and may incur
    /// deoptimization debt.
    pub fn eager_gc(&mut self, sys: &mut System) -> Result<SimDuration, RuntimeHeapError> {
        self.heap.eager_gc(sys)?;
        if self.heap.take_deopt_code_bytes() > 0 {
            self.deopt_debt = 1.0;
        }
        let t = self.heap.take_elapsed();
        Ok(t.mul_f64(1.0 / self.cpu_share))
    }

    /// The Desiccant reclamation (§4.4): runtime GC + release of all
    /// free pages. With `keep_weak` (the §4.7 option) JIT code
    /// survives; without it the instance takes on deoptimization debt
    /// like the aggressive baseline.
    pub fn reclaim(
        &mut self,
        sys: &mut System,
        now: SimTime,
        keep_weak: bool,
    ) -> Result<ReclaimReport, RuntimeHeapError> {
        self.heap.set_now(now);
        let report = self.heap.reclaim(sys, keep_weak)?;
        if self.heap.take_deopt_code_bytes() > 0 {
            self.deopt_debt = 1.0;
        }
        // Reclamation latency is charged to the reclaim report, not to
        // the next invocation.
        let _ = self.heap.take_elapsed();
        Ok(report)
    }

    /// The §4.6 shared-library optimization: release every mapping that
    /// is private to this process, unmodified, and file-backed —
    /// provided this instance is the *only* user. Returns released
    /// bytes.
    pub fn unmap_private_libs(&mut self, sys: &mut System) -> Result<u64, RuntimeHeapError> {
        let entries = simos::metrics::smaps(sys, self.pid);
        let mut released = 0u64;
        for e in entries {
            if !e.is_private_unmodified_file() {
                continue;
            }
            released += sys
                .release(self.pid, VirtAddr(e.start), e.len)
                .map_err(map_os)?;
        }
        if released > 0 {
            self.libs_unmapped = true;
        }
        Ok(released)
    }

    /// Kernel-free helper: swap out every resident page of the instance
    /// (the §5.6 swapping baseline — no runtime guidance at all).
    pub fn swap_out_all(&mut self, sys: &mut System) -> Result<u64, RuntimeHeapError> {
        let ranges: Vec<(VirtAddr, u64)> = sys
            .space(self.pid)
            .map_err(map_os)?
            .mappings()
            .map(|m| (m.start, m.len()))
            .collect();
        let mut swapped = 0;
        for (addr, len) in ranges {
            swapped += sys.swap_out(self.pid, addr, len).map_err(map_os)?;
        }
        Ok(swapped)
    }

    /// USS of this instance in bytes (the paper's primary metric).
    pub fn uss(&self, sys: &System) -> u64 {
        sys.uss(self.pid)
    }

    /// RSS of this instance in bytes.
    pub fn rss(&self, sys: &System) -> u64 {
        sys.rss(self.pid)
    }

    /// PSS of this instance in bytes.
    pub fn pss(&self, sys: &System) -> f64 {
        sys.pss(self.pid)
    }

    /// The *ideal* memory consumption of §3.1: what the instance would
    /// use if the heap kept only live objects — current USS minus heap
    /// waste (resident heap beyond page-rounded live bytes).
    pub fn ideal_uss(&self, sys: &System) -> u64 {
        let uss = self.uss(sys);
        let heap_resident = self.heap.resident_heap_bytes(sys);
        let live = page_align_up(self.heap.current_live_bytes());
        uss - heap_resident.min(uss) + live.min(heap_resident)
    }

    /// Destroys the instance's process and returns the USS it freed —
    /// the bytes that leave physical memory with the kill (shared
    /// page-cache pages survive for other mappers). Crash and teardown
    /// paths use the return value for conservation checks.
    pub fn kill(self, sys: &mut System) -> u64 {
        let freed = sys.uss(self.pid);
        // The process may already be gone in teardown paths; ignore.
        let _ = sys.kill_process(self.pid);
        freed
    }
}

fn map_os(e: simos::SimOsError) -> RuntimeHeapError {
    RuntimeHeapError::HotSpot(hotspot::HeapError::Os(e))
}

mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for Instance {
        fn snap(&self, w: &mut Writer) {
            let Self {
                pid,
                budget,
                cpu_share,
                heap,
                libs,
                native_addr,
                native_len,
                warmth,
                deopt_debt,
                libs_unmapped,
                pending,
                os_cost,
                startup,
            } = self;
            pid.snap(w);
            budget.snap(w);
            cpu_share.snap(w);
            heap.snap(w);
            libs.snap(w);
            native_addr.snap(w);
            native_len.snap(w);
            warmth.snap(w);
            deopt_debt.snap(w);
            libs_unmapped.snap(w);
            pending.snap(w);
            os_cost.snap(w);
            startup.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<Instance, SnapError> {
            Ok(Instance {
                pid: Pid::restore(r)?,
                budget: u64::restore(r)?,
                cpu_share: f64::restore(r)?,
                heap: RuntimeHeap::restore(r)?,
                libs: Vec::restore(r)?,
                native_addr: VirtAddr::restore(r)?,
                native_len: u64::restore(r)?,
                warmth: u64::restore(r)?,
                deopt_debt: f64::restore(r)?,
                libs_unmapped: bool::restore(r)?,
                pending: SimDuration::restore(r)?,
                os_cost: CostModel::restore(r)?,
                startup: SimDuration::restore(r)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Language;

    fn launch(lang: Language) -> (System, Instance) {
        let mut sys = System::new();
        let image = RuntimeImage::openwhisk(lang);
        let libs = image.register_files(&mut sys);
        let inst = Instance::launch(&mut sys, &image, &libs, 256 << 20, 0.14).unwrap();
        (sys, inst)
    }

    #[test]
    fn launch_produces_native_and_lib_footprint() {
        for lang in [Language::Java, Language::JavaScript] {
            let (sys, inst) = launch(lang);
            let image = RuntimeImage::openwhisk(lang);
            // Sole instance: libraries are private, so USS covers
            // native + libs.
            assert!(inst.uss(&sys) >= image.native_bytes + image.lib_bytes());
            assert!(inst.startup_time() > image.startup);
        }
    }

    #[test]
    fn invocations_warm_up() {
        let (mut sys, mut inst) = launch(Language::Java);
        let exec = ExecProfile::default();
        let mut latencies = Vec::new();
        for i in 0..10 {
            let r = inst
                .invoke(&mut sys, SimTime(i * 1_000_000_000), &exec, |ctx| {
                    let a = ctx.alloc(256 << 10);
                    ctx.handle(a);
                    ctx.work(SimDuration::from_millis(10));
                })
                .unwrap();
            latencies.push(r.wall_time);
        }
        assert!(
            latencies[9] < latencies[0],
            "no JIT warm-up: {:?} vs {:?}",
            latencies[9],
            latencies[0]
        );
        // CPU share scales the wall time: 10 ms of compute at 0.14 CPU
        // is at least 70 ms wall.
        assert!(latencies[9] >= SimDuration::from_millis(70));
    }

    #[test]
    fn aggressive_gc_incurs_deopt_debt_on_v8() {
        let (mut sys, mut inst) = launch(Language::JavaScript);
        let exec = ExecProfile {
            warmup_factor: 0.0,
            warmup_tau: 1.0,
            deopt_sensitivity: 1.14,
        };
        // A throwaway invocation drains the launch-time fault costs so
        // the comparison below isolates the deopt effect.
        run_with_code(&mut sys, &mut inst, &exec, 0);
        // Install weakly-referenced code, as the JIT would.
        let r_warm = run_with_code(&mut sys, &mut inst, &exec, 0);
        // A weak-preserving reclaim must not create deopt debt.
        let mut debt_free = inst.clone();
        debt_free.reclaim(&mut sys, SimTime(100), true).unwrap();
        assert_eq!(debt_free.deopt_debt, 0.0);
        inst.eager_gc(&mut sys).unwrap();
        let r_deopt = run_with_code(&mut sys, &mut inst, &exec, 1);
        assert!(
            r_deopt.wall_time > r_warm.wall_time.mul_f64(1.5),
            "deopt did not slow execution: {:?} vs {:?}",
            r_deopt.wall_time,
            r_warm.wall_time
        );
    }

    fn run_with_code(
        sys: &mut System,
        inst: &mut Instance,
        exec: &ExecProfile,
        seq: u64,
    ) -> InvocationReport {
        inst.invoke(sys, SimTime(seq * 1_000_000_000), exec, |ctx| {
            let holder = ctx.alloc(1024);
            ctx.global(holder);
            let code = ctx.alloc_kind(64 << 10, gc_core::ObjectKind::Code);
            ctx.link_weak(holder, code);
            ctx.work(SimDuration::from_millis(20));
        })
        .unwrap()
    }

    #[test]
    fn unmap_private_libs_releases_and_refaults() {
        let (mut sys, mut inst) = launch(Language::Java);
        let uss_before = inst.uss(&sys);
        let released = inst.unmap_private_libs(&mut sys).unwrap();
        assert!(released > 0);
        assert!(inst.uss(&sys) < uss_before);
        // Next invocation re-touches the hot part.
        let exec = ExecProfile::default();
        inst.invoke(&mut sys, SimTime(0), &exec, |ctx| {
            ctx.work(SimDuration::from_millis(1));
        })
        .unwrap();
        let image = RuntimeImage::openwhisk(Language::Java);
        let uss_after = inst.uss(&sys);
        // Hot quarter of the libraries is back.
        assert!(uss_after > inst.heap.resident_heap_bytes(&sys));
        assert!(uss_after < uss_before);
        let _ = image;
    }

    #[test]
    fn shared_libs_do_not_count_in_uss_with_two_instances() {
        let mut sys = System::new();
        let image = RuntimeImage::openwhisk(Language::JavaScript);
        let libs = image.register_files(&mut sys);
        let a = Instance::launch(&mut sys, &image, &libs, 256 << 20, 0.14).unwrap();
        let b = Instance::launch(&mut sys, &image, &libs, 256 << 20, 0.14).unwrap();
        // With two mappers the library pages leave USS.
        assert!(a.uss(&sys) < image.native_bytes + image.lib_bytes());
        // But a Lambda-style pair (separate registrations) keeps them.
        let image_l = RuntimeImage::lambda(Language::JavaScript);
        let la_files = image_l.register_files(&mut sys);
        let la = Instance::launch(&mut sys, &image_l, &la_files, 256 << 20, 0.14).unwrap();
        let lb_files = image_l.register_files(&mut sys);
        let lb = Instance::launch(&mut sys, &image_l, &lb_files, 256 << 20, 0.14).unwrap();
        assert!(la.uss(&sys) >= image_l.native_bytes + image_l.lib_bytes());
        assert!(lb.uss(&sys) >= image_l.native_bytes + image_l.lib_bytes());
        let _ = b;
    }

    #[test]
    fn ideal_uss_subtracts_heap_waste() {
        let (mut sys, mut inst) = launch(Language::Java);
        let exec = ExecProfile::default();
        for i in 0..5 {
            inst.invoke(&mut sys, SimTime(i), &exec, |ctx| {
                // 2 MiB of garbage, 64 KiB retained.
                for _ in 0..32 {
                    let t = ctx.alloc(64 << 10);
                    ctx.handle(t);
                }
                let keep = ctx.alloc(64 << 10);
                ctx.global(keep);
            })
            .unwrap();
        }
        // Run a collection so last_live_bytes is meaningful.
        inst.eager_gc(&mut sys).unwrap();
        let ideal = inst.ideal_uss(&sys);
        let uss = inst.uss(&sys);
        assert!(ideal < uss, "ideal {ideal} not below uss {uss}");
        // Ideal still contains the native + library footprint.
        let image = RuntimeImage::openwhisk(Language::Java);
        assert!(ideal >= image.native_bytes);
    }

    #[test]
    fn swap_out_all_clears_residency() {
        let (mut sys, mut inst) = launch(Language::Java);
        let exec = ExecProfile::default();
        inst.invoke(&mut sys, SimTime(0), &exec, |ctx| {
            let a = ctx.alloc(1 << 20);
            ctx.global(a);
        })
        .unwrap();
        let swapped = inst.swap_out_all(&mut sys).unwrap();
        assert!(swapped > 0);
        assert_eq!(inst.rss(&sys), 0);
        // The next invocation swaps the working set back in and is
        // expensive.
        let r = inst
            .invoke(&mut sys, SimTime(1), &exec, |ctx| {
                let b = ctx.alloc(1 << 20);
                ctx.handle(b);
            })
            .unwrap();
        assert!(r.heap_overhead > SimDuration::ZERO);
    }

    #[test]
    fn kill_frees_the_process() {
        let (mut sys, inst) = launch(Language::Java);
        assert_eq!(sys.process_count(), 1);
        inst.kill(&mut sys);
        assert_eq!(sys.process_count(), 0);
    }
}
