//! # faas-runtime — managed-runtime instances for the FaaS platform
//!
//! This crate glues the two heap models (`hotspot`, `v8heap`) into
//! complete *runtime instances*, the unit the FaaS platform launches,
//! freezes, thaws, and (with Desiccant) reclaims:
//!
//! * [`RuntimeImage`] — what a language runtime costs before the first
//!   object is allocated: shared libraries (`libjvm.so`, the `node`
//!   binary), private native memory (metaspace, code cache, malloc
//!   arenas), and startup time. Images come in OpenWhisk flavour
//!   (libraries shared between same-language instances through the page
//!   cache) and Lambda flavour (no sharing — §5.4).
//! * [`RuntimeHeap`] — a uniform façade over [`hotspot::HotSpotHeap`]
//!   and [`v8heap::V8Heap`]: allocation, eager GC (what the paper's
//!   *eager* baseline calls at every function exit), and the Desiccant
//!   `reclaim` interface.
//! * [`Instance`] — one managed process: heap + native memory + mapped
//!   libraries + JIT state. Provides [`Instance::invoke`], which runs a
//!   workload kernel inside a handle scope and converts kernel compute,
//!   GC pauses, page-fault refills, JIT warm-up, and deoptimization
//!   debt into a wall-clock invocation latency at the instance's CPU
//!   share.
//! * [`ReclaimReport`] — the §4.4 profile an instance sends back after
//!   a reclamation (live bytes + released bytes + wall time), which the
//!   platform extends with CPU time for Desiccant's estimator.
//!
//! # Examples
//!
//! ```
//! use faas_runtime::{ExecProfile, Instance, Language, RuntimeImage};
//! use simos::{SimTime, System};
//!
//! let mut sys = System::new();
//! let image = RuntimeImage::openwhisk(Language::Java);
//! let libs = image.register_files(&mut sys);
//! let mut inst =
//!     Instance::launch(&mut sys, &image, &libs, 256 << 20, 0.14).unwrap();
//!
//! let report = inst
//!     .invoke(&mut sys, SimTime::ZERO, &ExecProfile::default(), |ctx| {
//!         let a = ctx.alloc(1 << 20);
//!         ctx.handle(a);
//!         ctx.work(simos::SimDuration::from_millis(5));
//!     })
//!     .unwrap();
//! assert!(report.wall_time > simos::SimDuration::from_millis(5));
//! ```

#![forbid(unsafe_code)]

pub mod heap;
pub mod image;
pub mod instance;
pub mod invocation;

pub use heap::{ReclaimReport, RuntimeHeap, RuntimeHeapError};
pub use image::{Language, RuntimeImage, SharedLibs};
pub use instance::{ExecProfile, Instance, InvocationReport};
pub use invocation::InvocationCtx;
