//! Golden-replay regression: with no fault plan installed, the
//! simulation's behaviour must be *identical* to the pre-fault-subsystem
//! platform. The digest below was captured before the fault machinery
//! existed; every enumerated replay outcome and post-drain platform
//! quantity feeds it, so any behavioural drift — an extra RNG draw, a
//! changed event order, a different charge — changes the value.

use bench::golden::standard_digest;

/// Captured from the pre-fault-injection platform (PR 1 head). Do not
/// update this constant casually: a change means fault-off behaviour
/// drifted, which the fault subsystem explicitly promises not to do.
const GOLDEN: u64 = 0x2f61_fd99_85dd_fe2e;

#[test]
fn fault_off_replay_is_byte_identical() {
    assert_eq!(
        standard_digest(),
        GOLDEN,
        "fault-free replay diverged from the golden digest: the fault \
         machinery is no longer inert when disabled"
    );
}
