//! Criterion micro-benchmarks for the simulated OS layer: page-state
//! operations and the metric computations Desiccant's sweeps rely on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use desiccant::ProfileStore;
use faas::{InstanceId, ReclaimProfile};
use simos::mem::{MappingKind, Prot, PAGE_SIZE};
use simos::{SimDuration, System};

fn world(npages: u64) -> (System, simos::Pid, simos::VirtAddr) {
    let mut sys = System::new();
    let pid = sys.spawn_process();
    let a = sys
        .mmap(pid, npages * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite)
        .unwrap();
    sys.touch(pid, a, npages * PAGE_SIZE, true).unwrap();
    (sys, pid, a)
}

fn bench_touch_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("touch_release_cycle");
    for npages in [256u64, 4096, 65536] {
        group.bench_with_input(BenchmarkId::from_parameter(npages), &npages, |b, &n| {
            let (mut sys, pid, a) = world(n);
            b.iter(|| {
                sys.release(pid, a, n * PAGE_SIZE).unwrap();
                sys.touch(pid, a, n * PAGE_SIZE, true).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_uss(c: &mut Criterion) {
    let mut group = c.benchmark_group("uss_computation");
    for npages in [4096u64, 65536] {
        group.bench_with_input(BenchmarkId::from_parameter(npages), &npages, |b, &n| {
            let (sys, pid, _) = world(n);
            b.iter(|| sys.uss(pid));
        });
    }
    group.finish();
}

fn bench_pmap_whole_mapping(c: &mut Criterion) {
    // The sweep-path probe: must be O(1) via the resident counter.
    let (sys, pid, a) = world(65536);
    c.bench_function("pmap_whole_mapping_256MiB", |b| {
        b.iter(|| sys.pmap(pid, a, 65536 * PAGE_SIZE).unwrap());
    });
}

fn bench_selection(c: &mut Criterion) {
    // Desiccant's estimator over a populated store.
    let mut store = ProfileStore::new();
    for i in 0..200u64 {
        store.record(
            InstanceId(i),
            &format!("fn-{}", i % 20),
            &ReclaimProfile {
                live_bytes: (i % 7) << 20,
                released_bytes: 32 << 20,
                cpu_time: SimDuration::from_millis(5 + i % 20),
            },
        );
    }
    c.bench_function("throughput_estimation_200_instances", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for i in 0..200u64 {
                total += store
                    .estimate(InstanceId(i), &format!("fn-{}", i % 20), 64 << 20)
                    .throughput;
            }
            total
        });
    });
}

criterion_group!(
    benches,
    bench_touch_release,
    bench_uss,
    bench_pmap_whole_mapping,
    bench_selection
);
criterion_main!(benches);
