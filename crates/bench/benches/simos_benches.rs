//! Criterion micro-benchmarks for the simulated OS layer: page-state
//! operations and the metric computations Desiccant's sweeps rely on.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use desiccant::ProfileStore;
use faas::{InstanceId, ReclaimProfile};
use simos::mem::pagebits::PageBits;
use simos::mem::reference::NaivePages;
use simos::mem::{page_flags, MappingKind, Prot, PAGE_SIZE};
use simos::{SimDuration, System};

/// Mapping sizes for the bitmap-vs-naive range benches: 4 KiB (one
/// page) up to 1 GiB (256 Ki pages).
const RANGE_SIZES: [(u64, &str); 5] = [
    (4 << 10, "4KiB"),
    (256 << 10, "256KiB"),
    (16 << 20, "16MiB"),
    (256 << 20, "256MiB"),
    (1 << 30, "1GiB"),
];

fn world(npages: u64) -> (System, simos::Pid, simos::VirtAddr) {
    let mut sys = System::new();
    let pid = sys.spawn_process();
    let a = sys
        .mmap(pid, npages * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite)
        .unwrap();
    sys.touch(pid, a, npages * PAGE_SIZE, true).unwrap();
    (sys, pid, a)
}

fn bench_touch_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("touch_release_cycle");
    for npages in [256u64, 4096, 65536] {
        group.bench_with_input(BenchmarkId::from_parameter(npages), &npages, |b, &n| {
            let (mut sys, pid, a) = world(n);
            b.iter(|| {
                sys.release(pid, a, n * PAGE_SIZE).unwrap();
                sys.touch(pid, a, n * PAGE_SIZE, true).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_uss(c: &mut Criterion) {
    let mut group = c.benchmark_group("uss_computation");
    for npages in [4096u64, 65536] {
        group.bench_with_input(BenchmarkId::from_parameter(npages), &npages, |b, &n| {
            let (sys, pid, _) = world(n);
            b.iter(|| sys.uss(pid));
        });
    }
    group.finish();
}

fn bench_pmap_whole_mapping(c: &mut Criterion) {
    // The sweep-path probe: must be O(1) via the resident counter.
    let (sys, pid, a) = world(65536);
    c.bench_function("pmap_whole_mapping_256MiB", |b| {
        b.iter(|| sys.pmap(pid, a, 65536 * PAGE_SIZE).unwrap());
    });
}

fn bench_selection(c: &mut Criterion) {
    // Desiccant's estimator over a populated store.
    let mut store = ProfileStore::new();
    for i in 0..200u64 {
        store.record(
            InstanceId(i),
            &format!("fn-{}", i % 20),
            &ReclaimProfile {
                live_bytes: (i % 7) << 20,
                released_bytes: 32 << 20,
                cpu_time: SimDuration::from_millis(5 + i % 20),
            },
        );
    }
    c.bench_function("throughput_estimation_200_instances", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for i in 0..200u64 {
                total += store
                    .estimate(InstanceId(i), &format!("fn-{}", i % 20), 64 << 20)
                    .throughput;
            }
            total
        });
    });
}

fn bench_range_count(c: &mut Criterion) {
    // The smaps/pmap aggregation primitive: count resident pages in a
    // range. Packed-u64 popcounts vs. the retained byte-per-page
    // reference model.
    let mut group = c.benchmark_group("range_count");
    for (bytes, label) in RANGE_SIZES {
        let npages = (bytes / PAGE_SIZE) as usize;
        group.bench_with_input(BenchmarkId::new("bitmap", label), &npages, |b, &n| {
            let bits = PageBits::new_filled(n);
            b.iter(|| black_box(&bits).count_range(0, n));
        });
        group.bench_with_input(BenchmarkId::new("naive", label), &npages, |b, &n| {
            let pages = NaivePages::new_with(n, page_flags::RESIDENT);
            b.iter(|| black_box(&pages).count_flag_range(page_flags::RESIDENT, 0, n));
        });
    }
    group.finish();
}

fn bench_range_release(c: &mut Criterion) {
    // The reclamation primitive: clear a flag over a whole range (what
    // `madvise(DONTNEED)` does to the resident set). Setup rebuilds the
    // filled state outside the timed region.
    let mut group = c.benchmark_group("range_release");
    for (bytes, label) in RANGE_SIZES {
        let npages = (bytes / PAGE_SIZE) as usize;
        group.bench_with_input(BenchmarkId::new("bitmap", label), &npages, |b, &n| {
            b.iter_batched(
                || PageBits::new_filled(n),
                |mut bits| bits.clear_range(0, n),
                BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("naive", label), &npages, |b, &n| {
            b.iter_batched(
                || NaivePages::new_with(n, page_flags::RESIDENT),
                |mut pages| pages.clear_flag_range(page_flags::RESIDENT, 0, n),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_touch_release,
    bench_uss,
    bench_pmap_whole_mapping,
    bench_selection,
    bench_range_count,
    bench_range_release
);
criterion_main!(benches);
