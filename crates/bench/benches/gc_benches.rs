//! Criterion micro-benchmarks for the collector models: cost scaling
//! of young/full collections and of the Desiccant reclaim path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gc_core::object::ObjectKind;
use hotspot::{HotSpotConfig, HotSpotHeap};
use simos::System;
use v8heap::{V8Config, V8Heap};

/// Builds a HotSpot heap holding `live` retained objects of 32 KiB and
/// an equal amount of garbage.
fn hotspot_world(live: usize) -> (System, HotSpotHeap) {
    let mut sys = System::new();
    let pid = sys.spawn_process();
    let mut heap = HotSpotHeap::new(&mut sys, pid, HotSpotConfig::for_budget(256 << 20)).unwrap();
    for _ in 0..live {
        let id = heap.alloc(&mut sys, 32 << 10, ObjectKind::Data).unwrap();
        heap.graph_mut().add_global(id);
    }
    for _ in 0..live {
        heap.alloc(&mut sys, 32 << 10, ObjectKind::Data).unwrap();
    }
    (sys, heap)
}

fn v8_world(live: usize) -> (System, V8Heap) {
    let mut sys = System::new();
    let pid = sys.spawn_process();
    let mut heap = V8Heap::new(&mut sys, pid, V8Config::for_budget(256 << 20)).unwrap();
    for _ in 0..live {
        let id = heap.alloc(&mut sys, 32 << 10, ObjectKind::Data).unwrap();
        heap.graph_mut().add_global(id);
    }
    for _ in 0..live {
        heap.alloc(&mut sys, 32 << 10, ObjectKind::Data).unwrap();
    }
    (sys, heap)
}

fn bench_hotspot_full_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotspot_full_gc");
    for live in [100usize, 1000, 4000] {
        group.bench_with_input(BenchmarkId::from_parameter(live), &live, |b, &live| {
            b.iter_batched(
                || hotspot_world(live),
                |(mut sys, mut heap)| heap.full_gc(&mut sys, true).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_hotspot_reclaim(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotspot_reclaim");
    for live in [100usize, 1000, 4000] {
        group.bench_with_input(BenchmarkId::from_parameter(live), &live, |b, &live| {
            b.iter_batched(
                || hotspot_world(live),
                |(mut sys, mut heap)| heap.reclaim(&mut sys).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_v8_major_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("v8_major_gc");
    for live in [100usize, 1000, 4000] {
        group.bench_with_input(BenchmarkId::from_parameter(live), &live, |b, &live| {
            b.iter_batched(
                || v8_world(live),
                |(mut sys, mut heap)| heap.major_gc(&mut sys, true).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_v8_reclaim(c: &mut Criterion) {
    let mut group = c.benchmark_group("v8_reclaim");
    for live in [100usize, 1000, 4000] {
        group.bench_with_input(BenchmarkId::from_parameter(live), &live, |b, &live| {
            b.iter_batched(
                || v8_world(live),
                |(mut sys, mut heap)| heap.reclaim(&mut sys, true).unwrap(),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_allocation(c: &mut Criterion) {
    c.bench_function("hotspot_alloc_32k", |b| {
        b.iter_batched(
            || hotspot_world(0),
            |(mut sys, mut heap)| {
                for _ in 0..100 {
                    heap.alloc(&mut sys, 32 << 10, ObjectKind::Data).unwrap();
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
    c.bench_function("v8_alloc_32k", |b| {
        b.iter_batched(
            || v8_world(0),
            |(mut sys, mut heap)| {
                for _ in 0..100 {
                    heap.alloc(&mut sys, 32 << 10, ObjectKind::Data).unwrap();
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    benches,
    bench_hotspot_full_gc,
    bench_hotspot_reclaim,
    bench_v8_major_gc,
    bench_v8_reclaim,
    bench_allocation
);
criterion_main!(benches);
