//! Criterion micro-benchmarks for the platform simulator and trace
//! generator: how much simulated work the harness can push per second
//! of host time.

use azure_trace::{build_trace, generate_arrivals, replay, ReplayConfig};
use bench::{run_studies_parallel, Mode, StudyConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use desiccant::{Desiccant, DesiccantConfig};
use faas::platform::{GcMode, Platform};
use faas::queue::{CalendarQueue, ReferenceQueue};
use faas::PlatformConfig;
use simos::{SimDuration, SimTime};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Event-sized payload (32 B), so the hold model pays the same
/// per-item move costs the real event loop does.
type Payload = [u64; 4];

fn bench_event_queue(c: &mut Criterion) {
    // The hold model at steady state: pop the minimum, push a
    // successor a bounded random offset later, on a queue prefilled
    // near the stationary distribution and warmed for 2n untimed ops.
    // This is the microbench the BENCH_eventloop.json trajectory
    // tracks (the `perf` binary runs the same model standalone).
    const N: usize = 1 << 16;
    const OPS: u64 = 100_000;

    fn warmed<Q, F, P>(from_sorted: F, mut push: P) -> (Q, u64, u64)
    where
        F: FnOnce(Vec<(SimTime, u64, Payload)>) -> Q,
        P: FnMut(&mut Q, SimTime, u64),
        Q: HoldPop,
    {
        let mut seed = 0x5eed_u64;
        let mut prefill: Vec<(SimTime, u64, Payload)> = (1..=N as u64)
            .map(|seq| (SimTime(splitmix(&mut seed) % 2_000_000), seq, [seq; 4]))
            .collect();
        prefill.sort_by_key(|&(at, s, _)| (at, s));
        let mut q = from_sorted(prefill);
        let mut seq = N as u64;
        let mut rng = 0xfeed_u64;
        for _ in 0..2 * N {
            let (at, _) = q.pop_key().expect("held non-empty");
            seq += 1;
            push(&mut q, SimTime(at.0 + splitmix(&mut rng) % 2_000_000), seq);
        }
        (q, seq, rng)
    }

    trait HoldPop {
        fn pop_key(&mut self) -> Option<(SimTime, u64)>;
    }
    impl HoldPop for CalendarQueue<Payload> {
        fn pop_key(&mut self) -> Option<(SimTime, u64)> {
            self.pop().map(|(at, s, _)| (at, s))
        }
    }
    impl HoldPop for ReferenceQueue<Payload> {
        fn pop_key(&mut self) -> Option<(SimTime, u64)> {
            self.pop().map(|(at, s, _)| (at, s))
        }
    }

    let mut group = c.benchmark_group("event_queue_hold");
    group.bench_function("calendar", |b| {
        let (mut q, mut seq, mut rng) = warmed(
            |p| CalendarQueue::from_sorted(p).expect("sorted"),
            |q, at, s| q.push(at, s, [s; 4]),
        );
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..OPS {
                let (at, s) = q.pop_key().expect("held non-empty");
                acc = acc.wrapping_add(at.0 ^ s);
                seq += 1;
                q.push(SimTime(at.0 + splitmix(&mut rng) % 2_000_000), seq, [seq; 4]);
            }
            acc
        });
    });
    group.bench_function("reference", |b| {
        let (mut q, mut seq, mut rng) = warmed(
            |p| ReferenceQueue::from_sorted(p).expect("sorted"),
            |q, at, s| q.push(at, s, [s; 4]),
        );
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..OPS {
                let (at, s) = q.pop_key().expect("held non-empty");
                acc = acc.wrapping_add(at.0 ^ s);
                seq += 1;
                q.push(SimTime(at.0 + splitmix(&mut rng) % 2_000_000), seq, [seq; 4]);
            }
            acc
        });
    });
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let catalog = workloads::catalog();
    let trace = build_trace(&catalog, 1);
    let mut group = c.benchmark_group("trace_generation");
    for scale in [5.0f64, 30.0] {
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &scale| {
            b.iter(|| {
                generate_arrivals(
                    &trace,
                    scale,
                    SimTime::ZERO,
                    SimTime::ZERO + SimDuration::from_secs(180),
                    7,
                )
            });
        });
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_30s_sf15");
    group.sample_size(10);
    for mode in ["vanilla", "desiccant"] {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, &mode| {
            b.iter(|| {
                let catalog = workloads::catalog();
                let trace = build_trace(&catalog, 11);
                let manager: Option<Box<dyn faas::MemoryManager>> = if mode == "desiccant" {
                    Some(Box::new(Desiccant::new(DesiccantConfig::default())))
                } else {
                    None
                };
                let mut p =
                    Platform::new(PlatformConfig::default(), catalog, GcMode::Vanilla, manager);
                replay(
                    &mut p,
                    &trace,
                    &ReplayConfig {
                        scale: 15.0,
                        warmup: SimDuration::from_secs(5),
                        duration: SimDuration::from_secs(30),
                        drain: SimDuration::from_secs(5),
                        ..ReplayConfig::default()
                    },
                )
            });
        });
    }
    group.finish();
}

fn bench_cold_boot(c: &mut Criterion) {
    c.bench_function("platform_cold_boot_and_invoke", |b| {
        b.iter(|| {
            let catalog = workloads::catalog();
            let mut p = Platform::new(PlatformConfig::default(), catalog, GcMode::Vanilla, None);
            let f = p.function_index("file-hash").expect("catalog function");
            p.submit(SimTime::ZERO, f);
            p.run_until(SimTime(10_000_000_000));
            assert_eq!(p.stats().completed, 1);
        });
    });
}

fn bench_study_matrix_parallel(c: &mut Criterion) {
    // Study throughput through the worker pool: the fig-7-shaped
    // (function × mode) matrix at one worker vs. all cores. On a
    // multi-core host the parallel case should approach a
    // cores-times speedup; results are identical either way.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cfg = StudyConfig {
        iterations: 10,
        ..StudyConfig::default()
    };
    let specs = workloads::catalog();
    let modes = [Mode::Vanilla, Mode::Desiccant];
    let mut group = c.benchmark_group("study_matrix");
    group.sample_size(10);
    for (jobs, label) in [(1usize, "serial"), (cores, "parallel")] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &jobs, |b, &jobs| {
            b.iter(|| run_studies_parallel(&specs, &modes, &cfg, jobs));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_trace_generation,
    bench_replay,
    bench_cold_boot,
    bench_study_matrix_parallel
);
criterion_main!(benches);
