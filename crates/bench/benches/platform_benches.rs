//! Criterion micro-benchmarks for the platform simulator and trace
//! generator: how much simulated work the harness can push per second
//! of host time.

use azure_trace::{build_trace, generate_arrivals, replay, ReplayConfig};
use bench::{run_studies_parallel, Mode, StudyConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use desiccant::{Desiccant, DesiccantConfig};
use faas::platform::{GcMode, Platform};
use faas::PlatformConfig;
use simos::{SimDuration, SimTime};

fn bench_trace_generation(c: &mut Criterion) {
    let catalog = workloads::catalog();
    let trace = build_trace(&catalog, 1);
    let mut group = c.benchmark_group("trace_generation");
    for scale in [5.0f64, 30.0] {
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &scale| {
            b.iter(|| {
                generate_arrivals(
                    &trace,
                    scale,
                    SimTime::ZERO,
                    SimTime::ZERO + SimDuration::from_secs(180),
                    7,
                )
            });
        });
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_30s_sf15");
    group.sample_size(10);
    for mode in ["vanilla", "desiccant"] {
        group.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |b, &mode| {
            b.iter(|| {
                let catalog = workloads::catalog();
                let trace = build_trace(&catalog, 11);
                let manager: Option<Box<dyn faas::MemoryManager>> = if mode == "desiccant" {
                    Some(Box::new(Desiccant::new(DesiccantConfig::default())))
                } else {
                    None
                };
                let mut p =
                    Platform::new(PlatformConfig::default(), catalog, GcMode::Vanilla, manager);
                replay(
                    &mut p,
                    &trace,
                    &ReplayConfig {
                        scale: 15.0,
                        warmup: SimDuration::from_secs(5),
                        duration: SimDuration::from_secs(30),
                        drain: SimDuration::from_secs(5),
                        ..ReplayConfig::default()
                    },
                )
            });
        });
    }
    group.finish();
}

fn bench_cold_boot(c: &mut Criterion) {
    c.bench_function("platform_cold_boot_and_invoke", |b| {
        b.iter(|| {
            let catalog = workloads::catalog();
            let mut p = Platform::new(PlatformConfig::default(), catalog, GcMode::Vanilla, None);
            let f = p.function_index("file-hash").expect("catalog function");
            p.submit(SimTime::ZERO, f);
            p.run_until(SimTime(10_000_000_000));
            assert_eq!(p.stats().completed, 1);
        });
    });
}

fn bench_study_matrix_parallel(c: &mut Criterion) {
    // Study throughput through the worker pool: the fig-7-shaped
    // (function × mode) matrix at one worker vs. all cores. On a
    // multi-core host the parallel case should approach a
    // cores-times speedup; results are identical either way.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cfg = StudyConfig {
        iterations: 10,
        ..StudyConfig::default()
    };
    let specs = workloads::catalog();
    let modes = [Mode::Vanilla, Mode::Desiccant];
    let mut group = c.benchmark_group("study_matrix");
    group.sample_size(10);
    for (jobs, label) in [(1usize, "serial"), (cores, "parallel")] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &jobs, |b, &jobs| {
            b.iter(|| run_studies_parallel(&specs, &modes, &cfg, jobs));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_replay,
    bench_cold_boot,
    bench_study_matrix_parallel
);
criterion_main!(benches);
