//! CSV-style report output, in the spirit of the artifact's `parse.sh`
//! scripts (caption row + data rows on stdout).

/// Prints the caption row of a figure's CSV output.
pub fn caption(figure: &str, columns: &[&str]) {
    println!("# {figure}");
    println!("{}", columns.join(","));
}

/// Formats a byte count as mebibytes with two decimals.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1 << 20) as f64)
}

/// Formats a ratio with two decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Prints one CSV data row.
pub fn row(fields: &[String]) {
    println!("{}", fields.join(","));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_is_stable() {
        assert_eq!(mib(1 << 20), "1.00");
        assert_eq!(mib(3 << 19), "1.50");
        assert_eq!(ratio(1.25), "1.25");
        assert_eq!(ratio(4.5), "4.50");
    }
}
