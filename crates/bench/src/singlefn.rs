//! The single-function study: the measurement protocol behind
//! Figures 1, 2, 4, 7, 11, 12, and 13.
//!
//! Protocol (§3.1, §5.2): execute a function 100 times in the same
//! instance(s) — chains use one instance per stage, and their memory is
//! accumulated — and record USS at every freeze point. The *ideal*
//! baseline keeps only useful memory (live objects plus the runtime's
//! own footprint) and is measured at the same points. On OpenWhisk a
//! spare same-language instance keeps the runtime libraries shared so
//! USS excludes them, as in the paper; the Lambda flavour (§5.4) shares
//! nothing.

use faas_runtime::{Instance, RuntimeImage};
use simos::{SimDuration, SimTime, System};
use workloads::{FunctionSpec, FunctionState};

/// Memory-management mode under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Freeze without any GC (stock platform behaviour).
    Vanilla,
    /// Stock GC interface at every function exit (§3.2).
    Eager,
    /// Desiccant's reclaim, applied when memory becomes scarce (after
    /// the iterations in this protocol, as in §5.2).
    Desiccant,
    /// OS swapping instead of reclamation (§5.6 comparison).
    Swap,
}

/// Study parameters.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Instance memory budget (256 MiB default).
    pub budget: u64,
    /// Invocations per instance (100 in the paper).
    pub iterations: u32,
    /// Lambda flavour: private libraries, larger image (§5.4).
    pub lambda_env: bool,
    /// Apply the §4.6 unmap optimization during Desiccant reclaim.
    pub unmap_libs: bool,
    /// §4.7 weak-preserving reclamation.
    pub keep_weak: bool,
    /// Instance CPU share.
    pub cpu_share: f64,
    /// Idle gap between invocations.
    pub gap: SimDuration,
    /// Workload seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> StudyConfig {
        StudyConfig {
            budget: 256 << 20,
            iterations: 100,
            lambda_env: false,
            unmap_libs: false,
            keep_weak: true,
            cpu_share: 0.14,
            gap: SimDuration::from_millis(100),
            seed: 7,
        }
    }
}

/// Results of one study run.
#[derive(Debug, Clone)]
pub struct StudyOutcome {
    /// USS at each freeze point (chains: summed over stage instances),
    /// after the mode's exit-time action.
    pub uss: Vec<u64>,
    /// Ideal memory at the same points.
    pub ideal: Vec<u64>,
    /// Committed heap bytes at the same points (summed over stages).
    pub heap_committed: Vec<u64>,
    /// Per-request wall latency (all stages).
    pub latency: Vec<SimDuration>,
    /// USS after the end-of-run reclamation (Desiccant/Swap modes;
    /// equals the last series point otherwise).
    pub final_uss: u64,
    /// RSS counterpart of `final_uss`.
    pub final_rss: u64,
    /// PSS counterpart of `final_uss`.
    pub final_pss: f64,
    /// Ideal memory at the end of the run.
    pub final_ideal: u64,
    /// Live bytes reported by the last collection (0 if none ran).
    pub final_live: u64,
    /// Kernel checksum (pins determinism in tests).
    pub checksum: u64,
}

impl StudyOutcome {
    /// `avg_ratio` of Figure 1: mean over iterations of `uss / ideal`.
    pub fn avg_ratio(&self) -> f64 {
        let n = self.uss.len().min(self.ideal.len());
        if n == 0 {
            return 0.0;
        }
        let s: f64 = self
            .uss
            .iter()
            .zip(&self.ideal)
            .map(|(u, i)| *u as f64 / (*i).max(1) as f64)
            .sum();
        s / n as f64
    }

    /// `max_ratio` of Figure 1.
    pub fn max_ratio(&self) -> f64 {
        self.uss
            .iter()
            .zip(&self.ideal)
            .map(|(u, i)| *u as f64 / (*i).max(1) as f64)
            .fold(0.0, f64::max)
    }

    /// Mean latency over the last `n` invocations.
    pub fn mean_latency_last(&self, n: usize) -> SimDuration {
        let tail: Vec<_> = self.latency.iter().rev().take(n).collect();
        if tail.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u64 = tail.iter().map(|d| d.as_nanos()).sum();
        SimDuration::from_nanos(sum / tail.len() as u64)
    }
}

/// One instance per chain stage plus its workload state.
struct Stage {
    inst: Instance,
    state: FunctionState,
}

/// The study world: the instances under test plus a library-sharing
/// spare.
struct World {
    sys: System,
    stages: Vec<Stage>,
    _spare: Option<Instance>,
    now: SimTime,
}

/// Runs the full study for `spec` under `mode`.
pub fn run_study(spec: &FunctionSpec, mode: Mode, cfg: &StudyConfig) -> StudyOutcome {
    // Build the world with a single shared library registration on
    // OpenWhisk (a spare instance keeps the libraries shared, so they
    // leave USS as in the paper's measurement); Lambda shares nothing.
    let mut sys = System::new();
    let image = if cfg.lambda_env {
        RuntimeImage::lambda(spec.language)
    } else {
        RuntimeImage::openwhisk(spec.language)
    };
    let shared = if cfg.lambda_env {
        None
    } else {
        Some(image.register_files(&mut sys))
    };
    let spare = shared.as_ref().map(|libs| {
        Instance::launch(&mut sys, &image, libs, cfg.budget, cfg.cpu_share).expect("spare fits")
    });
    let stages: Vec<Stage> = (0..spec.chain_len)
        .map(|stage| {
            let libs = match &shared {
                Some(libs) => libs.clone(),
                None => image.register_files(&mut sys),
            };
            let inst = Instance::launch(&mut sys, &image, &libs, cfg.budget, cfg.cpu_share)
                .expect("instance budget accommodates the runtime image");
            Stage {
                inst,
                state: FunctionState::new(stage, cfg.seed),
            }
        })
        .collect();
    let mut world = World {
        sys,
        stages,
        _spare: spare,
        now: SimTime::ZERO,
    };

    let mut uss_series = Vec::with_capacity(cfg.iterations as usize);
    let mut ideal_series = Vec::with_capacity(cfg.iterations as usize);
    let mut committed_series = Vec::with_capacity(cfg.iterations as usize);
    let mut latency_series = Vec::with_capacity(cfg.iterations as usize);

    for _ in 0..cfg.iterations {
        let mut request_wall = SimDuration::ZERO;
        for s in 0..world.stages.len() {
            let stage = &mut world.stages[s];
            let report = stage
                .inst
                .invoke(&mut world.sys, world.now, &spec.exec, |ctx| {
                    stage.state.invoke(spec, ctx);
                })
                .expect("calibrated workload fits its instance");
            request_wall += report.wall_time;
            world.now += report.wall_time;
            // Exit-time action.
            if mode == Mode::Eager {
                let g = stage
                    .inst
                    .eager_gc(&mut world.sys)
                    .expect("eager GC cannot fail");
                world.now += g;
            }
            // The transfer acknowledgment lands after the exit-time GC
            // (§5.2, mapreduce).
            stage
                .state
                .complete_transfer(stage.inst.heap_mut().graph_mut());
        }
        latency_series.push(request_wall);
        // Freeze point: measure.
        uss_series.push(world.stages.iter().map(|s| s.inst.uss(&world.sys)).sum());
        ideal_series.push(
            world
                .stages
                .iter()
                .map(|s| ideal_of(&world.sys, &s.inst))
                .sum(),
        );
        committed_series.push(
            world
                .stages
                .iter()
                .map(|s| s.inst.heap().committed())
                .sum(),
        );
        world.now += cfg.gap;
    }

    // End-of-run action for the reclaiming modes (§5.2 assumes memory
    // has become scarce once the instance is frozen).
    let mut final_live = 0;
    match mode {
        Mode::Desiccant => {
            for stage in &mut world.stages {
                let report = stage
                    .inst
                    .reclaim(&mut world.sys, world.now, cfg.keep_weak)
                    .expect("reclaim cannot fail");
                final_live += report.live_bytes;
                if cfg.unmap_libs {
                    stage
                        .inst
                        .unmap_private_libs(&mut world.sys)
                        .expect("unmap cannot fail");
                }
            }
        }
        Mode::Swap => {
            for stage in &mut world.stages {
                stage
                    .inst
                    .swap_out_all(&mut world.sys)
                    .expect("swap cannot fail");
            }
        }
        Mode::Vanilla | Mode::Eager => {
            final_live = world
                .stages
                .iter()
                .map(|s| s.inst.heap().last_live_bytes())
                .sum();
        }
    }

    let final_uss = world.stages.iter().map(|s| s.inst.uss(&world.sys)).sum();
    let final_rss = world.stages.iter().map(|s| s.inst.rss(&world.sys)).sum();
    let final_pss = world.stages.iter().map(|s| s.inst.pss(&world.sys)).sum();
    let final_ideal = world
        .stages
        .iter()
        .map(|s| ideal_of(&world.sys, &s.inst))
        .sum();
    let checksum = world
        .stages
        .iter()
        .fold(0u64, |acc, s| acc.wrapping_mul(31).wrapping_add(s.state.checksum()));
    StudyOutcome {
        uss: uss_series,
        ideal: ideal_series,
        heap_committed: committed_series,
        latency: latency_series,
        final_uss,
        final_rss,
        final_pss,
        final_ideal,
        final_live,
        checksum,
    }
}

/// The §3.1 ideal: live objects plus the runtime's non-heap footprint.
fn ideal_of(sys: &System, inst: &Instance) -> u64 {
    inst.ideal_uss(sys)
}

/// Outcome of the §5.6 post-reclamation overhead protocol.
#[derive(Debug, Clone, Copy)]
pub struct OverheadOutcome {
    /// Mean wall latency of the last 10 invocations before reclaiming.
    pub before: SimDuration,
    /// Mean wall latency of the 10 invocations after reclaiming.
    pub after: SimDuration,
}

impl OverheadOutcome {
    /// `after / before`.
    pub fn overhead(&self) -> f64 {
        self.after.as_nanos() as f64 / self.before.as_nanos().max(1) as f64
    }
}

/// The §5.6 protocol: 130 warm-up invocations, reclaim (per `mode`),
/// then 10 more, comparing mean latencies — all in one world, so the
/// reclamation acts on the exact state the warm-up produced.
pub fn run_overhead_study(spec: &FunctionSpec, mode: Mode, cfg: &StudyConfig) -> OverheadOutcome {
    let mut sys = System::new();
    let image = if cfg.lambda_env {
        RuntimeImage::lambda(spec.language)
    } else {
        RuntimeImage::openwhisk(spec.language)
    };
    let shared = if cfg.lambda_env {
        None
    } else {
        Some(image.register_files(&mut sys))
    };
    let _spare = shared.as_ref().map(|libs| {
        Instance::launch(&mut sys, &image, libs, cfg.budget, cfg.cpu_share).expect("spare fits")
    });
    let mut stages: Vec<Stage> = (0..spec.chain_len)
        .map(|stage| {
            let libs = match &shared {
                Some(libs) => libs.clone(),
                None => image.register_files(&mut sys),
            };
            let inst = Instance::launch(&mut sys, &image, &libs, cfg.budget, cfg.cpu_share)
                .expect("instance fits");
            Stage {
                inst,
                state: FunctionState::new(stage, cfg.seed),
            }
        })
        .collect();
    let mut now = SimTime::ZERO;
    let run_once = |stages: &mut Vec<Stage>, sys: &mut System, now: &mut SimTime| {
        let mut wall = SimDuration::ZERO;
        for stage in stages.iter_mut() {
            let report = stage
                .inst
                .invoke(sys, *now, &spec.exec, |ctx| {
                    stage.state.invoke(spec, ctx);
                })
                .expect("workload fits");
            wall += report.wall_time;
            *now += report.wall_time;
            stage.state.complete_transfer(stage.inst.heap_mut().graph_mut());
        }
        *now += cfg.gap;
        wall
    };
    let mut pre = Vec::new();
    for _ in 0..130 {
        pre.push(run_once(&mut stages, &mut sys, &mut now));
    }
    let tail: Vec<u64> = pre.iter().rev().take(10).map(|d| d.as_nanos()).collect();
    let before = SimDuration::from_nanos(tail.iter().sum::<u64>() / tail.len() as u64);
    match mode {
        Mode::Desiccant => {
            for stage in &mut stages {
                stage
                    .inst
                    .reclaim(&mut sys, now, cfg.keep_weak)
                    .expect("reclaim cannot fail");
                if cfg.unmap_libs {
                    stage.inst.unmap_private_libs(&mut sys).expect("unmap ok");
                }
            }
        }
        Mode::Swap => {
            for stage in &mut stages {
                stage.inst.swap_out_all(&mut sys).expect("swap ok");
            }
        }
        Mode::Vanilla | Mode::Eager => {}
    }
    let mut post = Vec::new();
    for _ in 0..10 {
        post.push(run_once(&mut stages, &mut sys, &mut now));
    }
    let after = SimDuration::from_nanos(
        post.iter().map(|d| d.as_nanos()).sum::<u64>() / post.len() as u64,
    );
    OverheadOutcome { before, after }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::catalog;

    fn quick(iterations: u32) -> StudyConfig {
        StudyConfig {
            iterations,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn study_produces_full_series() {
        let spec = workloads::by_name("file-hash").unwrap();
        let out = run_study(&spec, Mode::Vanilla, &quick(20));
        assert_eq!(out.uss.len(), 20);
        assert_eq!(out.ideal.len(), 20);
        assert!(out.avg_ratio() >= 1.0, "real memory below ideal?");
        assert!(out.max_ratio() >= out.avg_ratio());
    }

    #[test]
    fn desiccant_beats_eager_beats_vanilla_on_final_uss() {
        let spec = workloads::by_name("file-hash").unwrap();
        let cfg = quick(40);
        let vanilla = run_study(&spec, Mode::Vanilla, &cfg);
        let eager = run_study(&spec, Mode::Eager, &cfg);
        let desiccant = run_study(&spec, Mode::Desiccant, &cfg);
        assert!(
            eager.final_uss <= vanilla.final_uss,
            "eager {} vs vanilla {}",
            eager.final_uss,
            vanilla.final_uss
        );
        assert!(
            desiccant.final_uss < eager.final_uss,
            "desiccant {} vs eager {}",
            desiccant.final_uss,
            eager.final_uss
        );
        // Desiccant lands near the ideal.
        assert!(desiccant.final_uss as f64 <= desiccant.final_ideal as f64 * 1.5);
    }

    #[test]
    fn chains_accumulate_stage_memory() {
        let single = workloads::by_name("file-hash").unwrap();
        let chain = workloads::by_name("image-pipeline").unwrap();
        let cfg = quick(10);
        let s = run_study(&single, Mode::Vanilla, &cfg);
        let c = run_study(&chain, Mode::Vanilla, &cfg);
        assert!(c.final_uss > s.final_uss, "4-stage chain uses more memory");
    }

    #[test]
    fn studies_are_deterministic() {
        let spec = workloads::by_name("fft").unwrap();
        let cfg = quick(15);
        let a = run_study(&spec, Mode::Eager, &cfg);
        let b = run_study(&spec, Mode::Eager, &cfg);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.uss, b.uss);
        assert_eq!(a.final_uss, b.final_uss);
    }

    #[test]
    fn swap_clears_residency_like_desiccant_but_worse_latency() {
        let spec = workloads::by_name("sort").unwrap();
        let cfg = quick(30);
        let swap = run_study(&spec, Mode::Swap, &cfg);
        assert!(swap.final_rss < 1 << 20, "swap left residency behind");
        let d = run_overhead_study(&spec, Mode::Desiccant, &cfg);
        let s = run_overhead_study(&spec, Mode::Swap, &cfg);
        assert!(
            s.overhead() > d.overhead(),
            "swap-in should cost more than refault: {} vs {}",
            s.overhead(),
            d.overhead()
        );
    }

    #[test]
    fn every_function_survives_a_short_study() {
        for spec in catalog() {
            let out = run_study(&spec, Mode::Desiccant, &quick(5));
            assert!(out.final_uss > 0, "{}", spec.name);
        }
    }
}
