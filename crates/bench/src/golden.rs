//! Golden-replay digests: a bit-exact fingerprint of the trace-replay
//! pipeline in its fault-free configuration.
//!
//! The fault-injection subsystem guarantees that with faults disabled
//! the platform produces byte-identical results to a build that has no
//! fault machinery at all. That guarantee is enforced by checksum: the
//! digest below folds every observable outcome of a small fig9-style
//! replay matrix (counters, rates, latency percentiles, final cache
//! accounting) into one 64-bit FNV-1a value, and
//! `tests/golden_replay.rs` pins it to the value captured before the
//! fault subsystem landed.

use azure_trace::{build_trace, replay, ReplayConfig};
use desiccant::{Desiccant, DesiccantConfig};
use faas::platform::{GcMode, Platform};
use faas::{MemoryManager, PlatformConfig};
use simos::SimDuration;

/// 64-bit FNV-1a over a byte stream.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a(0xcbf29ce484222325)
    }
}

impl Fnv1a {
    /// Creates the hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a::default()
    }

    /// Folds raw bytes into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    /// Folds a `u64` (little-endian) into the digest.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds an `f64` bit-exactly into the digest.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Runs the standard golden matrix — vanilla, eager, and Desiccant over
/// a short Azure-trace replay — and digests every outcome bit-exactly.
///
/// Any behavioural change to the fault-free simulation pipeline
/// (platform, runtime, heaps, simos, trace generation) changes this
/// value; pure additions (new counters that stay zero, new config
/// fields at their defaults) must not.
pub fn standard_digest() -> u64 {
    let mut h = Fnv1a::new();
    for mode in ["vanilla", "eager", "desiccant"] {
        let catalog = workloads::catalog();
        let trace = build_trace(&catalog, 7);
        let manager: Option<Box<dyn MemoryManager>> = match mode {
            "desiccant" => Some(Box::new(Desiccant::new(DesiccantConfig::default()))),
            _ => None,
        };
        let gc = if mode == "eager" { GcMode::Eager } else { GcMode::Vanilla };
        let mut p = Platform::new(PlatformConfig::default(), catalog, gc, manager);
        let config = ReplayConfig {
            scale: 15.0,
            warmup: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(40),
            drain: SimDuration::from_secs(20),
            ..ReplayConfig::default()
        };
        let out = replay(&mut p, &trace, &config);
        h.write(mode.as_bytes());
        h.write_u64(out.submitted);
        h.write_u64(out.completed);
        h.write_f64(out.cold_boot_rate);
        h.write_f64(out.cold_boot_fraction);
        h.write_f64(out.throughput);
        h.write_f64(out.cpu_utilization);
        h.write_f64(out.reclaim_cpu_fraction);
        h.write_u64(out.evictions);
        h.write_f64(out.latency_ms.0);
        h.write_f64(out.latency_ms.1);
        h.write_f64(out.latency_ms.2);
        h.write_f64(out.latency_ms.3);
        // Post-drain platform state: cache accounting and pool shape.
        h.write_u64(p.cache_used());
        h.write_u64(p.frozen_count() as u64);
        h.write_u64(p.instance_count() as u64);
        h.write_u64(p.stats().cold_boots);
        h.write_u64(p.stats().warm_starts);
        h.write_u64(p.stats().evictions);
        h.write_u64(p.stats().reclamations);
        h.write_u64(p.stats().reclaimed_bytes);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
    }
}
