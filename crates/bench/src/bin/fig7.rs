//! Figure 7: single instance's memory consumption after repetitive
//! executions — vanilla vs. eager vs. Desiccant (with the ideal
//! baseline), per function.
//!
//! Paper magnitudes: Desiccant reduces memory vs. vanilla by
//! 1.21–4.57× for Java (2.78× mean) and 1.51–3.04× for JavaScript
//! (1.93× mean); it beats eager everywhere (1.36× / 1.55× mean); and it
//! lands within 0.1 % (Java) / 6.4 % (JavaScript) of the ideal.
//!
//! Flags: `--quick`, `--check`, `--jobs N` (output is identical at any
//! job count).

#![forbid(unsafe_code)]

use bench::cli::{check, Flags};
use bench::report;
use bench::{run_studies_parallel, Mode, StudyConfig};
use faas_runtime::Language;

fn main() {
    let flags = Flags::parse();
    let cfg = StudyConfig {
        iterations: if flags.quick { 30 } else { 100 },
        ..StudyConfig::default()
    };
    report::caption(
        "Figure 7: memory after repetitive executions (MiB)",
        &["language", "function", "vanilla", "eager", "desiccant", "ideal", "vanilla/desiccant", "eager/desiccant"],
    );
    let mut by_lang: Vec<(Language, f64, f64, f64)> = Vec::new();
    let specs = workloads::catalog();
    let outcomes = run_studies_parallel(
        &specs,
        &[Mode::Vanilla, Mode::Eager, Mode::Desiccant],
        &cfg,
        flags.jobs(),
    );
    for (spec, row) in specs.into_iter().zip(outcomes) {
        let [vanilla, eager, desiccant]: [_; 3] = row.try_into().expect("three modes per spec");
        let vd = vanilla.final_uss as f64 / desiccant.final_uss.max(1) as f64;
        let ed = eager.final_uss as f64 / desiccant.final_uss.max(1) as f64;
        let gap = desiccant.final_uss as f64 / desiccant.final_ideal.max(1) as f64 - 1.0;
        report::row(&[
            spec.language.name().into(),
            spec.name.into(),
            report::mib(vanilla.final_uss),
            report::mib(eager.final_uss),
            report::mib(desiccant.final_uss),
            report::mib(desiccant.final_ideal),
            report::ratio(vd),
            report::ratio(ed),
        ]);
        by_lang.push((spec.language, vd, ed, gap));
        check(
            &flags,
            desiccant.final_uss <= eager.final_uss,
            &format!("{}: desiccant at or below eager", spec.name),
        );
        if spec.name != "mapreduce" {
            check(
                &flags,
                eager.final_uss <= vanilla.final_uss + (vanilla.final_uss / 10),
                &format!("{}: eager at or below vanilla", spec.name),
            );
        }
    }
    for lang in [Language::Java, Language::JavaScript] {
        let rows: Vec<_> = by_lang.iter().filter(|(l, ..)| *l == lang).collect();
        let mean = |f: fn(&(Language, f64, f64, f64)) -> f64| {
            rows.iter().map(|r| f(r)).sum::<f64>() / rows.len() as f64
        };
        let (vd, ed, gap) = (mean(|r| r.1), mean(|r| r.2), mean(|r| r.3));
        let target_vd = if lang == Language::Java { 2.78 } else { 1.93 };
        println!(
            "# {}: mean vanilla/desiccant {:.2} (paper {target_vd}), mean eager/desiccant {:.2}, mean gap to ideal {:.1}%",
            lang.name(),
            vd,
            ed,
            gap * 100.0
        );
        check(
            &flags,
            (vd - target_vd).abs() < 1.2,
            &format!("{} mean reduction near the paper's {target_vd}", lang.name()),
        );
        check(&flags, ed > 1.0, &format!("{}: desiccant beats eager on average", lang.name()));
        check(
            &flags,
            gap < 0.10,
            &format!("{}: desiccant lands within 10% of ideal", lang.name()),
        );
    }
}
