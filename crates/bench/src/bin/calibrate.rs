//! Calibration view: per-function Figure-1/7 numbers side by side.
//!
//! Not a paper figure — a development tool to tune the workload
//! personalities. Prints, per function: vanilla/eager/desiccant/ideal
//! final USS (MiB), avg and max frozen-garbage ratios, and the
//! reductions the paper reports in §5.2.
//!
//! Flags: `--jobs N`.

#![forbid(unsafe_code)]

use bench::cli::Flags;
use bench::{run_studies_parallel, Mode, StudyConfig};

fn main() {
    let flags = Flags::parse();
    let cfg = StudyConfig::default();
    println!(
        "{:<16} {:>4} {:>8} {:>8} {:>8} {:>8} {:>6} {:>6} {:>6} {:>6} {:>8}",
        "function", "lang", "vanilla", "eager", "desic", "ideal", "avg_r", "max_r", "v/d", "e/d", "live_mb"
    );
    let mut java_max_ratios = Vec::new();
    let mut js_max_ratios = Vec::new();
    let mut java_vd = Vec::new();
    let mut js_vd = Vec::new();
    let specs = workloads::catalog();
    let outcomes = run_studies_parallel(
        &specs,
        &[Mode::Vanilla, Mode::Eager, Mode::Desiccant],
        &cfg,
        flags.jobs(),
    );
    for (spec, row) in specs.into_iter().zip(outcomes) {
        let [vanilla, eager, desic]: [_; 3] = row.try_into().expect("three modes per spec");
        let mb = |b: u64| b as f64 / (1 << 20) as f64;
        let vd = vanilla.final_uss as f64 / desic.final_uss.max(1) as f64;
        let ed = eager.final_uss as f64 / desic.final_uss.max(1) as f64;
        println!(
            "{:<16} {:>4} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>6.2} {:>6.2} {:>6.2} {:>6.2} {:>8.2}",
            spec.name,
            if spec.language == faas_runtime::Language::Java { "java" } else { "js" },
            mb(vanilla.final_uss),
            mb(eager.final_uss),
            mb(desic.final_uss),
            mb(desic.final_ideal),
            vanilla.avg_ratio(),
            vanilla.max_ratio(),
            vd,
            ed,
            mb(desic.final_live),
        );
        if spec.language == faas_runtime::Language::Java {
            java_max_ratios.push(vanilla.max_ratio());
            java_vd.push(vd);
        } else {
            js_max_ratios.push(vanilla.max_ratio());
            js_vd.push(vd);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!();
    println!(
        "java: mean max_ratio {:.2} (paper 2.72), mean v/d {:.2} (paper 2.78)",
        mean(&java_max_ratios),
        mean(&java_vd)
    );
    println!(
        "js:   mean max_ratio {:.2} (paper 2.15), mean v/d {:.2} (paper 1.93)",
        mean(&js_max_ratios),
        mean(&js_vd)
    );
}
