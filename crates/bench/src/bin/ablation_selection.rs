//! Ablation: instance-selection policy (§4.5.2).
//!
//! Throughput-based selection (the paper's) reclaims the most memory
//! per CPU-second; oldest-first and unordered are the baselines. With a
//! per-sweep reclamation budget, throughput selection should release
//! more bytes per unit of reclaim CPU.
//!
//! Flags: `--quick`, `--check`.

#![forbid(unsafe_code)]

use azure_trace::{build_trace, replay, ReplayConfig};
use bench::cli::{check, Flags};
use bench::report;
use desiccant::{Desiccant, DesiccantConfig, SelectionPolicy};
use faas::platform::{GcMode, Platform};
use faas::PlatformConfig;
use simos::SimDuration;

fn main() {
    let flags = Flags::parse();
    report::caption(
        "Ablation: selection policy",
        &["policy", "reclaims", "reclaimed_mib", "mib_per_reclaim", "cold_boots_per_s"],
    );
    let mut rows = Vec::new();
    for (name, selection) in [
        ("throughput", SelectionPolicy::Throughput),
        ("oldest", SelectionPolicy::OldestFrozen),
        ("unordered", SelectionPolicy::Unordered),
    ] {
        let catalog = workloads::catalog();
        let trace = build_trace(&catalog, 11);
        let config = DesiccantConfig {
            selection,
            // A tight per-sweep budget makes ranking matter.
            max_reclaims_per_sweep: 1,
            ..DesiccantConfig::default()
        };
        let mut p = Platform::new(
            PlatformConfig::default(),
            catalog,
            GcMode::Vanilla,
            Some(Box::new(Desiccant::new(config))),
        );
        let rc = ReplayConfig {
            scale: 20.0,
            warmup: SimDuration::from_secs(if flags.quick { 20 } else { 60 }),
            duration: SimDuration::from_secs(if flags.quick { 60 } else { 180 }),
            ..ReplayConfig::default()
        };
        let out = replay(&mut p, &trace, &rc);
        let reclaims = p.stats().reclamations.max(1);
        let per = p.stats().reclaimed_bytes as f64 / (1 << 20) as f64 / reclaims as f64;
        report::row(&[
            name.into(),
            p.stats().reclamations.to_string(),
            report::mib(p.stats().reclaimed_bytes),
            format!("{per:.2}"),
            format!("{:.3}", out.cold_boot_rate),
        ]);
        rows.push((name, per));
    }
    let get = |n: &str| rows.iter().find(|(m, _)| *m == n).expect("row").1;
    check(
        &flags,
        get("throughput") >= get("oldest"),
        "throughput selection releases at least as much per reclamation as oldest-first",
    );
}
