//! Figure 12: memory consumption under different memory settings
//! (256 MiB / 512 MiB / 1 GiB budgets).
//!
//! Four panels: (a) Java mean, (b) JavaScript mean, (c) `clock` — flat
//! regardless of budget, (d) `fft` — vanilla/eager balloon with the
//! budget (young cap scales) while Desiccant stays put, reaching the
//! paper's headline 6.72× at 1 GiB.
//!
//! Flags: `--quick`, `--check`, `--jobs N`.

#![forbid(unsafe_code)]

use bench::cli::{check, Flags};
use bench::report;
use bench::{run_study_jobs, Mode, StudyConfig};
use faas_runtime::Language;

const BUDGETS: [(u64, &str); 3] = [(256 << 20, "256MiB"), (512 << 20, "512MiB"), (1 << 30, "1GiB")];
const MODES: [Mode; 3] = [Mode::Vanilla, Mode::Eager, Mode::Desiccant];

fn main() {
    let flags = Flags::parse();
    let iterations = if flags.quick { 30 } else { 100 };
    let specs = workloads::catalog();
    // One flat job list: (budget × function × mode) for panels a/b,
    // then (budget × {clock, fft} × mode) for panels c/d.
    let cfg_for = |budget| StudyConfig {
        budget,
        iterations,
        ..StudyConfig::default()
    };
    let mut work = Vec::new();
    for (budget, _) in BUDGETS {
        for &spec in &specs {
            for mode in MODES {
                work.push((spec, mode, cfg_for(budget)));
            }
        }
    }
    let panel_cd_start = work.len();
    for (budget, _) in BUDGETS {
        for name in ["clock", "fft"] {
            let spec = workloads::by_name(name).expect("catalog function");
            for mode in MODES {
                work.push((spec, mode, cfg_for(budget)));
            }
        }
    }
    let outcomes = run_study_jobs(flags.jobs(), &work);
    // Panels (a) and (b): per-language means.
    report::caption(
        "Figure 12a/b: mean memory per language (MiB)",
        &["budget", "language", "vanilla", "eager", "desiccant", "vanilla/desiccant"],
    );
    let mut java_reduction = Vec::new();
    let mut js_reduction = Vec::new();
    for (b, (_, label)) in BUDGETS.into_iter().enumerate() {
        let by_budget = &outcomes[b * specs.len() * 3..(b + 1) * specs.len() * 3];
        for lang in [Language::Java, Language::JavaScript] {
            let mut v = 0u64;
            let mut e = 0u64;
            let mut d = 0u64;
            let mut n = 0u64;
            for (i, _) in specs.iter().enumerate().filter(|(_, f)| f.language == lang) {
                v += by_budget[3 * i].final_uss;
                e += by_budget[3 * i + 1].final_uss;
                d += by_budget[3 * i + 2].final_uss;
                n += 1;
            }
            let reduction = v as f64 / d.max(1) as f64;
            report::row(&[
                label.into(),
                lang.name().into(),
                report::mib(v / n),
                report::mib(e / n),
                report::mib(d / n),
                report::ratio(reduction),
            ]);
            if lang == Language::Java {
                java_reduction.push(reduction);
            } else {
                js_reduction.push(reduction);
            }
        }
    }
    println!(
        "# java reduction across budgets: {:?} (paper: 2.75x -> 2.94x, stable)",
        java_reduction.iter().map(|r| format!("{r:.2}")).collect::<Vec<_>>()
    );
    println!(
        "# js reduction across budgets: {:?} (paper: 1.69x -> 2.10x, growing)",
        js_reduction.iter().map(|r| format!("{r:.2}")).collect::<Vec<_>>()
    );
    check(
        &flags,
        js_reduction.last().expect("rows") > js_reduction.first().expect("rows"),
        "javascript reduction grows with the budget",
    );
    // Panels (c) and (d): clock and fft.
    report::caption(
        "Figure 12c/d: clock and fft across budgets (MiB)",
        &["budget", "function", "vanilla", "eager", "desiccant", "vanilla/desiccant"],
    );
    let mut fft_reduction = Vec::new();
    let mut clock_vanilla = Vec::new();
    let mut cd = outcomes[panel_cd_start..].chunks_exact(3);
    for (_, label) in BUDGETS {
        for name in ["clock", "fft"] {
            let [v, e, d] = cd.next().expect("a chunk per (budget, function)") else {
                unreachable!("chunks_exact(3) yields three-element chunks");
            };
            let (v, e, d) = (v.final_uss, e.final_uss, d.final_uss);
            let reduction = v as f64 / d.max(1) as f64;
            report::row(&[
                label.into(),
                name.into(),
                report::mib(v),
                report::mib(e),
                report::mib(d),
                report::ratio(reduction),
            ]);
            if name == "fft" {
                fft_reduction.push(reduction);
            } else {
                clock_vanilla.push(v);
            }
        }
    }
    println!(
        "# fft reduction at 1GiB: {:.2}x (paper headline: 6.72x)",
        fft_reduction.last().expect("rows")
    );
    check(
        &flags,
        fft_reduction.last().expect("rows") > fft_reduction.first().expect("rows"),
        "fft's reduction grows with the budget",
    );
    check(
        &flags,
        *fft_reduction.last().expect("rows") > 4.0,
        "fft reaches a large reduction at 1GiB (paper 6.72x)",
    );
    let clock_growth = *clock_vanilla.last().expect("rows") as f64
        / (*clock_vanilla.first().expect("rows")).max(1) as f64;
    check(
        &flags,
        clock_growth < 1.3,
        "clock's memory stays stable across budgets",
    );
}
