//! Figure 2: memory-consumption curves for two representative
//! functions — `file-hash` (Java) and `fft` (JavaScript) — under
//! vanilla, eager, and ideal, over 100 invocations.
//!
//! Also prints the §3.2 statistics the paper quotes inline: the eager
//! heap size and live bytes for `file-hash` (7.88 MiB / 1.07 MiB in the
//! paper — 86.4 % free), and `fft`'s heap size under vanilla
//! (41.40 MiB, young generation pinned at its 32 MiB cap).
//!
//! Flags: `--quick` (30 iterations), `--check`, `--jobs N`.

#![forbid(unsafe_code)]

use bench::cli::{check, Flags};
use bench::report;
use bench::{run_studies_parallel, Mode, StudyConfig};

fn main() {
    let flags = Flags::parse();
    let cfg = StudyConfig {
        iterations: if flags.quick { 30 } else { 100 },
        ..StudyConfig::default()
    };
    let names = ["file-hash", "fft"];
    let specs: Vec<_> = names
        .iter()
        .map(|name| workloads::by_name(name).expect("catalog function"))
        .collect();
    let outcomes = run_studies_parallel(
        &specs,
        &[Mode::Vanilla, Mode::Eager],
        &cfg,
        flags.jobs(),
    );
    for (name, row) in names.into_iter().zip(outcomes) {
        let [vanilla, eager]: [_; 2] = row.try_into().expect("two modes per spec");
        report::caption(
            &format!("Figure 2: memory consumption curve for {name}"),
            &["iteration", "vanilla_mib", "eager_mib", "ideal_mib"],
        );
        let step = (cfg.iterations as usize / 20).max(1);
        for i in (0..vanilla.uss.len()).step_by(step) {
            report::row(&[
                (i + 1).to_string(),
                report::mib(vanilla.uss[i]),
                report::mib(eager.uss[i]),
                report::mib(vanilla.ideal[i]),
            ]);
        }
        let v_final = *vanilla.uss.last().expect("nonempty series");
        let e_final = *eager.uss.last().expect("nonempty series");
        let i_final = *vanilla.ideal.last().expect("nonempty series");
        println!(
            "# {name}: eager heap committed {} MiB, live {} MiB ({}% of heap is free)",
            report::mib(*eager.heap_committed.last().expect("nonempty")),
            report::mib(eager.final_live),
            ((1.0 - eager.final_live as f64
                / (*eager.heap_committed.last().expect("nonempty")).max(1) as f64)
                * 100.0)
                .round(),
        );
        println!(
            "# {name}: vanilla heap committed {} MiB",
            report::mib(*vanilla.heap_committed.last().expect("nonempty"))
        );
        check(
            &flags,
            e_final <= v_final,
            &format!("{name}: eager is at or below vanilla"),
        );
        check(
            &flags,
            i_final < e_final,
            &format!("{name}: eager stays above the ideal curve"),
        );
        if name == "fft" {
            // §3.2.2: eager barely helps fft — the young generation
            // never shrinks under its allocation rate.
            check(
                &flags,
                e_final as f64 > v_final as f64 * 0.5,
                "fft: eager GC reduces memory by far less than 2x (young gen pinned)",
            );
            check(
                &flags,
                *vanilla.heap_committed.last().expect("nonempty") >= 32 << 20,
                "fft: vanilla heap reaches the 32 MiB young cap and beyond",
            );
        }
        if name == "file-hash" {
            // §3.2.1: most of the eager heap is free pages.
            let committed = *eager.heap_committed.last().expect("nonempty");
            check(
                &flags,
                eager.final_live * 3 < committed,
                "file-hash: >2/3 of the eager heap is free pages",
            );
        }
    }
}
