//! Figure 1: the frozen-garbage ratios.
//!
//! For every Table-1 function, run the §3.1 protocol (100 iterations in
//! the same instance(s), vanilla behaviour) and report `avg_ratio` and
//! `max_ratio` — real memory over ideal memory at each freeze point.
//!
//! Flags: `--list` prints Table 1 instead; `--quick` uses 30
//! iterations; `--jobs N` fans the studies over N worker threads
//! (output is identical at any job count); `--check` asserts the
//! paper-shape invariants:
//! every function has ratio > 1, `hotel-searching` peaks above 4×, and
//! the per-language means land near the paper's 2.72 (Java) / 2.15
//! (JavaScript).

#![forbid(unsafe_code)]

use bench::cli::{check, Flags};
use bench::report;
use bench::{run_studies_parallel, Mode, StudyConfig};
use faas_runtime::Language;

fn main() {
    let flags = Flags::parse();
    if flags.has("--list") {
        report::caption("Table 1: evaluated FaaS functions", &["language", "function", "chain_len", "kernel"]);
        for f in workloads::catalog() {
            report::row(&[
                f.language.name().into(),
                f.name.into(),
                f.chain_len.to_string(),
                format!("{:?}", f.kernel),
            ]);
        }
        return;
    }
    let cfg = StudyConfig {
        iterations: if flags.quick { 30 } else { 100 },
        ..StudyConfig::default()
    };
    report::caption(
        "Figure 1: ratios for frozen garbage (USS / ideal)",
        &["language", "function", "avg_ratio", "max_ratio"],
    );
    let mut means: Vec<(Language, f64, f64)> = Vec::new();
    let specs = workloads::catalog();
    let outcomes = run_studies_parallel(&specs, &[Mode::Vanilla], &cfg, flags.jobs());
    for (spec, mut row) in specs.into_iter().zip(outcomes) {
        let out = row.pop().expect("one mode per spec");
        report::row(&[
            spec.language.name().into(),
            spec.name.into(),
            report::ratio(out.avg_ratio()),
            report::ratio(out.max_ratio()),
        ]);
        means.push((spec.language, out.avg_ratio(), out.max_ratio()));
        if spec.name == "hotel-searching" {
            check(&flags, out.max_ratio() > 4.0, "hotel-searching peaks above 4x (paper: >5x)");
        }
        check(
            &flags,
            out.avg_ratio() >= 1.0 && out.max_ratio() >= out.avg_ratio(),
            &format!("{}: ratios are coherent", spec.name),
        );
    }
    for lang in [Language::Java, Language::JavaScript] {
        let maxes: Vec<f64> = means
            .iter()
            .filter(|(l, _, _)| *l == lang)
            .map(|(_, _, m)| *m)
            .collect();
        let mean = maxes.iter().sum::<f64>() / maxes.len() as f64;
        let target = if lang == Language::Java { 2.72 } else { 2.15 };
        println!("# mean max_ratio {}: {:.2} (paper {target})", lang.name(), mean);
        check(
            &flags,
            (mean - target).abs() < 1.0,
            &format!("{} mean max_ratio within 1.0 of the paper's {target}", lang.name()),
        );
    }
}
