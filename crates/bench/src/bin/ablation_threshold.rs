//! Ablation: dynamic vs. static activation threshold (§4.5.1).
//!
//! The dynamic policy exists for *phased* load: during calm periods the
//! threshold drifts up (fewer reclamations, less CPU); the first
//! eviction snaps it down to 60 % so the manager reacts like an eager
//! static policy exactly when memory is short. A static-low policy
//! matches the pressure response but keeps reclaiming during calm; a
//! static-high policy saves calm-period CPU but reacts late under
//! pressure.
//!
//! Protocol: a calm phase (scale 4, 120 s) followed by a pressure phase
//! (scale 30, 120 s); report calm-phase reclamations and pressure-phase
//! cold boots separately.
//!
//! Flags: `--quick`, `--check`.

#![forbid(unsafe_code)]

use azure_trace::{build_trace, generate_arrivals};
use bench::cli::{check, Flags};
use bench::report;
use desiccant::{Desiccant, DesiccantConfig};
use faas::platform::{GcMode, Platform};
use faas::PlatformConfig;
use simos::{SimDuration, SimTime};

struct PhaseResult {
    calm_reclaims: u64,
    pressure_cold_boots: u64,
    pressure_reclaims: u64,
}

fn run_one(config: DesiccantConfig, quick: bool) -> PhaseResult {
    let catalog = workloads::catalog();
    let trace = build_trace(&catalog, 11);
    let mut p = Platform::new(
        PlatformConfig::default(),
        catalog,
        GcMode::Vanilla,
        Some(Box::new(Desiccant::new(config))),
    );
    let phase = SimDuration::from_secs(if quick { 40 } else { 120 });
    // Warm-up at moderate load to populate the cache.
    let t0 = SimTime::ZERO;
    let t1 = t0 + SimDuration::from_secs(30);
    for (t, f) in generate_arrivals(&trace, 15.0, t0, t1, 1) {
        p.submit(t, f);
    }
    p.run_until(t1);
    p.reset_stats();
    // Calm phase.
    let t2 = t1 + phase;
    for (t, f) in generate_arrivals(&trace, 4.0, t1, t2, 2) {
        p.submit(t, f);
    }
    p.run_until(t2);
    let calm_reclaims = p.stats().reclamations;
    p.reset_stats();
    // Pressure phase.
    let t3 = t2 + phase;
    for (t, f) in generate_arrivals(&trace, 30.0, t2, t3, 3) {
        p.submit(t, f);
    }
    p.run_until(t3 + SimDuration::from_secs(20));
    PhaseResult {
        calm_reclaims,
        pressure_cold_boots: p.stats().cold_boots,
        pressure_reclaims: p.stats().reclamations,
    }
}

fn main() {
    let flags = Flags::parse();
    report::caption(
        "Ablation: activation threshold policy (calm phase then pressure phase)",
        &["policy", "calm_reclaims", "pressure_cold_boots", "pressure_reclaims"],
    );
    let variants: [(&str, DesiccantConfig); 3] = [
        ("dynamic", DesiccantConfig::default()),
        (
            "static-60",
            DesiccantConfig {
                dynamic_threshold: false,
                low_threshold: 0.60,
                high_threshold: 0.60,
                ..DesiccantConfig::default()
            },
        ),
        (
            "static-95",
            DesiccantConfig {
                dynamic_threshold: false,
                low_threshold: 0.95,
                high_threshold: 0.95,
                ..DesiccantConfig::default()
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, config) in variants {
        let r = run_one(config, flags.quick);
        report::row(&[
            name.into(),
            r.calm_reclaims.to_string(),
            r.pressure_cold_boots.to_string(),
            r.pressure_reclaims.to_string(),
        ]);
        rows.push((name, r));
    }
    let get = |n: &str| &rows.iter().find(|(m, _)| *m == n).expect("row").1;
    let (dynamic, low, high) = (get("dynamic"), get("static-60"), get("static-95"));
    check(
        &flags,
        dynamic.calm_reclaims <= low.calm_reclaims,
        "dynamic reclaims no more than static-60 during calm",
    );
    check(
        &flags,
        dynamic.pressure_cold_boots <= high.pressure_cold_boots + high.pressure_cold_boots / 5,
        "dynamic reacts to pressure at least as well as static-95 (within 20%)",
    );
    check(
        &flags,
        dynamic.pressure_cold_boots <= low.pressure_cold_boots + low.pressure_cold_boots / 5,
        "dynamic matches static-60's pressure response (within 20%)",
    );
}
