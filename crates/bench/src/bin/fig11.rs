//! Figure 11: memory efficiency on the Lambda environment (§5.4).
//!
//! Lambda packs functions as container images and never shares library
//! pages between instances, so the §4.6 unmap optimization bites
//! harder. The paper reports 2.08× mean improvement for Java (six
//! functions — image-pipeline is excluded because its external calls
//! don't run on the vanilla Corretto image) and 2.76× for JavaScript.
//!
//! Flags: `--quick`, `--check`, `--jobs N`.

#![forbid(unsafe_code)]

use bench::cli::{check, Flags};
use bench::report;
use bench::{run_study_jobs, Mode, StudyConfig};
use faas_runtime::Language;

fn main() {
    let flags = Flags::parse();
    let cfg = StudyConfig {
        iterations: if flags.quick { 30 } else { 100 },
        lambda_env: true,
        unmap_libs: true,
        ..StudyConfig::default()
    };
    report::caption(
        "Figure 11: memory efficiency on AWS Lambda (MiB)",
        &["language", "function", "vanilla", "desiccant", "improvement"],
    );
    // §5.4: image-pipeline's external calls are unsupported on the
    // vanilla Corretto image; the paper reports the other Java
    // functions.
    let specs: Vec<_> = workloads::catalog()
        .into_iter()
        .filter(|f| f.name != "image-pipeline")
        .collect();
    // One flat job list: the (function × mode) matrix plus the three
    // fft unmap-ablation studies appended at the end.
    let fft = workloads::by_name("fft").expect("catalog function");
    let ow_cfg = StudyConfig {
        lambda_env: false,
        unmap_libs: false,
        iterations: cfg.iterations,
        ..StudyConfig::default()
    };
    let nounmap_cfg = StudyConfig {
        unmap_libs: false,
        ..cfg
    };
    let mut work: Vec<_> = specs
        .iter()
        .flat_map(|&spec| {
            [(spec, Mode::Vanilla, cfg), (spec, Mode::Desiccant, cfg)]
        })
        .collect();
    work.push((fft, Mode::Desiccant, ow_cfg));
    work.push((fft, Mode::Desiccant, nounmap_cfg));
    work.push((fft, Mode::Desiccant, cfg));
    let outcomes = run_study_jobs(flags.jobs(), &work);
    let mut by_lang: Vec<(Language, f64)> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let (vanilla, desiccant) = (&outcomes[2 * i], &outcomes[2 * i + 1]);
        let improvement = vanilla.final_uss as f64 / desiccant.final_uss.max(1) as f64;
        report::row(&[
            spec.language.name().into(),
            spec.name.into(),
            report::mib(vanilla.final_uss),
            report::mib(desiccant.final_uss),
            report::ratio(improvement),
        ]);
        by_lang.push((spec.language, improvement));
        check(
            &flags,
            improvement > 1.0,
            &format!("{}: desiccant improves on Lambda", spec.name),
        );
    }
    for lang in [Language::Java, Language::JavaScript] {
        let v: Vec<f64> = by_lang
            .iter()
            .filter(|(l, _)| *l == lang)
            .map(|(_, i)| *i)
            .collect();
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let target = if lang == Language::Java { 2.08 } else { 2.76 };
        println!("# {} mean improvement {:.2}x (paper {target}x)", lang.name(), mean);
        check(
            &flags,
            mean > 1.5,
            &format!("{}: mean Lambda improvement is substantial", lang.name()),
        );
    }
    // The unmap optimization matters more on Lambda than on OpenWhisk.
    let [ow, lam_nounmap, lam_unmap] = &outcomes[2 * specs.len()..] else {
        unreachable!("three ablation studies appended to the job list");
    };
    println!(
        "# fft desiccant USS: openwhisk {} MiB, lambda w/o unmap {} MiB, lambda with unmap {} MiB",
        report::mib(ow.final_uss),
        report::mib(lam_nounmap.final_uss),
        report::mib(lam_unmap.final_uss)
    );
    check(
        &flags,
        lam_unmap.final_uss < lam_nounmap.final_uss,
        "unmap optimization is effective on Lambda",
    );
}
