//! Figure 11: memory efficiency on the Lambda environment (§5.4).
//!
//! Lambda packs functions as container images and never shares library
//! pages between instances, so the §4.6 unmap optimization bites
//! harder. The paper reports 2.08× mean improvement for Java (six
//! functions — image-pipeline is excluded because its external calls
//! don't run on the vanilla Corretto image) and 2.76× for JavaScript.
//!
//! Flags: `--quick`, `--check`.

use bench::cli::{check, Flags};
use bench::report;
use bench::{run_study, Mode, StudyConfig};
use faas_runtime::Language;

fn main() {
    let flags = Flags::parse();
    let cfg = StudyConfig {
        iterations: if flags.quick { 30 } else { 100 },
        lambda_env: true,
        unmap_libs: true,
        ..StudyConfig::default()
    };
    report::caption(
        "Figure 11: memory efficiency on AWS Lambda (MiB)",
        &["language", "function", "vanilla", "desiccant", "improvement"],
    );
    let mut by_lang: Vec<(Language, f64)> = Vec::new();
    for spec in workloads::catalog() {
        // §5.4: image-pipeline's external calls are unsupported on the
        // vanilla Corretto image; the paper reports the other Java
        // functions.
        if spec.name == "image-pipeline" {
            continue;
        }
        let vanilla = run_study(&spec, Mode::Vanilla, &cfg);
        let desiccant = run_study(&spec, Mode::Desiccant, &cfg);
        let improvement = vanilla.final_uss as f64 / desiccant.final_uss.max(1) as f64;
        report::row(&[
            spec.language.name().into(),
            spec.name.into(),
            report::mib(vanilla.final_uss),
            report::mib(desiccant.final_uss),
            report::ratio(improvement),
        ]);
        by_lang.push((spec.language, improvement));
        check(
            &flags,
            improvement > 1.0,
            &format!("{}: desiccant improves on Lambda", spec.name),
        );
    }
    for lang in [Language::Java, Language::JavaScript] {
        let v: Vec<f64> = by_lang
            .iter()
            .filter(|(l, _)| *l == lang)
            .map(|(_, i)| *i)
            .collect();
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let target = if lang == Language::Java { 2.08 } else { 2.76 };
        println!("# {} mean improvement {:.2}x (paper {target}x)", lang.name(), mean);
        check(
            &flags,
            mean > 1.5,
            &format!("{}: mean Lambda improvement is substantial", lang.name()),
        );
    }
    // The unmap optimization matters more on Lambda than on OpenWhisk.
    let spec = workloads::by_name("fft").expect("catalog function");
    let ow = run_study(
        &spec,
        Mode::Desiccant,
        &StudyConfig {
            lambda_env: false,
            unmap_libs: false,
            iterations: cfg.iterations,
            ..StudyConfig::default()
        },
    );
    let lam_nounmap = run_study(
        &spec,
        Mode::Desiccant,
        &StudyConfig {
            unmap_libs: false,
            ..cfg
        },
    );
    let lam_unmap = run_study(&spec, Mode::Desiccant, &cfg);
    println!(
        "# fft desiccant USS: openwhisk {} MiB, lambda w/o unmap {} MiB, lambda with unmap {} MiB",
        report::mib(ow.final_uss),
        report::mib(lam_nounmap.final_uss),
        report::mib(lam_unmap.final_uss)
    );
    check(
        &flags,
        lam_unmap.final_uss < lam_nounmap.final_uss,
        "unmap optimization is effective on Lambda",
    );
}
