//! Figure 10: tail latency under two scale factors.
//!
//! Paper shape: at a medium scale factor (15) Desiccant improves p90 by
//! ~33 %, p95 by ~10 %, p99 by ~37.5 % over vanilla; at a high scale
//! factor the p99 gap narrows as CPU exhaustion dominates everyone's
//! tail.
//!
//! Flags: `--quick`, `--check`.

#![forbid(unsafe_code)]

use azure_trace::{build_trace, replay, ReplayConfig};
use bench::cli::{check, Flags};
use bench::report;
use desiccant::{Desiccant, DesiccantConfig};
use faas::platform::{GcMode, Platform};
use faas::{MemoryManager, PlatformConfig};
use simos::SimDuration;

fn run_one(scale: f64, mode: &str, quick: bool) -> azure_trace::ReplayOutcome {
    let catalog = workloads::catalog();
    let trace = build_trace(&catalog, 11);
    let manager: Option<Box<dyn MemoryManager>> = match mode {
        "desiccant" => Some(Box::new(Desiccant::new(DesiccantConfig::default()))),
        _ => None,
    };
    let gc = if mode == "eager" { GcMode::Eager } else { GcMode::Vanilla };
    let mut p = Platform::new(PlatformConfig::default(), catalog, gc, manager);
    let config = ReplayConfig {
        scale,
        // Quick still needs a window long enough for cache pressure to
        // differentiate the modes (see fig9).
        warmup: SimDuration::from_secs(if quick { 45 } else { 60 }),
        duration: SimDuration::from_secs(if quick { 150 } else { 180 }),
        ..ReplayConfig::default()
    };
    replay(&mut p, &trace, &config)
}

/// `(p50, p90, p95, p99)` in milliseconds.
type LatencyQuartet = (f64, f64, f64, f64);

fn main() {
    let flags = Flags::parse();
    report::caption(
        "Figure 10: tail latency for different scale factors (ms)",
        &["scale", "mode", "p50", "p90", "p95", "p99", "failed", "retries", "fault_events"],
    );
    let mut residual_faults = 0u64;
    // The paper's medium/high scale factors are 15 and 25 on its
    // 40-core testbed; on this simulated host saturation lands near
    // scale 60, so that is the "high" point (documented in
    // EXPERIMENTS.md).
    let mut medium: Vec<(String, LatencyQuartet)> = Vec::new();
    let mut high: Vec<(String, LatencyQuartet)> = Vec::new();
    for scale in [15.0, 60.0] {
        for mode in ["vanilla", "eager", "desiccant"] {
            let out = run_one(scale, mode, flags.quick);
            let (p50, p90, p95, p99) = out.latency_ms;
            report::row(&[
                format!("{scale}"),
                mode.into(),
                format!("{p50:.0}"),
                format!("{p90:.0}"),
                format!("{p95:.0}"),
                format!("{p99:.0}"),
                format!("{}", out.failed),
                format!("{}", out.retries),
                format!("{}", out.fault_events),
            ]);
            residual_faults += out.failed + out.retries + out.fault_events;
            if (scale - 15.0).abs() < 1e-9 {
                medium.push((mode.into(), out.latency_ms));
            } else {
                high.push((mode.into(), out.latency_ms));
            }
        }
    }
    let get = |rows: &[(String, LatencyQuartet)], m: &str| {
        rows.iter().find(|(n, _)| n == m).expect("mode row").1
    };
    let (v, d) = (get(&medium, "vanilla"), get(&medium, "desiccant"));
    let improv = |a: f64, b: f64| (1.0 - b / a.max(1e-9)) * 100.0;
    println!(
        "# medium scale improvement vs vanilla: p90 {:.1}% (paper 33.1%), p95 {:.1}% (paper 9.8%), p99 {:.1}% (paper 37.5%)",
        improv(v.1, d.1),
        improv(v.2, d.2),
        improv(v.3, d.3),
    );
    check(&flags, d.1 < v.1, "medium scale: desiccant improves p90");
    check(&flags, d.3 < v.3, "medium scale: desiccant improves p99");
    let (vh, dh) = (get(&high, "vanilla"), get(&high, "desiccant"));
    let medium_gap = v.3 / d.3.max(1e-9);
    let high_gap = vh.3 / dh.3.max(1e-9);
    println!(
        "# p99 gap: {medium_gap:.2}x at medium scale vs {high_gap:.2}x at high scale (paper: gap nearly vanishes under CPU exhaustion)"
    );
    check(
        &flags,
        high_gap < medium_gap,
        "p99 gap narrows at the saturating scale factor",
    );
    // Standing inertness regression: no fault plan is installed here,
    // so every failure/retry/fault counter must be dead zero.
    check(
        &flags,
        residual_faults == 0,
        "fault-free runs report zero failures, retries, and fault events",
    );
}
