//! Figure 4: frozen-garbage ratios under different memory settings
//! (256 MiB / 512 MiB / 1 GiB instance budgets).
//!
//! The paper's observation: Java's ratios stay roughly flat (HotSpot
//! controls its heap regardless of budget), while JavaScript's grow
//! with the budget (V8's young-generation cap scales with the heap, so
//! `fft`'s average ratio climbs from 3.27× to 7.11×).
//!
//! Flags: `--quick`, `--check`, `--jobs N`.

#![forbid(unsafe_code)]

use bench::cli::{check, Flags};
use bench::report;
use bench::{run_study_jobs, Mode, StudyConfig};
use faas_runtime::Language;

fn main() {
    let flags = Flags::parse();
    let budgets: &[(u64, &str)] = &[(256 << 20, "256MiB"), (512 << 20, "512MiB"), (1 << 30, "1GiB")];
    report::caption(
        "Figure 4: average of ratios under different memory settings",
        &["budget", "language", "mean_avg_ratio", "mean_max_ratio", "fft_avg_ratio"],
    );
    // The whole budget × function sweep is one flat job list; each
    // budget gets its own config.
    let specs = workloads::catalog();
    let work: Vec<_> = budgets
        .iter()
        .flat_map(|&(budget, _)| {
            let cfg = StudyConfig {
                budget,
                iterations: if flags.quick { 30 } else { 100 },
                ..StudyConfig::default()
            };
            specs.iter().map(move |&spec| (spec, Mode::Vanilla, cfg))
        })
        .collect();
    let outcomes = run_study_jobs(flags.jobs(), &work);
    let mut js_fft_avg = Vec::new();
    let mut java_means = Vec::new();
    let mut js_means = Vec::new();
    for (b, &(_, label)) in budgets.iter().enumerate() {
        let by_budget = &outcomes[b * specs.len()..(b + 1) * specs.len()];
        for lang in [Language::Java, Language::JavaScript] {
            let mut avg = Vec::new();
            let mut max = Vec::new();
            let mut fft = 0.0;
            for (spec, out) in specs.iter().zip(by_budget).filter(|(f, _)| f.language == lang) {
                avg.push(out.avg_ratio());
                max.push(out.max_ratio());
                if spec.name == "fft" {
                    fft = out.avg_ratio();
                }
            }
            let mean_avg = avg.iter().sum::<f64>() / avg.len() as f64;
            let mean_max = max.iter().sum::<f64>() / max.len() as f64;
            report::row(&[
                label.into(),
                lang.name().into(),
                report::ratio(mean_avg),
                report::ratio(mean_max),
                if lang == Language::JavaScript {
                    report::ratio(fft)
                } else {
                    "-".into()
                },
            ]);
            if lang == Language::JavaScript {
                js_fft_avg.push(fft);
                js_means.push(mean_avg);
            } else {
                java_means.push(mean_avg);
            }
        }
    }
    // Paper shape: Java roughly flat, JS (and especially fft) growing.
    let java_growth = java_means.last().expect("rows") / java_means.first().expect("rows");
    let fft_growth = js_fft_avg.last().expect("rows") / js_fft_avg.first().expect("rows");
    println!("# java mean growth 256MiB -> 1GiB: {java_growth:.2}x (paper: slight)");
    println!(
        "# fft avg_ratio growth 256MiB -> 1GiB: {fft_growth:.2}x (paper: 3.27 -> 7.11 = 2.17x)"
    );
    check(&flags, java_growth < 1.5, "java ratios stay roughly flat across budgets");
    check(&flags, fft_growth > 1.5, "fft's ratio grows substantially with the budget");
    check(
        &flags,
        js_means.last().expect("rows") > js_means.first().expect("rows"),
        "javascript mean ratio grows with the budget",
    );
}
