//! Perf harness: the `BENCH_*.json` trajectory.
//!
//! Two measurements, written as machine-readable JSON so every future
//! PR can diff its numbers against the committed files at repo root:
//!
//! * **event-queue microbench** (`BENCH_eventloop.json`) — the classic
//!   hold model: a queue held at a fixed size while each step pops the
//!   minimum and pushes a successor at a bounded random offset. Run
//!   once on the calendar queue and once on the binary-heap reference
//!   oracle; the ratio is the representation speedup in isolation.
//! * **end-to-end replay** (`BENCH_replay.json`) — the
//!   `replay_30s_sf15` Azure-trace scenario from the criterion suite,
//!   vanilla and desiccant, on both queue representations, plus the
//!   pre-PR criterion baseline measured before the calendar queue and
//!   slab arenas landed.
//! * **incremental checkpoint model** (`BENCH_checkpoint.json`) — a
//!   platform is loaded with a warm steady state of ~2^16 frozen
//!   instances, then a full base checkpoint and an O(dirty) delta
//!   (after thawing a small working set) are written once each:
//!   bytes and wall time for both, and the base/delta size ratio the
//!   acceptance gate rides on.
//!
//! Timing is wall-clock by necessity — this binary measures host
//! performance, not simulated behavior — and both queue variants run
//! the identical deterministic simulation (asserted on the completion
//! counters), so the numbers never feed back into results.
//!
//! Flags: `--quick` (fewer ops/rounds, for the tier-1 smoke run),
//! `--out-dir DIR` (default `.`), `--check` (assert the microbench
//! speedup target and the replay equivalence).

#![forbid(unsafe_code)]

use std::fs;
use std::path::Path;

use azure_trace::{build_trace, replay, ReplayConfig};
use bench::cli::{check, Flags};
use desiccant::{Desiccant, DesiccantConfig};
use faas::platform::{GcMode, Platform};
use faas::queue::{CalendarQueue, QueueImpl, ReferenceQueue};
use faas::{MemoryManager, PlatformConfig};
use simos::{SimDuration, SimTime};

/// Pre-PR `replay_30s_sf15` criterion means on the reference host,
/// measured at the commit immediately before this PR (BinaryHeap
/// event queue, BTreeMap instance tables, per-event stats updates):
/// the fixed anchor every later `BENCH_replay.json` compares against.
const PRE_PR_VANILLA_MS: f64 = 61.616;
const PRE_PR_DESICCANT_MS: f64 = 66.592;

/// Microbench speedup the tentpole aims for, recorded in the JSON so
/// the trajectory shows where each measurement stands against it.
const TARGET_SPEEDUP: f64 = 3.0;

/// Speedup floor `--check` enforces. Deliberately far below the
/// target: the tier-1 smoke runs on whatever shared, half-loaded host
/// CI landed on, where the ratio wobbles ±0.5x run to run, so the
/// gate only has to catch representation regressions (the failure
/// modes this queue went through during development measured 0.01x –
/// 1.1x), not re-prove the headline number. The committed
/// `BENCH_eventloop.json` holds the full-mode measurement.
const CHECK_FLOOR_SPEEDUP: f64 = 1.3;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Wall-clock seconds spent in `f` (host measurement, not sim state).
fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    #[allow(clippy::disallowed_methods)]
    // tidy:allow(wall-clock) -- this harness measures host perf; wall time never enters simulation state
    let t0 = std::time::Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}

/// Stand-in for the platform's `Event` payload: same 32-byte size, so
/// the hold model pays the same per-item move costs the real event
/// loop does (the heap in particular moves the full payload at every
/// sift level).
type Payload = [u64; 4];

/// The operations the hold model needs, over either representation.
trait HoldQueue {
    fn from_sorted_items(items: Vec<(SimTime, u64, Payload)>) -> Self;
    fn pop_key(&mut self) -> Option<(SimTime, u64)>;
    fn push_key(&mut self, at: SimTime, seq: u64);
}

impl HoldQueue for CalendarQueue<Payload> {
    fn from_sorted_items(items: Vec<(SimTime, u64, Payload)>) -> Self {
        CalendarQueue::from_sorted(items).expect("sorted prefill")
    }
    fn pop_key(&mut self) -> Option<(SimTime, u64)> {
        self.pop().map(|(at, seq, _)| (at, seq))
    }
    fn push_key(&mut self, at: SimTime, seq: u64) {
        self.push(at, seq, [seq; 4]);
    }
}

impl HoldQueue for ReferenceQueue<Payload> {
    fn from_sorted_items(items: Vec<(SimTime, u64, Payload)>) -> Self {
        ReferenceQueue::from_sorted(items).expect("sorted prefill")
    }
    fn pop_key(&mut self) -> Option<(SimTime, u64)> {
        self.pop().map(|(at, seq, _)| (at, seq))
    }
    fn push_key(&mut self, at: SimTime, seq: u64) {
        self.push(at, seq, [seq; 4]);
    }
}

/// Timed chunks the hold-model ops are split into; the reported ns/op
/// is the fastest chunk. The host is a shared single core, so a single
/// long timing absorbs whatever the neighbors were doing; the minimum
/// over ~tens-of-milliseconds chunks recovers the queue's own cost the
/// way criterion's minimum-of-samples does.
const HOLD_CHUNKS: u64 = 16;

/// Hold-model `(ns/op, checksum)` at steady-state size `n` over `ops`
/// pop+push pairs with increments uniform in [0, 2 ms). The queue is
/// prefilled near the stationary distribution and run untimed for
/// `2n` ops first, so the clock measures steady state rather than the
/// convergence transient. The checksum folds every timed popped key,
/// defending the loop against dead-code elimination and doubling as
/// an order witness: both representations must produce the identical
/// value.
fn hold_model<Q: HoldQueue>(n: usize, ops: u64) -> (f64, u64) {
    let mut seed = 0x5eed_u64 ^ n as u64;
    let mut prefill: Vec<(SimTime, u64, Payload)> = (1..=n as u64)
        .map(|seq| (SimTime(splitmix(&mut seed) % 2_000_000), seq, [seq; 4]))
        .collect();
    prefill.sort_by_key(|&(at, s, _)| (at, s));
    let mut q = Q::from_sorted_items(prefill);
    let mut seq = n as u64;
    let mut rng = 0xfeed_u64;
    for _ in 0..2 * n {
        let Some((at, _)) = q.pop_key() else { break };
        seq += 1;
        q.push_key(SimTime(at.0 + splitmix(&mut rng) % 2_000_000), seq);
    }
    let mut checksum = 0u64;
    let chunk_ops = (ops / HOLD_CHUNKS).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..HOLD_CHUNKS {
        let (secs, ()) = timed(|| {
            for _ in 0..chunk_ops {
                let Some((at, s)) = q.pop_key() else { break };
                checksum = checksum.wrapping_mul(31).wrapping_add(at.0 ^ s);
                seq += 1;
                q.push_key(SimTime(at.0 + splitmix(&mut rng) % 2_000_000), seq);
            }
        });
        best = best.min(secs * 1e9 / chunk_ops as f64);
    }
    (best, checksum)
}

/// Best-of-`rounds` wall milliseconds for one `replay_30s_sf15` run,
/// plus the completion counter of the (deterministic) simulation.
fn replay_ms(queue: QueueImpl, desiccant: bool, rounds: u32) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut completed = 0u64;
    for _ in 0..rounds {
        let catalog = workloads::catalog();
        let trace = build_trace(&catalog, 11);
        let manager: Option<Box<dyn MemoryManager>> = if desiccant {
            Some(Box::new(Desiccant::new(DesiccantConfig::default())))
        } else {
            None
        };
        let mut p = Platform::new(PlatformConfig::default(), catalog, GcMode::Vanilla, manager);
        p.set_queue_impl(queue).expect("empty queue converts");
        let (secs, outcome) = timed(|| {
            replay(
                &mut p,
                &trace,
                &ReplayConfig {
                    scale: 15.0,
                    warmup: SimDuration::from_secs(5),
                    duration: SimDuration::from_secs(30),
                    drain: SimDuration::from_secs(5),
                    ..ReplayConfig::default()
                },
            )
        });
        best = best.min(secs * 1e3);
        completed = outcome.completed;
    }
    (best, completed)
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn write_json(dir: &Path, name: &str, body: &str) {
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(name);
    if let Err(e) = fs::write(&path, body) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
}

fn main() {
    let flags = Flags::parse();
    let out_dir = flags.value_of("--out-dir").unwrap_or(".").to_string();
    let dir = Path::new(&out_dir);

    // --- Event-queue microbench (hold model) ---------------------------
    let hold_n = 1 << 16;
    let ops: u64 = if flags.quick { 200_000 } else { 4_000_000 };
    let (cal_ns, cal_sum) = hold_model::<CalendarQueue<Payload>>(hold_n, ops);
    let (heap_ns, heap_sum) = hold_model::<ReferenceQueue<Payload>>(hold_n, ops);
    check(
        &flags,
        cal_sum == heap_sum,
        "hold model pops the same order on both representations",
    );
    let speedup = heap_ns / cal_ns;
    println!(
        "event_queue hold model (n={hold_n}, ops={ops}): \
         calendar {cal_ns:.1} ns/op, reference {heap_ns:.1} ns/op, {speedup:.2}x"
    );
    check(
        &flags,
        speedup >= CHECK_FLOOR_SPEEDUP,
        "calendar queue beats the heap by the regression floor",
    );
    write_json(
        dir,
        "BENCH_eventloop.json",
        &format!(
            "{{\n  \"bench\": \"event_queue_hold_model\",\n  \
             \"queue_size\": {hold_n},\n  \"ops\": {ops},\n  \
             \"quick\": {},\n  \
             \"calendar_ns_per_op\": {},\n  \
             \"reference_ns_per_op\": {},\n  \
             \"speedup\": {},\n  \"target_speedup\": {},\n  \
             \"check_floor_speedup\": {}\n}}\n",
            flags.quick,
            json_num(cal_ns),
            json_num(heap_ns),
            json_num(speedup),
            json_num(TARGET_SPEEDUP),
            json_num(CHECK_FLOOR_SPEEDUP),
        ),
    );

    // --- End-to-end replay --------------------------------------------
    let rounds: u32 = if flags.quick { 1 } else { 5 };
    let mut mode_blocks = Vec::new();
    for (mode, desiccant, pre_pr) in [
        ("vanilla", false, PRE_PR_VANILLA_MS),
        ("desiccant", true, PRE_PR_DESICCANT_MS),
    ] {
        let (cal_ms, cal_done) = replay_ms(QueueImpl::Calendar, desiccant, rounds);
        let (heap_ms, heap_done) = replay_ms(QueueImpl::Reference, desiccant, rounds);
        check(
            &flags,
            cal_done == heap_done && cal_done > 0,
            "replay completes identically on both representations",
        );
        println!(
            "replay_30s_sf15/{mode}: calendar {cal_ms:.1} ms, reference {heap_ms:.1} ms, \
             pre-PR baseline {pre_pr:.1} ms ({:.2}x vs baseline)",
            pre_pr / cal_ms
        );
        mode_blocks.push(format!(
            "    \"{mode}\": {{\n      \
             \"calendar_ms\": {},\n      \
             \"reference_ms\": {},\n      \
             \"baseline_pre_pr_ms\": {},\n      \
             \"speedup_vs_reference\": {},\n      \
             \"speedup_vs_pre_pr\": {},\n      \
             \"completed\": {cal_done}\n    }}",
            json_num(cal_ms),
            json_num(heap_ms),
            json_num(pre_pr),
            json_num(heap_ms / cal_ms),
            json_num(pre_pr / cal_ms),
        ));
    }
    write_json(
        dir,
        "BENCH_replay.json",
        &format!(
            "{{\n  \"bench\": \"azure_replay_30s_sf15\",\n  \
             \"rounds\": {rounds},\n  \"quick\": {},\n  \
             \"modes\": {{\n{}\n  }}\n}}\n",
            flags.quick,
            mode_blocks.join(",\n"),
        ),
    );

    // --- Incremental checkpoint model ---------------------------------
    // Warm steady state: every request runs immediately (cores exceed
    // the request count) and freezes, so the platform ends up holding
    // about two instances per submitted request (chains have stages).
    // Full mode lands near the 2^16-instance scale the trajectory
    // tracks; quick mode keeps the same shape at 1/16th the size.
    let requests: usize = if flags.quick { 1 << 11 } else { 1 << 15 };
    let dirty_requests: usize = if flags.quick { 64 } else { 256 };
    let ckpt_config = || PlatformConfig {
        cores: requests as f64 + 16.0,
        cache_budget: 1 << 44,
        ..PlatformConfig::default()
    };
    let catalog = workloads::catalog();
    let nf = catalog.len();
    let mut p = Platform::new(ckpt_config(), catalog, GcMode::Vanilla, None);
    for i in 0..requests {
        p.submit(SimTime(0), i % nf);
    }
    p.run_until(SimTime(3_600_000_000_000));
    let instances = p.instance_count();
    check(
        &flags,
        p.stats().completed == requests as u64,
        "checkpoint model: every warm-up request completed",
    );
    let (full_secs, full) = timed(|| p.checkpoint_base(1, &[]));
    // Thaw a small working set; only those instances (plus the always-
    // full control section) may appear in the delta.
    for i in 0..dirty_requests {
        p.submit(p.now(), i % nf);
    }
    p.run_until(p.now() + SimDuration::from_secs(3600));
    let (delta_secs, delta) = timed(|| p.checkpoint_delta(2, 1, &[]));
    let ratio = full.len() as f64 / delta.len().max(1) as f64;
    println!(
        "checkpoint model ({instances} instances): full {} bytes in {:.1} ms, \
         delta {} bytes in {:.1} ms after {dirty_requests} warm requests ({ratio:.1}x smaller)",
        full.len(),
        full_secs * 1e3,
        delta.len(),
        delta_secs * 1e3,
    );
    check(
        &flags,
        delta.len() * 4 < full.len(),
        "checkpoint model: delta writes measurably fewer bytes than the base",
    );
    // The chain must fold back to the canonical bytes of the platform
    // it was cut from — the incremental path may never trade speed for
    // fidelity.
    let canonical = p.checkpoint();
    let mut q = Platform::new(ckpt_config(), workloads::catalog(), GcMode::Vanilla, None);
    let folded = q
        .restore_chain(&[full.clone(), delta.clone()])
        .map(|_| q.checkpoint() == canonical)
        .unwrap_or(false);
    check(
        &flags,
        folded,
        "checkpoint model: base+delta fold restores the canonical state",
    );
    write_json(
        dir,
        "BENCH_checkpoint.json",
        &format!(
            "{{\n  \"bench\": \"incremental_checkpoint\",\n  \
             \"quick\": {},\n  \
             \"requests\": {requests},\n  \
             \"instances\": {instances},\n  \
             \"dirty_requests\": {dirty_requests},\n  \
             \"full_bytes\": {},\n  \
             \"delta_bytes\": {},\n  \
             \"full_over_delta_bytes\": {},\n  \
             \"full_checkpoint_ns\": {},\n  \
             \"delta_checkpoint_ns\": {}\n}}\n",
            flags.quick,
            full.len(),
            delta.len(),
            json_num(ratio),
            json_num(full_secs * 1e9),
            json_num(delta_secs * 1e9),
        ),
    );
}
