//! Figure 8: per-instance RSS and PSS improvement as concurrent
//! instances of the same function share libraries.
//!
//! Protocol (§5.2): launch N instances of `fft` on one host, run the
//! iterations in each, and compare per-instance RSS/PSS between vanilla
//! and Desiccant (reclaim + the §4.6 unmap optimization). With one
//! instance both metrics improve alike (the paper reports 4.16×); as N
//! grows the libraries amortize and PSS approaches USS.
//!
//! Flags: `--quick`, `--check`.

#![forbid(unsafe_code)]

use bench::cli::{check, Flags};
use bench::report;
use faas_runtime::{Instance, RuntimeImage};
use simos::{SimDuration, SimTime, System};
use workloads::FunctionState;

fn main() {
    let flags = Flags::parse();
    let iterations = if flags.quick { 20 } else { 100 };
    let spec = workloads::by_name("fft").expect("catalog function");
    report::caption(
        "Figure 8: per-instance RSS/PSS improvement vs concurrent instances (fft)",
        &["instances", "rss_improvement", "pss_improvement", "pss_minus_uss_mib"],
    );
    let mut one_instance_rss = 0.0;
    let mut gaps = Vec::new();
    for n in [1usize, 2, 4, 8] {
        // Vanilla world and Desiccant world, each with n instances.
        let run = |reclaim: bool| -> (f64, f64, f64) {
            let mut sys = System::new();
            let image = RuntimeImage::openwhisk(spec.language);
            let libs = image.register_files(&mut sys);
            let mut insts: Vec<(Instance, FunctionState)> = (0..n)
                .map(|i| {
                    (
                        Instance::launch(&mut sys, &image, &libs, 256 << 20, 0.14)
                            .expect("instance fits"),
                        FunctionState::new(0, 7 + i as u64),
                    )
                })
                .collect();
            let mut now = SimTime::ZERO;
            for _ in 0..iterations {
                for (inst, state) in insts.iter_mut() {
                    let r = inst
                        .invoke(&mut sys, now, &spec.exec, |ctx| state.invoke(&spec, ctx))
                        .expect("workload fits");
                    now += r.wall_time;
                }
                now += SimDuration::from_millis(100);
            }
            if reclaim {
                for (inst, _) in insts.iter_mut() {
                    inst.reclaim(&mut sys, now, true).expect("reclaim ok");
                    inst.unmap_private_libs(&mut sys).expect("unmap ok");
                }
            }
            let inst0 = &insts[0].0;
            (
                inst0.rss(&sys) as f64,
                inst0.pss(&sys),
                inst0.uss(&sys) as f64,
            )
        };
        let (v_rss, v_pss, _v_uss) = run(false);
        let (d_rss, d_pss, d_uss) = run(true);
        let rss_improvement = v_rss / d_rss.max(1.0);
        let pss_improvement = v_pss / d_pss.max(1.0);
        let gap = (d_pss - d_uss) / (1 << 20) as f64;
        report::row(&[
            n.to_string(),
            report::ratio(rss_improvement),
            report::ratio(pss_improvement),
            format!("{gap:.2}"),
        ]);
        if n == 1 {
            one_instance_rss = rss_improvement;
            check(
                &flags,
                (rss_improvement - pss_improvement).abs() < 0.3,
                "n=1: RSS and PSS improve alike (nothing is shared)",
            );
        }
        gaps.push(gap);
    }
    println!("# paper: 4.16x at one instance; PSS approaches USS as instances share");
    check(
        &flags,
        one_instance_rss > 2.0,
        "single-instance RSS improvement is large (paper 4.16x)",
    );
    // With one instance nothing is shared and the gap is trivially
    // zero; sharing starts at n = 2 and the per-instance PSS share of
    // the libraries halves with every doubling.
    check(
        &flags,
        gaps.last().expect("rows") < &gaps[1],
        "PSS-USS gap shrinks as instances share libraries",
    );
}
