//! Chaos harness: replays fig9-style Azure traces under seeded fault
//! schedules and asserts the platform's robustness invariants.
//!
//! For each fault seed the trace is replayed with every fault class
//! enabled at `--fault-rate` (default 1 %), then the platform is given
//! a settle window (the retry deadline plus slack) so every retry
//! chain resolves. Invariants, enforced with `--check`:
//!
//! * **termination** — every submitted request ends completed or
//!   failed; nothing is in flight after the settle window;
//! * **accounting** — cache charge returns exactly to zero on
//!   teardown and no simulated process survives (`Platform::shutdown`);
//! * **memory conservation** — machine-wide USS ≤ PSS ≤ RSS while
//!   instances live, and all three are zero after teardown: crash and
//!   OOM-kill paths may not leak or double-free pages;
//! * **determinism** — the same `(seed, rate)` replays to identical
//!   counters;
//! * **bounded degradation** — at a 1 % fault rate, completions stay
//!   within a bounded factor of the fault-free run.
//!
//! With `--crash-every N` or `--crash-at N` the harness additionally
//! runs the **kill–recover gate**: the replay is driven through the
//! resumable protocol — incremental base+delta checkpoints written to
//! a simulated store — the event loop is killed on the given schedule,
//! and each death is recovered from the newest verifiable checkpoint
//! chain plus the journaled requests. The gate passes only if the
//! recovered run's final state digests byte-identical to an
//! uninterrupted control — crashes must be invisible in the results.
//!
//! `--torn-write` additionally tears checkpoint writes at frame
//! boundaries on a seeded schedule, and `--corrupt-at N` flips a bit
//! at byte offset `N` of *every* checkpoint written — recovery then
//! falls back to older checkpoints, or all the way to a from-scratch
//! journal replay, and the digest must still match the control.
//!
//! Flags: `--quick`, `--check`, `--fault-seed N` (single seed instead
//! of the default sweep), `--fault-rate R`, `--crash-every N`,
//! `--crash-at N`, `--torn-write`, `--corrupt-at N`.

#![forbid(unsafe_code)]

use azure_trace::{build_trace, replay, replay_resumable, ReplayConfig, ResumeOptions};
use bench::cli::{check, Flags};
use bench::golden::Fnv1a;
use bench::report;
use desiccant::{Desiccant, DesiccantConfig};
use faas::platform::{GcMode, Platform};
use faas::{CrashPlan, FaultPlan, MemoryManager, PlatformConfig, StorageFaultPlan};
use simos::metrics::{total_pss, total_rss, total_uss};
use simos::SimDuration;

/// Everything one run exposes to the invariant checks.
#[derive(Debug, Clone, PartialEq)]
struct RunProbe {
    submitted: u64,
    completed: u64,
    failed: u64,
    retries: u64,
    fault_events: u64,
    breaker_trips: u64,
    oom_kills: u64,
    in_flight: u64,
    /// Machine USS/PSS/RSS ordering held while instances were live.
    metrics_ordered: bool,
    /// `shutdown()` succeeded: cache charge and process table at zero.
    clean_teardown: bool,
    /// Machine RSS and PSS after teardown (must be zero).
    residual_rss: u64,
    residual_pss_bytes: u64,
}

fn run_one(mode: &str, quick: bool, faults: Option<FaultPlan>) -> RunProbe {
    let catalog = workloads::catalog();
    let trace = build_trace(&catalog, 7);
    let manager: Option<Box<dyn MemoryManager>> = match mode {
        "desiccant" => Some(Box::new(Desiccant::new(DesiccantConfig::default()))),
        _ => None,
    };
    let platform_config = PlatformConfig {
        faults,
        ..PlatformConfig::default()
    };
    let mut p = Platform::new(platform_config, catalog, GcMode::Vanilla, manager);
    let config = ReplayConfig {
        scale: 15.0,
        warmup: SimDuration::from_secs(if quick { 10 } else { 30 }),
        duration: SimDuration::from_secs(if quick { 40 } else { 120 }),
        drain: SimDuration::from_secs(20),
        ..ReplayConfig::default()
    };
    replay(&mut p, &trace, &config);
    // Let every retry chain resolve: no retry is ever scheduled past
    // its arrival plus the request deadline, so deadline-plus-slack of
    // idle simulation guarantees quiescence.
    let settle = p.config().request_deadline + p.config().retry_backoff_cap;
    p.run_until(p.now() + settle);

    let sys = p.system();
    let (uss, pss, rss) = (total_uss(sys), total_pss(sys), total_rss(sys));
    let metrics_ordered = uss as f64 <= pss + 1e-6 && pss <= rss as f64 + 1e-6;
    let stats = p.stats().clone();
    // Lifetime totals (warm-up included): the conservation invariant
    // must hold over every request the platform ever accepted, not
    // just the measured window.
    let (submitted, completed, failed) = p.request_totals();
    let in_flight = p.in_flight();
    let clean_teardown = match p.shutdown() {
        Ok(()) => true,
        Err(e) => {
            eprintln!("shutdown failed ({mode}): {e}");
            false
        }
    };
    let sys = p.system();
    RunProbe {
        submitted,
        completed,
        failed,
        retries: stats.retries,
        fault_events: stats.fault_events(),
        breaker_trips: stats.breaker_trips,
        oom_kills: stats.oom_kills,
        in_flight,
        metrics_ordered,
        clean_teardown,
        residual_rss: total_rss(sys),
        residual_pss_bytes: total_pss(sys).round() as u64,
    }
}

/// Digests a resumable run: the full final-state checkpoint plus every
/// reported metric, so a recovered run must match the control in both
/// simulation state and measured results.
fn resume_digest(out: &azure_trace::ResumeOutcome) -> u64 {
    let mut h = Fnv1a::new();
    h.write(&out.final_state);
    let o = &out.outcome;
    h.write_u64(o.submitted);
    h.write_u64(o.completed);
    h.write_f64(o.cold_boot_rate);
    h.write_f64(o.cold_boot_fraction);
    h.write_f64(o.throughput);
    h.write_f64(o.cpu_utilization);
    h.write_f64(o.reclaim_cpu_fraction);
    h.write_u64(o.evictions);
    h.write_u64(o.failed);
    h.write_u64(o.retries);
    h.write_u64(o.fault_events);
    let (p50, p90, p95, p99) = o.latency_ms;
    h.write_f64(p50);
    h.write_f64(p90);
    h.write_f64(p95);
    h.write_f64(p99);
    h.finish()
}

/// The kill–recover gate: drive the resumable replay, kill it on
/// `crash`'s schedule — with `storage` additionally corrupting the
/// checkpoint writes — recover from the newest verifiable checkpoint
/// chain + journal, and demand the final state digest byte-identical
/// to an uninterrupted (and storage-fault-free) control.
fn kill_recover_gate(flags: &Flags, crash: CrashPlan, storage: Option<StorageFaultPlan>) {
    report::caption(
        "Kill-recover: crash on schedule, restore checkpoint chain, replay journal",
        &["mode", "recoveries", "scratch", "store_faults", "control", "recovered"],
    );
    for mode in ["vanilla", "desiccant"] {
        let make = || {
            let manager: Option<Box<dyn MemoryManager>> = match mode {
                "desiccant" => Some(Box::new(Desiccant::new(DesiccantConfig::default()))),
                _ => None,
            };
            Platform::new(
                PlatformConfig::default(),
                workloads::catalog(),
                GcMode::Vanilla,
                manager,
            )
        };
        let trace = build_trace(&workloads::catalog(), 7);
        let config = ReplayConfig {
            scale: 15.0,
            warmup: SimDuration::from_secs(if flags.quick { 8 } else { 30 }),
            duration: SimDuration::from_secs(if flags.quick { 30 } else { 120 }),
            drain: SimDuration::from_secs(20),
            ..ReplayConfig::default()
        };
        let control = replay_resumable(make, &trace, &config, &ResumeOptions::default(), None);
        let opts = ResumeOptions {
            storage_faults: storage,
            ..ResumeOptions::default()
        };
        let recovered = replay_resumable(make, &trace, &config, &opts, Some(crash));
        let (dc, dr) = (resume_digest(&control), resume_digest(&recovered));
        report::row(&[
            mode.into(),
            format!("{}", recovered.recoveries),
            format!("{}", recovered.scratch_recoveries),
            format!("{}", recovered.storage_faults_injected),
            format!("{dc:016x}"),
            format!("{dr:016x}"),
        ]);
        check(
            flags,
            control.recoveries == 0,
            &format!("{mode}: control run was never killed"),
        );
        check(
            flags,
            recovered.recoveries > 0,
            &format!("{mode}: crash schedule fired at least once"),
        );
        if storage.is_some() {
            check(
                flags,
                recovered.storage_faults_injected > 0,
                &format!("{mode}: storage fault plan fired at least once"),
            );
        }
        check(
            flags,
            dc == dr,
            &format!("{mode}: recovered digest matches uninterrupted control"),
        );
        // The recovered state must also tear down clean: restore it
        // into a fresh platform and demand zero residue.
        let mut p = make();
        let restored = p.restore(&recovered.final_state).is_ok();
        let clean = restored && p.shutdown().is_ok();
        let sys = p.system();
        check(
            flags,
            clean && total_rss(sys) == 0 && total_pss(sys).round() as u64 == 0,
            &format!("{mode}: shutdown after restore leaves no residue"),
        );
    }
}

fn main() {
    let flags = Flags::parse();
    let crash = flags
        .value_of("--crash-every")
        .and_then(|v| v.parse().ok())
        .map(CrashPlan::every)
        .or_else(|| {
            flags
                .value_of("--crash-at")
                .and_then(|v| v.parse().ok())
                .map(CrashPlan::at)
        });
    let rate: f64 = flags
        .value_of("--fault-rate")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.01);
    let seeds: Vec<u64> = match flags.value_of("--fault-seed").and_then(|v| v.parse().ok()) {
        Some(seed) => vec![seed],
        None => vec![11, 23, 47],
    };
    let modes = ["vanilla", "desiccant"];
    report::caption(
        "Chaos: seeded fault schedules over an Azure-trace replay",
        &[
            "seed",
            "mode",
            "rate",
            "submitted",
            "completed",
            "failed",
            "retries",
            "fault_events",
            "breaker_trips",
            "oom_kills",
        ],
    );

    // Fault-free baselines: both for the degradation bound and as a
    // standing inertness check of the fault machinery.
    let mut baseline = Vec::new();
    for mode in modes {
        let probe = run_one(mode, flags.quick, None);
        report::row(&[
            "-".into(),
            mode.into(),
            "0".into(),
            format!("{}", probe.submitted),
            format!("{}", probe.completed),
            format!("{}", probe.failed),
            format!("{}", probe.retries),
            format!("{}", probe.fault_events),
            format!("{}", probe.breaker_trips),
            format!("{}", probe.oom_kills),
        ]);
        check(
            &flags,
            probe.failed == 0 && probe.retries == 0 && probe.fault_events == 0,
            &format!("{mode}: fault-free run reports zero failures"),
        );
        check(
            &flags,
            probe.submitted == probe.completed && probe.in_flight == 0,
            &format!("{mode}: fault-free run completes every request"),
        );
        check(
            &flags,
            probe.clean_teardown && probe.residual_rss == 0 && probe.residual_pss_bytes == 0,
            &format!("{mode}: fault-free teardown leaves no residue"),
        );
        baseline.push((mode, probe));
    }

    let mut total_fault_events = 0u64;
    for &seed in &seeds {
        let plan = FaultPlan::uniform(seed, rate);
        for (mode, base) in &baseline {
            let probe = run_one(mode, flags.quick, Some(plan));
            report::row(&[
                format!("{seed}"),
                (*mode).into(),
                format!("{rate}"),
                format!("{}", probe.submitted),
                format!("{}", probe.completed),
                format!("{}", probe.failed),
                format!("{}", probe.retries),
                format!("{}", probe.fault_events),
                format!("{}", probe.breaker_trips),
                format!("{}", probe.oom_kills),
            ]);
            total_fault_events += probe.fault_events;
            check(
                &flags,
                probe.completed + probe.failed == probe.submitted && probe.in_flight == 0,
                &format!("seed {seed} {mode}: every request terminates"),
            );
            check(
                &flags,
                probe.metrics_ordered,
                &format!("seed {seed} {mode}: machine USS <= PSS <= RSS held"),
            );
            check(
                &flags,
                probe.clean_teardown,
                &format!("seed {seed} {mode}: cache accounting returns to zero"),
            );
            check(
                &flags,
                probe.residual_rss == 0 && probe.residual_pss_bytes == 0,
                &format!("seed {seed} {mode}: no resident memory survives teardown"),
            );
            if rate <= 0.011 {
                // Bounded degradation at the default 1 % rate: a small
                // fault rate may not halve throughput.
                check(
                    &flags,
                    probe.completed as f64 >= 0.9 * base.completed as f64,
                    &format!("seed {seed} {mode}: completions within 0.9x of fault-free"),
                );
            }
            // Determinism: an identical plan must replay identically.
            let again = run_one(mode, flags.quick, Some(plan));
            check(
                &flags,
                again == probe,
                &format!("seed {seed} {mode}: replay is deterministic"),
            );
        }
    }
    check(
        &flags,
        seeds.is_empty() || rate == 0.0 || total_fault_events > 0,
        "seeded runs actually injected faults",
    );

    if let Some(plan) = crash {
        // Storage-fault schedule for the checkpoint store, if any: a
        // seeded torn-write schedule, or a pinned bit flip in every
        // checkpoint written (recovery then replays the journal from
        // nothing — and must still digest identical to the control).
        let storage_seed = seeds.first().copied().unwrap_or(11);
        let storage = if let Some(offset) =
            flags.value_of("--corrupt-at").and_then(|v| v.parse().ok())
        {
            Some(StorageFaultPlan::corrupt_at(storage_seed, offset))
        } else if flags.has("--torn-write") {
            Some(StorageFaultPlan::torn(storage_seed, 0.5))
        } else {
            None
        };
        kill_recover_gate(&flags, plan, storage);
    }
}
