//! Figure 9: performance on (synthetic) Azure traces across scale
//! factors — cold-boot rate, throughput, and CPU utilization for
//! vanilla, eager, and Desiccant.
//!
//! Paper shape: Desiccant cuts the cold-boot rate by up to 4.49× vs.
//! vanilla (3.75× vs. eager), gains throughput at saturation (+17.4 %),
//! and lowers CPU utilization (cold boots are CPU-heavy); eager burns
//! extra CPU at low scale factors (per-exit GCs); reclamation itself
//! stays under ~6 % CPU.
//!
//! Flags: `--quick` (smaller sweep, shorter replay), `--check`.

#![forbid(unsafe_code)]

use azure_trace::{build_trace, replay, ReplayConfig};
use bench::cli::{check, Flags};
use bench::report;
use desiccant::{Desiccant, DesiccantConfig};
use faas::platform::{GcMode, Platform};
use faas::{MemoryManager, PlatformConfig};
use simos::SimDuration;

fn run_one(scale: f64, mode: &str, quick: bool) -> azure_trace::ReplayOutcome {
    let catalog = workloads::catalog();
    let trace = build_trace(&catalog, 11);
    let manager: Option<Box<dyn MemoryManager>> = match mode {
        "desiccant" => Some(Box::new(Desiccant::new(DesiccantConfig::default()))),
        _ => None,
    };
    let gc = if mode == "eager" { GcMode::Eager } else { GcMode::Vanilla };
    let mut p = Platform::new(PlatformConfig::default(), catalog, gc, manager);
    let config = ReplayConfig {
        scale,
        // The quick window still has to be long enough for cache
        // pressure to build at sf 15, or the cold-boot checks become
        // vacuous (all modes identical).
        warmup: SimDuration::from_secs(if quick { 45 } else { 60 }),
        duration: SimDuration::from_secs(if quick { 150 } else { 180 }),
        ..ReplayConfig::default()
    };
    replay(&mut p, &trace, &config)
}

fn main() {
    let flags = Flags::parse();
    let scales: &[f64] = if flags.quick {
        &[5.0, 15.0, 25.0]
    } else {
        &[5.0, 10.0, 15.0, 20.0, 25.0, 30.0]
    };
    report::caption(
        "Figure 9: performance on Azure traces",
        &[
            "scale",
            "mode",
            "cold_boots_per_s",
            "throughput_rps",
            "cpu_utilization",
            "reclaim_cpu",
            "failed",
            "retries",
            "fault_events",
        ],
    );
    let mut residual_faults = 0u64;
    let mut at15: Vec<(String, azure_trace::ReplayOutcome)> = Vec::new();
    let mut at_hi: Vec<(String, azure_trace::ReplayOutcome)> = Vec::new();
    let mut eager_low_util = 0.0;
    let mut vanilla_low_util = 0.0;
    for &scale in scales {
        for mode in ["vanilla", "eager", "desiccant"] {
            let out = run_one(scale, mode, flags.quick);
            report::row(&[
                format!("{scale}"),
                mode.into(),
                format!("{:.3}", out.cold_boot_rate),
                format!("{:.1}", out.throughput),
                format!("{:.3}", out.cpu_utilization),
                format!("{:.3}", out.reclaim_cpu_fraction),
                format!("{}", out.failed),
                format!("{}", out.retries),
                format!("{}", out.fault_events),
            ]);
            residual_faults += out.failed + out.retries + out.fault_events;
            if (scale - 15.0).abs() < 1e-9 {
                at15.push((mode.into(), out.clone()));
            }
            if (scale - scales.last().expect("nonempty")).abs() < 1e-9 {
                at_hi.push((mode.into(), out.clone()));
            }
            if (scale - 5.0).abs() < 1e-9 {
                match mode {
                    "eager" => eager_low_util = out.cpu_utilization,
                    "vanilla" => vanilla_low_util = out.cpu_utilization,
                    _ => {}
                }
            }
        }
    }
    let get = |rows: &[(String, azure_trace::ReplayOutcome)], m: &str| {
        rows.iter().find(|(n, _)| n == m).expect("mode row").1.clone()
    };
    let (v15, e15, d15) = (get(&at15, "vanilla"), get(&at15, "eager"), get(&at15, "desiccant"));
    let boot_vd = v15.cold_boot_rate / d15.cold_boot_rate.max(1e-9);
    let boot_ed = e15.cold_boot_rate / d15.cold_boot_rate.max(1e-9);
    println!("# sf15: cold-boot reduction vanilla/desiccant {boot_vd:.2}x (paper up to 4.49x), eager/desiccant {boot_ed:.2}x (paper up to 3.75x)");
    check(&flags, boot_vd > 1.5, "desiccant cuts vanilla cold boots at sf15");
    check(&flags, boot_ed > 1.2, "desiccant cuts eager cold boots at sf15");
    check(
        &flags,
        d15.cpu_utilization < v15.cpu_utilization,
        "desiccant uses less CPU than vanilla at sf15",
    );
    check(
        &flags,
        d15.reclaim_cpu_fraction < 0.062,
        "reclamation CPU stays under the paper's 6.2%",
    );
    let (v_hi, d_hi) = (get(&at_hi, "vanilla"), get(&at_hi, "desiccant"));
    println!(
        "# top scale: throughput vanilla {:.1} vs desiccant {:.1} rps (paper: +17.4% for desiccant at saturation)",
        v_hi.throughput, d_hi.throughput
    );
    check(
        &flags,
        d_hi.throughput >= v_hi.throughput * 0.999,
        "desiccant throughput at least matches vanilla at the top scale",
    );
    println!(
        "# sf5: cpu utilization vanilla {vanilla_low_util:.3} vs eager {eager_low_util:.3} (paper: eager higher at low scale)"
    );
    // Standing inertness regression: no fault plan is installed here,
    // so every failure/retry/fault counter must be dead zero.
    check(
        &flags,
        residual_faults == 0,
        "fault-free runs report zero failures, retries, and fault events",
    );
}
