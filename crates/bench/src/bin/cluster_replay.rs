//! Cluster replay harness: the `BENCH_cluster.json` trajectory.
//!
//! Runs the Azure-trace replay protocol over a sharded [`Cluster`] at
//! several worker counts and reports wall time per count, the speedup
//! against the serial (`jobs = 1`) run, and the determinism oracle:
//! every job count must land on the byte-identical cluster digest, and
//! a run with one shard killed and recovered mid-replay must land on
//! the digest of its uninterrupted control.
//!
//! Timing is wall-clock by necessity — the harness measures host
//! scaling, not simulated behavior — and every timed run is the
//! identical deterministic simulation (asserted on the digests), so
//! the numbers never feed back into results.
//!
//! The `--check` scaling floor (≥ [`CHECK_FLOOR_SPEEDUP`]x at 4 jobs)
//! is enforced only when the host actually has 4 cores to scale onto;
//! on smaller hosts the floor is waived with a note and `host_cores`
//! is recorded in the JSON so the committed numbers are interpretable.
//!
//! Flags: `--quick` (smaller trace, for the tier-1 smoke run),
//! `--out-dir DIR` (default `.`), `--check` (assert determinism and,
//! core count permitting, the scaling floor).

#![forbid(unsafe_code)]

use std::fs;
use std::path::Path;

use azure_trace::{build_trace, replay_cluster, ClusterReplayOutcome, ReplayConfig};
use bench::cli::{check, Flags};
use cluster::{Cluster, ClusterConfig, Placement, ShardSetup};
use desiccant::{Desiccant, DesiccantConfig};
use faas::{CrashPlan, MemoryManager};
use simos::SimDuration;

/// Shards in the simulated cluster.
const SHARDS: u32 = 8;

/// Worker counts swept (first entry is the serial baseline).
const JOBS: &[usize] = &[1, 2, 4];

/// Scaling floor `--check` enforces at 4 jobs on hosts with ≥ 4
/// cores. The acceptance target, not a stretch goal: the barrier
/// protocol serializes only placement and merge, so 8 shards on 4
/// cores have ample parallel work.
const CHECK_FLOOR_SPEEDUP: f64 = 1.5;

fn desiccant_manager(_shard: u32) -> Option<Box<dyn MemoryManager>> {
    Some(Box::new(Desiccant::new(DesiccantConfig::default())))
}

/// Wall-clock seconds spent in `f` (host measurement, not sim state).
fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    #[allow(clippy::disallowed_methods)]
    // tidy:allow(wall-clock) -- this harness measures host scaling; wall time never enters simulation state
    let t0 = std::time::Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}

fn scenario(quick: bool) -> ReplayConfig {
    if quick {
        ReplayConfig {
            warmup: SimDuration::from_secs(6),
            duration: SimDuration::from_secs(16),
            drain: SimDuration::from_secs(8),
            scale: 10.0,
            warmup_scale: 10.0,
            seed: 17,
        }
    } else {
        ReplayConfig {
            warmup: SimDuration::from_secs(15),
            duration: SimDuration::from_secs(90),
            drain: SimDuration::from_secs(15),
            scale: 15.0,
            warmup_scale: 15.0,
            seed: 17,
        }
    }
}

fn cluster(jobs: usize) -> Cluster {
    let mut setup = ShardSetup::vanilla();
    setup.manager = desiccant_manager;
    let cfg = ClusterConfig {
        shards: SHARDS,
        policy: Placement::ColdStartAware,
        jobs,
        ..ClusterConfig::default()
    };
    Cluster::new(cfg, &setup)
}

/// One full replay at `jobs` workers: best-of-`rounds` wall
/// milliseconds, the (jobs-invariant) outcome, and the total event
/// count — the scale kill schedules are sized against.
fn run(jobs: usize, rounds: u32, quick: bool) -> (f64, ClusterReplayOutcome, u64) {
    let config = scenario(quick);
    let trace = build_trace(&workloads::catalog(), 13);
    let mut best = f64::INFINITY;
    let mut outcome = None;
    let mut events = 0;
    for _ in 0..rounds {
        let mut c = cluster(jobs);
        let (secs, out) = timed(|| replay_cluster(&mut c, &trace, &config));
        best = best.min(secs * 1e3);
        outcome = Some(out);
        events = c.events_seen();
    }
    (best, outcome.expect("at least one round"), events)
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn write_json(dir: &Path, name: &str, body: &str) {
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(name);
    if let Err(e) = fs::write(&path, body) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
}

fn main() {
    let flags = Flags::parse();
    let out_dir = flags.value_of("--out-dir").unwrap_or(".").to_string();
    let dir = Path::new(&out_dir);
    let rounds: u32 = if flags.quick { 1 } else { 3 };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // --- Jobs sweep ----------------------------------------------------
    let mut sweep = Vec::new();
    for &jobs in JOBS {
        let (ms, outcome, events) = run(jobs, rounds, flags.quick);
        println!(
            "cluster_replay ({SHARDS} shards, {jobs} jobs): {ms:.1} ms, \
             {} completed, digest {:#018x}",
            outcome.completed, outcome.digest
        );
        sweep.push((jobs, ms, outcome, events));
    }
    let (_, serial_ms, serial, events) = (sweep[0].0, sweep[0].1, sweep[0].2, sweep[0].3);
    check(&flags, serial.completed > 0, "cluster replay completes requests");
    for (jobs, _, outcome, _) in &sweep {
        check(
            &flags,
            *outcome == serial,
            "cluster digest is byte-identical at every job count",
        );
        if *outcome != serial {
            eprintln!("jobs={jobs} diverged: {outcome:?} vs {serial:?}");
        }
    }

    // --- Kill-recover schedule ----------------------------------------
    // Kill shard 3 repeatedly, often enough to fire a handful of times
    // over the run; the recovered trajectory must digest identically
    // to the uninterrupted control above.
    let kill_every = (events / u64::from(SHARDS) / 6).max(40);
    let config = scenario(flags.quick);
    let trace = build_trace(&workloads::catalog(), 13);
    let mut chaos = cluster(2);
    chaos.plan_kill(3, CrashPlan::every(kill_every));
    let chaos_outcome = replay_cluster(&mut chaos, &trace, &config);
    println!(
        "kill-recover (shard 3 every {kill_every} events): {} recoveries, \
         digest {:#018x}",
        chaos_outcome.recoveries, chaos_outcome.digest
    );
    check(
        &flags,
        chaos_outcome.recoveries > 0,
        "kill schedule fires at least once",
    );
    check(
        &flags,
        chaos_outcome.digest == serial.digest && chaos_outcome.completed == serial.completed,
        "recovered cluster digests identical to the uninterrupted control",
    );

    // --- Scaling floor -------------------------------------------------
    let four_jobs = sweep.iter().find(|(jobs, ..)| *jobs == 4);
    let speedup_at_4 = four_jobs.map(|&(_, ms, ..)| serial_ms / ms);
    if let Some(speedup) = speedup_at_4 {
        println!("speedup at 4 jobs vs serial: {speedup:.2}x (host has {host_cores} cores)");
        if host_cores >= 4 {
            check(
                &flags,
                speedup >= CHECK_FLOOR_SPEEDUP,
                "parallel replay clears the scaling floor at 4 jobs",
            );
        } else {
            println!(
                "scaling floor waived: {host_cores} host core(s) cannot \
                 demonstrate 4-way scaling"
            );
        }
    }

    // --- JSON ----------------------------------------------------------
    let jobs_blocks: Vec<String> = sweep
        .iter()
        .map(|&(jobs, ms, ..)| {
            format!(
                "    \"{jobs}\": {{\n      \"ms\": {},\n      \
                 \"speedup_vs_1job\": {}\n    }}",
                json_num(ms),
                json_num(serial_ms / ms),
            )
        })
        .collect();
    write_json(
        dir,
        "BENCH_cluster.json",
        &format!(
            "{{\n  \"bench\": \"cluster_replay\",\n  \
             \"quick\": {},\n  \
             \"shards\": {SHARDS},\n  \
             \"policy\": \"cold_start_aware\",\n  \
             \"host_cores\": {host_cores},\n  \
             \"floor_enforced\": {},\n  \
             \"check_floor_speedup_at_4_jobs\": {},\n  \
             \"completed\": {},\n  \
             \"digest\": \"{:#018x}\",\n  \
             \"kill_every\": {kill_every},\n  \
             \"kill_recoveries\": {},\n  \
             \"jobs\": {{\n{}\n  }}\n}}\n",
            flags.quick,
            host_cores >= 4,
            json_num(CHECK_FLOOR_SPEEDUP),
            serial.completed,
            serial.digest,
            chaos_outcome.recoveries,
            jobs_blocks.join(",\n"),
        ),
    );
}
