//! Cluster replay harness: the `BENCH_cluster.json` and
//! `BENCH_availability.json` trajectories.
//!
//! Plain mode runs the Azure-trace replay protocol over a sharded
//! [`Cluster`] at several worker counts and reports wall time per
//! count, the speedup against the serial (`jobs = 1`) run, and the
//! determinism oracle: every job count must land on the byte-identical
//! cluster digest, and a run with one shard killed and recovered
//! mid-replay must land on the digest of its uninterrupted control.
//!
//! `--outage` and `--partition` run the fleet failure-domain gates:
//! the same replay with a seeded shard outage window (`Down` or
//! `Partitioned`), checked for digest invariance across worker counts,
//! digest identity between a kill+outage run and its kill-free control
//! with the same plan, request conservation, heal accounting, warm-set
//! drain ahead of a planned outage, and the availability SLO (hedged
//! retries keep the success rate through the window, while a
//! retry-less control demonstrably loses requests). `--outage` also
//! writes `BENCH_availability.json`.
//!
//! Every replay prints its request-conservation accounting line
//! (`conservation OK: …`), which `scripts/tier1.sh` greps for.
//!
//! Timing is wall-clock by necessity — the harness measures host
//! scaling, not simulated behavior — and every timed run is the
//! identical deterministic simulation (asserted on the digests), so
//! the numbers never feed back into results.
//!
//! The `--check` scaling floor (≥ [`CHECK_FLOOR_SPEEDUP`]x at 4 jobs)
//! is enforced only when the host actually has 4 cores to scale onto;
//! on smaller hosts the floor is waived with a note and `host_cores`
//! is recorded in the JSON so the committed numbers are interpretable.

#![forbid(unsafe_code)]

use std::fs;
use std::path::Path;

use azure_trace::{build_trace, replay_cluster, ClusterReplayOutcome, ReplayConfig};
use bench::cli::{check, Flags};
use cluster::{
    AvailabilityReport, Cluster, ClusterConfig, FrontEndConfig, Placement, ShardSetup,
};
use desiccant::{Desiccant, DesiccantConfig};
use faas::{CrashPlan, MemoryManager, OutageKind, OutagePlan, OutageWindow};
use simos::SimDuration;

/// Shards in the simulated cluster.
const SHARDS: u32 = 8;

/// Worker counts swept (first entry is the serial baseline).
const JOBS: &[usize] = &[1, 2, 4];

/// Scaling floor `--check` enforces at 4 jobs on hosts with ≥ 4
/// cores. The acceptance target, not a stretch goal: the barrier
/// protocol serializes only placement and merge, so 8 shards on 4
/// cores have ample parallel work.
const CHECK_FLOOR_SPEEDUP: f64 = 1.5;

/// The seeded outage window the failure-domain gates replay: shard 5
/// (the busiest hash-affinity home for the seed-13 trace) unreachable
/// for rounds 6–8 (12 s–18 s at the 2 s default round), inside the
/// measured window for both the quick and full scenarios.
const OUT_SHARD: u32 = 5;
const OUT_START: u64 = 6;
const OUT_ROUNDS: u64 = 3;

/// Availability SLO the hedged outage run must clear under `--check`.
const SLO_SUCCESS: f64 = 0.999;

fn usage() {
    println!(
        "cluster_replay — sharded replay: scaling sweep, determinism \
         oracle, and fleet failure-domain gates\n\
         \n\
         USAGE: cluster_replay [FLAGS]\n\
         \n\
         Common flags:\n\
         \x20 --quick         smaller trace (the tier-1 smoke \
         configuration)\n\
         \x20 --check         assert the determinism / conservation / \
         SLO invariants; exit non-zero on violation\n\
         \x20 --out-dir DIR   where the BENCH_*.json artifacts go \
         (default `.`)\n\
         \x20 --jobs N        unused here; the harness sweeps its own \
         worker counts ({JOBS:?})\n\
         \x20 --help          this text\n\
         \n\
         Availability gates (fleet failure domains):\n\
         \x20 --outage        replay with shard {OUT_SHARD} Down for rounds \
         {OUT_START}..{}: digest invariance across --jobs 1/2/4 and vs a \
         kill+outage run, durable-store heal accounting, planned-drain \
         migration check, hedged-vs-bare SLO comparison; writes \
         BENCH_availability.json\n\
         \x20 --partition     same window as a Partitioned \
         (reachability-only) fault: the shard keeps executing, nothing \
         heals through the store\n\
         \n\
         Every run prints its `conservation OK: …` accounting line; the \
         tier-1 gate greps for it.\n\
         \n\
         Jobs-sweep note: the plain-mode scaling floor \
         ({CHECK_FLOOR_SPEEDUP}x at 4 jobs) is waived on hosts with \
         fewer than 4 cores — a 1-core host cannot demonstrate 4-way \
         scaling, so the floor is not enforced there and `host_cores` \
         is recorded in BENCH_cluster.json instead. The availability \
         gates are pure determinism/accounting checks and run \
         everywhere, core count notwithstanding.",
        OUT_START + OUT_ROUNDS,
    );
}

fn desiccant_manager(_shard: u32) -> Option<Box<dyn MemoryManager>> {
    Some(Box::new(Desiccant::new(DesiccantConfig::default())))
}

/// Wall-clock seconds spent in `f` (host measurement, not sim state).
fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    #[allow(clippy::disallowed_methods)]
    // tidy:allow(wall-clock) -- this harness measures host scaling; wall time never enters simulation state
    let t0 = std::time::Instant::now();
    let out = f();
    (t0.elapsed().as_secs_f64(), out)
}

fn scenario(quick: bool) -> ReplayConfig {
    if quick {
        ReplayConfig {
            warmup: SimDuration::from_secs(6),
            duration: SimDuration::from_secs(16),
            drain: SimDuration::from_secs(8),
            scale: 10.0,
            warmup_scale: 10.0,
            seed: 17,
        }
    } else {
        ReplayConfig {
            warmup: SimDuration::from_secs(15),
            duration: SimDuration::from_secs(90),
            drain: SimDuration::from_secs(15),
            scale: 15.0,
            warmup_scale: 15.0,
            seed: 17,
        }
    }
}

fn cluster_with(jobs: usize, policy: Placement, frontend: FrontEndConfig) -> Cluster {
    let mut setup = ShardSetup::vanilla();
    setup.manager = desiccant_manager;
    let cfg = ClusterConfig {
        shards: SHARDS,
        policy,
        jobs,
        frontend,
        ..ClusterConfig::default()
    };
    Cluster::new(cfg, &setup)
}

fn cluster(jobs: usize, frontend: FrontEndConfig) -> Cluster {
    cluster_with(jobs, Placement::ColdStartAware, frontend)
}

/// One full replay at `jobs` workers: best-of-`rounds` wall
/// milliseconds, the (jobs-invariant) outcome, and the total event
/// count — the scale kill schedules are sized against. Prints the
/// conservation accounting line of the last round.
fn run(jobs: usize, rounds: u32, quick: bool) -> (f64, ClusterReplayOutcome, u64) {
    let config = scenario(quick);
    let trace = build_trace(&workloads::catalog(), 13);
    let mut best = f64::INFINITY;
    let mut outcome = None;
    let mut line = String::new();
    let mut events = 0;
    for _ in 0..rounds {
        let mut c = cluster(jobs, FrontEndConfig::default());
        let (secs, out) = timed(|| replay_cluster(&mut c, &trace, &config));
        best = best.min(secs * 1e3);
        outcome = Some(out);
        line = c.availability().conservation_line();
        events = c.events_seen();
    }
    println!("{line}");
    (best, outcome.expect("at least one round"), events)
}

/// One failure-domain replay: outage plan plus optional kill schedule
/// on the outage shard, with its conservation line printed.
fn run_faulted(
    jobs: usize,
    quick: bool,
    frontend: FrontEndConfig,
    plan: Option<OutagePlan>,
    kill_every: Option<u64>,
) -> (ClusterReplayOutcome, AvailabilityReport, u64) {
    let config = scenario(quick);
    let trace = build_trace(&workloads::catalog(), 13);
    // Hash affinity pins each function to its home shard, so the
    // seeded window reliably strands (and then rescues) real traffic;
    // a load-adaptive policy at smoke scale can route around the dark
    // shard entirely and leave the retry machinery untested.
    let mut c = cluster_with(jobs, Placement::HashAffinity, frontend);
    if let Some(plan) = plan {
        c.set_outage_plan(plan);
    }
    if let Some(every) = kill_every {
        c.plan_kill(OUT_SHARD, CrashPlan::every(every));
    }
    let out = replay_cluster(&mut c, &trace, &config);
    let avail = c.availability();
    println!("{}", avail.conservation_line());
    (out, avail, c.events_seen())
}

fn window(kind: OutageKind, planned: bool) -> OutagePlan {
    OutagePlan::new(vec![OutageWindow {
        shard: OUT_SHARD,
        start: OUT_START,
        rounds: OUT_ROUNDS,
        kind,
        planned,
    }])
}

fn ms(d: Option<SimDuration>) -> f64 {
    d.map_or(f64::NAN, |d| d.0 as f64 / 1e6)
}

fn slo_block(r: &AvailabilityReport) -> String {
    format!(
        "{{\n      \"success_rate\": {},\n      \"p50_ms\": {},\n      \
         \"p99_ms\": {},\n      \"delivered\": {},\n      \
         \"failed\": {},\n      \"retries\": {},\n      \
         \"hedges\": {},\n      \"hedge_wins\": {}\n    }}",
        json_num(r.success_rate),
        json_num(ms(r.p50)),
        json_num(ms(r.p99)),
        r.stats.delivered,
        r.stats.failed(),
        r.stats.retries,
        r.stats.hedges,
        r.stats.hedge_wins,
    )
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn write_json(dir: &Path, name: &str, body: &str) {
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(name);
    if let Err(e) = fs::write(&path, body) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
}

/// The `--outage` / `--partition` gate: digest invariance, kill
/// identity, conservation, heal accounting, and (for `Down`) the
/// planned-drain and SLO checks with the `BENCH_availability.json`
/// artifact.
fn failure_domain_gate(flags: &Flags, kind: OutageKind, dir: &Path) {
    let kind_name = kind.name();
    println!("== failure domains: {kind_name} window on shard {OUT_SHARD} ==");
    let hedged = FrontEndConfig {
        hedge: true,
        ..FrontEndConfig::default()
    };

    // Jobs sweep under the outage: one outcome, any worker count.
    let mut sweep = Vec::new();
    let mut events = 0;
    for &jobs in JOBS {
        let (out, avail, ev) =
            run_faulted(jobs, flags.quick, hedged, Some(window(kind, false)), None);
        println!(
            "{kind_name} outage ({jobs} jobs): {} delivered, {} retries, \
             {} heals, digest {:#018x}",
            out.delivered, out.retries, out.heals, out.digest
        );
        check(flags, avail.conservation_holds(), "outage run conserves every request");
        events = ev;
        sweep.push((jobs, out, avail));
    }
    let (base, base_avail) = (sweep[0].1, sweep[0].2.clone());
    for (jobs, out, _) in &sweep {
        check(
            flags,
            *out == base,
            "outage digest is byte-identical at every job count",
        );
        if *out != base {
            eprintln!("jobs={jobs} diverged under {kind_name}: {out:?} vs {base:?}");
        }
    }
    check(flags, base.outage_rounds > 0, "the outage window darkened rounds");
    check(flags, base.retries > 0, "stranded requests retried");
    check(
        flags,
        base.pending_retries == 0,
        "no request is still stranded after the drain",
    );
    match kind {
        OutageKind::Down => check(
            flags,
            base.heals > 0,
            "a Down shard healed through its durable checkpoint store",
        ),
        OutageKind::Partitioned => check(
            flags,
            base.heals == 0,
            "a partition needs no state rebuild (heals stay zero)",
        ),
    }

    // Kill + outage must land on the kill-free control's digest.
    let kill_every = (events / u64::from(SHARDS) / 6).max(40);
    let (chaos, chaos_avail, _) =
        run_faulted(2, flags.quick, hedged, Some(window(kind, false)), Some(kill_every));
    println!(
        "{kind_name} + kill (shard {OUT_SHARD} every {kill_every} events): \
         {} recoveries, digest {:#018x}",
        chaos.recoveries, chaos.digest
    );
    check(flags, chaos_avail.conservation_holds(), "kill+outage run conserves every request");
    check(flags, chaos.recoveries > 0, "the kill schedule fired at least once");
    // The recovery counters themselves differ by construction; every
    // state-derived field must not.
    check(
        flags,
        chaos.digest == base.digest
            && chaos.completed == base.completed
            && chaos.delivered == base.delivered
            && chaos.retries == base.retries,
        "kill + outage digests identical to the kill-free control with the same plan",
    );

    if kind != OutageKind::Down {
        return;
    }

    // Planned maintenance: announcing the window one round ahead must
    // drain the warm set — strictly more migrations than the same
    // window hitting unannounced.
    let (planned, planned_avail, _) =
        run_faulted(2, flags.quick, hedged, Some(window(kind, true)), None);
    println!(
        "planned drain: {} migrations vs {} unplanned",
        planned.migrations, base.migrations
    );
    check(flags, planned_avail.conservation_holds(), "planned-drain run conserves every request");
    check(
        flags,
        planned.migrations > base.migrations,
        "a planned outage drains the warm set before going dark",
    );

    // SLO gate: with hedging + retries the outage is invisible to the
    // success rate; with neither, requests demonstrably die.
    let bare = FrontEndConfig {
        hedge: false,
        max_retries: 0,
        ..FrontEndConfig::default()
    };
    let (bare_out, bare_avail, _) =
        run_faulted(2, flags.quick, bare, Some(window(kind, false)), None);
    let (_, ctrl_avail, _) = run_faulted(2, flags.quick, hedged, None, None);
    println!(
        "availability: fault-free {:.4}, hedged outage {:.4} \
         (p99 {:.1} ms, {} hedge wins), bare outage {:.4} ({} failed)",
        ctrl_avail.success_rate,
        base_avail.success_rate,
        ms(base_avail.p99),
        base_avail.stats.hedge_wins,
        bare_avail.success_rate,
        bare_out.failed_frontend,
    );
    check(flags, bare_avail.conservation_holds(), "bare run conserves every request");
    check(flags, ctrl_avail.conservation_holds(), "fault-free control conserves every request");
    check(
        flags,
        base_avail.success_rate >= SLO_SUCCESS,
        "hedged retries hold the availability SLO through the outage",
    );
    check(
        flags,
        base_avail.stats.hedge_wins > 0,
        "hedge copies rescued requests from the suspect shard",
    );
    check(
        flags,
        bare_out.failed_frontend > 0,
        "without retries or hedging the outage visibly loses requests",
    );

    write_json(
        dir,
        "BENCH_availability.json",
        &format!(
            "{{\n  \"bench\": \"cluster_availability\",\n  \
             \"quick\": {},\n  \
             \"shards\": {SHARDS},\n  \
             \"policy\": \"hash_affinity\",\n  \
             \"outage\": {{\"shard\": {OUT_SHARD}, \"start\": {OUT_START}, \
             \"rounds\": {OUT_ROUNDS}, \"kind\": \"{kind_name}\"}},\n  \
             \"outage_shard_rounds\": {},\n  \"heals\": {},\n  \
             \"kill_every\": {kill_every},\n  \"kill_recoveries\": {},\n  \
             \"planned_drain_migrations\": {},\n  \
             \"unplanned_migrations\": {},\n  \
             \"slo_success_floor\": {},\n  \
             \"fault_free\": {},\n  \
             \"outage_hedged\": {},\n  \
             \"outage_bare\": {},\n  \
             \"digest\": \"{:#018x}\"\n}}\n",
            flags.quick,
            base.outage_rounds,
            base.heals,
            chaos.recoveries,
            planned.migrations,
            base.migrations,
            json_num(SLO_SUCCESS),
            slo_block(&ctrl_avail),
            slo_block(&base_avail),
            slo_block(&bare_avail),
            base.digest,
        ),
    );
}

fn main() {
    let flags = Flags::parse();
    if flags.has("--help") {
        usage();
        return;
    }
    let out_dir = flags.value_of("--out-dir").unwrap_or(".").to_string();
    let dir = Path::new(&out_dir);
    let rounds: u32 = if flags.quick { 1 } else { 3 };
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    if flags.has("--outage") {
        failure_domain_gate(&flags, OutageKind::Down, dir);
        return;
    }
    if flags.has("--partition") {
        failure_domain_gate(&flags, OutageKind::Partitioned, dir);
        return;
    }

    // --- Jobs sweep ----------------------------------------------------
    let mut sweep = Vec::new();
    for &jobs in JOBS {
        let (ms, outcome, events) = run(jobs, rounds, flags.quick);
        println!(
            "cluster_replay ({SHARDS} shards, {jobs} jobs): {ms:.1} ms, \
             {} completed, digest {:#018x}",
            outcome.completed, outcome.digest
        );
        sweep.push((jobs, ms, outcome, events));
    }
    let (_, serial_ms, serial, events) = (sweep[0].0, sweep[0].1, sweep[0].2, sweep[0].3);
    check(&flags, serial.completed > 0, "cluster replay completes requests");
    for (jobs, _, outcome, _) in &sweep {
        check(
            &flags,
            *outcome == serial,
            "cluster digest is byte-identical at every job count",
        );
        if *outcome != serial {
            eprintln!("jobs={jobs} diverged: {outcome:?} vs {serial:?}");
        }
    }

    // --- Kill-recover schedule ----------------------------------------
    // Kill shard 3 repeatedly, often enough to fire a handful of times
    // over the run; the recovered trajectory must digest identically
    // to the uninterrupted control above.
    let kill_every = (events / u64::from(SHARDS) / 6).max(40);
    let config = scenario(flags.quick);
    let trace = build_trace(&workloads::catalog(), 13);
    let mut chaos = cluster(2, FrontEndConfig::default());
    chaos.plan_kill(3, CrashPlan::every(kill_every));
    let chaos_outcome = replay_cluster(&mut chaos, &trace, &config);
    println!("{}", chaos.availability().conservation_line());
    println!(
        "kill-recover (shard 3 every {kill_every} events): {} recoveries, \
         digest {:#018x}",
        chaos_outcome.recoveries, chaos_outcome.digest
    );
    check(
        &flags,
        chaos_outcome.recoveries > 0,
        "kill schedule fires at least once",
    );
    check(
        &flags,
        chaos_outcome.digest == serial.digest && chaos_outcome.completed == serial.completed,
        "recovered cluster digests identical to the uninterrupted control",
    );

    // --- Scaling floor -------------------------------------------------
    let four_jobs = sweep.iter().find(|(jobs, ..)| *jobs == 4);
    let speedup_at_4 = four_jobs.map(|&(_, ms, ..)| serial_ms / ms);
    if let Some(speedup) = speedup_at_4 {
        println!("speedup at 4 jobs vs serial: {speedup:.2}x (host has {host_cores} cores)");
        if host_cores >= 4 {
            check(
                &flags,
                speedup >= CHECK_FLOOR_SPEEDUP,
                "parallel replay clears the scaling floor at 4 jobs",
            );
        } else {
            println!(
                "scaling floor waived: {host_cores} host core(s) cannot \
                 demonstrate 4-way scaling"
            );
        }
    }

    // --- JSON ----------------------------------------------------------
    let jobs_blocks: Vec<String> = sweep
        .iter()
        .map(|&(jobs, ms, ..)| {
            format!(
                "    \"{jobs}\": {{\n      \"ms\": {},\n      \
                 \"speedup_vs_1job\": {}\n    }}",
                json_num(ms),
                json_num(serial_ms / ms),
            )
        })
        .collect();
    write_json(
        dir,
        "BENCH_cluster.json",
        &format!(
            "{{\n  \"bench\": \"cluster_replay\",\n  \
             \"quick\": {},\n  \
             \"shards\": {SHARDS},\n  \
             \"policy\": \"cold_start_aware\",\n  \
             \"host_cores\": {host_cores},\n  \
             \"floor_enforced\": {},\n  \
             \"check_floor_speedup_at_4_jobs\": {},\n  \
             \"completed\": {},\n  \
             \"digest\": \"{:#018x}\",\n  \
             \"kill_every\": {kill_every},\n  \
             \"kill_recoveries\": {},\n  \
             \"jobs\": {{\n{}\n  }}\n}}\n",
            flags.quick,
            host_cores >= 4,
            json_num(CHECK_FLOOR_SPEEDUP),
            serial.completed,
            serial.digest,
            chaos_outcome.recoveries,
            jobs_blocks.join(",\n"),
        ),
    );
}
