//! Ablation: the §4.6 shared-library unmap optimization.
//!
//! On the Lambda flavour (no sharing), unmapping a sole-user library is
//! pure profit memory-wise, at the cost of refaulting the hot part on
//! the next invocation. This harness quantifies both sides.
//!
//! Flags: `--quick`, `--check`.

#![forbid(unsafe_code)]

use bench::cli::{check, Flags};
use bench::report;
use bench::{run_overhead_study, run_study, Mode, StudyConfig};

fn main() {
    let flags = Flags::parse();
    let iterations = if flags.quick { 30 } else { 100 };
    report::caption(
        "Ablation: library unmap optimization (Lambda env)",
        &["function", "uss_without_mib", "uss_with_mib", "saving_mib", "overhead_without", "overhead_with"],
    );
    for name in ["file-hash", "fft"] {
        let spec = workloads::by_name(name).expect("catalog function");
        let without_cfg = StudyConfig {
            iterations,
            lambda_env: true,
            unmap_libs: false,
            ..StudyConfig::default()
        };
        let with_cfg = StudyConfig {
            unmap_libs: true,
            ..without_cfg
        };
        let without = run_study(&spec, Mode::Desiccant, &without_cfg);
        let with = run_study(&spec, Mode::Desiccant, &with_cfg);
        let o_without = run_overhead_study(&spec, Mode::Desiccant, &without_cfg);
        let o_with = run_overhead_study(&spec, Mode::Desiccant, &with_cfg);
        report::row(&[
            name.into(),
            report::mib(without.final_uss),
            report::mib(with.final_uss),
            report::mib(without.final_uss.saturating_sub(with.final_uss)),
            format!("{:.3}", o_without.overhead()),
            format!("{:.3}", o_with.overhead()),
        ]);
        check(
            &flags,
            with.final_uss < without.final_uss,
            &format!("{name}: unmap saves memory"),
        );
        check(
            &flags,
            o_with.overhead() >= o_without.overhead() * 0.98,
            &format!("{name}: unmap costs some refault overhead"),
        );
    }
}
