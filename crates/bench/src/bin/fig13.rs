//! Figure 13: the execution overhead after reclamation (§5.6).
//!
//! Protocol: 130 invocations, reclaim, 10 more; compare mean latency
//! after vs. before. Paper magnitudes: ≈8.3 % mean overhead for
//! Desiccant; swapping the same memory costs far more (2.37× for
//! `sort`); and the §4.7 weak-preserving mode saves `data-analysis`
//! (2.14×) and `unionfind` (1.74×) from deoptimization slowdowns.
//!
//! Flags: `--quick` (skips half the functions), `--check`,
//! `--ablate-weak` (adds the keep-weak vs. aggressive comparison),
//! `--jobs N`.

#![forbid(unsafe_code)]

use bench::cli::{check, Flags};
use bench::report;
use bench::{run_jobs, run_overhead_study, Mode, StudyConfig};
use workloads::FunctionSpec;

fn main() {
    let flags = Flags::parse();
    let cfg = StudyConfig::default();
    let ablate = flags.has("--ablate-weak") || !flags.quick;
    let specs: Vec<_> = workloads::catalog()
        .into_iter()
        .enumerate()
        .filter(|&(i, _)| !(flags.quick && i % 2 == 1))
        .map(|(_, spec)| spec)
        .collect();
    // One flat job list: the per-function Desiccant studies, the sort
    // swap comparison, and (unless skipped) the weak-ref ablation.
    let sort = workloads::by_name("sort").expect("catalog function");
    let mut work: Vec<(FunctionSpec, Mode, StudyConfig)> =
        specs.iter().map(|&spec| (spec, Mode::Desiccant, cfg)).collect();
    work.push((sort, Mode::Desiccant, cfg));
    work.push((sort, Mode::Swap, cfg));
    if ablate {
        for name in ["data-analysis", "unionfind"] {
            let spec = workloads::by_name(name).expect("catalog function");
            work.push((spec, Mode::Desiccant, cfg));
            work.push((spec, Mode::Desiccant, StudyConfig { keep_weak: false, ..cfg }));
        }
    }
    let outcomes = run_jobs(flags.jobs(), &work, |(spec, mode, cfg)| {
        run_overhead_study(spec, *mode, cfg)
    });
    report::caption(
        "Figure 13: execution overhead after reclamation",
        &["language", "function", "overhead"],
    );
    let mut overheads = Vec::new();
    for (spec, out) in specs.iter().zip(&outcomes) {
        let overhead = out.overhead();
        report::row(&[
            spec.language.name().into(),
            spec.name.into(),
            format!("{:.3}", overhead),
        ]);
        overheads.push(overhead);
        check(
            &flags,
            overhead < 1.6,
            &format!("{}: post-reclaim overhead is modest", spec.name),
        );
    }
    let mean = overheads.iter().sum::<f64>() / overheads.len() as f64;
    println!(
        "# mean overhead {:.1}% (paper 8.3%)",
        (mean - 1.0) * 100.0
    );
    check(&flags, mean < 1.25, "mean overhead stays small (paper 8.3%)");

    // Swap comparison on sort (§5.6: 2.37x slower re-execution).
    let (d, s) = (&outcomes[specs.len()], &outcomes[specs.len() + 1]);
    println!(
        "# sort: desiccant overhead {:.2}, swap overhead {:.2} (paper: swap 2.37x slower)",
        d.overhead(),
        s.overhead()
    );
    check(
        &flags,
        s.overhead() > d.overhead() * 1.3,
        "swapping costs much more than reclamation on re-execution",
    );

    if ablate {
        report::caption(
            "Figure 13 (weak-ref ablation): keep-weak vs aggressive reclaim",
            &["function", "keep_weak_overhead", "aggressive_overhead"],
        );
        let mut pairs = outcomes[specs.len() + 2..].chunks_exact(2);
        for name in ["data-analysis", "unionfind"] {
            let [gentle, aggressive] = pairs.next().expect("a chunk per ablated function") else {
                unreachable!("chunks_exact(2) yields two-element chunks");
            };
            report::row(&[
                name.into(),
                format!("{:.2}", gentle.overhead()),
                format!("{:.2}", aggressive.overhead()),
            ]);
            check(
                &flags,
                aggressive.overhead() > gentle.overhead() * 1.25,
                &format!("{name}: weak preservation avoids a deopt slowdown"),
            );
        }
        println!("# paper: aggressive collection slows data-analysis 2.14x, unionfind 1.74x");
    }
}
