//! Figure 13: the execution overhead after reclamation (§5.6).
//!
//! Protocol: 130 invocations, reclaim, 10 more; compare mean latency
//! after vs. before. Paper magnitudes: ≈8.3 % mean overhead for
//! Desiccant; swapping the same memory costs far more (2.37× for
//! `sort`); and the §4.7 weak-preserving mode saves `data-analysis`
//! (2.14×) and `unionfind` (1.74×) from deoptimization slowdowns.
//!
//! Flags: `--quick` (skips half the functions), `--check`,
//! `--ablate-weak` (adds the keep-weak vs. aggressive comparison).

use bench::cli::{check, Flags};
use bench::report;
use bench::{run_overhead_study, Mode, StudyConfig};

fn main() {
    let flags = Flags::parse();
    let cfg = StudyConfig::default();
    report::caption(
        "Figure 13: execution overhead after reclamation",
        &["language", "function", "overhead"],
    );
    let mut overheads = Vec::new();
    for (i, spec) in workloads::catalog().into_iter().enumerate() {
        if flags.quick && i % 2 == 1 {
            continue;
        }
        let out = run_overhead_study(&spec, Mode::Desiccant, &cfg);
        let overhead = out.overhead();
        report::row(&[
            spec.language.name().into(),
            spec.name.into(),
            format!("{:.3}", overhead),
        ]);
        overheads.push(overhead);
        check(
            &flags,
            overhead < 1.6,
            &format!("{}: post-reclaim overhead is modest", spec.name),
        );
    }
    let mean = overheads.iter().sum::<f64>() / overheads.len() as f64;
    println!(
        "# mean overhead {:.1}% (paper 8.3%)",
        (mean - 1.0) * 100.0
    );
    check(&flags, mean < 1.25, "mean overhead stays small (paper 8.3%)");

    // Swap comparison on sort (§5.6: 2.37x slower re-execution).
    let sort = workloads::by_name("sort").expect("catalog function");
    let d = run_overhead_study(&sort, Mode::Desiccant, &cfg);
    let s = run_overhead_study(&sort, Mode::Swap, &cfg);
    println!(
        "# sort: desiccant overhead {:.2}, swap overhead {:.2} (paper: swap 2.37x slower)",
        d.overhead(),
        s.overhead()
    );
    check(
        &flags,
        s.overhead() > d.overhead() * 1.3,
        "swapping costs much more than reclamation on re-execution",
    );

    if flags.has("--ablate-weak") || !flags.quick {
        report::caption(
            "Figure 13 (weak-ref ablation): keep-weak vs aggressive reclaim",
            &["function", "keep_weak_overhead", "aggressive_overhead"],
        );
        for name in ["data-analysis", "unionfind"] {
            let spec = workloads::by_name(name).expect("catalog function");
            let gentle = run_overhead_study(&spec, Mode::Desiccant, &cfg);
            let aggressive = run_overhead_study(
                &spec,
                Mode::Desiccant,
                &StudyConfig {
                    keep_weak: false,
                    ..cfg
                },
            );
            report::row(&[
                name.into(),
                format!("{:.2}", gentle.overhead()),
                format!("{:.2}", aggressive.overhead()),
            ]);
            check(
                &flags,
                aggressive.overhead() > gentle.overhead() * 1.25,
                &format!("{name}: weak preservation avoids a deopt slowdown"),
            );
        }
        println!("# paper: aggressive collection slows data-analysis 2.14x, unionfind 1.74x");
    }
}
