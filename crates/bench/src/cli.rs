//! Minimal flag parsing shared by the figure harnesses.
//!
//! Every harness accepts:
//!
//! * `--check` — assert the paper-shape invariants and exit non-zero on
//!   violation (used by the integration tests);
//! * `--quick` — smaller iteration counts / sweeps for fast runs;
//! * `--jobs N` — worker threads for the study matrix (default: all
//!   available cores; `--jobs 1` runs serially);
//! * harness-specific flags documented in each binary.

/// Parsed common flags.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    /// Assert shape invariants.
    pub check: bool,
    /// Reduced workload for fast runs.
    pub quick: bool,
    /// Worker threads requested with `--jobs`; `None` means use all
    /// available cores.
    pub jobs: Option<usize>,
    /// Remaining positional / harness-specific arguments.
    pub rest: Vec<String>,
}

impl Flags {
    /// Parses `std::env::args` (skipping the binary name).
    pub fn parse() -> Flags {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list.
    pub fn from_args(args: impl Iterator<Item = String>) -> Flags {
        let mut flags = Flags::default();
        let mut want_jobs = false;
        for a in args {
            if want_jobs {
                want_jobs = false;
                flags.jobs = a.parse().ok().filter(|&n| n > 0);
                if flags.jobs.is_none() {
                    eprintln!("ignoring invalid --jobs value: {a}");
                }
                continue;
            }
            match a.as_str() {
                "--check" => flags.check = true,
                "--quick" => flags.quick = true,
                "--jobs" => want_jobs = true,
                _ => {
                    if let Some(n) = a.strip_prefix("--jobs=") {
                        flags.jobs = n.parse().ok().filter(|&n| n > 0);
                        if flags.jobs.is_none() {
                            eprintln!("ignoring invalid --jobs value: {n}");
                        }
                    } else {
                        flags.rest.push(a);
                    }
                }
            }
        }
        flags
    }

    /// True if a harness-specific flag is present.
    pub fn has(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    /// The value of a harness-specific `--flag value` or `--flag=value`
    /// argument, if present.
    pub fn value_of(&self, flag: &str) -> Option<&str> {
        let eq = format!("{flag}=");
        for (i, a) in self.rest.iter().enumerate() {
            if a == flag {
                return self.rest.get(i + 1).map(String::as_str);
            }
            if let Some(v) = a.strip_prefix(&eq) {
                return Some(v);
            }
        }
        None
    }

    /// Effective worker-thread count: the `--jobs` value, or every
    /// available core.
    pub fn jobs(&self) -> usize {
        self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        })
    }
}

/// Asserts a shape invariant when `--check` is active; always logs it.
pub fn check(flags: &Flags, ok: bool, what: &str) {
    if ok {
        eprintln!("check ok: {what}");
    } else if flags.check {
        eprintln!("CHECK FAILED: {what}");
        std::process::exit(1);
    } else {
        eprintln!("check WARNING (not enforced without --check): {what}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_known_and_unknown_flags() {
        let f = Flags::from_args(
            ["--check", "--list", "--quick"].iter().map(|s| s.to_string()),
        );
        assert!(f.check);
        assert!(f.quick);
        assert!(f.has("--list"));
        assert!(!f.has("--nope"));
    }

    #[test]
    fn value_of_supports_both_spellings() {
        let f = Flags::from_args(
            ["--fault-seed", "7", "--fault-rate=0.01"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(f.value_of("--fault-seed"), Some("7"));
        assert_eq!(f.value_of("--fault-rate"), Some("0.01"));
        assert_eq!(f.value_of("--missing"), None);
        // A trailing flag with no value yields None.
        let f = Flags::from_args(["--fault-seed"].iter().map(|s| s.to_string()));
        assert_eq!(f.value_of("--fault-seed"), None);
    }

    #[test]
    fn parses_jobs_in_both_spellings() {
        let f = Flags::from_args(["--jobs", "4"].iter().map(|s| s.to_string()));
        assert_eq!(f.jobs, Some(4));
        assert_eq!(f.jobs(), 4);
        let f = Flags::from_args(["--jobs=2"].iter().map(|s| s.to_string()));
        assert_eq!(f.jobs, Some(2));
        // Invalid and zero values fall back to auto.
        let f = Flags::from_args(["--jobs", "zero"].iter().map(|s| s.to_string()));
        assert_eq!(f.jobs, None);
        assert!(f.jobs() >= 1);
        let f = Flags::from_args(["--jobs=0"].iter().map(|s| s.to_string()));
        assert_eq!(f.jobs, None);
    }
}
