//! Minimal flag parsing shared by the figure harnesses.
//!
//! Every harness accepts:
//!
//! * `--check` — assert the paper-shape invariants and exit non-zero on
//!   violation (used by the integration tests);
//! * `--quick` — smaller iteration counts / sweeps for fast runs;
//! * harness-specific flags documented in each binary.

/// Parsed common flags.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    /// Assert shape invariants.
    pub check: bool,
    /// Reduced workload for fast runs.
    pub quick: bool,
    /// Remaining positional / harness-specific arguments.
    pub rest: Vec<String>,
}

impl Flags {
    /// Parses `std::env::args` (skipping the binary name).
    pub fn parse() -> Flags {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list.
    pub fn from_args(args: impl Iterator<Item = String>) -> Flags {
        let mut flags = Flags::default();
        for a in args {
            match a.as_str() {
                "--check" => flags.check = true,
                "--quick" => flags.quick = true,
                _ => flags.rest.push(a),
            }
        }
        flags
    }

    /// True if a harness-specific flag is present.
    pub fn has(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }
}

/// Asserts a shape invariant when `--check` is active; always logs it.
pub fn check(flags: &Flags, ok: bool, what: &str) {
    if ok {
        eprintln!("check ok: {what}");
    } else if flags.check {
        eprintln!("CHECK FAILED: {what}");
        std::process::exit(1);
    } else {
        eprintln!("check WARNING (not enforced without --check): {what}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_known_and_unknown_flags() {
        let f = Flags::from_args(
            ["--check", "--list", "--quick"].iter().map(|s| s.to_string()),
        );
        assert!(f.check);
        assert!(f.quick);
        assert!(f.has("--list"));
        assert!(!f.has("--nope"));
    }
}
