//! Scoped-thread worker pool fanning independent studies across cores.
//!
//! Every figure harness runs the same shape of work: a matrix of
//! `(function, mode)` studies, each a self-contained simulation seeded
//! from its [`StudyConfig`] — no study reads another's state. That
//! makes them embarrassingly parallel, and it makes parallel execution
//! *exactly* reproducible: a study computes the same [`StudyOutcome`]
//! (checksum included) no matter which worker runs it or when.
//!
//! The pool is std-only: `std::thread::scope` workers pull item indices
//! from a shared atomic counter and write results into per-item slots,
//! so results come back in input order. Harnesses compute the whole
//! matrix first and print afterwards, which keeps their stdout
//! byte-identical between `--jobs 1` and `--jobs N`.

use workloads::FunctionSpec;

use crate::singlefn::{run_study, Mode, StudyConfig, StudyOutcome};

/// The generic pool itself lives in the bottom-of-graph `parallel`
/// crate (shared with the cluster engine, which `bench` sits above);
/// re-exported here so harness code keeps its historical import path.
pub use parallel::run_jobs;

/// Runs an explicit list of `(function, mode, config)` studies and
/// returns their outcomes in input order.
///
/// This is the general form for harnesses whose config varies per study
/// (budget sweeps, environment toggles).
pub fn run_study_jobs(
    jobs: usize,
    work: &[(FunctionSpec, Mode, StudyConfig)],
) -> Vec<StudyOutcome> {
    run_jobs(jobs, work, |(spec, mode, cfg)| run_study(spec, *mode, cfg))
}

/// Fans the full `specs × modes` study matrix across `jobs` workers.
///
/// Returns one row per spec, holding the outcomes for each mode in the
/// order given — `result[s][m]` is `run_study(&specs[s], modes[m], cfg)`.
/// Input order is preserved regardless of which worker finishes first,
/// so tables printed from the result (and `--check` assertions over it)
/// are byte-identical to a serial run.
pub fn run_studies_parallel(
    specs: &[FunctionSpec],
    modes: &[Mode],
    cfg: &StudyConfig,
    jobs: usize,
) -> Vec<Vec<StudyOutcome>> {
    let work: Vec<(FunctionSpec, Mode, StudyConfig)> = specs
        .iter()
        .flat_map(|spec| modes.iter().map(move |&mode| (*spec, mode, *cfg)))
        .collect();
    let mut flat = run_study_jobs(jobs, &work).into_iter();
    specs
        .iter()
        .map(|_| modes.iter().map(|_| flat.next().expect("full matrix")).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matrix_matches_serial_exactly() {
        // The acceptance bar for the figure harnesses: every study
        // outcome — checksum included — is identical between one worker
        // and many.
        let cfg = StudyConfig {
            iterations: 4,
            ..StudyConfig::default()
        };
        let specs: Vec<FunctionSpec> = workloads::catalog().into_iter().take(3).collect();
        let modes = [Mode::Vanilla, Mode::Desiccant];
        let serial = run_studies_parallel(&specs, &modes, &cfg, 1);
        let parallel = run_studies_parallel(&specs, &modes, &cfg, 8);
        for (row_s, row_p) in serial.iter().zip(&parallel) {
            for (s, p) in row_s.iter().zip(row_p) {
                assert_eq!(s.checksum, p.checksum);
                assert_eq!(s.final_uss, p.final_uss);
                assert_eq!(s.uss, p.uss);
                assert_eq!(s.latency, p.latency);
            }
        }
    }
}
