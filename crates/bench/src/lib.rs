//! # bench — figure harnesses for the Desiccant reproduction
//!
//! One binary per paper figure (`fig1` … `fig13`, see `src/bin/`), plus
//! Criterion micro-benchmarks (`benches/`). The shared machinery lives
//! here:
//!
//! * [`singlefn`] — the §3.1/§5.2 single-function study: iterate a
//!   Table-1 function 100 times in its own instance(s), measure USS at
//!   every freeze point under a baseline
//!   (vanilla / eager / Desiccant / swap), and compute the
//!   frozen-garbage ratios against the ideal baseline;
//! * [`report`] — CSV-style output helpers so every harness prints
//!   rows shaped like the figure it reproduces;
//! * [`parallel`] — a std-only scoped-thread pool fanning the
//!   `(function × mode)` study matrix across cores (`--jobs N`), with
//!   results in stable input order so output stays byte-identical to a
//!   serial run.

#![forbid(unsafe_code)]

pub mod cli;
pub mod golden;
pub mod parallel;
pub mod report;
pub mod singlefn;

pub use parallel::{run_jobs, run_studies_parallel, run_study_jobs};
pub use singlefn::{run_overhead_study, run_study, Mode, OverheadOutcome, StudyConfig, StudyOutcome};
