//! Property tests for the object graph and marker.
//!
//! Random object graphs with random roots are built, marked, and swept;
//! the invariants below are exactly what the runtime collectors rely
//! on.

use gc_core::object::{HeapGraph, ObjectId, ObjectKind};
use gc_core::trace::mark;
use proptest::prelude::*;

/// A compact graph description: `sizes[i]` is object `i`'s size;
/// `edges` are `(from, to)` pairs; `roots` indexes into objects.
#[derive(Debug, Clone)]
struct GraphSpec {
    sizes: Vec<u32>,
    edges: Vec<(usize, usize)>,
    weak_edges: Vec<(usize, usize)>,
    global_roots: Vec<usize>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (2usize..40).prop_flat_map(|n| {
        (
            prop::collection::vec(1u32..10_000, n),
            prop::collection::vec((0..n, 0..n), 0..n * 2),
            prop::collection::vec((0..n, 0..n), 0..n),
            prop::collection::vec(0..n, 0..n / 2 + 1),
        )
            .prop_map(|(sizes, edges, weak_edges, global_roots)| GraphSpec {
                sizes,
                edges,
                weak_edges,
                global_roots,
            })
    })
}

fn build(spec: &GraphSpec) -> (HeapGraph, Vec<ObjectId>) {
    let mut g = HeapGraph::new();
    let ids: Vec<_> = spec
        .sizes
        .iter()
        .map(|s| g.alloc(*s, ObjectKind::Data))
        .collect();
    for &(a, b) in &spec.edges {
        g.add_ref(ids[a], ids[b]);
    }
    for &(a, b) in &spec.weak_edges {
        g.add_weak_ref(ids[a], ids[b]);
    }
    for &r in &spec.global_roots {
        g.add_global(ids[r]);
    }
    (g, ids)
}

proptest! {
    /// Marking is a fixed point: marking after sweep finds the same
    /// live bytes, and sweep frees exactly allocated − live.
    #[test]
    fn mark_sweep_reaches_fixed_point(spec in graph_spec()) {
        let (mut g, _ids) = build(&spec);
        let total: u64 = spec.sizes.iter().map(|s| *s as u64).sum();
        let live = mark(&g, true, true);
        prop_assert!(live.live_bytes <= total);
        let freed = g.sweep(&live.marks);
        prop_assert_eq!(freed, total - live.live_bytes);
        prop_assert_eq!(g.allocated_bytes(), live.live_bytes);
        let live2 = mark(&g, true, true);
        prop_assert_eq!(live2.live_bytes, live.live_bytes);
        prop_assert_eq!(live2.live_objects, live.live_objects);
    }

    /// Keeping weak references can only grow the live set, and the
    /// aggressive live set plus weak-retained bytes bounds the gentle
    /// one.
    #[test]
    fn weak_retention_is_monotone(spec in graph_spec()) {
        let (g, _ids) = build(&spec);
        let aggressive = mark(&g, true, false);
        let gentle = mark(&g, true, true);
        prop_assert!(gentle.live_bytes >= aggressive.live_bytes);
        prop_assert!(gentle.live_objects >= aggressive.live_objects);
    }

    /// Every strongly referenced target of a live object is live
    /// (closure property), and no root is dead.
    #[test]
    fn live_set_is_closed(spec in graph_spec()) {
        let (g, ids) = build(&spec);
        let live = mark(&g, true, true);
        for (id, obj) in g.iter() {
            if live.is_live(id) {
                for &r in &obj.refs {
                    prop_assert!(live.is_live(r), "live object holds dead ref");
                }
            }
        }
        for &r in &spec.global_roots {
            prop_assert!(live.is_live(ids[r]));
        }
    }

    /// After popping all handle scopes, handle-rooted garbage is dead:
    /// mark(include_handles) equals mark(globals only).
    #[test]
    fn popped_scopes_leave_no_roots(spec in graph_spec()) {
        let (mut g, ids) = build(&spec);
        let scope = g.push_handle_scope();
        for id in &ids {
            g.add_handle(*id);
        }
        g.pop_handle_scope(scope);
        let with = mark(&g, true, true);
        let without = mark(&g, false, true);
        prop_assert_eq!(with.live_bytes, without.live_bytes);
    }
}
