//! GC statistics shared by both runtime models.

use simos::SimDuration;

/// Which collection cycle ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcKind {
    /// Young-generation collection (scavenge / minor GC).
    Young,
    /// Full collection (old GC / major GC); collects both generations.
    Full,
}

/// Cumulative collector counters for one runtime instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcCounters {
    /// Young collections performed.
    pub young_collections: u64,
    /// Full collections performed.
    pub full_collections: u64,
    /// Bytes copied by evacuating collections.
    pub bytes_copied: u64,
    /// Bytes promoted into the old generation.
    pub bytes_promoted: u64,
    /// Bytes of garbage reclaimed (swept or left behind by copies).
    pub bytes_freed: u64,
    /// Total simulated GC pause time.
    pub pause_time: SimDuration,
}

impl GcCounters {
    /// Records one collection.
    pub fn record(
        &mut self,
        kind: GcKind,
        copied: u64,
        promoted: u64,
        freed: u64,
        pause: SimDuration,
    ) {
        match kind {
            GcKind::Young => self.young_collections += 1,
            GcKind::Full => self.full_collections += 1,
        }
        self.bytes_copied += copied;
        self.bytes_promoted += promoted;
        self.bytes_freed += freed;
        self.pause_time += pause;
    }

    /// Total collections of any kind.
    pub fn total_collections(&self) -> u64 {
        self.young_collections + self.full_collections
    }
}

/// Cost constants converting GC work into simulated pause time.
///
/// Tracing collectors cost time proportional to the live set they
/// visit, plus copy bandwidth for evacuated bytes — the very property
/// Desiccant's estimator leans on (§4.5.2: "their cost is proportional
/// to the number of live bytes").
#[derive(Debug, Clone, Copy)]
pub struct GcCostModel {
    /// Cost per live object visited while marking.
    pub per_object_mark: SimDuration,
    /// Cost per byte copied or compacted.
    pub per_byte_copy_ns: f64,
    /// Fixed pause floor per young collection (root scanning,
    /// safepoint).
    pub pause_floor: SimDuration,
    /// Fixed pause floor per full collection (whole-heap sweep setup,
    /// card-table clearing, resize `mmap` work). This is what makes the
    /// eager baseline's per-exit `System.gc()` visibly expensive in CPU
    /// terms (§5.3).
    pub full_pause_floor: SimDuration,
}

impl Default for GcCostModel {
    /// Roughly serial-GC-on-one-core magnitudes: ~60 ns per marked
    /// object, ~0.12 ns per copied byte (≈8 GiB/s memcpy), 150 µs
    /// safepoint floor for scavenges, 8 ms floor for full collections.
    fn default() -> GcCostModel {
        GcCostModel {
            per_object_mark: SimDuration::from_nanos(60),
            per_byte_copy_ns: 0.12,
            pause_floor: SimDuration::from_micros(150),
            full_pause_floor: SimDuration::from_millis(8),
        }
    }
}

impl GcCostModel {
    /// Pause time for a young collection that marked `live_objects`
    /// and copied `copied_bytes`.
    pub fn pause(&self, live_objects: u64, copied_bytes: u64) -> SimDuration {
        let copy_ns = (copied_bytes as f64 * self.per_byte_copy_ns).round() as u64;
        self.pause_floor + self.per_object_mark * live_objects + SimDuration::from_nanos(copy_ns)
    }

    /// Pause time for a full collection.
    pub fn full_pause(&self, live_objects: u64, copied_bytes: u64) -> SimDuration {
        let copy_ns = (copied_bytes as f64 * self.per_byte_copy_ns).round() as u64;
        self.full_pause_floor
            + self.per_object_mark * live_objects
            + SimDuration::from_nanos(copy_ns)
    }
}

impl snapshot::Snapshot for GcCounters {
    fn snap(&self, w: &mut snapshot::Writer) {
        let Self {
            young_collections,
            full_collections,
            bytes_copied,
            bytes_promoted,
            bytes_freed,
            pause_time,
        } = self;
        w.u64(*young_collections);
        w.u64(*full_collections);
        w.u64(*bytes_copied);
        w.u64(*bytes_promoted);
        w.u64(*bytes_freed);
        pause_time.snap(w);
    }

    fn restore(r: &mut snapshot::Reader<'_>) -> Result<GcCounters, snapshot::SnapError> {
        Ok(GcCounters {
            young_collections: r.u64()?,
            full_collections: r.u64()?,
            bytes_copied: r.u64()?,
            bytes_promoted: r.u64()?,
            bytes_freed: r.u64()?,
            pause_time: SimDuration::restore(r)?,
        })
    }
}

impl snapshot::Snapshot for GcCostModel {
    fn snap(&self, w: &mut snapshot::Writer) {
        let Self {
            per_object_mark,
            per_byte_copy_ns,
            pause_floor,
            full_pause_floor,
        } = self;
        per_object_mark.snap(w);
        w.f64(*per_byte_copy_ns);
        pause_floor.snap(w);
        full_pause_floor.snap(w);
    }

    fn restore(r: &mut snapshot::Reader<'_>) -> Result<GcCostModel, snapshot::SnapError> {
        Ok(GcCostModel {
            per_object_mark: SimDuration::restore(r)?,
            per_byte_copy_ns: r.f64()?,
            pause_floor: SimDuration::restore(r)?,
            full_pause_floor: SimDuration::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_by_kind() {
        let mut c = GcCounters::default();
        c.record(GcKind::Young, 100, 10, 1000, SimDuration::from_micros(200));
        c.record(GcKind::Full, 0, 0, 5000, SimDuration::from_millis(2));
        assert_eq!(c.young_collections, 1);
        assert_eq!(c.full_collections, 1);
        assert_eq!(c.total_collections(), 2);
        assert_eq!(c.bytes_freed, 6000);
        assert_eq!(c.pause_time, SimDuration::from_micros(2200));
    }

    #[test]
    fn pause_scales_with_live_set_not_heap() {
        let m = GcCostModel::default();
        let small = m.pause(1_000, 1 << 20);
        let large = m.pause(100_000, 100 << 20);
        assert!(large > small * 10);
        // The floor dominates an empty collection.
        assert_eq!(m.pause(0, 0), m.pause_floor);
    }
}
