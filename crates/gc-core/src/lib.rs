//! # gc-core — the shared garbage-collection substrate
//!
//! Both managed-runtime models in this reproduction (the HotSpot serial
//! collector in `hotspot` and the V8 heap in `v8heap`) are *real
//! tracing collectors over a real object graph*: workload kernels
//! allocate objects, build references, and drop handle scopes when a
//! function invocation exits, and the collectors discover liveness by
//! marking — nothing about "how much is garbage" is assumed.
//!
//! This crate holds what the two runtimes share:
//!
//! * [`object`] — the object arena ([`object::HeapGraph`]): objects with
//!   sizes, addresses, strong and weak references, global roots (state
//!   that survives across invocations) and handle-scope roots (state
//!   that dies when a function exits — the source of *frozen garbage*).
//! * [`trace`] — the marker: computes the live set from the roots,
//!   with or without treating weak references as strong (§4.7 of the
//!   paper distinguishes aggressive collections, which clear weakly
//!   referenced code and cause JIT deoptimization, from Desiccant's
//!   weak-preserving mode).
//! * [`stats`] — GC statistics shared by both collectors.
//!
//! # Examples
//!
//! ```
//! use gc_core::object::{HeapGraph, ObjectKind};
//!
//! let mut g = HeapGraph::new();
//! let scope = g.push_handle_scope();
//! let a = g.alloc(1024, ObjectKind::Data);
//! g.add_handle(a);
//! let b = g.alloc(512, ObjectKind::Data);
//! g.add_ref(a, b);
//! // Both objects are reachable through the handle scope.
//! let live = gc_core::trace::mark(&g, true, true);
//! assert_eq!(live.live_bytes, 1536);
//! // When the invocation exits, the scope dies and so do the objects.
//! g.pop_handle_scope(scope);
//! let live = gc_core::trace::mark(&g, true, true);
//! assert_eq!(live.live_bytes, 0);
//! ```

#![forbid(unsafe_code)]

pub mod object;
pub mod stats;
pub mod trace;

pub use object::{HeapGraph, ObjectId, ObjectKind};
pub use stats::{GcCounters, GcKind};
pub use trace::{mark, LiveSet};
