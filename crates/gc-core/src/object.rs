//! The object arena: objects, references, and roots.
//!
//! Liveness in this model follows the usual managed-runtime structure:
//!
//! * **global roots** hold state that survives across function
//!   invocations (caches, statics, the function's closure environment);
//! * **handle scopes** hold the temporaries of the *current* invocation
//!   and are popped when the function exits.
//!
//! Everything reachable only through a popped handle scope is dead —
//! but, as the paper observes, if the instance is then frozen, no GC
//! ever runs to find out. Those dead-but-uncollected objects are the
//! *frozen garbage* this whole reproduction is about.

use std::collections::BTreeMap;

/// An object identifier: a slot index in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The slot index this id names (`u32` → `usize` is lossless on
    /// every supported target).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What an object is, for the JIT/deoptimization model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// Ordinary application data.
    Data,
    /// JIT-compiled code (V8 holds these through weak references; an
    /// aggressive GC collects them and later executions pay a
    /// deoptimization penalty, §4.7).
    Code,
}

/// One heap object.
#[derive(Debug, Clone)]
pub struct Object {
    /// Payload size in bytes (headers included; what the space
    /// allocator charged).
    pub size: u32,
    /// Address assigned by the runtime's space allocator; updated when
    /// a moving collector relocates the object.
    pub addr: u64,
    /// Survived-GC count, used for tenuring decisions.
    pub age: u8,
    /// Runtime-private tag (e.g. which generation/space holds the
    /// object). `gc-core` never interprets it.
    pub space_tag: u8,
    /// Object kind.
    pub kind: ObjectKind,
    /// Strong outgoing references.
    pub refs: Vec<ObjectId>,
    /// Weak outgoing references (do not keep the target alive).
    pub weak_refs: Vec<ObjectId>,
}

/// An opaque token for a pushed handle scope.
///
/// Scopes must be popped in LIFO order, like real handle scopes.
#[derive(Debug, PartialEq, Eq)]
pub struct HandleScope(usize);

/// The object graph of one runtime instance.
#[derive(Debug, Clone, Default)]
pub struct HeapGraph {
    slots: Vec<Option<Object>>,
    free_slots: Vec<u32>,
    /// Persistent roots.
    globals: Vec<ObjectId>,
    /// Handle stack; scope boundaries index into it.
    handles: Vec<ObjectId>,
    scope_bounds: Vec<usize>,
    /// Total bytes of live slots (everything not yet swept, live or
    /// dead — i.e. bytes the allocator has handed out and not yet
    /// recycled).
    allocated_bytes: u64,
    /// Monotonic counter of all bytes ever allocated.
    total_allocated_bytes: u64,
    /// Monotonic counter of all objects ever allocated.
    total_allocated_objects: u64,
}

impl HeapGraph {
    /// Creates an empty graph.
    pub fn new() -> HeapGraph {
        HeapGraph::default()
    }

    /// Allocates an object of `size` bytes; its address is assigned
    /// later by the runtime's space allocator via [`HeapGraph::set_addr`].
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero — real allocators never return
    /// zero-sized objects and a zero would break byte accounting.
    pub fn alloc(&mut self, size: u32, kind: ObjectKind) -> ObjectId {
        assert!(size > 0, "zero-sized allocation");
        let obj = Object {
            size,
            addr: 0,
            age: 0,
            space_tag: 0,
            kind,
            refs: Vec::new(),
            weak_refs: Vec::new(),
        };
        self.allocated_bytes += size as u64;
        self.total_allocated_bytes += size as u64;
        self.total_allocated_objects += 1;
        match self.free_slots.pop() {
            Some(idx) => {
                debug_assert!(self.slots[idx as usize].is_none()); // tidy:allow(panic-reachability) -- slot indices come from ids this table allocated and validated
                self.slots[idx as usize] = Some(obj); // tidy:allow(panic-reachability) -- slot indices come from ids this table allocated and validated
                ObjectId(idx)
            }
            None => {
                self.slots.push(Some(obj));
                ObjectId(self.slots.len() as u32 - 1)
            }
        }
    }

    /// Immutable access to an object.
    ///
    /// # Panics
    ///
    /// Panics if `id` refers to a collected object; runtimes must not
    /// hold stale ids, so this indicates a collector bug.
    pub fn get(&self, id: ObjectId) -> &Object {
        self.slots[id.0 as usize] // tidy:allow(panic-reachability) -- slot indices come from ids this table allocated and validated
            .as_ref()
            .expect("stale object id") // tidy:allow(panic-reachability) -- slot indices come from ids this table allocated and validated
    }

    /// Mutable access to an object.
    ///
    /// # Panics
    ///
    /// Panics if `id` refers to a collected object.
    pub fn get_mut(&mut self, id: ObjectId) -> &mut Object {
        self.slots[id.0 as usize] // tidy:allow(panic-reachability) -- slot indices come from ids this table allocated and validated
            .as_mut()
            .expect("stale object id") // tidy:allow(panic-reachability) -- slot indices come from ids this table allocated and validated
    }

    /// True if `id` refers to a live slot.
    pub fn exists(&self, id: ObjectId) -> bool {
        self.slots
            .get(id.0 as usize)
            .is_some_and(|s| s.is_some())
    }

    /// Sets the object's current address (called by space allocators
    /// and moving collectors).
    pub fn set_addr(&mut self, id: ObjectId, addr: u64) {
        self.get_mut(id).addr = addr;
    }

    /// Adds a strong reference `from → to`.
    pub fn add_ref(&mut self, from: ObjectId, to: ObjectId) {
        debug_assert!(self.exists(to), "reference to stale object");
        self.get_mut(from).refs.push(to);
    }

    /// Adds a weak reference `from → to`.
    pub fn add_weak_ref(&mut self, from: ObjectId, to: ObjectId) {
        debug_assert!(self.exists(to), "weak reference to stale object");
        self.get_mut(from).weak_refs.push(to);
    }

    /// Removes all strong references `from → to` (severing an edge so
    /// the target can die).
    pub fn remove_ref(&mut self, from: ObjectId, to: ObjectId) {
        self.get_mut(from).refs.retain(|r| *r != to);
    }

    /// Replaces the full strong reference list of `from`.
    pub fn set_refs(&mut self, from: ObjectId, refs: Vec<ObjectId>) {
        for r in &refs {
            debug_assert!(self.exists(*r), "reference to stale object");
        }
        self.get_mut(from).refs = refs;
    }

    /// Registers a persistent (global) root.
    pub fn add_global(&mut self, id: ObjectId) {
        debug_assert!(self.exists(id));
        self.globals.push(id);
    }

    /// Unregisters a persistent root (all occurrences).
    pub fn remove_global(&mut self, id: ObjectId) {
        self.globals.retain(|g| *g != id);
    }

    /// The persistent roots.
    pub fn globals(&self) -> &[ObjectId] {
        &self.globals
    }

    /// Opens a handle scope (function entry).
    pub fn push_handle_scope(&mut self) -> HandleScope {
        self.scope_bounds.push(self.handles.len());
        HandleScope(self.scope_bounds.len())
    }

    /// Adds a handle in the current scope (a local variable).
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn add_handle(&mut self, id: ObjectId) {
        assert!(!self.scope_bounds.is_empty(), "no open handle scope");
        debug_assert!(self.exists(id));
        self.handles.push(id);
    }

    /// Closes a handle scope (function exit); everything reachable only
    /// through it becomes garbage.
    ///
    /// # Panics
    ///
    /// Panics if scopes are popped out of LIFO order.
    pub fn pop_handle_scope(&mut self, scope: HandleScope) {
        assert_eq!(
            scope.0,
            self.scope_bounds.len(),
            "handle scopes popped out of order"
        );
        let bound = self.scope_bounds.pop().expect("no open handle scope"); // tidy:allow(panic-reachability) -- scope push and pop are balanced by the handle-scope API
        self.handles.truncate(bound);
    }

    /// The current handle roots (all open scopes).
    pub fn handles(&self) -> &[ObjectId] {
        &self.handles
    }

    /// True if any handle scope is open (a function is mid-execution).
    pub fn in_invocation(&self) -> bool {
        !self.scope_bounds.is_empty()
    }

    /// Iterates over `(id, &object)` for every live slot.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &Object)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|o| (ObjectId(i as u32), o)))
    }

    /// Number of live slots.
    pub fn object_count(&self) -> usize {
        self.slots.len() - self.free_slots.len()
    }

    /// Capacity needed for dense side tables indexed by `ObjectId`.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Bytes handed out by the allocator and not yet swept.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_bytes
    }

    /// Monotonic total of all bytes ever allocated.
    pub fn total_allocated_bytes(&self) -> u64 {
        self.total_allocated_bytes
    }

    /// Monotonic total of all objects ever allocated.
    pub fn total_allocated_objects(&self) -> u64 {
        self.total_allocated_objects
    }

    /// Frees every slot whose bit is unset in `live` (sized by
    /// [`HeapGraph::slot_capacity`]), fixing up weak references that now
    /// dangle. Returns the freed byte count.
    ///
    /// Strong references cannot dangle after this: a strongly
    /// referenced object is live by definition of `live` being a fixed
    /// point of marking — the caller is responsible for passing a mark
    /// result, not an arbitrary bitmap.
    pub fn sweep(&mut self, live: &[bool]) -> u64 {
        self.sweep_where(live, |_| true)
    }

    /// Like [`HeapGraph::sweep`], but only frees dead objects for which
    /// `filter` returns true. Generational collectors use this to sweep
    /// a single generation: a young collection passes a filter matching
    /// young space tags, leaving dead old objects in place until the
    /// next full collection.
    ///
    /// The caller must guarantee that no *surviving* object strongly
    /// references a freed one; passing a mark computed with all old
    /// objects as extra roots (see
    /// [`crate::trace::mark_with_extra_roots`]) satisfies this.
    pub fn sweep_where(&mut self, live: &[bool], filter: impl Fn(&Object) -> bool) -> u64 {
        debug_assert_eq!(live.len(), self.slots.len());
        let mut freed = 0u64;
        let mut freed_slot = vec![false; self.slots.len()];
        for idx in 0..self.slots.len() {
            if live[idx] {
                continue;
            }
            if self.slots[idx].as_ref().is_some_and(|o| !filter(o)) {
                continue;
            }
            if let Some(obj) = self.slots[idx].take() {
                freed += obj.size as u64;
                freed_slot[idx] = true;
                self.free_slots.push(idx as u32);
            }
        }
        self.allocated_bytes -= freed;
        // References to *freed* objects are cleared. Weak references may
        // legally dangle only to freed slots; strong references to freed
        // slots can only come from objects the filter retained dead, and
        // clearing them keeps the graph well-formed.
        for slot in self.slots.iter_mut().flatten() {
            slot.weak_refs.retain(|w| !freed_slot[w.0 as usize]);
            slot.refs.retain(|r| !freed_slot[r.0 as usize]);
        }
        self.globals.retain(|g| !freed_slot[g.0 as usize]);
        self.handles.retain(|h| !freed_slot[h.0 as usize]);
        freed
    }

    /// Builds a map from old slot addresses, useful in tests that check
    /// compaction relocated objects.
    pub fn addresses(&self) -> BTreeMap<ObjectId, u64> {
        self.iter().map(|(id, o)| (id, o.addr)).collect()
    }
}

/// Checkpoint codec impls, kept here so exhaustive destructuring sees
/// every private field.
mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for ObjectId {
        fn snap(&self, w: &mut Writer) {
            let Self(raw) = self;
            w.u32(*raw);
        }

        fn restore(r: &mut Reader<'_>) -> Result<ObjectId, SnapError> {
            Ok(ObjectId(r.u32()?))
        }
    }

    impl Snapshot for ObjectKind {
        fn snap(&self, w: &mut Writer) {
            match self {
                Self::Data => w.u8(0),
                Self::Code => w.u8(1),
            }
        }

        fn restore(r: &mut Reader<'_>) -> Result<ObjectKind, SnapError> {
            match r.u8()? {
                0 => Ok(ObjectKind::Data),
                1 => Ok(ObjectKind::Code),
                _ => Err(SnapError::Corrupt("unknown ObjectKind tag")),
            }
        }
    }

    impl Snapshot for Object {
        fn snap(&self, w: &mut Writer) {
            let Self {
                size,
                addr,
                age,
                space_tag,
                kind,
                refs,
                weak_refs,
            } = self;
            w.u32(*size);
            w.u64(*addr);
            w.u8(*age);
            w.u8(*space_tag);
            kind.snap(w);
            refs.snap(w);
            weak_refs.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<Object, SnapError> {
            let size = r.u32()?;
            if size == 0 {
                return Err(SnapError::Corrupt("Object with zero size"));
            }
            Ok(Object {
                size,
                addr: r.u64()?,
                age: r.u8()?,
                space_tag: r.u8()?,
                kind: ObjectKind::restore(r)?,
                refs: Vec::<ObjectId>::restore(r)?,
                weak_refs: Vec::<ObjectId>::restore(r)?,
            })
        }
    }

    impl Snapshot for HeapGraph {
        fn snap(&self, w: &mut Writer) {
            let Self {
                slots,
                free_slots,
                globals,
                handles,
                scope_bounds,
                allocated_bytes,
                total_allocated_bytes,
                total_allocated_objects,
            } = self;
            slots.snap(w);
            free_slots.snap(w);
            globals.snap(w);
            handles.snap(w);
            scope_bounds.snap(w);
            w.u64(*allocated_bytes);
            w.u64(*total_allocated_bytes);
            w.u64(*total_allocated_objects);
        }

        fn restore(r: &mut Reader<'_>) -> Result<HeapGraph, SnapError> {
            let slots = Vec::<Option<Object>>::restore(r)?;
            let free_slots = Vec::<u32>::restore(r)?;
            let globals = Vec::<ObjectId>::restore(r)?;
            let handles = Vec::<ObjectId>::restore(r)?;
            let scope_bounds = Vec::<usize>::restore(r)?;
            let allocated_bytes = r.u64()?;
            let total_allocated_bytes = r.u64()?;
            let total_allocated_objects = r.u64()?;
            let nslots = slots.len();
            if free_slots
                .iter()
                .any(|s| (*s as usize) >= nslots || slots[*s as usize].is_some()) // tidy:allow(panic-reachability) -- the short-circuit bound check guards the index
            {
                return Err(SnapError::Corrupt("HeapGraph free slot is occupied"));
            }
            let live: u64 = slots
                .iter()
                .flatten()
                .map(|o| u64::from(o.size))
                .sum();
            if live != allocated_bytes {
                return Err(SnapError::Corrupt("HeapGraph byte accounting disagrees with slots"));
            }
            Ok(HeapGraph {
                slots,
                free_slots,
                globals,
                handles,
                scope_bounds,
                allocated_bytes,
                total_allocated_bytes,
                total_allocated_objects,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_reuses_swept_slots() {
        let mut g = HeapGraph::new();
        let scope = g.push_handle_scope();
        let a = g.alloc(100, ObjectKind::Data);
        g.add_handle(a);
        g.pop_handle_scope(scope);
        let live = vec![false; g.slot_capacity()];
        let freed = g.sweep(&live);
        assert_eq!(freed, 100);
        assert_eq!(g.object_count(), 0);
        let b = g.alloc(50, ObjectKind::Data);
        // The freed slot is recycled.
        assert_eq!(a.0, b.0);
        assert_eq!(g.allocated_bytes(), 50);
    }

    #[test]
    fn byte_accounting_tracks_alloc_and_sweep() {
        let mut g = HeapGraph::new();
        g.alloc(64, ObjectKind::Data);
        let b = g.alloc(32, ObjectKind::Data);
        assert_eq!(g.allocated_bytes(), 96);
        assert_eq!(g.total_allocated_bytes(), 96);
        let mut live = vec![false; g.slot_capacity()];
        live[b.0 as usize] = true;
        // Keep `b` alive through a global so sweep's root fixup is a
        // no-op.
        g.add_global(b);
        assert_eq!(g.sweep(&live), 64);
        assert_eq!(g.allocated_bytes(), 32);
        assert_eq!(g.total_allocated_bytes(), 96);
    }

    #[test]
    fn sweep_clears_dangling_weak_refs() {
        let mut g = HeapGraph::new();
        let holder = g.alloc(16, ObjectKind::Data);
        let code = g.alloc(256, ObjectKind::Code);
        g.add_weak_ref(holder, code);
        g.add_global(holder);
        let mut live = vec![false; g.slot_capacity()];
        live[holder.0 as usize] = true;
        g.sweep(&live);
        assert!(g.get(holder).weak_refs.is_empty());
        assert!(!g.exists(code));
    }

    #[test]
    fn handle_scopes_nest_lifo() {
        let mut g = HeapGraph::new();
        let outer = g.push_handle_scope();
        let a = g.alloc(8, ObjectKind::Data);
        g.add_handle(a);
        let inner = g.push_handle_scope();
        let b = g.alloc(8, ObjectKind::Data);
        g.add_handle(b);
        assert_eq!(g.handles().len(), 2);
        g.pop_handle_scope(inner);
        assert_eq!(g.handles(), &[a]);
        g.pop_handle_scope(outer);
        assert!(g.handles().is_empty());
        assert!(!g.in_invocation());
    }

    #[test]
    #[should_panic(expected = "popped out of order")]
    fn out_of_order_scope_pop_panics() {
        let mut g = HeapGraph::new();
        let outer = g.push_handle_scope();
        let _inner = g.push_handle_scope();
        g.pop_handle_scope(outer);
    }

    #[test]
    #[should_panic(expected = "no open handle scope")]
    fn handle_without_scope_panics() {
        let mut g = HeapGraph::new();
        let a = g.alloc(8, ObjectKind::Data);
        g.add_handle(a);
    }

    #[test]
    #[should_panic(expected = "zero-sized allocation")]
    fn zero_sized_alloc_panics() {
        HeapGraph::new().alloc(0, ObjectKind::Data);
    }

    #[test]
    fn remove_ref_severs_edges() {
        let mut g = HeapGraph::new();
        let a = g.alloc(8, ObjectKind::Data);
        let b = g.alloc(8, ObjectKind::Data);
        g.add_ref(a, b);
        g.add_ref(a, b);
        g.remove_ref(a, b);
        assert!(g.get(a).refs.is_empty());
    }
}
