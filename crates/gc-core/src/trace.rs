//! Marking: computing the live set from the roots.
//!
//! Both the HotSpot and V8 models use the same marker. The paper's
//! selection policy (§4.5.2) relies on the defining property of tracing
//! collectors — cost proportional to *live* bytes, not heap size — so
//! the marker also reports the number of objects visited, which the
//! runtimes convert into simulated GC pause time.

use crate::object::{HeapGraph, ObjectId, ObjectKind};

/// The result of a marking pass.
#[derive(Debug, Clone)]
pub struct LiveSet {
    /// One bit per arena slot; `true` = reachable.
    pub marks: Vec<bool>,
    /// Total bytes of reachable objects.
    pub live_bytes: u64,
    /// Number of reachable objects (the tracing work performed).
    pub live_objects: u64,
    /// Bytes of reachable *code* objects that are only weakly
    /// reachable. Collecting these is what triggers deoptimization.
    pub weak_code_bytes: u64,
}

impl LiveSet {
    /// True if `id` was marked reachable.
    pub fn is_live(&self, id: ObjectId) -> bool {
        self.marks[id.0 as usize] // tidy:allow(panic-reachability) -- the mark table is sized to the object table it shadows
    }
}

/// Marks the graph from its roots.
///
/// * `include_handles` — whether handle-scope roots count. During a
///   normal in-execution GC they do; at the freeze point the scopes are
///   already popped, so the distinction rarely matters, but the *ideal*
///   baseline of §3.1 is defined as "only what the globals retain".
/// * `keep_weak` — whether weakly referenced objects are retained.
///   `true` models Desiccant's §4.7 non-aggressive mode (weak targets
///   survive); `false` models an aggressive `global.gc()` that clears
///   them.
pub fn mark(graph: &HeapGraph, include_handles: bool, keep_weak: bool) -> LiveSet {
    mark_with_extra_roots(graph, include_handles, keep_weak, std::iter::empty())
}

/// Marks the graph from its roots plus `extra_roots`.
///
/// Generational collectors use this for the remembered-set
/// approximation: a young collection treats *every* old-generation
/// object as a root, so old→young references conservatively keep young
/// objects alive (floating garbage included), exactly like a card-table
/// scavenge that does not know which old objects are themselves dead.
pub fn mark_with_extra_roots(
    graph: &HeapGraph,
    include_handles: bool,
    keep_weak: bool,
    extra_roots: impl Iterator<Item = ObjectId>,
) -> LiveSet {
    let cap = graph.slot_capacity();
    let mut marks = vec![false; cap];
    let mut stack: Vec<ObjectId> = Vec::new();

    let push_root = |id: ObjectId, marks: &mut Vec<bool>, stack: &mut Vec<ObjectId>| {
        if !marks[id.0 as usize] {
            marks[id.0 as usize] = true;
            stack.push(id);
        }
    };

    for &g in graph.globals() {
        push_root(g, &mut marks, &mut stack);
    }
    if include_handles {
        for &h in graph.handles() {
            push_root(h, &mut marks, &mut stack);
        }
    }
    for r in extra_roots {
        push_root(r, &mut marks, &mut stack);
    }

    // Strong closure.
    let mut live_bytes = 0u64;
    let mut live_objects = 0u64;
    while let Some(id) = stack.pop() {
        let obj = graph.get(id);
        live_bytes += obj.size as u64;
        live_objects += 1;
        for &r in &obj.refs {
            if !marks[r.0 as usize] {
                marks[r.0 as usize] = true;
                stack.push(r);
            }
        }
        if keep_weak {
            for &w in &obj.weak_refs {
                if !marks[w.0 as usize] {
                    marks[w.0 as usize] = true;
                    stack.push(w);
                }
            }
        }
    }

    // Account for weakly-reachable code that an aggressive pass would
    // collect: re-walk weak edges from live objects and total the code
    // bytes that are *not* strongly live.
    let mut weak_code_bytes = 0u64;
    if !keep_weak {
        let mut seen = vec![false; cap];
        for (id, obj) in graph.iter() {
            if !marks[id.0 as usize] {
                continue;
            }
            for &w in &obj.weak_refs {
                if !marks[w.0 as usize] && !seen[w.0 as usize] {
                    seen[w.0 as usize] = true;
                    let t = graph.get(w);
                    if t.kind == ObjectKind::Code {
                        weak_code_bytes += t.size as u64;
                    }
                }
            }
        }
    }

    LiveSet {
        marks,
        live_bytes,
        live_objects,
        weak_code_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKind;

    fn chain(g: &mut HeapGraph, n: usize, size: u32) -> Vec<ObjectId> {
        let ids: Vec<_> = (0..n).map(|_| g.alloc(size, ObjectKind::Data)).collect();
        for w in ids.windows(2) {
            g.add_ref(w[0], w[1]);
        }
        ids
    }

    #[test]
    fn unrooted_objects_are_dead() {
        let mut g = HeapGraph::new();
        chain(&mut g, 5, 10);
        let live = mark(&g, true, true);
        assert_eq!(live.live_bytes, 0);
        assert_eq!(live.live_objects, 0);
    }

    #[test]
    fn globals_retain_their_closure() {
        let mut g = HeapGraph::new();
        let ids = chain(&mut g, 5, 10);
        g.add_global(ids[0]);
        let dead = chain(&mut g, 3, 100);
        let _ = dead;
        let live = mark(&g, true, true);
        assert_eq!(live.live_bytes, 50);
        assert_eq!(live.live_objects, 5);
    }

    #[test]
    fn handles_count_only_when_included() {
        let mut g = HeapGraph::new();
        let scope = g.push_handle_scope();
        let ids = chain(&mut g, 4, 10);
        g.add_handle(ids[0]);
        let with = mark(&g, true, true);
        let without = mark(&g, false, true);
        assert_eq!(with.live_bytes, 40);
        assert_eq!(without.live_bytes, 0);
        g.pop_handle_scope(scope);
    }

    #[test]
    fn cycles_do_not_loop_and_count_once() {
        let mut g = HeapGraph::new();
        let a = g.alloc(10, ObjectKind::Data);
        let b = g.alloc(20, ObjectKind::Data);
        g.add_ref(a, b);
        g.add_ref(b, a);
        g.add_global(a);
        let live = mark(&g, true, true);
        assert_eq!(live.live_bytes, 30);
        assert_eq!(live.live_objects, 2);
    }

    #[test]
    fn weak_refs_do_not_retain_when_aggressive() {
        let mut g = HeapGraph::new();
        let holder = g.alloc(8, ObjectKind::Data);
        let code = g.alloc(4096, ObjectKind::Code);
        g.add_weak_ref(holder, code);
        g.add_global(holder);
        let aggressive = mark(&g, true, false);
        assert!(!aggressive.is_live(code));
        assert_eq!(aggressive.weak_code_bytes, 4096);
        let gentle = mark(&g, true, true);
        assert!(gentle.is_live(code));
        assert_eq!(gentle.weak_code_bytes, 0);
    }

    #[test]
    fn strongly_held_code_is_never_weak_code() {
        let mut g = HeapGraph::new();
        let holder = g.alloc(8, ObjectKind::Data);
        let code = g.alloc(4096, ObjectKind::Code);
        g.add_weak_ref(holder, code);
        g.add_ref(holder, code);
        g.add_global(holder);
        let aggressive = mark(&g, true, false);
        assert!(aggressive.is_live(code));
        assert_eq!(aggressive.weak_code_bytes, 0);
    }

    #[test]
    fn sweep_after_mark_preserves_live_bytes() {
        let mut g = HeapGraph::new();
        let ids = chain(&mut g, 10, 10);
        g.add_global(ids[0]);
        chain(&mut g, 7, 100);
        let live = mark(&g, true, true);
        let freed = g.sweep(&live.marks);
        assert_eq!(freed, 700);
        assert_eq!(g.allocated_bytes(), 100);
        // Marking again finds the same live set.
        let live2 = mark(&g, true, true);
        assert_eq!(live2.live_bytes, live.live_bytes);
    }
}
