//! # hotspot — a model of the OpenJDK HotSpot serial collector
//!
//! AWS Lambda runs Java functions on the serial GC (the paper confirms
//! this by dumping runtime options inside Lambda instances, §3.2.1), so
//! this crate models exactly that collector:
//!
//! * a **generational, contiguous heap**: a young generation split into
//!   *eden*, *from*, and *to* spaces, and an old generation — see
//!   [`layout`];
//! * **young collections** that copy survivors between the semispace
//!   halves and promote tenured objects, with every old-generation
//!   object conservatively treated as a root (the card-table
//!   approximation);
//! * **full collections** (mark-compact) that compact all live objects
//!   into the old generation;
//! * the **resizing policy** run after full collections, keeping the
//!   old generation's free ratio between `MinHeapFreeRatio` and
//!   `MaxHeapFreeRatio` and deriving the young size from the old size;
//! * the crucial behaviour the paper characterizes: **shrinking
//!   releases memory (uncommit via `PROT_NONE`), but free pages inside
//!   the committed heap stay resident** — after a full GC the heap may
//!   be 86 % free pages (file-hash: 1.07 MiB live in a 7.88 MiB heap)
//!   and none of it returns to the OS;
//! * the Desiccant **`reclaim` interface** (Algorithm 1): collect all
//!   generations, resize, then release every free page of every space
//!   back to the OS.
//!
//! # Examples
//!
//! ```
//! use gc_core::ObjectKind;
//! use hotspot::{HotSpotConfig, HotSpotHeap};
//! use simos::System;
//!
//! let mut sys = System::new();
//! let pid = sys.spawn_process();
//! let mut heap =
//!     HotSpotHeap::new(&mut sys, pid, HotSpotConfig::for_budget(256 << 20)).unwrap();
//!
//! // Allocate a short-lived object graph inside an invocation.
//! let scope = heap.graph_mut().push_handle_scope();
//! let obj = heap.alloc(&mut sys, 1 << 20, ObjectKind::Data).unwrap();
//! heap.graph_mut().add_handle(obj);
//! heap.graph_mut().pop_handle_scope(scope);
//!
//! // The dead object stays resident until reclaimed.
//! let before = sys.uss(pid);
//! let outcome = heap.reclaim(&mut sys).unwrap();
//! assert!(outcome.released_bytes > 0);
//! assert!(sys.uss(pid) < before);
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod g1;
pub mod heap;
pub mod layout;

pub use config::HotSpotConfig;
pub use g1::{G1Config, G1Heap, G1ReclaimOutcome};
pub use heap::{HeapError, HotSpotHeap, ReclaimOutcome};
pub use layout::{HeapLayout, SpaceId};
