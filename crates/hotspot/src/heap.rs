//! The serial-GC heap: allocation, collection, resizing, reclamation.

use gc_core::object::{HeapGraph, ObjectId, ObjectKind};
use gc_core::stats::{GcCostModel, GcCounters, GcKind};
use gc_core::trace::{mark, mark_with_extra_roots};
use simos::cast;
use simos::cost::CostModel;
use simos::mem::{page_align_up, MappingKind, Prot};
use simos::{Pid, SimDuration, System, VirtAddr, PAGE_SIZE};

use crate::config::HotSpotConfig;
use crate::layout::{tag, HeapLayout, SpaceId};

/// Heap-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// The live set cannot fit in the reserved heap.
    OutOfMemory { requested: u64 },
    /// An OS-level operation failed (indicates a model bug).
    Os(simos::SimOsError),
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::OutOfMemory { requested } => {
                write!(f, "java.lang.OutOfMemoryError: requested {requested} bytes")
            }
            HeapError::Os(e) => write!(f, "os error: {e}"),
        }
    }
}

impl std::error::Error for HeapError {}

impl From<simos::SimOsError> for HeapError {
    fn from(e: simos::SimOsError) -> HeapError {
        HeapError::Os(e)
    }
}

/// What a [`HotSpotHeap::reclaim`] call achieved (the profile data sent
/// back to the platform in §4.4's workflow).
#[derive(Debug, Clone, Copy)]
pub struct ReclaimOutcome {
    /// Bytes of physical memory returned to the OS.
    pub released_bytes: u64,
    /// Live bytes measured by the collection that ran.
    pub live_bytes: u64,
    /// Simulated wall time the reclamation took.
    pub wall_time: SimDuration,
}

/// A HotSpot serial-GC heap bound to one simulated process.
#[derive(Debug, Clone)]
pub struct HotSpotHeap {
    pid: Pid,
    config: HotSpotConfig,
    layout: HeapLayout,
    graph: HeapGraph,
    /// Bump pointer inside eden (absolute address).
    eden_top: VirtAddr,
    /// Bytes used in the *from* survivor half.
    from_used: u64,
    /// Bump pointer inside the old generation (absolute address).
    old_top: VirtAddr,
    counters: GcCounters,
    gc_cost: GcCostModel,
    os_cost: CostModel,
    /// Latency accrued since the last [`HotSpotHeap::take_elapsed`].
    pending: SimDuration,
    /// Live bytes found by the most recent collection.
    last_live_bytes: u64,
}

/// Object alignment, like HotSpot's 8-byte object alignment.
const OBJ_ALIGN: u64 = 8;

fn align_obj(n: u64) -> u64 {
    n.div_ceil(OBJ_ALIGN) * OBJ_ALIGN
}

impl HotSpotHeap {
    /// Reserves and partially commits a heap in process `pid`.
    pub fn new(sys: &mut System, pid: Pid, config: HotSpotConfig) -> Result<HotSpotHeap, HeapError> {
        config.validate();
        let base = sys.mmap_named(
            pid,
            config.max_heap,
            MappingKind::Anonymous,
            Prot::None,
            "[heap:hotspot]",
        )?;
        let layout = HeapLayout::new(base, &config);
        // Commit the initial eden, both survivor halves (fixed), and
        // the initial old generation.
        let (es, el) = layout.eden_committed_range();
        sys.mprotect(pid, es, el, Prot::ReadWrite)?;
        let (ss, sl) = layout.survivor_range();
        sys.mprotect(pid, ss, sl, Prot::ReadWrite)?;
        let (os, ol) = layout.old_committed_range();
        sys.mprotect(pid, os, ol, Prot::ReadWrite)?;
        let (eden_base, _) = layout.space_range(SpaceId::Eden);
        let old_base = layout.old_base();
        Ok(HotSpotHeap {
            pid,
            config,
            layout,
            graph: HeapGraph::new(),
            eden_top: eden_base,
            from_used: 0,
            old_top: old_base,
            counters: GcCounters::default(),
            gc_cost: GcCostModel::default(),
            os_cost: CostModel::default(),
            pending: SimDuration::ZERO,
            last_live_bytes: 0,
        })
    }

    /// The process this heap belongs to.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The object graph (for building references and roots).
    pub fn graph(&self) -> &HeapGraph {
        &self.graph
    }

    /// Mutable object graph.
    pub fn graph_mut(&mut self) -> &mut HeapGraph {
        &mut self.graph
    }

    /// Current geometry.
    pub fn layout(&self) -> &HeapLayout {
        &self.layout
    }

    /// Cumulative collector statistics.
    pub fn counters(&self) -> &GcCounters {
        &self.counters
    }

    /// The heap's reserved address range, reported to the platform so
    /// it can `pmap` the instance (§4.5.2).
    pub fn heap_range(&self) -> (VirtAddr, u64) {
        (self.layout.base, self.layout.reserved())
    }

    /// Committed heap size (what `-verbose:gc` would call the heap).
    pub fn committed(&self) -> u64 {
        self.layout.committed()
    }

    /// Live bytes found by the most recent collection.
    pub fn last_live_bytes(&self) -> u64 {
        self.last_live_bytes
    }

    /// Bytes used in eden right now.
    pub fn eden_used(&self) -> u64 {
        let (eden_base, _) = self.layout.space_range(SpaceId::Eden);
        self.eden_top.0 - eden_base.0
    }

    /// Bytes used in the old generation right now.
    pub fn old_used(&self) -> u64 {
        self.old_top.0 - self.layout.old_base().0
    }

    /// Bytes used in the *from* survivor half.
    pub fn survivor_used(&self) -> u64 {
        self.from_used
    }

    /// Drains the latency accrued by allocation faults and GC pauses
    /// since the last call.
    pub fn take_elapsed(&mut self) -> SimDuration {
        std::mem::take(&mut self.pending)
    }

    fn charge_touch(&mut self, sys: &mut System, addr: VirtAddr, len: u64) -> Result<(), HeapError> {
        if len == 0 {
            return Ok(());
        }
        let start = VirtAddr(addr.0 / PAGE_SIZE * PAGE_SIZE);
        let end = page_align_up(addr.0 + len);
        let out = sys.touch(self.pid, start, end - start.0, true)?;
        self.pending += self.os_cost.touch_cost(out);
        Ok(())
    }

    /// Allocates an object. May trigger young or full collections.
    pub fn alloc(
        &mut self,
        sys: &mut System,
        size: u32,
        kind: ObjectKind,
    ) -> Result<ObjectId, HeapError> {
        let asize = align_obj(u64::from(size));
        // Humongous objects go straight to the old generation, like
        // HotSpot's large-object path.
        if asize > self.layout.eden_size() / 2 {
            let addr = self.old_alloc(sys, asize)?;
            let id = self.graph.alloc(size, kind);
            self.graph.set_addr(id, addr.0);
            self.graph.get_mut(id).space_tag = tag::OLD;
            return Ok(id);
        }
        for attempt in 0..3 {
            let (eden_base, eden_len) = self.layout.space_range(SpaceId::Eden);
            let eden_end = eden_base.0 + eden_len;
            if self.eden_top.0 + asize <= eden_end {
                let addr = self.eden_top;
                self.eden_top = VirtAddr(self.eden_top.0 + asize);
                self.charge_touch(sys, addr, asize)?;
                let id = self.graph.alloc(size, kind);
                self.graph.set_addr(id, addr.0);
                self.graph.get_mut(id).space_tag = tag::EDEN;
                return Ok(id);
            }
            if attempt == 0 {
                self.young_gc(sys)?;
            } else {
                self.full_gc(sys, true)?;
            }
        }
        // Eden is empty after a full GC; if the object still does not
        // fit, fall back to the old generation.
        let addr = self.old_alloc(sys, asize)?;
        let id = self.graph.alloc(size, kind);
        self.graph.set_addr(id, addr.0);
        self.graph.get_mut(id).space_tag = tag::OLD;
        Ok(id)
    }

    /// Bump-allocates in the old generation, expanding or full-GCing as
    /// needed.
    fn old_alloc(&mut self, sys: &mut System, asize: u64) -> Result<VirtAddr, HeapError> {
        for attempt in 0..2 {
            let end = self.layout.old_base().0 + self.layout.old_committed;
            if self.old_top.0 + asize <= end {
                let addr = self.old_top;
                self.old_top = VirtAddr(self.old_top.0 + asize);
                self.charge_touch(sys, addr, asize)?;
                return Ok(addr);
            }
            let needed = self.old_used() + asize;
            if self.expand_old_to(sys, needed)? {
                continue;
            }
            if attempt == 0 {
                self.full_gc(sys, false)?;
            }
        }
        Err(HeapError::OutOfMemory { requested: asize })
    }

    /// Expands the old generation's committed size to at least `needed`
    /// bytes used capacity. Returns false if the reservation is too
    /// small.
    fn expand_old_to(&mut self, sys: &mut System, needed: u64) -> Result<bool, HeapError> {
        let target = self.config.granule_up(needed);
        if target > self.layout.old_reserved {
            return Ok(false);
        }
        if target <= self.layout.old_committed {
            return Ok(true);
        }
        let old_base = self.layout.old_base();
        let from = page_align_up(self.layout.old_committed);
        let to = page_align_up(target);
        if to > from {
            sys.mprotect(
                self.pid,
                old_base.offset(from),
                to - from,
                Prot::ReadWrite,
            )?;
        }
        self.layout.old_committed = target;
        Ok(true)
    }

    /// Runs a young (scavenge) collection.
    ///
    /// Every old-generation object is treated as a root — the
    /// card-table approximation — so dead old objects conservatively
    /// keep their young referents alive until the next full GC.
    pub fn young_gc(&mut self, sys: &mut System) -> Result<(), HeapError> {
        // Worst case every young byte promotes; make sure the old
        // generation could absorb it, otherwise run a full GC instead
        // (HotSpot's promotion-failure bail-out).
        let young_used = self.eden_used() + self.from_used;
        if self.old_used() + young_used > self.layout.old_reserved {
            return self.full_gc(sys, false);
        }
        let old_roots: Vec<ObjectId> = self
            .graph
            .iter()
            .filter(|(_, o)| o.space_tag == tag::OLD)
            .map(|(id, _)| id)
            .collect();
        let live = mark_with_extra_roots(&self.graph, true, true, old_roots.into_iter());
        self.last_live_bytes = live.live_bytes;

        // Collect the young survivors (ids plus their metadata) before
        // mutating the graph.
        let survivors: Vec<(ObjectId, u32, u8)> = self
            .graph
            .iter()
            .filter(|(id, o)| o.space_tag != tag::OLD && live.is_live(*id))
            .map(|(id, o)| (id, o.size, o.age))
            .collect();

        let (to_base, to_len) = self.layout.space_range(SpaceId::To);
        let mut to_top = to_base;
        let mut copied = 0u64;
        let mut promoted = 0u64;
        let mut young_live_objects = 0u64;
        for (id, size, age) in survivors {
            young_live_objects += 1;
            let asize = align_obj(u64::from(size));
            let tenured = age + 1 >= self.config.tenure_threshold;
            let fits = to_top.0 + asize <= to_base.0 + to_len;
            if tenured || !fits {
                let addr = self.old_alloc(sys, asize)?;
                promoted += asize;
                let obj = self.graph.get_mut(id);
                obj.addr = addr.0;
                obj.space_tag = tag::OLD;
            } else {
                let addr = to_top;
                to_top = VirtAddr(to_top.0 + asize);
                copied += asize;
                let obj = self.graph.get_mut(id);
                obj.addr = addr.0;
                obj.space_tag = tag::SURVIVOR;
                obj.age = age + 1;
            }
        }
        self.charge_touch(sys, to_base, to_top.0 - to_base.0)?;

        // Dead young objects are freed; every old object was a root and
        // is therefore marked, so a plain sweep touches only the young.
        let freed = self.graph.sweep(&live.marks);

        // Reset the young spaces and swap survivor roles.
        let (eden_base, _) = self.layout.space_range(SpaceId::Eden);
        self.eden_top = eden_base;
        self.layout.from_is_first = !self.layout.from_is_first;
        self.from_used = to_top.0 - to_base.0;

        let pause = self.gc_cost.pause(young_live_objects, copied + promoted);
        self.pending += pause;
        self.counters
            .record(GcKind::Young, copied, promoted, freed, pause);

        // DefNew-style eden growth: under survival pressure (promotion
        // or a half-full survivor), eden doubles so subsequent bursts
        // die young instead of tenuring.
        if promoted > 0 || self.from_used > self.layout.survivor_size() / 2 {
            self.grow_eden(sys)?;
        }
        Ok(())
    }

    /// Doubles eden's committed size (bounded by the young
    /// reservation). Safe at any time because eden grows upward and
    /// survivors sit at fixed addresses above its maximum.
    fn grow_eden(&mut self, sys: &mut System) -> Result<(), HeapError> {
        let target = self
            .config
            .granule_up(self.layout.eden_committed * 2)
            .min(self.layout.eden_max());
        if target <= self.layout.eden_committed {
            return Ok(());
        }
        let from = page_align_up(self.layout.eden_committed);
        let to = page_align_up(target);
        if to > from {
            sys.mprotect(self.pid, self.layout.base.offset(from), to - from, Prot::ReadWrite)?;
        }
        self.layout.eden_committed = target;
        Ok(())
    }

    /// Runs a full mark-compact collection, then the resize phase.
    ///
    /// All live objects are compacted to the bottom of the old
    /// generation; the young spaces end up empty. `from_resize` guards
    /// against re-entry from the resize path.
    pub fn full_gc(&mut self, sys: &mut System, _user_triggered: bool) -> Result<(), HeapError> {
        let live = mark(&self.graph, true, true);
        self.last_live_bytes = live.live_bytes;

        // Ensure the old generation can hold the whole live set.
        let mut compact_bytes = 0u64;
        let ids: Vec<(ObjectId, u32)> = self
            .graph
            .iter()
            .filter(|(id, _)| live.is_live(*id))
            .map(|(id, o)| (id, o.size))
            .collect();
        for (_, size) in &ids {
            compact_bytes += align_obj(u64::from(*size));
        }
        if !self.expand_old_to(sys, compact_bytes)? {
            return Err(HeapError::OutOfMemory {
                requested: compact_bytes,
            });
        }

        let old_base = self.layout.old_base();
        let mut top = old_base;
        for (id, size) in ids {
            let asize = align_obj(u64::from(size));
            let obj = self.graph.get_mut(id);
            obj.addr = top.0;
            obj.space_tag = tag::OLD;
            top = VirtAddr(top.0 + asize);
        }
        self.old_top = top;
        self.charge_touch(sys, old_base, top.0 - old_base.0)?;

        let freed = self.graph.sweep(&live.marks);
        let (eden_base, _) = self.layout.space_range(SpaceId::Eden);
        self.eden_top = eden_base;
        self.from_used = 0;

        let pause = self.gc_cost.full_pause(live.live_objects, compact_bytes);
        self.pending += pause;
        self.counters
            .record(GcKind::Full, compact_bytes, 0, freed, pause);

        self.resize(sys)?;
        Ok(())
    }

    /// The resize phase run after full collections (§3.2.1): keep the
    /// old generation's free ratio within bounds, then derive the young
    /// generation size from the old one. Shrinking *uncommits* (frees)
    /// pages; free pages inside the committed range stay resident.
    fn resize(&mut self, sys: &mut System) -> Result<(), HeapError> {
        let used = self.old_used();
        let committed = self.layout.old_committed;
        let min_committed = self
            .config
            .granule_up(cast::u64_from_f64(((used as f64) / (1.0 - self.config.min_heap_free_ratio)).ceil()))
            .max(self.config.min_gen_committed);
        let max_committed = self
            .config
            .granule_up(cast::u64_from_f64(((used as f64) / (1.0 - self.config.max_heap_free_ratio)).ceil()))
            .max(self.config.min_gen_committed);
        let target = if committed < min_committed {
            min_committed.min(self.layout.old_reserved)
        } else if committed > max_committed {
            max_committed
        } else {
            committed
        };
        let old_base = self.layout.old_base();
        if target > committed {
            let from = page_align_up(committed);
            let to = page_align_up(target);
            if to > from {
                sys.mprotect(self.pid, old_base.offset(from), to - from, Prot::ReadWrite)?;
            }
        } else if target < committed {
            let from = page_align_up(target);
            let to = page_align_up(committed);
            if to > from {
                sys.mprotect(self.pid, old_base.offset(from), to - from, Prot::None)?;
            }
        }
        self.layout.old_committed = target;

        // Eden follows the old size (the "young size is mainly
        // determined by the old generation size" policy). Eden is empty
        // here (we just compacted), so resizing it is safe.
        let eden_target = self
            .config
            .granule_up(target / self.config.new_ratio)
            .clamp(self.config.min_gen_committed, self.layout.eden_max());
        let eden_committed = self.layout.eden_committed;
        if eden_target > eden_committed {
            let from = page_align_up(eden_committed);
            let to = page_align_up(eden_target);
            if to > from {
                sys.mprotect(
                    self.pid,
                    self.layout.base.offset(from),
                    to - from,
                    Prot::ReadWrite,
                )?;
            }
        } else if eden_target < eden_committed {
            let from = page_align_up(eden_target);
            let to = page_align_up(eden_committed);
            if to > from {
                sys.mprotect(self.pid, self.layout.base.offset(from), to - from, Prot::None)?;
            }
        }
        self.layout.eden_committed = eden_target;
        let (eden_base, _) = self.layout.space_range(SpaceId::Eden);
        self.eden_top = eden_base;
        Ok(())
    }

    /// `System.gc()`: a user-triggered full collection (always an old
    /// GC cycle, which also runs the resize phase).
    pub fn system_gc(&mut self, sys: &mut System) -> Result<(), HeapError> {
        self.full_gc(sys, true)
    }

    /// The Desiccant `reclaim` interface (Algorithm 1): collect all
    /// generations, resize, then release every free page of every space
    /// back to the OS — the whole survivor halves, all of eden, and the
    /// old generation above `old_top`.
    pub fn reclaim(&mut self, sys: &mut System) -> Result<ReclaimOutcome, HeapError> {
        let pause_before = self.pending;
        self.full_gc(sys, true)?;

        let mut released = 0u64;
        // Eden and both survivor halves are empty after the compaction.
        let (eden_base, eden_len) = self.layout.space_range(SpaceId::Eden);
        released += self.release_range(sys, eden_base, eden_len)?;
        let (from_base, from_len) = self.layout.space_range(SpaceId::From);
        released += self.release_range(sys, from_base, from_len)?;
        let (to_base, to_len) = self.layout.space_range(SpaceId::To);
        released += self.release_range(sys, to_base, to_len)?;
        // Old generation: everything above the compaction top.
        let old_base = self.layout.old_base();
        let free_start = page_align_up(self.old_top.0);
        let committed_end = old_base.0 + page_align_up(self.layout.old_committed);
        if committed_end > free_start {
            released += self.release_range(sys, VirtAddr(free_start), committed_end - free_start)?;
        }
        self.pending += self.os_cost.release_cost(released);

        let wall = self.pending.saturating_sub(pause_before);
        Ok(ReclaimOutcome {
            released_bytes: released,
            live_bytes: self.last_live_bytes,
            wall_time: wall,
        })
    }

    fn release_range(
        &mut self,
        sys: &mut System,
        addr: VirtAddr,
        len: u64,
    ) -> Result<u64, HeapError> {
        if len == 0 {
            return Ok(0);
        }
        Ok(sys.release(self.pid, addr, page_align_up(len))?)
    }

    /// Resident bytes inside the heap reservation (`pmap` over the
    /// reported range).
    ///
    /// # Panics
    ///
    /// Panics if the heap mapping has disappeared, which indicates a
    /// model bug rather than a runtime condition.
    pub fn resident_heap_bytes(&self, sys: &System) -> u64 {
        let (base, len) = self.heap_range();
        sys.pmap(self.pid, base, len)
            .expect("heap reservation must exist") // tidy:allow(panic-reachability) -- the reservation is created in new() and never released
    }
}

/// Checkpoint codec impl, kept here so exhaustive destructuring sees
/// every private field.
mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for HotSpotHeap {
        fn snap(&self, w: &mut Writer) {
            let Self {
                pid,
                config,
                layout,
                graph,
                eden_top,
                from_used,
                old_top,
                counters,
                gc_cost,
                os_cost,
                pending,
                last_live_bytes,
            } = self;
            pid.snap(w);
            config.snap(w);
            layout.snap(w);
            graph.snap(w);
            eden_top.snap(w);
            w.u64(*from_used);
            old_top.snap(w);
            counters.snap(w);
            gc_cost.snap(w);
            os_cost.snap(w);
            pending.snap(w);
            w.u64(*last_live_bytes);
        }

        fn restore(r: &mut Reader<'_>) -> Result<HotSpotHeap, SnapError> {
            Ok(HotSpotHeap {
                pid: Pid::restore(r)?,
                config: HotSpotConfig::restore(r)?,
                layout: HeapLayout::restore(r)?,
                graph: HeapGraph::restore(r)?,
                eden_top: VirtAddr::restore(r)?,
                from_used: r.u64()?,
                old_top: VirtAddr::restore(r)?,
                counters: GcCounters::restore(r)?,
                gc_cost: GcCostModel::restore(r)?,
                os_cost: CostModel::restore(r)?,
                pending: SimDuration::restore(r)?,
                last_live_bytes: r.u64()?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(budget: u64) -> (System, HotSpotHeap) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let heap = HotSpotHeap::new(&mut sys, pid, HotSpotConfig::for_budget(budget)).unwrap();
        (sys, heap)
    }

    #[test]
    fn fresh_heap_has_initial_commit_and_no_residency() {
        let (sys, heap) = setup(256 << 20);
        assert_eq!(heap.committed(), heap.layout().committed());
        assert_eq!(heap.resident_heap_bytes(&sys), 0);
    }

    #[test]
    fn allocation_touches_pages() {
        let (mut sys, mut heap) = setup(256 << 20);
        let scope = heap.graph_mut().push_handle_scope();
        let id = heap.alloc(&mut sys, 100 << 10, ObjectKind::Data).unwrap();
        heap.graph_mut().add_handle(id);
        assert!(heap.resident_heap_bytes(&sys) >= 100 << 10);
        assert!(heap.take_elapsed() > SimDuration::ZERO);
        heap.graph_mut().pop_handle_scope(scope);
    }

    #[test]
    fn eden_exhaustion_triggers_young_gc() {
        let (mut sys, mut heap) = setup(256 << 20);
        let eden = heap.layout().eden_size();
        let obj = 64 << 10;
        let n = (eden / obj) * 3;
        for _ in 0..n {
            // Unreferenced garbage: dies at the first young GC.
            heap.alloc(&mut sys, obj as u32, ObjectKind::Data).unwrap();
        }
        assert!(heap.counters().young_collections >= 2);
        assert_eq!(heap.counters().full_collections, 0);
        // Everything was garbage: nothing promoted or in survivors.
        assert_eq!(heap.old_used(), 0);
        assert_eq!(heap.survivor_used(), 0);
    }

    #[test]
    fn survivors_are_copied_then_promoted() {
        let (mut sys, mut heap) = setup(256 << 20);
        // A handle-rooted object survives collections.
        let scope = heap.graph_mut().push_handle_scope();
        let id = heap.alloc(&mut sys, 32 << 10, ObjectKind::Data).unwrap();
        heap.graph_mut().add_handle(id);
        for _ in 0..heap.config.tenure_threshold {
            heap.young_gc(&mut sys).unwrap();
        }
        assert_eq!(heap.graph().get(id).space_tag, tag::OLD);
        assert!(heap.counters().bytes_promoted >= 32 << 10);
        heap.graph_mut().pop_handle_scope(scope);
    }

    #[test]
    fn young_gc_keeps_objects_reachable_from_dead_old() {
        let (mut sys, mut heap) = setup(256 << 20);
        let scope = heap.graph_mut().push_handle_scope();
        // Build an old object by tenuring.
        let old_obj = heap.alloc(&mut sys, 16 << 10, ObjectKind::Data).unwrap();
        heap.graph_mut().add_handle(old_obj);
        for _ in 0..heap.config.tenure_threshold {
            heap.young_gc(&mut sys).unwrap();
        }
        assert_eq!(heap.graph().get(old_obj).space_tag, tag::OLD);
        // Young object referenced only by the (soon dead) old object.
        let young = heap.alloc(&mut sys, 8 << 10, ObjectKind::Data).unwrap();
        heap.graph_mut().add_ref(old_obj, young);
        heap.graph_mut().pop_handle_scope(scope);
        // The old object is now dead, but young GC must conservatively
        // keep its young referent (floating garbage).
        heap.young_gc(&mut sys).unwrap();
        assert!(heap.graph().exists(young));
        // A full GC collects both.
        heap.full_gc(&mut sys, true).unwrap();
        assert!(!heap.graph().exists(young));
        assert!(!heap.graph().exists(old_obj));
    }

    #[test]
    fn full_gc_compacts_into_old_and_empties_young() {
        let (mut sys, mut heap) = setup(256 << 20);
        let scope = heap.graph_mut().push_handle_scope();
        let keep = heap.alloc(&mut sys, 1 << 20, ObjectKind::Data).unwrap();
        heap.graph_mut().add_handle(keep);
        for _ in 0..100 {
            heap.alloc(&mut sys, 64 << 10, ObjectKind::Data).unwrap();
        }
        heap.full_gc(&mut sys, true).unwrap();
        assert_eq!(heap.graph().get(keep).space_tag, tag::OLD);
        assert_eq!(heap.eden_used(), 0);
        assert_eq!(heap.survivor_used(), 0);
        assert_eq!(heap.old_used(), align_obj(1 << 20));
        heap.graph_mut().pop_handle_scope(scope);
    }

    #[test]
    fn resize_shrinks_after_garbage_heavy_phase() {
        let (mut sys, mut heap) = setup(256 << 20);
        // Blow the heap up with garbage, forcing expansion.
        let scope = heap.graph_mut().push_handle_scope();
        let keep = heap.alloc(&mut sys, 512 << 10, ObjectKind::Data).unwrap();
        heap.graph_mut().add_handle(keep);
        for _ in 0..2000 {
            let id = heap.alloc(&mut sys, 64 << 10, ObjectKind::Data).unwrap();
            // Root each briefly via the live object so some promote.
            let _ = id;
        }
        heap.graph_mut().pop_handle_scope(scope);
        heap.graph_mut().add_global(keep);
        let committed_high = heap.committed();
        heap.system_gc(&mut sys).unwrap();
        assert!(
            heap.committed() < committed_high,
            "committed {} not below high-water {committed_high}",
            heap.committed()
        );
        // Free ratio bound respected.
        let used = heap.old_used();
        let free_ratio = 1.0 - used as f64 / heap.layout().old_committed as f64;
        assert!(free_ratio <= heap.config.max_heap_free_ratio + 0.10);
    }

    #[test]
    fn shrink_releases_but_committed_pages_stay_resident() {
        let (mut sys, mut heap) = setup(256 << 20);
        let keep = heap.alloc(&mut sys, 256 << 10, ObjectKind::Data).unwrap();
        heap.graph_mut().add_global(keep);
        for _ in 0..3000 {
            heap.alloc(&mut sys, 32 << 10, ObjectKind::Data).unwrap();
        }
        heap.system_gc(&mut sys).unwrap();
        // After System.gc() the heap is small, but resident memory is
        // roughly the committed size — free in-heap pages do NOT return
        // to the OS. This is the §3.2.1 observation.
        let resident = heap.resident_heap_bytes(&sys);
        let live = heap.last_live_bytes();
        assert!(
            resident > live * 3,
            "resident {resident} unexpectedly close to live {live}"
        );
    }

    #[test]
    fn reclaim_releases_down_to_live_pages() {
        let (mut sys, mut heap) = setup(256 << 20);
        let keep = heap.alloc(&mut sys, 256 << 10, ObjectKind::Data).unwrap();
        heap.graph_mut().add_global(keep);
        for _ in 0..3000 {
            heap.alloc(&mut sys, 32 << 10, ObjectKind::Data).unwrap();
        }
        let outcome = heap.reclaim(&mut sys).unwrap();
        assert!(outcome.released_bytes > 0);
        assert!(outcome.wall_time > SimDuration::ZERO);
        let resident = heap.resident_heap_bytes(&sys);
        // Resident is now live bytes rounded up to pages (plus object
        // alignment slack).
        assert!(
            resident <= page_align_up(outcome.live_bytes) + PAGE_SIZE,
            "resident {resident} vs live {}",
            outcome.live_bytes
        );
    }

    #[test]
    fn execution_after_reclaim_refaults() {
        let (mut sys, mut heap) = setup(256 << 20);
        let keep = heap.alloc(&mut sys, 64 << 10, ObjectKind::Data).unwrap();
        heap.graph_mut().add_global(keep);
        for _ in 0..500 {
            heap.alloc(&mut sys, 32 << 10, ObjectKind::Data).unwrap();
        }
        heap.reclaim(&mut sys).unwrap();
        heap.take_elapsed();
        // New allocations fault pages back in: elapsed time reflects
        // the §5.6 post-reclamation overhead.
        for _ in 0..100 {
            heap.alloc(&mut sys, 32 << 10, ObjectKind::Data).unwrap();
        }
        assert!(heap.take_elapsed() > SimDuration::ZERO);
    }

    #[test]
    fn humongous_objects_allocate_in_old() {
        let (mut sys, mut heap) = setup(256 << 20);
        let big = (heap.layout().eden_size() / 2 + PAGE_SIZE) as u32;
        let id = heap.alloc(&mut sys, big, ObjectKind::Data).unwrap();
        assert_eq!(heap.graph().get(id).space_tag, tag::OLD);
        assert!(heap.old_used() >= big as u64);
    }

    #[test]
    fn oom_when_live_set_exceeds_reservation() {
        let (mut sys, mut heap) = setup(64 << 20);
        let mut err = None;
        for _ in 0..200 {
            match heap.alloc(&mut sys, 4 << 20, ObjectKind::Data) {
                Ok(id) => heap.graph_mut().add_global(id),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(HeapError::OutOfMemory { .. })));
    }

    #[test]
    fn committed_never_exceeds_reservation() {
        let (mut sys, mut heap) = setup(128 << 20);
        for i in 0..5000 {
            let id = heap.alloc(&mut sys, 16 << 10, ObjectKind::Data).unwrap();
            if i % 7 == 0 {
                heap.graph_mut().add_global(id);
            }
            assert!(heap.layout().old_committed <= heap.layout().old_reserved);
            assert!(heap.layout().eden_committed <= heap.layout().eden_max());
        }
    }
}
