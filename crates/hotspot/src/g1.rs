//! A G1-style regional collector.
//!
//! The paper's §7 names G1GC explicitly: *"despite having a different
//! GC algorithm compared to the Serial GC, it is still based on the
//! HotSpot JVM and fulfills the aforementioned requirements, making it
//! compatible with Desiccant."* This module models the G1 of the JDK 8
//! era the paper targets:
//!
//! * the heap is a grid of fixed-size **regions** (1 MiB here), each
//!   free or serving as eden / survivor / old / humongous;
//! * **young collections** evacuate live eden+survivor objects into
//!   fresh survivor (or old, once tenured) regions and return the
//!   emptied regions to the free list;
//! * **mixed collections** run when old occupancy crosses the IHOP
//!   threshold: after marking, the *garbage-first* heuristic evacuates
//!   the old regions with the most reclaimable space;
//! * crucially for the paper: **free regions stay committed and their
//!   pages stay resident** — JDK 8's G1 returns memory to the OS only
//!   on a full-GC resize, which FaaS workloads rarely trigger. A frozen
//!   G1 instance therefore pins its high-water mark: frozen garbage at
//!   region granularity;
//! * [`G1Heap::reclaim`] is the Desiccant interface: a compacting full
//!   collection, then every free region's pages are released.
//!
//! Like `cpython-heap` and `goruntime`, this is an extension beyond the
//! paper's measured figures (Lambda pins the serial GC, §5.4), wired
//! into `examples/other_runtimes.rs`.

use gc_core::object::{HeapGraph, ObjectId, ObjectKind};
use gc_core::stats::{GcCostModel, GcCounters, GcKind};
use gc_core::trace::{mark, mark_with_extra_roots};
use simos::cast;
use simos::cost::CostModel;
use simos::mem::{page_align_up, MappingKind, Prot};
use simos::{Pid, SimDuration, System, VirtAddr};

use crate::heap::HeapError;

/// Region size (G1 picks 1–32 MiB by heap size; 1 MiB fits the 256 MiB
/// instances here).
pub const REGION_SIZE: u64 = 1 << 20;

/// What a region currently serves as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// Unused (committed or not, per `committed` flag).
    Free,
    /// Young allocation region.
    Eden,
    /// Young survivor region.
    Survivor,
    /// Tenured region.
    Old,
    /// Part of a humongous allocation (one object spanning whole
    /// regions).
    Humongous,
}

/// Space tags stored in object headers.
mod tag {
    pub const YOUNG: u8 = 0;
    pub const SURVIVOR: u8 = 1;
    pub const OLD: u8 = 2;
    pub const HUMONGOUS: u8 = 3;
}

#[derive(Debug, Clone)]
struct Region {
    kind: RegionKind,
    /// Bump offset within the region.
    top: u64,
    /// Whether the region's range has ever been committed (touched).
    committed: bool,
}

/// Configuration of a [`G1Heap`].
#[derive(Debug, Clone, Copy)]
pub struct G1Config {
    /// Reserved heap size (a whole number of regions).
    pub max_heap: u64,
    /// Young generation target, as a fraction of all regions.
    pub young_fraction: f64,
    /// Initiating-heap-occupancy threshold for mixed collections
    /// (G1's `InitiatingHeapOccupancyPercent`, default 45).
    pub ihop: f64,
    /// Minimum garbage fraction for an old region to be collected in a
    /// mixed collection (the garbage-first cut-off).
    pub min_garbage_fraction: f64,
    /// Survivals before tenuring.
    pub tenure_threshold: u8,
}

impl G1Config {
    /// Lambda-like sizing for a `budget`-byte instance.
    pub fn for_budget(budget: u64) -> G1Config {
        let max_heap = (budget / 5 * 4) / REGION_SIZE * REGION_SIZE;
        G1Config {
            max_heap,
            young_fraction: 0.25,
            ihop: 0.45,
            min_garbage_fraction: 0.50,
            tenure_threshold: 4,
        }
    }

    /// Sanity checks.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configurations.
    pub fn validate(&self) {
        assert!(self.max_heap >= 8 * REGION_SIZE, "heap below 8 regions");
        assert_eq!(self.max_heap % REGION_SIZE, 0);
        assert!(self.young_fraction > 0.0 && self.young_fraction < 1.0);
        assert!(self.ihop > 0.0 && self.ihop < 1.0);
        assert!((0.0..1.0).contains(&self.min_garbage_fraction));
    }
}

/// Result of a [`G1Heap::reclaim`].
#[derive(Debug, Clone, Copy)]
pub struct G1ReclaimOutcome {
    /// Bytes released back to the OS.
    pub released_bytes: u64,
    /// Live bytes after the collection.
    pub live_bytes: u64,
    /// Simulated wall time of the reclamation.
    pub wall_time: SimDuration,
}

/// A G1-style heap bound to one simulated process.
#[derive(Debug, Clone)]
pub struct G1Heap {
    pid: Pid,
    config: G1Config,
    base: VirtAddr,
    regions: Vec<Region>,
    graph: HeapGraph,
    /// Region currently taking eden allocations.
    eden_current: Option<usize>,
    /// Region currently taking survivor copies (during GC).
    counters: GcCounters,
    gc_cost: GcCostModel,
    os_cost: CostModel,
    pending: SimDuration,
    last_live_bytes: u64,
}

fn align_obj(n: u64) -> u64 {
    n.div_ceil(8) * 8
}

impl G1Heap {
    /// Reserves a heap in process `pid`.
    pub fn new(sys: &mut System, pid: Pid, config: G1Config) -> Result<G1Heap, HeapError> {
        config.validate();
        let base = sys.mmap_named(
            pid,
            config.max_heap,
            MappingKind::Anonymous,
            Prot::None,
            "[heap:g1]",
        )?;
        let nregions = cast::to_usize(config.max_heap / REGION_SIZE);
        Ok(G1Heap {
            pid,
            config,
            base,
            regions: vec![
                Region {
                    kind: RegionKind::Free,
                    top: 0,
                    committed: false,
                };
                nregions
            ],
            graph: HeapGraph::new(),
            eden_current: None,
            counters: GcCounters::default(),
            gc_cost: GcCostModel::default(),
            os_cost: CostModel::default(),
            pending: SimDuration::ZERO,
            last_live_bytes: 0,
        })
    }

    /// The object graph.
    pub fn graph(&self) -> &HeapGraph {
        &self.graph
    }

    /// Mutable object graph.
    pub fn graph_mut(&mut self) -> &mut HeapGraph {
        &mut self.graph
    }

    /// Cumulative collector counters.
    pub fn counters(&self) -> &GcCounters {
        &self.counters
    }

    /// Live bytes found by the most recent collection.
    pub fn last_live_bytes(&self) -> u64 {
        self.last_live_bytes
    }

    /// Drains accrued latency.
    pub fn take_elapsed(&mut self) -> SimDuration {
        std::mem::take(&mut self.pending)
    }

    /// Regions by kind, for tests and reports.
    pub fn region_count(&self, kind: RegionKind) -> usize {
        self.regions.iter().filter(|r| r.kind == kind).count()
    }

    /// Committed bytes: every region that has ever been used (JDK 8 G1
    /// does not uncommit outside full-GC resizes).
    pub fn committed(&self) -> u64 {
        cast::to_u64(self.regions.iter().filter(|r| r.committed).count()) * REGION_SIZE
    }

    /// Resident heap bytes.
    pub fn resident_heap_bytes(&self, sys: &System) -> u64 {
        sys.pmap(self.pid, self.base, self.config.max_heap).unwrap_or(0)
    }

    fn region_addr(&self, idx: usize) -> VirtAddr {
        self.base.offset(cast::to_u64(idx) * REGION_SIZE)
    }

    fn region_of_addr(&self, addr: u64) -> usize {
        cast::to_usize((addr - self.base.0) / REGION_SIZE)
    }

    /// Takes a free region for `kind`, committing it if needed.
    fn take_region(&mut self, sys: &mut System, kind: RegionKind) -> Result<usize, HeapError> {
        let idx = self
            .regions
            .iter()
            .position(|r| r.kind == RegionKind::Free)
            .ok_or(HeapError::OutOfMemory {
                requested: REGION_SIZE,
            })?;
        if !self.regions[idx].committed { // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
            sys.mprotect(self.pid, self.region_addr(idx), REGION_SIZE, Prot::ReadWrite)?;
            self.regions[idx].committed = true; // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
        }
        self.regions[idx].kind = kind; // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
        self.regions[idx].top = 0; // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
        Ok(idx)
    }

    /// Takes *contiguous* free regions for a humongous allocation of
    /// `total_bytes`; the last region's `top` records the object's true
    /// end so its free tail can be released.
    fn take_contiguous(&mut self, sys: &mut System, total_bytes: u64) -> Result<usize, HeapError> {
        let n = cast::to_usize(total_bytes.div_ceil(REGION_SIZE));
        let mut run = 0;
        let mut start = 0;
        for (i, r) in self.regions.iter().enumerate() {
            if r.kind == RegionKind::Free {
                if run == 0 {
                    start = i;
                }
                run += 1;
                if run == n {
                    for idx in start..start + n {
                        if !self.regions[idx].committed { // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
                            sys.mprotect(
                                self.pid,
                                self.region_addr(idx),
                                REGION_SIZE,
                                Prot::ReadWrite,
                            )?;
                            self.regions[idx].committed = true; // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
                        }
                        self.regions[idx].kind = RegionKind::Humongous; // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
                        self.regions[idx].top = if idx == start + n - 1 { // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
                            total_bytes - (cast::to_u64(n) - 1) * REGION_SIZE
                        } else {
                            REGION_SIZE
                        };
                    }
                    return Ok(start);
                }
            } else {
                run = 0;
            }
        }
        Err(HeapError::OutOfMemory {
            requested: cast::to_u64(n) * REGION_SIZE,
        })
    }

    fn charge_touch(&mut self, sys: &mut System, addr: VirtAddr, len: u64) -> Result<(), HeapError> {
        if len == 0 {
            return Ok(());
        }
        let start = VirtAddr(addr.0 / simos::PAGE_SIZE * simos::PAGE_SIZE);
        let end = page_align_up(addr.0 + len);
        let out = sys.touch(self.pid, start, end - start.0, true)?;
        self.pending += self.os_cost.touch_cost(out);
        Ok(())
    }

    /// Number of eden regions the young target allows.
    fn young_target(&self) -> usize {
        cast::usize_from_f64(self.regions.len() as f64 * self.config.young_fraction).max(1)
    }

    /// Allocates an object.
    pub fn alloc(&mut self, sys: &mut System, size: u32, kind: ObjectKind) -> Result<ObjectId, HeapError> {
        let asize = align_obj(u64::from(size));
        if asize > REGION_SIZE / 2 {
            // Humongous: whole contiguous regions.
            let start = match self.take_contiguous(sys, asize) {
                Ok(s) => s,
                Err(_) => {
                    self.full_gc(sys)?;
                    self.take_contiguous(sys, asize)?
                }
            };
            let addr = self.region_addr(start);
            self.charge_touch(sys, addr, asize)?;
            let id = self.graph.alloc(size, kind);
            self.graph.set_addr(id, addr.0);
            self.graph.get_mut(id).space_tag = tag::HUMONGOUS;
            return Ok(id);
        }
        for attempt in 0..3 {
            // Room in the current eden region?
            if let Some(idx) = self.eden_current {
                if self.regions[idx].top + asize <= REGION_SIZE { // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
                    let addr = self.region_addr(idx).offset(self.regions[idx].top); // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
                    self.regions[idx].top += asize; // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
                    self.charge_touch(sys, addr, asize)?;
                    let id = self.graph.alloc(size, kind);
                    self.graph.set_addr(id, addr.0);
                    self.graph.get_mut(id).space_tag = tag::YOUNG;
                    return Ok(id);
                }
            }
            // Open another eden region if the young target allows.
            let eden_now = self.region_count(RegionKind::Eden);
            if eden_now < self.young_target() {
                if let Ok(idx) = self.take_region(sys, RegionKind::Eden) {
                    self.eden_current = Some(idx);
                    continue;
                }
            }
            // Young target reached (or no free region): collect.
            if attempt == 0 {
                self.young_gc(sys)?;
            } else {
                self.full_gc(sys)?;
            }
        }
        Err(HeapError::OutOfMemory {
            requested: asize,
        })
    }

    /// Evacuates `survivors` into regions of `dest_kind`; returns bytes
    /// copied.
    fn evacuate(
        &mut self,
        sys: &mut System,
        survivors: &[(ObjectId, u32)],
        dest_kind: RegionKind,
        dest_tag: u8,
    ) -> Result<u64, HeapError> {
        let mut current: Option<usize> = None;
        let mut copied = 0;
        for &(id, size) in survivors {
            let asize = align_obj(u64::from(size));
            let idx = match current {
                Some(i) if self.regions[i].top + asize <= REGION_SIZE => i, // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
                _ => {
                    let i = self.take_region(sys, dest_kind)?;
                    current = Some(i);
                    i
                }
            };
            let addr = self.region_addr(idx).offset(self.regions[idx].top); // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
            self.regions[idx].top += asize; // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
            self.charge_touch(sys, addr, asize)?;
            copied += asize;
            let obj = self.graph.get_mut(id);
            obj.addr = addr.0;
            obj.space_tag = dest_tag;
        }
        Ok(copied)
    }

    /// A young collection: evacuate live eden+survivor objects, free
    /// the emptied young regions, then run a mixed collection if old
    /// occupancy crossed the IHOP threshold.
    pub fn young_gc(&mut self, sys: &mut System) -> Result<(), HeapError> {
        let old_roots: Vec<ObjectId> = self
            .graph
            .iter()
            .filter(|(_, o)| o.space_tag == tag::OLD || o.space_tag == tag::HUMONGOUS)
            .map(|(id, _)| id)
            .collect();
        let live = mark_with_extra_roots(&self.graph, true, true, old_roots.into_iter());
        self.last_live_bytes = live.live_bytes;
        let mut tenured = Vec::new();
        let mut surviving = Vec::new();
        for (id, o) in self.graph.iter() {
            if (o.space_tag == tag::YOUNG || o.space_tag == tag::SURVIVOR) && live.is_live(id) {
                if o.age + 1 >= self.config.tenure_threshold {
                    tenured.push((id, o.size));
                } else {
                    surviving.push((id, o.size));
                }
            }
        }
        let young_live_objects = cast::to_u64(tenured.len() + surviving.len());
        // Emptied young regions return to the free list *before*
        // evacuation so their space is reusable as destination.
        for r in &mut self.regions {
            if matches!(r.kind, RegionKind::Eden | RegionKind::Survivor) {
                r.kind = RegionKind::Free;
                r.top = 0;
            }
        }
        self.eden_current = None;
        let copied = self.evacuate(sys, &surviving, RegionKind::Survivor, tag::SURVIVOR)?;
        let promoted = self.evacuate(sys, &tenured, RegionKind::Old, tag::OLD)?;
        for (id, _) in &surviving {
            self.graph.get_mut(*id).age += 1;
        }
        let freed = self.graph.sweep(&live.marks);
        let pause = self.gc_cost.pause(young_live_objects, copied + promoted);
        self.pending += pause;
        self.counters
            .record(GcKind::Young, copied, promoted, freed, pause);

        // IHOP check: old+humongous occupancy over the whole heap.
        let old_bytes: u64 = self
            .regions
            .iter()
            .filter(|r| matches!(r.kind, RegionKind::Old | RegionKind::Humongous))
            .map(|r| r.top)
            .sum();
        if (old_bytes as f64) > self.config.ihop * self.config.max_heap as f64 {
            self.mixed_gc(sys)?;
        }
        Ok(())
    }

    /// A mixed collection: mark, free dead humongous allocations, then
    /// evacuate the old regions whose garbage fraction exceeds the
    /// cut-off — most-garbage-first (the name of the game).
    pub fn mixed_gc(&mut self, sys: &mut System) -> Result<(), HeapError> {
        let live = mark(&self.graph, true, true);
        self.last_live_bytes = live.live_bytes;
        // Live bytes per old region.
        let mut live_in_region = vec![0u64; self.regions.len()];
        let mut region_objects: Vec<Vec<(ObjectId, u32)>> = vec![Vec::new(); self.regions.len()];
        for (id, o) in self.graph.iter() {
            if o.space_tag != tag::OLD {
                continue;
            }
            let r = self.region_of_addr(o.addr);
            if live.is_live(id) {
                live_in_region[r] += align_obj(u64::from(o.size)); // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
                region_objects[r].push((id, o.size)); // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
            }
        }
        // Dead humongous allocations: whole regions come back.
        let mut dead_humongous_regions = 0;
        for (id, o) in self.graph.iter() {
            if o.space_tag == tag::HUMONGOUS && !live.is_live(id) {
                let start = self.region_of_addr(o.addr);
                let n = cast::to_usize(align_obj(u64::from(o.size)).div_ceil(REGION_SIZE));
                for r in &mut self.regions[start..start + n] { // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
                    r.kind = RegionKind::Free;
                    r.top = 0;
                    dead_humongous_regions += 1;
                }
            }
        }
        // Garbage-first: candidate regions sorted by reclaimable bytes.
        let mut candidates: Vec<(u64, usize)> = self
            .regions
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                r.kind == RegionKind::Old
                    && (r.top - live_in_region[*i]) as f64 // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
                        > self.config.min_garbage_fraction * REGION_SIZE as f64
            })
            .map(|(i, r)| (r.top - live_in_region[i], i)) // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
            .collect();
        candidates.sort_unstable_by(|a, b| b.cmp(a));
        let mut survivors = Vec::new();
        for &(_, i) in &candidates {
            survivors.extend(region_objects[i].iter().copied()); // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
            self.regions[i].kind = RegionKind::Free; // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
            self.regions[i].top = 0; // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
        }
        let copied = self.evacuate(sys, &survivors, RegionKind::Old, tag::OLD)?;
        let freed = self.graph.sweep(&live.marks);
        let pause = self.gc_cost.full_pause(live.live_objects, copied);
        self.pending += pause;
        self.counters.record(GcKind::Full, copied, 0, freed, pause);
        let _ = dead_humongous_regions;
        Ok(())
    }

    /// A full compacting collection: every live object is evacuated
    /// into the smallest possible set of regions.
    pub fn full_gc(&mut self, sys: &mut System) -> Result<(), HeapError> {
        let live = mark(&self.graph, true, true);
        self.last_live_bytes = live.live_bytes;
        let mut small = Vec::new();
        let mut humongous = Vec::new();
        for (id, o) in self.graph.iter() {
            if !live.is_live(id) {
                continue;
            }
            if o.space_tag == tag::HUMONGOUS {
                humongous.push((id, o.size));
            } else {
                small.push((id, o.size));
            }
        }
        // Everything becomes free, then live objects are re-placed.
        for r in &mut self.regions {
            if r.kind != RegionKind::Free {
                r.kind = RegionKind::Free;
                r.top = 0;
            }
        }
        self.eden_current = None;
        let copied = self.evacuate(sys, &small, RegionKind::Old, tag::OLD)?;
        for (id, size) in humongous {
            let asize = align_obj(u64::from(size));
            let start = self.take_contiguous(sys, asize)?;
            let addr = self.region_addr(start);
            // The evacuation copies the object: its destination pages
            // become resident.
            self.charge_touch(sys, addr, asize)?;
            self.graph.get_mut(id).addr = addr.0;
        }
        let freed = self.graph.sweep(&live.marks);
        let pause = self.gc_cost.full_pause(live.live_objects, copied);
        self.pending += pause;
        self.counters.record(GcKind::Full, copied, 0, freed, pause);
        Ok(())
    }

    /// The Desiccant reclaim: a full compacting collection, then every
    /// free region's pages are released (JDK 8 G1 would keep them all
    /// resident).
    pub fn reclaim(&mut self, sys: &mut System) -> Result<G1ReclaimOutcome, HeapError> {
        let pending_before = self.pending;
        self.full_gc(sys)?;
        let mut released = 0;
        for i in 0..self.regions.len() {
            let r = &self.regions[i]; // tidy:allow(panic-reachability) -- region indices come from scans bounded by the fixed regions table
            if r.committed && r.kind == RegionKind::Free {
                released += sys.release(self.pid, self.region_addr(i), REGION_SIZE)?;
            } else if r.kind != RegionKind::Free {
                // Release the free tail of a live region too.
                let tail_start = page_align_up(r.top);
                if tail_start < REGION_SIZE {
                    released += sys.release(
                        self.pid,
                        self.region_addr(i).offset(tail_start),
                        REGION_SIZE - tail_start,
                    )?;
                }
            }
        }
        self.pending += self.os_cost.release_cost(released);
        Ok(G1ReclaimOutcome {
            released_bytes: released,
            live_bytes: self.last_live_bytes,
            wall_time: self.pending.saturating_sub(pending_before),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (System, G1Heap) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let heap = G1Heap::new(&mut sys, pid, G1Config::for_budget(256 << 20)).unwrap();
        (sys, heap)
    }

    fn churn(sys: &mut System, heap: &mut G1Heap, n: usize, size: u32, keep: bool) {
        let scope = heap.graph_mut().push_handle_scope();
        for _ in 0..n {
            let id = heap.alloc(sys, size, ObjectKind::Data).unwrap();
            heap.graph_mut().add_handle(id);
        }
        if keep {
            let id = heap.alloc(sys, size, ObjectKind::Data).unwrap();
            heap.graph_mut().add_global(id);
        }
        heap.graph_mut().pop_handle_scope(scope);
    }

    #[test]
    fn allocation_fills_eden_regions_up_to_the_target() {
        let (mut sys, mut heap) = world();
        churn(&mut sys, &mut heap, 100, 64 << 10, false);
        assert!(heap.region_count(RegionKind::Eden) >= 6);
        assert_eq!(heap.counters().young_collections, 0);
    }

    #[test]
    fn young_gc_returns_emptied_regions() {
        let (mut sys, mut heap) = world();
        // Enough garbage to cross the young target (25 % of 204
        // regions) and trigger young collections.
        for _ in 0..8 {
            churn(&mut sys, &mut heap, 200, 64 << 10, true);
        }
        assert!(heap.counters().young_collections >= 1);
        // Most regions are free again; only survivors/old/current eden
        // remain.
        assert!(heap.region_count(RegionKind::Free) > heap.regions.len() / 2);
    }

    #[test]
    fn survivors_tenure_into_old_regions() {
        let (mut sys, mut heap) = world();
        let keep = heap.alloc(&mut sys, 128 << 10, ObjectKind::Data).unwrap();
        heap.graph_mut().add_global(keep);
        for _ in 0..heap.config.tenure_threshold + 1 {
            heap.young_gc(&mut sys).unwrap();
        }
        assert_eq!(heap.graph().get(keep).space_tag, tag::OLD);
        assert!(heap.region_count(RegionKind::Old) >= 1);
    }

    #[test]
    fn free_regions_stay_resident_until_reclaim() {
        let (mut sys, mut heap) = world();
        for _ in 0..6 {
            churn(&mut sys, &mut heap, 200, 64 << 10, true);
        }
        heap.young_gc(&mut sys).unwrap();
        // Stock G1: committed (= high-water mark) pages are resident
        // even though most regions are free.
        let resident = heap.resident_heap_bytes(&sys);
        let live = heap.last_live_bytes();
        assert!(
            resident > live * 3,
            "free regions should stay resident: {resident} vs live {live}"
        );
        let out = heap.reclaim(&mut sys).unwrap();
        assert!(out.released_bytes > 0);
        let after = heap.resident_heap_bytes(&sys);
        assert!(
            after <= page_align_up(out.live_bytes) + simos::PAGE_SIZE * heap.regions.len() as u64,
            "reclaim leaves at most page-rounding per region: {after}"
        );
    }

    #[test]
    fn mixed_gc_collects_garbage_first() {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        // A low IHOP so moderate tenured garbage triggers the mixed
        // collection.
        let config = G1Config {
            ihop: 0.12,
            ..G1Config::for_budget(256 << 20)
        };
        let mut heap = G1Heap::new(&mut sys, pid, config).unwrap();
        // Build tenured garbage: retain, tenure, then drop.
        let mut victims = Vec::new();
        for _ in 0..150 {
            let id = heap.alloc(&mut sys, 256 << 10, ObjectKind::Data).unwrap();
            heap.graph_mut().add_global(id);
            victims.push(id);
        }
        for _ in 0..heap.config.tenure_threshold + 1 {
            heap.young_gc(&mut sys).unwrap();
        }
        // Drop 90% of them; old occupancy is far above IHOP.
        for id in victims.iter().take(135) {
            heap.graph_mut().remove_global(*id);
        }
        let old_before = heap.region_count(RegionKind::Old);
        heap.young_gc(&mut sys).unwrap();
        assert!(heap.counters().full_collections >= 1, "mixed GC ran");
        assert!(
            heap.region_count(RegionKind::Old) < old_before,
            "garbage-first evacuation compacts old regions"
        );
    }

    #[test]
    fn humongous_objects_take_contiguous_regions_and_die_whole() {
        let (mut sys, mut heap) = world();
        let big = heap.alloc(&mut sys, (3 << 20) - 64, ObjectKind::Data).unwrap();
        assert_eq!(heap.graph().get(big).space_tag, tag::HUMONGOUS);
        assert_eq!(heap.region_count(RegionKind::Humongous), 3);
        // Unrooted: a mixed collection reclaims the whole run eagerly.
        heap.mixed_gc(&mut sys).unwrap();
        assert_eq!(heap.region_count(RegionKind::Humongous), 0);
    }

    #[test]
    fn reclaim_preserves_live_data_and_is_idempotent() {
        let (mut sys, mut heap) = world();
        for _ in 0..5 {
            churn(&mut sys, &mut heap, 100, 64 << 10, true);
        }
        let live_before = gc_core::trace::mark(heap.graph(), false, true).live_bytes;
        let out = heap.reclaim(&mut sys).unwrap();
        assert_eq!(out.live_bytes, live_before);
        let resident = heap.resident_heap_bytes(&sys);
        let again = heap.reclaim(&mut sys).unwrap();
        assert_eq!(again.live_bytes, live_before);
        assert!(heap.resident_heap_bytes(&sys) <= resident + simos::PAGE_SIZE);
    }

    #[test]
    fn heap_keeps_working_after_reclaim() {
        let (mut sys, mut heap) = world();
        churn(&mut sys, &mut heap, 200, 64 << 10, true);
        heap.reclaim(&mut sys).unwrap();
        churn(&mut sys, &mut heap, 200, 64 << 10, true);
        let live = gc_core::trace::mark(heap.graph(), false, true).live_bytes;
        assert_eq!(live, 2 * (64 << 10));
    }
}
