//! Serial-GC configuration, mirroring the HotSpot flags that matter.

/// Configuration of a [`crate::HotSpotHeap`].
///
/// Field names follow the HotSpot flags they model. The defaults of
/// [`HotSpotConfig::for_budget`] reproduce the Lambda-like setup the
/// paper uses: heap capped at a fraction of the instance memory budget,
/// serial GC with `NewRatio=2` and `SurvivorRatio=8`.
#[derive(Debug, Clone, Copy)]
pub struct HotSpotConfig {
    /// Reserved heap size (`-Xmx`).
    pub max_heap: u64,
    /// Initially committed heap size (`-Xms` analogue; serial GC
    /// commits this much at start).
    pub initial_heap: u64,
    /// `NewRatio`: old:young reserved-size ratio.
    pub new_ratio: u64,
    /// `SurvivorRatio`: eden:survivor size ratio.
    pub survivor_ratio: u64,
    /// `MaxTenuringThreshold`: young-GC survivals before promotion.
    pub tenure_threshold: u8,
    /// `MinHeapFreeRatio`: expand if free ratio drops below this.
    pub min_heap_free_ratio: f64,
    /// `MaxHeapFreeRatio`: shrink if free ratio rises above this.
    pub max_heap_free_ratio: f64,
    /// Commit granularity for expand/shrink operations.
    pub commit_granule: u64,
    /// Minimum committed size per generation.
    pub min_gen_committed: u64,
}

impl HotSpotConfig {
    /// Builds the Lambda-like configuration for an instance with
    /// `budget` bytes of memory: the heap gets 80 % of the budget (the
    /// rest is native memory: metaspace, code cache, malloc arenas),
    /// and starts at 1/16 of the budget like a small `-Xms`.
    pub fn for_budget(budget: u64) -> HotSpotConfig {
        let granule = 64 << 10;
        let max_heap = budget / 5 * 4 / granule * granule;
        HotSpotConfig {
            max_heap,
            initial_heap: (budget / 16).max(8 << 20).min(max_heap),
            new_ratio: 2,
            survivor_ratio: 8,
            tenure_threshold: 6,
            min_heap_free_ratio: 0.40,
            max_heap_free_ratio: 0.70,
            commit_granule: 64 << 10,
            min_gen_committed: 1 << 20,
        }
    }

    /// Rounds `bytes` up to the commit granule.
    pub fn granule_up(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.commit_granule) * self.commit_granule
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical configurations (zero sizes, inverted free
    /// ratios); these are programming errors, not runtime conditions.
    pub fn validate(&self) {
        assert!(self.max_heap >= self.initial_heap);
        assert!(self.initial_heap >= 2 * self.min_gen_committed);
        assert!(self.new_ratio >= 1);
        assert!(self.survivor_ratio >= 1);
        assert!(
            self.min_heap_free_ratio < self.max_heap_free_ratio
                && self.max_heap_free_ratio < 1.0,
            "free ratios must satisfy 0 <= min < max < 1"
        );
        assert!(self.commit_granule.is_power_of_two());
        assert!(self.commit_granule.is_multiple_of(simos::PAGE_SIZE));
        assert!(
            self.max_heap.is_multiple_of(self.commit_granule),
            "max_heap must be granule-aligned"
        );
    }
}

impl snapshot::Snapshot for HotSpotConfig {
    fn snap(&self, w: &mut snapshot::Writer) {
        let Self {
            max_heap,
            initial_heap,
            new_ratio,
            survivor_ratio,
            tenure_threshold,
            min_heap_free_ratio,
            max_heap_free_ratio,
            commit_granule,
            min_gen_committed,
        } = self;
        w.u64(*max_heap);
        w.u64(*initial_heap);
        w.u64(*new_ratio);
        w.u64(*survivor_ratio);
        w.u8(*tenure_threshold);
        w.f64(*min_heap_free_ratio);
        w.f64(*max_heap_free_ratio);
        w.u64(*commit_granule);
        w.u64(*min_gen_committed);
    }

    fn restore(r: &mut snapshot::Reader<'_>) -> Result<HotSpotConfig, snapshot::SnapError> {
        Ok(HotSpotConfig {
            max_heap: r.u64()?,
            initial_heap: r.u64()?,
            new_ratio: r.u64()?,
            survivor_ratio: r.u64()?,
            tenure_threshold: r.u8()?,
            min_heap_free_ratio: r.f64()?,
            max_heap_free_ratio: r.f64()?,
            commit_granule: r.u64()?,
            min_gen_committed: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_budget_is_valid_across_settings() {
        // The paper's three memory settings (Fig. 4/12).
        for budget in [256u64 << 20, 512 << 20, 1 << 30] {
            let c = HotSpotConfig::for_budget(budget);
            c.validate();
            assert!(c.max_heap < budget);
            assert!(c.initial_heap <= c.max_heap);
        }
    }

    #[test]
    fn granule_rounding() {
        let c = HotSpotConfig::for_budget(256 << 20);
        assert_eq!(c.granule_up(1), c.commit_granule);
        assert_eq!(c.granule_up(c.commit_granule), c.commit_granule);
        assert_eq!(c.granule_up(c.commit_granule + 1), 2 * c.commit_granule);
    }

    #[test]
    #[should_panic(expected = "free ratios")]
    fn inverted_free_ratios_panic() {
        let mut c = HotSpotConfig::for_budget(256 << 20);
        c.min_heap_free_ratio = 0.9;
        c.validate();
    }
}
