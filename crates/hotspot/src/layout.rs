//! Heap geometry: where the spaces live inside the reservation.
//!
//! The serial collector's heap is one contiguous reservation (Figure 3a
//! of the paper): the young generation at the bottom and the old
//! generation above it. Within the young reservation, eden grows upward
//! from the bottom while the two survivor halves sit at *fixed*
//! addresses at the top of the reservation — so eden can be resized
//! after a young collection (as HotSpot's `DefNew::compute_new_size`
//! does) without relocating survivors. Committed sizes change over
//! time; reserved boundaries never do.

use crate::config::HotSpotConfig;
use simos::mem::page_align_up;
use simos::VirtAddr;

/// Identifies one of the four heap spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceId {
    /// Allocation space of the young generation.
    Eden,
    /// Survivor half currently holding live survivors.
    From,
    /// Survivor half serving as the copy destination.
    To,
    /// The old (tenured) generation.
    Old,
}

/// Space tags stored in [`gc_core::object::Object::space_tag`].
pub mod tag {
    /// Object lives in eden.
    pub const EDEN: u8 = 0;
    /// Object lives in a survivor half.
    pub const SURVIVOR: u8 = 1;
    /// Object lives in the old generation.
    pub const OLD: u8 = 2;
}

/// The geometry of a heap at one point in time.
#[derive(Debug, Clone, Copy)]
pub struct HeapLayout {
    /// Start of the reservation.
    pub base: VirtAddr,
    /// Reserved bytes for the young generation.
    pub young_reserved: u64,
    /// Reserved bytes for the old generation.
    pub old_reserved: u64,
    /// Committed bytes of eden (growable).
    pub eden_committed: u64,
    /// Committed bytes of the old generation.
    pub old_committed: u64,
    /// Size of each survivor half (fixed at construction).
    pub survivor_size: u64,
    /// Which survivor half currently plays the *from* role.
    pub from_is_first: bool,
}

impl HeapLayout {
    /// Computes the initial layout for a configuration.
    pub fn new(base: VirtAddr, config: &HotSpotConfig) -> HeapLayout {
        config.validate();
        let young_reserved = config.granule_up(config.max_heap / (config.new_ratio + 1));
        let old_reserved = config.max_heap - young_reserved;
        let survivor_size = page_align_up(young_reserved / (config.survivor_ratio + 2))
            / simos::PAGE_SIZE
            * simos::PAGE_SIZE;
        let eden_committed = config
            .granule_up(config.initial_heap / (config.new_ratio + 1))
            .max(config.min_gen_committed)
            .min(young_reserved - 2 * survivor_size);
        let old_committed = config
            .granule_up(config.initial_heap - config.initial_heap / (config.new_ratio + 1))
            .max(config.min_gen_committed)
            .min(old_reserved);
        HeapLayout {
            base,
            young_reserved,
            old_reserved,
            eden_committed,
            old_committed,
            survivor_size,
            from_is_first: true,
        }
    }

    /// Total reserved bytes.
    pub fn reserved(&self) -> u64 {
        self.young_reserved + self.old_reserved
    }

    /// Total committed bytes (the "heap size" the paper plots).
    pub fn committed(&self) -> u64 {
        self.eden_committed + 2 * self.survivor_size + self.old_committed
    }

    /// Size of one survivor half.
    pub fn survivor_size(&self) -> u64 {
        self.survivor_size
    }

    /// Committed size of eden.
    pub fn eden_size(&self) -> u64 {
        self.eden_committed
    }

    /// Maximum committed size eden can grow to.
    pub fn eden_max(&self) -> u64 {
        self.young_reserved - 2 * self.survivor_size
    }

    /// `[start, len)` of a space at the current geometry.
    pub fn space_range(&self, space: SpaceId) -> (VirtAddr, u64) {
        let s = self.survivor_size;
        let s0 = self.base.offset(self.young_reserved - 2 * s);
        let s1 = self.base.offset(self.young_reserved - s);
        match space {
            SpaceId::Eden => (self.base, self.eden_committed),
            SpaceId::From => {
                if self.from_is_first {
                    (s0, s)
                } else {
                    (s1, s)
                }
            }
            SpaceId::To => {
                if self.from_is_first {
                    (s1, s)
                } else {
                    (s0, s)
                }
            }
            SpaceId::Old => (self.old_base(), self.old_committed),
        }
    }

    /// Start of the old generation's reservation.
    pub fn old_base(&self) -> VirtAddr {
        self.base.offset(self.young_reserved)
    }

    /// One-past-the-end of the reservation.
    pub fn end(&self) -> VirtAddr {
        self.base.offset(self.reserved())
    }

    /// Page-aligned committed eden range.
    pub fn eden_committed_range(&self) -> (VirtAddr, u64) {
        (self.base, page_align_up(self.eden_committed))
    }

    /// Page-aligned range covering both survivor halves.
    pub fn survivor_range(&self) -> (VirtAddr, u64) {
        (
            self.base
                .offset(self.young_reserved - 2 * self.survivor_size),
            2 * self.survivor_size,
        )
    }

    /// Page-aligned committed old range.
    pub fn old_committed_range(&self) -> (VirtAddr, u64) {
        (self.old_base(), page_align_up(self.old_committed))
    }
}

impl snapshot::Snapshot for HeapLayout {
    fn snap(&self, w: &mut snapshot::Writer) {
        let Self {
            base,
            young_reserved,
            old_reserved,
            eden_committed,
            old_committed,
            survivor_size,
            from_is_first,
        } = self;
        base.snap(w);
        w.u64(*young_reserved);
        w.u64(*old_reserved);
        w.u64(*eden_committed);
        w.u64(*old_committed);
        w.u64(*survivor_size);
        w.bool(*from_is_first);
    }

    fn restore(r: &mut snapshot::Reader<'_>) -> Result<HeapLayout, snapshot::SnapError> {
        Ok(HeapLayout {
            base: VirtAddr::restore(r)?,
            young_reserved: r.u64()?,
            old_reserved: r.u64()?,
            eden_committed: r.u64()?,
            old_committed: r.u64()?,
            survivor_size: r.u64()?,
            from_is_first: r.bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> HeapLayout {
        HeapLayout::new(VirtAddr(0x1000_0000), &HotSpotConfig::for_budget(256 << 20))
    }

    #[test]
    fn eden_and_survivors_fit_young_reservation() {
        let l = layout();
        assert!(l.eden_committed <= l.eden_max());
        assert_eq!(
            l.eden_max() + 2 * l.survivor_size,
            l.young_reserved,
            "survivors sit at the top of the young reservation"
        );
        let (from, flen) = l.space_range(SpaceId::From);
        let (to, tlen) = l.space_range(SpaceId::To);
        assert_eq!(from.0 + flen, to.0);
        assert_eq!(to.0 + tlen, l.base.0 + l.young_reserved);
    }

    #[test]
    fn from_to_swap_roles() {
        let mut l = layout();
        let from_before = l.space_range(SpaceId::From);
        l.from_is_first = !l.from_is_first;
        let to_after = l.space_range(SpaceId::To);
        assert_eq!(from_before, to_after);
    }

    #[test]
    fn eden_never_reaches_survivors() {
        let mut l = layout();
        l.eden_committed = l.eden_max();
        let (eden, elen) = l.space_range(SpaceId::Eden);
        let (s0, _) = l.survivor_range();
        assert!(eden.0 + elen <= s0.0);
    }

    #[test]
    fn old_starts_after_young_reservation() {
        let l = layout();
        assert_eq!(l.old_base().0, l.base.0 + l.young_reserved);
        assert!(l.old_committed <= l.old_reserved);
    }

    #[test]
    fn reserved_matches_config() {
        let c = HotSpotConfig::for_budget(256 << 20);
        let l = HeapLayout::new(VirtAddr(0), &c);
        assert_eq!(l.reserved(), c.max_heap);
    }

    #[test]
    fn survivor_is_page_aligned() {
        let l = layout();
        assert_eq!(l.survivor_size % simos::PAGE_SIZE, 0);
    }
}
