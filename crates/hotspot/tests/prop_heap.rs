//! Property tests for the HotSpot serial-GC model.
//!
//! Random "function-like" allocation programs (a mix of retained and
//! temporary objects across invocations) are executed and the core
//! collector invariants checked: retained objects always survive, the
//! committed size never exceeds the reservation, and `reclaim` is both
//! safe (no live object lost) and effective (resident memory drops to
//! about the live set).

use gc_core::object::ObjectKind;
use gc_core::trace::mark;
use hotspot::{HotSpotConfig, HotSpotHeap};
use proptest::prelude::*;
use simos::mem::page_align_up;
use simos::System;

/// One simulated invocation: allocate `temps` temporary objects of
/// `temp_size` and retain `keeps` objects of `keep_size` in globals.
#[derive(Debug, Clone)]
struct Invocation {
    temps: u16,
    temp_size: u32,
    keeps: u8,
    keep_size: u32,
}

fn invocation() -> impl Strategy<Value = Invocation> {
    (1u16..80, 256u32..262_144, 0u8..4, 256u32..65_536).prop_map(
        |(temps, temp_size, keeps, keep_size)| Invocation {
            temps,
            temp_size,
            keeps,
            keep_size,
        },
    )
}

fn run_invocation(
    sys: &mut System,
    heap: &mut HotSpotHeap,
    inv: &Invocation,
) -> Vec<gc_core::ObjectId> {
    let scope = heap.graph_mut().push_handle_scope();
    let mut kept = Vec::new();
    let mut prev = None;
    for i in 0..inv.temps {
        let id = heap
            .alloc(sys, inv.temp_size, ObjectKind::Data)
            .expect("heap sized for workload");
        heap.graph_mut().add_handle(id);
        // Chain some references to make the graph non-trivial.
        if let Some(p) = prev {
            if i % 3 == 0 {
                heap.graph_mut().add_ref(id, p);
            }
        }
        prev = Some(id);
    }
    for _ in 0..inv.keeps {
        let id = heap
            .alloc(sys, inv.keep_size, ObjectKind::Data)
            .expect("heap sized for workload");
        heap.graph_mut().add_global(id);
        kept.push(id);
    }
    heap.graph_mut().pop_handle_scope(scope);
    kept
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Globally retained objects survive any sequence of invocations
    /// and collections, and their total bytes equal the marked live
    /// bytes at the freeze point.
    #[test]
    fn retained_objects_survive(invs in prop::collection::vec(invocation(), 1..12)) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let mut heap = HotSpotHeap::new(&mut sys, pid, HotSpotConfig::for_budget(256 << 20)).unwrap();
        let mut retained = Vec::new();
        for inv in &invs {
            retained.extend(run_invocation(&mut sys, &mut heap, inv));
        }
        for id in &retained {
            prop_assert!(heap.graph().exists(*id), "retained object collected");
        }
        let expected: u64 = invs.iter().map(|i| i.keeps as u64 * i.keep_size as u64).sum();
        let live = mark(heap.graph(), false, true);
        prop_assert_eq!(live.live_bytes, expected);
    }

    /// Committed sizes respect the reservation at all times, and the
    /// resident heap never exceeds the committed heap.
    #[test]
    fn committed_and_resident_bounded(invs in prop::collection::vec(invocation(), 1..10)) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let mut heap = HotSpotHeap::new(&mut sys, pid, HotSpotConfig::for_budget(128 << 20)).unwrap();
        for inv in &invs {
            run_invocation(&mut sys, &mut heap, inv);
            let l = heap.layout();
            prop_assert!(l.eden_committed <= l.eden_max());
            prop_assert!(l.old_committed <= l.old_reserved);
            prop_assert!(
                heap.resident_heap_bytes(&sys) <= page_align_up(l.committed()),
                "resident exceeds committed"
            );
        }
    }

    /// Reclaim never loses live data and leaves resident ≈ live.
    #[test]
    fn reclaim_is_safe_and_effective(invs in prop::collection::vec(invocation(), 1..10)) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let mut heap = HotSpotHeap::new(&mut sys, pid, HotSpotConfig::for_budget(256 << 20)).unwrap();
        let mut retained = Vec::new();
        for inv in &invs {
            retained.extend(run_invocation(&mut sys, &mut heap, inv));
        }
        let live_before = mark(heap.graph(), false, true).live_bytes;
        let resident_before = heap.resident_heap_bytes(&sys);
        let outcome = heap.reclaim(&mut sys).unwrap();
        for id in &retained {
            prop_assert!(heap.graph().exists(*id));
        }
        prop_assert_eq!(outcome.live_bytes, live_before);
        let resident_after = heap.resident_heap_bytes(&sys);
        prop_assert!(resident_after <= resident_before);
        // Resident may exceed live by page-rounding only.
        prop_assert!(
            resident_after <= page_align_up(live_before) + simos::PAGE_SIZE,
            "resident {} vs live {}", resident_after, live_before
        );
        // Reclaiming twice releases nothing more.
        let again = heap.reclaim(&mut sys).unwrap();
        prop_assert_eq!(again.live_bytes, live_before);
        prop_assert!(heap.resident_heap_bytes(&sys) <= resident_after + simos::PAGE_SIZE);
    }

    /// After reclaim, re-running the same invocations works and ends
    /// with the same live bytes (the heap is fully functional).
    #[test]
    fn heap_remains_functional_after_reclaim(invs in prop::collection::vec(invocation(), 1..6)) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let mut heap = HotSpotHeap::new(&mut sys, pid, HotSpotConfig::for_budget(256 << 20)).unwrap();
        for inv in &invs {
            run_invocation(&mut sys, &mut heap, inv);
        }
        heap.reclaim(&mut sys).unwrap();
        let live_mid = mark(heap.graph(), false, true).live_bytes;
        for inv in &invs {
            run_invocation(&mut sys, &mut heap, inv);
        }
        let expected_extra: u64 = invs.iter().map(|i| i.keeps as u64 * i.keep_size as u64).sum();
        let live_end = mark(heap.graph(), false, true).live_bytes;
        prop_assert_eq!(live_end, live_mid + expected_extra);
    }
}
