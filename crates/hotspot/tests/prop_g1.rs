//! Property tests for the G1-style regional collector.

use gc_core::object::ObjectKind;
use gc_core::trace::mark;
use hotspot::g1::{G1Config, G1Heap, RegionKind, REGION_SIZE};
use proptest::prelude::*;
use simos::mem::page_align_up;
use simos::System;

#[derive(Debug, Clone)]
struct Invocation {
    temps: u8,
    size: u32,
    keeps: u8,
}

fn invocation() -> impl Strategy<Value = Invocation> {
    // Sizes from small to humongous (beyond half a region).
    (1u8..40, 1024u32..700_000, 0u8..3).prop_map(|(temps, size, keeps)| Invocation {
        temps,
        size,
        keeps,
    })
}

fn world() -> (System, G1Heap) {
    let mut sys = System::new();
    let pid = sys.spawn_process();
    let heap = G1Heap::new(&mut sys, pid, G1Config::for_budget(256 << 20)).unwrap();
    (sys, heap)
}

fn run_invocation(sys: &mut System, heap: &mut G1Heap, inv: &Invocation) -> u64 {
    let scope = heap.graph_mut().push_handle_scope();
    for _ in 0..inv.temps {
        let id = heap.alloc(sys, inv.size, ObjectKind::Data).expect("fits");
        heap.graph_mut().add_handle(id);
    }
    let mut kept = 0;
    for _ in 0..inv.keeps {
        let id = heap.alloc(sys, inv.size, ObjectKind::Data).expect("fits");
        heap.graph_mut().add_global(id);
        kept += inv.size as u64;
    }
    heap.graph_mut().pop_handle_scope(scope);
    kept
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Live bytes are preserved exactly across any collection mix, and
    /// region accounting stays coherent (tops within bounds, resident
    /// within committed).
    #[test]
    fn collections_preserve_live_bytes(invs in prop::collection::vec(invocation(), 1..5)) {
        let (mut sys, mut heap) = world();
        let mut kept = 0;
        for inv in &invs {
            kept += run_invocation(&mut sys, &mut heap, inv);
            prop_assert!(heap.resident_heap_bytes(&sys) <= heap.committed());
        }
        heap.young_gc(&mut sys).unwrap();
        prop_assert_eq!(mark(heap.graph(), false, true).live_bytes, kept);
        heap.mixed_gc(&mut sys).unwrap();
        prop_assert_eq!(mark(heap.graph(), false, true).live_bytes, kept);
        heap.full_gc(&mut sys).unwrap();
        prop_assert_eq!(mark(heap.graph(), false, true).live_bytes, kept);
    }

    /// Reclaim is safe, effective (resident ends near live), and the
    /// heap keeps working.
    #[test]
    fn reclaim_safe_and_effective(invs in prop::collection::vec(invocation(), 1..5)) {
        let (mut sys, mut heap) = world();
        let mut kept = 0;
        for inv in &invs {
            kept += run_invocation(&mut sys, &mut heap, inv);
        }
        let out = heap.reclaim(&mut sys).unwrap();
        prop_assert_eq!(out.live_bytes, kept);
        let resident = heap.resident_heap_bytes(&sys);
        // Live bytes, page-rounded per occupied region, bounds the
        // residue.
        let occupied = (heap.region_count(RegionKind::Old)
            + heap.region_count(RegionKind::Humongous)) as u64;
        prop_assert!(
            resident <= page_align_up(kept) + occupied * simos::PAGE_SIZE + simos::PAGE_SIZE,
            "resident {} for live {}", resident, kept
        );
        // Still functional afterwards.
        for inv in &invs {
            run_invocation(&mut sys, &mut heap, inv);
        }
        prop_assert_eq!(mark(heap.graph(), false, true).live_bytes, 2 * kept);
    }

    /// Humongous allocations always occupy whole contiguous region runs
    /// sized exactly to the object.
    #[test]
    fn humongous_runs_are_exact(size in (REGION_SIZE as u32 / 2 + 1)..(8 * REGION_SIZE as u32)) {
        let (mut sys, mut heap) = world();
        let id = heap.alloc(&mut sys, size, ObjectKind::Data).expect("fits");
        heap.graph_mut().add_global(id);
        let expected = (size as u64).div_ceil(REGION_SIZE) as usize;
        prop_assert_eq!(heap.region_count(RegionKind::Humongous), expected);
        // Dropping it returns the exact run.
        heap.graph_mut().remove_global(id);
        heap.mixed_gc(&mut sys).unwrap();
        prop_assert_eq!(heap.region_count(RegionKind::Humongous), 0);
    }
}
