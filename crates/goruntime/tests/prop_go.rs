//! Property tests for the Go heap model.

use gc_core::trace::mark;
use goruntime::{GoConfig, GoHeap};
use proptest::prelude::*;
use simos::System;

#[derive(Debug, Clone)]
struct Invocation {
    temps: u8,
    size: u32,
    keeps: u8,
}

fn invocation() -> impl Strategy<Value = Invocation> {
    (1u8..60, 64u32..100_000, 0u8..3).prop_map(|(temps, size, keeps)| Invocation {
        temps,
        size,
        keeps,
    })
}

fn world() -> (System, GoHeap) {
    let mut sys = System::new();
    let pid = sys.spawn_process();
    let heap = GoHeap::new(&mut sys, pid, GoConfig::default()).unwrap();
    (sys, heap)
}

fn run_invocation(sys: &mut System, heap: &mut GoHeap, inv: &Invocation) -> u64 {
    let scope = heap.graph_mut().push_handle_scope();
    for _ in 0..inv.temps {
        let id = heap.alloc(sys, inv.size).unwrap();
        heap.graph_mut().add_handle(id);
    }
    let mut kept = 0;
    for _ in 0..inv.keeps {
        let id = heap.alloc(sys, inv.size).unwrap();
        heap.graph_mut().add_global(id);
        kept += inv.size as u64;
    }
    heap.graph_mut().pop_handle_scope(scope);
    kept
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GC preserves exactly the retained bytes and the pacer's goal is
    /// always at least the minimum and at least live × (1 + GOGC/100).
    #[test]
    fn gc_preserves_live_and_paces(invs in prop::collection::vec(invocation(), 1..6)) {
        let (mut sys, mut heap) = world();
        let mut kept = 0;
        for inv in &invs {
            kept += run_invocation(&mut sys, &mut heap, inv);
        }
        heap.gc(&mut sys).unwrap();
        let live = mark(heap.graph(), false, true);
        prop_assert_eq!(live.live_bytes, kept);
        let floor = (kept * 2).max(heap.heap_goal().min(4 << 20));
        prop_assert!(heap.heap_goal() >= floor.min(4 << 20));
    }

    /// Reclaim is safe (live preserved), effective (resident drops when
    /// there is garbage), and idempotent.
    #[test]
    fn reclaim_safe_effective_idempotent(invs in prop::collection::vec(invocation(), 1..6)) {
        let (mut sys, mut heap) = world();
        let mut kept = 0;
        for inv in &invs {
            kept += run_invocation(&mut sys, &mut heap, inv);
        }
        let before = heap.resident_heap_bytes(&sys);
        let out = heap.reclaim(&mut sys).unwrap();
        prop_assert_eq!(out.live_bytes, kept);
        let after = heap.resident_heap_bytes(&sys);
        prop_assert!(after <= before);
        let again = heap.reclaim(&mut sys).unwrap();
        prop_assert_eq!(again.released_bytes, 0, "second reclaim found pages");
        prop_assert_eq!(heap.resident_heap_bytes(&sys), after);
        // Still usable afterwards.
        for inv in &invs {
            run_invocation(&mut sys, &mut heap, inv);
        }
        let live = mark(heap.graph(), false, true);
        prop_assert_eq!(live.live_bytes, 2 * kept);
    }

    /// Committed never shrinks (arenas are never unmapped, as in Go)
    /// and resident never exceeds committed.
    #[test]
    fn committed_is_monotone_and_bounds_resident(invs in prop::collection::vec(invocation(), 1..8)) {
        let (mut sys, mut heap) = world();
        let mut prev_committed = 0;
        for inv in &invs {
            run_invocation(&mut sys, &mut heap, inv);
            let committed = heap.committed();
            prop_assert!(committed >= prev_committed, "arena unmapped?");
            prop_assert!(heap.resident_heap_bytes(&sys) <= committed);
            prev_committed = committed;
        }
        heap.reclaim(&mut sys).unwrap();
        prop_assert_eq!(heap.committed(), prev_committed);
    }
}
