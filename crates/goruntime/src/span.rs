//! Spans: the unit of Go's heap bookkeeping.

use simos::cast;
use simos::VirtAddr;

/// Go's runtime page size (8 KiB).
pub const GO_PAGE_SIZE: u64 = 8 << 10;

/// Heap arena size (Go uses 64 MiB on linux/amd64; scaled to 4 MiB to
/// keep instance sizes in the simulation's range).
pub const GO_ARENA_SIZE: u64 = 4 << 20;

/// Largest size served from shared size-class spans; bigger objects get
/// a dedicated span (Go's threshold is 32 KiB).
pub const MAX_SMALL_SIZE: u32 = 32 << 10;

/// Identifies a span in the heap's span arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u32);

impl SpanId {
    /// The span-arena index this id names.
    pub fn index(self) -> usize {
        cast::to_usize(self.0)
    }
}

/// Rounds a request up to its size class (powers of two from 16 bytes,
/// standing in for Go's 67-entry sizeclass table).
pub fn size_class(size: u32) -> u32 {
    size.max(16).next_power_of_two()
}

/// Pages a size-class span occupies: enough for at least four objects,
/// at least one Go page.
pub fn span_pages(class: u32) -> u32 {
    let want = 4 * u64::from(class);
    cast::to_u32(want.div_ceil(GO_PAGE_SIZE).max(1))
}

/// One span.
#[derive(Debug, Clone)]
pub struct Span {
    /// First address.
    pub start: VirtAddr,
    /// Length in Go pages.
    pub pages: u32,
    /// Size class served (0 for a dedicated large-object span).
    pub class: u32,
    /// Free slot indices.
    pub free_slots: Vec<u16>,
    /// Allocated slots.
    pub used: u16,
}

impl Span {
    /// Creates a size-class span with all slots free.
    pub fn for_class(start: VirtAddr, class: u32) -> Span {
        let pages = span_pages(class);
        let capacity = cast::to_u16(u64::from(pages) * GO_PAGE_SIZE / u64::from(class));
        Span {
            start,
            pages,
            class,
            free_slots: (0..capacity).rev().collect(),
            used: 0,
        }
    }

    /// Creates a dedicated large-object span.
    pub fn large(start: VirtAddr, pages: u32) -> Span {
        Span {
            start,
            pages,
            class: 0,
            free_slots: Vec::new(),
            used: 1,
        }
    }

    /// Span length in bytes.
    pub fn len(&self) -> u64 {
        u64::from(self.pages) * GO_PAGE_SIZE
    }

    /// True for zero-length spans (never constructed).
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// True when no object lives in the span.
    pub fn is_free(&self) -> bool {
        self.used == 0
    }

    /// Address of slot `i`.
    pub fn slot_addr(&self, slot: u16) -> VirtAddr {
        self.start.offset(u64::from(slot) * u64::from(self.class))
    }

    /// Slot index of `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the span or the span is large.
    pub fn slot_of(&self, addr: VirtAddr) -> u16 {
        assert!(self.class > 0, "large spans have no slots");
        assert!(addr >= self.start && addr.0 < self.start.0 + self.len());
        cast::to_u16((addr.0 - self.start.0) / u64::from(self.class))
    }
}

mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for SpanId {
        fn snap(&self, w: &mut Writer) {
            let Self(raw) = self;
            raw.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<SpanId, SnapError> {
            Ok(SpanId(u32::restore(r)?))
        }
    }

    impl Snapshot for Span {
        fn snap(&self, w: &mut Writer) {
            let Self {
                start,
                pages,
                class,
                free_slots,
                used,
            } = self;
            start.snap(w);
            pages.snap(w);
            class.snap(w);
            free_slots.snap(w);
            used.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<Span, SnapError> {
            let start = VirtAddr::restore(r)?;
            let pages = u32::restore(r)?;
            let class = u32::restore(r)?;
            let free_slots: Vec<u16> = Vec::restore(r)?;
            let used = u16::restore(r)?;
            if pages == 0 {
                return Err(SnapError::Corrupt("Span has zero pages"));
            }
            if class != 0 {
                let capacity = u64::from(pages) * GO_PAGE_SIZE / u64::from(class);
                if u64::from(used) + cast::to_u64(free_slots.len()) != capacity {
                    return Err(SnapError::Corrupt("Span slot accounting broken"));
                }
            }
            Ok(Span {
                start,
                pages,
                class,
                free_slots,
                used,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_pages_fit_at_least_four_objects() {
        for class in [16u32, 512, 4096, 32768] {
            let pages = span_pages(class);
            assert!(pages as u64 * GO_PAGE_SIZE >= 4 * class as u64, "class {class}");
        }
        assert_eq!(span_pages(16), 1);
        assert_eq!(span_pages(32 << 10), 16);
    }

    #[test]
    fn class_span_slots_round_trip() {
        let s = Span::for_class(VirtAddr(0x1000_0000), 1024);
        assert_eq!(s.free_slots.len() as u64, s.len() / 1024);
        let a = s.slot_addr(3);
        assert_eq!(s.slot_of(a), 3);
    }

    #[test]
    fn large_span_is_born_used() {
        let s = Span::large(VirtAddr(0x2000_0000), 10);
        assert!(!s.is_free());
        assert_eq!(s.len(), 10 * GO_PAGE_SIZE);
    }
}
