//! The Go heap: allocation, the GOGC pacer, sweeping, scavenging.

use std::collections::BTreeMap;

use gc_core::object::{HeapGraph, ObjectId, ObjectKind};
use gc_core::stats::{GcCostModel, GcCounters, GcKind};
use gc_core::trace::mark;
use simos::cast;
use simos::cost::CostModel;
use simos::mem::{page_align_up, MappingKind, Prot};
use simos::{Pid, SimDuration, SimOsError, System, VirtAddr};

use crate::span::{size_class, Span, SpanId, GO_ARENA_SIZE, GO_PAGE_SIZE, MAX_SMALL_SIZE};

/// Configuration of a [`GoHeap`].
#[derive(Debug, Clone, Copy)]
pub struct GoConfig {
    /// Upper bound on mapped heap memory.
    pub max_heap: u64,
    /// The GOGC percentage (100 = collect when the heap doubles).
    pub gogc: u64,
    /// Minimum heap goal (Go's 4 MiB default).
    pub min_goal: u64,
}

impl Default for GoConfig {
    fn default() -> GoConfig {
        GoConfig {
            max_heap: 192 << 20,
            gogc: 100,
            min_goal: 4 << 20,
        }
    }
}

/// Result of a [`GoHeap::reclaim`].
#[derive(Debug, Clone, Copy)]
pub struct GoReclaimOutcome {
    /// Bytes released back to the OS.
    pub released_bytes: u64,
    /// Live bytes after the collection.
    pub live_bytes: u64,
    /// Simulated wall time of the reclamation.
    pub wall_time: SimDuration,
}

/// A Go heap bound to one simulated process.
#[derive(Debug, Clone)]
pub struct GoHeap {
    pid: Pid,
    config: GoConfig,
    graph: HeapGraph,
    /// Mapped arenas and the bump cursor inside the newest one.
    arenas: Vec<VirtAddr>,
    bump_page: u64,
    spans: Vec<Option<Span>>,
    by_addr: BTreeMap<u64, SpanId>,
    /// Spans with free slots, per class.
    partial: BTreeMap<u32, Vec<SpanId>>,
    /// Fully-free spans awaiting reuse (or the scavenger), by page
    /// count.
    free_spans: Vec<SpanId>,
    /// Bytes allocated and not yet freed by sweeping.
    heap_live: u64,
    /// The pacer's trigger.
    heap_goal: u64,
    counters: GcCounters,
    gc_cost: GcCostModel,
    os_cost: CostModel,
    pending: SimDuration,
    last_live_bytes: u64,
}

impl GoHeap {
    /// Creates an empty heap in process `pid`.
    pub fn new(sys: &mut System, pid: Pid, config: GoConfig) -> Result<GoHeap, SimOsError> {
        let _ = sys;
        Ok(GoHeap {
            pid,
            config,
            graph: HeapGraph::new(),
            arenas: Vec::new(),
            bump_page: 0,
            spans: Vec::new(),
            by_addr: BTreeMap::new(),
            partial: BTreeMap::new(),
            free_spans: Vec::new(),
            heap_live: 0,
            heap_goal: config.min_goal,
            counters: GcCounters::default(),
            gc_cost: GcCostModel::default(),
            os_cost: CostModel::default(),
            pending: SimDuration::ZERO,
            last_live_bytes: 0,
        })
    }

    /// The object graph.
    pub fn graph(&self) -> &HeapGraph {
        &self.graph
    }

    /// Mutable object graph.
    pub fn graph_mut(&mut self) -> &mut HeapGraph {
        &mut self.graph
    }

    /// Cumulative collector counters.
    pub fn counters(&self) -> &GcCounters {
        &self.counters
    }

    /// The pacer's current goal.
    pub fn heap_goal(&self) -> u64 {
        self.heap_goal
    }

    /// Live bytes found by the most recent collection.
    pub fn last_live_bytes(&self) -> u64 {
        self.last_live_bytes
    }

    /// Mapped bytes (arenas).
    pub fn committed(&self) -> u64 {
        cast::to_u64(self.arenas.len()) * GO_ARENA_SIZE
    }

    /// Resident heap bytes.
    pub fn resident_heap_bytes(&self, sys: &System) -> u64 {
        self.arenas
            .iter()
            .map(|a| sys.pmap(self.pid, *a, GO_ARENA_SIZE).unwrap_or(0))
            .sum()
    }

    /// Drains accrued latency.
    pub fn take_elapsed(&mut self) -> SimDuration {
        std::mem::take(&mut self.pending)
    }

    fn span(&self, id: SpanId) -> &Span {
        self.spans[id.index()].as_ref().expect("stale span id") // tidy:allow(panic-reachability) -- span ids are allocated by this heap and tracked in its own class lists
    }

    fn span_mut(&mut self, id: SpanId) -> &mut Span {
        self.spans[id.index()].as_mut().expect("stale span id") // tidy:allow(panic-reachability) -- span ids are allocated by this heap and tracked in its own class lists
    }

    /// Carves `pages` Go pages from the arena bump (mapping a new arena
    /// as needed).
    fn carve(&mut self, sys: &mut System, pages: u32) -> Result<VirtAddr, SimOsError> {
        let need = u64::from(pages) * GO_PAGE_SIZE;
        let arena_pages = GO_ARENA_SIZE / GO_PAGE_SIZE;
        if self.arenas.is_empty() || self.bump_page + u64::from(pages) > arena_pages {
            let addr = sys.mmap_named(
                self.pid,
                GO_ARENA_SIZE,
                MappingKind::Anonymous,
                Prot::ReadWrite,
                "[go:arena]",
            )?;
            self.arenas.push(addr);
            self.bump_page = 0;
        }
        let base = self.arenas.last().expect("just ensured"); // tidy:allow(panic-reachability) -- an arena was pushed on the line above
        let addr = base.offset(self.bump_page * GO_PAGE_SIZE);
        self.bump_page += u64::from(pages);
        let _ = need;
        Ok(addr)
    }

    fn install_span(&mut self, span: Span) -> SpanId {
        let id = SpanId(cast::to_u32(self.spans.len()));
        self.by_addr.insert(span.start.0, id);
        self.spans.push(Some(span));
        id
    }

    /// Allocates an object of `size` bytes, running the pacer first.
    pub fn alloc(&mut self, sys: &mut System, size: u32) -> Result<ObjectId, SimOsError> {
        // GOGC pacer: collect when the live-ish heap crosses the goal.
        if self.heap_live + u64::from(size) > self.heap_goal {
            self.gc(sys)?;
        }
        let addr = if size > MAX_SMALL_SIZE {
            let pages = cast::to_u32(page_align_up(u64::from(size)).div_ceil(GO_PAGE_SIZE));
            let start = self.carve(sys, pages)?;
            self.install_span(Span::large(start, pages));
            start
        } else {
            self.small_alloc(sys, size_class(size))?
        };
        let out = sys.touch(
            self.pid,
            VirtAddr(addr.0 / simos::PAGE_SIZE * simos::PAGE_SIZE),
            page_align_up(u64::from(size)).max(simos::PAGE_SIZE),
            true,
        )?;
        self.pending += self.os_cost.touch_cost(out);
        self.heap_live += u64::from(size);
        let id = self.graph.alloc(size, ObjectKind::Data);
        self.graph.set_addr(id, addr.0);
        Ok(id)
    }

    fn small_alloc(&mut self, sys: &mut System, class: u32) -> Result<VirtAddr, SimOsError> {
        if let Some(list) = self.partial.get_mut(&class) {
            if let Some(&sid) = list.last() {
                let span = self.spans[sid.index()].as_mut().expect("partial span"); // tidy:allow(panic-reachability) -- span ids are allocated by this heap and tracked in its own class lists
                let slot = span.free_slots.pop().expect("partial span has slots"); // tidy:allow(panic-reachability) -- span ids are allocated by this heap and tracked in its own class lists
                span.used += 1;
                let addr = span.slot_addr(slot);
                if span.free_slots.is_empty() {
                    list.pop();
                }
                return Ok(addr);
            }
        }
        // Reuse a free span with enough pages, else carve a new one.
        let pages = crate::span::span_pages(class);
        let reuse = self
            .free_spans
            .iter()
            .position(|sid| self.span(*sid).pages == pages);
        let sid = match reuse {
            Some(pos) => {
                let sid = self.free_spans.swap_remove(pos);
                let start = self.span(sid).start;
                *self.span_mut(sid) = Span::for_class(start, class);
                sid
            }
            None => {
                let start = self.carve(sys, pages)?;
                self.install_span(Span::for_class(start, class))
            }
        };
        let span = self.span_mut(sid);
        let slot = span.free_slots.pop().expect("fresh span has slots"); // tidy:allow(panic-reachability) -- span ids are allocated by this heap and tracked in its own class lists
        span.used += 1;
        let addr = span.slot_addr(slot);
        if !self.span(sid).free_slots.is_empty() {
            self.partial.entry(class).or_default().push(sid);
        }
        Ok(addr)
    }

    fn span_of_addr(&self, addr: u64) -> SpanId {
        let (_, id) = self
            .by_addr
            .range(..=addr)
            .next_back()
            .expect("address below every span"); // tidy:allow(panic-reachability) -- span_at already rejected addresses below every span
        debug_assert!(addr < self.span(*id).start.0 + self.span(*id).len());
        *id
    }

    /// A stop-the-world collection: mark, then sweep every span.
    /// Fully-free spans go to the free list — their pages stay resident
    /// until [`GoHeap::scavenge`].
    pub fn gc(&mut self, sys: &mut System) -> Result<u64, SimOsError> {
        let _ = sys;
        let live = mark(&self.graph, true, true);
        self.last_live_bytes = live.live_bytes;
        // Free dead slots span by span.
        let dead: Vec<(ObjectId, u64, u32)> = self
            .graph
            .iter()
            .filter(|(id, _)| !live.is_live(*id))
            .map(|(id, o)| (id, o.addr, o.size))
            .collect();
        let mut freed_bytes = 0u64;
        for &(_, addr, size) in &dead {
            freed_bytes += u64::from(size);
            let sid = self.span_of_addr(addr);
            let span = self.spans[sid.index()].as_mut().expect("span exists"); // tidy:allow(panic-reachability) -- span ids are allocated by this heap and tracked in its own class lists
            if span.class == 0 {
                span.used = 0;
            } else {
                let slot = span.slot_of(VirtAddr(addr));
                debug_assert!(!span.free_slots.contains(&slot), "double free");
                span.free_slots.push(slot);
                span.used -= 1;
                let became_partial = span.free_slots.len() == 1;
                if became_partial && span.used > 0 {
                    let class = span.class;
                    self.partial.entry(class).or_default().push(sid);
                }
            }
            if self.span(sid).is_free() {
                let class = self.span(sid).class;
                if class > 0 {
                    if let Some(list) = self.partial.get_mut(&class) {
                        list.retain(|s| *s != sid);
                    }
                }
                self.free_spans.push(sid);
            }
        }
        self.graph.sweep(&live.marks);
        self.heap_live = live.live_bytes;
        self.heap_goal = (live.live_bytes * (100 + self.config.gogc) / 100).max(self.config.min_goal);
        let pause = self.gc_cost.full_pause(live.live_objects, 0);
        self.pending += pause;
        self.counters.record(GcKind::Full, 0, 0, freed_bytes, pause);
        Ok(freed_bytes)
    }

    /// The scavenger: returns the pages of fully-free spans to the OS.
    /// Stock Go paces this over minutes in a background goroutine; a
    /// frozen instance never gets there.
    pub fn scavenge(&mut self, sys: &mut System) -> Result<u64, SimOsError> {
        let mut released = 0;
        let ids: Vec<SpanId> = self.free_spans.clone();
        for sid in ids {
            let (start, len) = {
                let s = self.span(sid);
                (s.start, s.len())
            };
            released += sys.release(self.pid, start, len)?;
        }
        self.pending += self.os_cost.release_cost(released);
        Ok(released)
    }

    /// The Desiccant reclaim sketched in §7: force a collection, then
    /// scavenge immediately. Partially-used spans are this runtime's
    /// fragmentation floor (objects do not move).
    pub fn reclaim(&mut self, sys: &mut System) -> Result<GoReclaimOutcome, SimOsError> {
        let pending_before = self.pending;
        self.gc(sys)?;
        let released = self.scavenge(sys)?;
        Ok(GoReclaimOutcome {
            released_bytes: released,
            live_bytes: self.last_live_bytes,
            wall_time: self.pending.saturating_sub(pending_before),
        })
    }
}

mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for GoConfig {
        fn snap(&self, w: &mut Writer) {
            let Self {
                max_heap,
                gogc,
                min_goal,
            } = self;
            max_heap.snap(w);
            gogc.snap(w);
            min_goal.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<GoConfig, SnapError> {
            Ok(GoConfig {
                max_heap: u64::restore(r)?,
                gogc: u64::restore(r)?,
                min_goal: u64::restore(r)?,
            })
        }
    }

    impl Snapshot for GoHeap {
        fn snap(&self, w: &mut Writer) {
            let Self {
                pid,
                config,
                graph,
                arenas,
                bump_page,
                spans,
                by_addr,
                partial,
                free_spans,
                heap_live,
                heap_goal,
                counters,
                gc_cost,
                os_cost,
                pending,
                last_live_bytes,
            } = self;
            pid.snap(w);
            config.snap(w);
            graph.snap(w);
            arenas.snap(w);
            bump_page.snap(w);
            spans.snap(w);
            by_addr.snap(w);
            partial.snap(w);
            free_spans.snap(w);
            heap_live.snap(w);
            heap_goal.snap(w);
            counters.snap(w);
            gc_cost.snap(w);
            os_cost.snap(w);
            pending.snap(w);
            last_live_bytes.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<GoHeap, SnapError> {
            let pid = Pid::restore(r)?;
            let config = GoConfig::restore(r)?;
            let graph = HeapGraph::restore(r)?;
            let arenas: Vec<VirtAddr> = Vec::restore(r)?;
            let bump_page = u64::restore(r)?;
            let spans: Vec<Option<Span>> = Vec::restore(r)?;
            let by_addr: BTreeMap<u64, SpanId> = BTreeMap::restore(r)?;
            let partial: BTreeMap<u32, Vec<SpanId>> = BTreeMap::restore(r)?;
            let free_spans: Vec<SpanId> = Vec::restore(r)?;
            let heap_live = u64::restore(r)?;
            let heap_goal = u64::restore(r)?;
            let counters = GcCounters::restore(r)?;
            let gc_cost = GcCostModel::restore(r)?;
            let os_cost = CostModel::restore(r)?;
            let pending = SimDuration::restore(r)?;
            let last_live_bytes = u64::restore(r)?;
            for (&addr, &id) in &by_addr {
                match spans.get(id.index()) {
                    Some(Some(s)) if s.start.0 == addr => {}
                    _ => return Err(SnapError::Corrupt("GoHeap by_addr mismatch")),
                }
            }
            for (&class, list) in &partial {
                for &id in list {
                    let ok = spans
                        .get(id.index())
                        .and_then(|s| s.as_ref())
                        .is_some_and(|s| s.class == class && !s.free_slots.is_empty());
                    if !ok {
                        return Err(SnapError::Corrupt("GoHeap partial list broken"));
                    }
                }
            }
            for &id in &free_spans {
                if spans.get(id.index()).is_none_or(|s| s.is_none()) {
                    return Err(SnapError::Corrupt("GoHeap free list names a dead span"));
                }
            }
            Ok(GoHeap {
                pid,
                config,
                graph,
                arenas,
                bump_page,
                spans,
                by_addr,
                partial,
                free_spans,
                heap_live,
                heap_goal,
                counters,
                gc_cost,
                os_cost,
                pending,
                last_live_bytes,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> (System, GoHeap) {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let heap = GoHeap::new(&mut sys, pid, GoConfig::default()).unwrap();
        (sys, heap)
    }

    /// One invocation's worth of garbage plus optional retained bytes.
    fn churn(sys: &mut System, heap: &mut GoHeap, n: usize, size: u32, keep: bool) {
        let scope = heap.graph_mut().push_handle_scope();
        for _ in 0..n {
            let id = heap.alloc(sys, size).unwrap();
            heap.graph_mut().add_handle(id);
        }
        if keep {
            let id = heap.alloc(sys, size).unwrap();
            heap.graph_mut().add_global(id);
        }
        heap.graph_mut().pop_handle_scope(scope);
    }

    #[test]
    fn pacer_triggers_at_the_goal() {
        let (mut sys, mut heap) = world();
        assert_eq!(heap.heap_goal(), heap.config.min_goal);
        // Allocate past the 4 MiB goal: a GC must run.
        churn(&mut sys, &mut heap, 200, 32 << 10, true);
        assert!(heap.counters().full_collections >= 1);
        // The goal resets relative to live bytes.
        assert!(heap.heap_goal() >= heap.config.min_goal);
    }

    #[test]
    fn below_the_goal_nothing_collects() {
        let (mut sys, mut heap) = world();
        churn(&mut sys, &mut heap, 10, 32 << 10, false);
        assert_eq!(heap.counters().full_collections, 0);
        // The garbage stays resident: frozen garbage, Go flavour.
        assert!(heap.resident_heap_bytes(&sys) >= 10 * (32 << 10));
    }

    #[test]
    fn gc_frees_spans_but_keeps_pages_resident() {
        let (mut sys, mut heap) = world();
        churn(&mut sys, &mut heap, 300, 32 << 10, true);
        heap.gc(&mut sys).unwrap();
        let resident = heap.resident_heap_bytes(&sys);
        assert!(
            resident > heap.last_live_bytes() * 4,
            "free spans stay resident without the scavenger ({resident})"
        );
        let released = heap.scavenge(&mut sys).unwrap();
        assert!(released > 0);
        assert!(heap.resident_heap_bytes(&sys) < resident);
    }

    #[test]
    fn reclaim_drops_to_live_plus_fragmentation() {
        let (mut sys, mut heap) = world();
        for _ in 0..5 {
            churn(&mut sys, &mut heap, 100, 16 << 10, true);
        }
        let before = heap.resident_heap_bytes(&sys);
        let out = heap.reclaim(&mut sys).unwrap();
        assert!(out.released_bytes > 0);
        let after = heap.resident_heap_bytes(&sys);
        assert!(after < before);
        // Live bytes survive.
        assert_eq!(out.live_bytes, 5 * (16 << 10));
        let live = gc_core::trace::mark(heap.graph(), false, true);
        assert_eq!(live.live_bytes, 5 * (16 << 10));
    }

    #[test]
    fn free_spans_are_reused_before_growing() {
        let (mut sys, mut heap) = world();
        churn(&mut sys, &mut heap, 200, 8 << 10, false);
        heap.gc(&mut sys).unwrap();
        let committed = heap.committed();
        // The same workload again should fit in the freed spans.
        churn(&mut sys, &mut heap, 200, 8 << 10, false);
        assert_eq!(heap.committed(), committed, "no new arenas needed");
    }

    #[test]
    fn heap_keeps_working_after_reclaim() {
        let (mut sys, mut heap) = world();
        churn(&mut sys, &mut heap, 100, 32 << 10, true);
        heap.reclaim(&mut sys).unwrap();
        churn(&mut sys, &mut heap, 100, 32 << 10, true);
        let live = gc_core::trace::mark(heap.graph(), false, true);
        assert_eq!(live.live_bytes, 2 * (32 << 10));
    }

    #[test]
    fn large_objects_get_dedicated_spans() {
        let (mut sys, mut heap) = world();
        let id = heap.alloc(&mut sys, 100 << 10).unwrap();
        heap.graph_mut().add_global(id);
        // 100 KiB -> 13 Go pages.
        let sid = heap.span_of_addr(heap.graph().get(id).addr);
        assert_eq!(heap.span(sid).class, 0);
        assert_eq!(heap.span(sid).pages, 13);
        // Dropping it frees the whole span at the next GC.
        heap.graph_mut().remove_global(id);
        heap.gc(&mut sys).unwrap();
        assert!(heap.free_spans.contains(&sid));
    }
}
