//! # goruntime — a model of the Go runtime heap
//!
//! The second §7 extension target: *"For the Go runtime, as its heap is
//! located in several contiguous memory ranges, Desiccant can employ
//! similar methods to estimate the efficiency of reclamation.
//! Subsequently, Desiccant can utilize Go's internal data structures to
//! identify free regions and perform reclamation accordingly."*
//!
//! The model captures the Go behaviours that matter for frozen garbage:
//!
//! * **spans in contiguous arenas** — the heap grows in 4 MiB arenas
//!   carved into spans of 8 KiB pages; each span serves one size class
//!   ([`span`]);
//! * **the GOGC pacer** — a collection starts when the live-ish heap
//!   reaches `heap_goal = live_at_last_gc × (1 + GOGC/100)`; a frozen
//!   instance whose heap sits *below* the goal never collects at all,
//!   and whatever has not been swept stays resident;
//! * **lazy scavenging** — even after a collection, Go returns
//!   fully-free spans to the OS only through a background scavenger
//!   that paces itself over minutes; a frozen instance's scavenger
//!   never runs, so free spans stay resident — frozen garbage, Go
//!   flavour;
//! * **the Desiccant reclaim** — force a collection and scavenge every
//!   free span immediately ([`heap::GoHeap::reclaim`]). Partially-used
//!   spans cannot be released (Go does not move objects), which is this
//!   runtime's fragmentation floor.
//!
//! Like `cpython-heap`, this is an extension beyond the paper's
//! measured evaluation, exercised by its own tests and
//! `examples/other_runtimes.rs`.
//!
//! # Examples
//!
//! ```
//! use goruntime::{GoConfig, GoHeap};
//! use simos::System;
//!
//! let mut sys = System::new();
//! let pid = sys.spawn_process();
//! let mut heap = GoHeap::new(&mut sys, pid, GoConfig::default()).unwrap();
//! let scope = heap.graph_mut().push_handle_scope();
//! let obj = heap.alloc(&mut sys, 64 << 10).unwrap();
//! heap.graph_mut().add_handle(obj);
//! heap.graph_mut().pop_handle_scope(scope);
//! // The object is dead, but below the GOGC goal nothing collects.
//! let before = heap.resident_heap_bytes(&sys);
//! let out = heap.reclaim(&mut sys).unwrap();
//! assert!(out.released_bytes > 0);
//! assert!(heap.resident_heap_bytes(&sys) < before);
//! ```

#![forbid(unsafe_code)]

pub mod heap;
pub mod span;

pub use heap::{GoConfig, GoHeap, GoReclaimOutcome};
pub use span::{SpanId, GO_ARENA_SIZE, GO_PAGE_SIZE};
