//! # azure-trace — synthetic Azure-Functions-2019-style traces
//!
//! The paper's §5.3 replays the Azure Functions production traces
//! (Shahrad et al., ATC '20): it picks 20 trace functions whose
//! execution times are closest to the Table-1 workloads, then invokes
//! the Table-1 functions with the *inter-arrival patterns* of the
//! selected trace functions, compressed by a *scale factor*.
//!
//! The actual dataset is not redistributable here, so this crate
//! synthesizes traces with the dataset's published shape instead
//! (documented in the DESIGN.md substitution table):
//!
//! * invocation rates are heavy-tailed (a few hot functions dominate;
//!   most are invoked rarely) — we draw per-function rates from a
//!   Pareto-like distribution, anti-correlated with execution time as
//!   in the dataset (short functions are invoked more often);
//! * about 45 % of functions are timer-driven and fire periodically
//!   with small jitter; the rest follow Poisson or bursty processes;
//! * the replay protocol matches the paper: warm up for 60 s at scale
//!   factor 15, then replay 180 s at the scale factor under test.
//!
//! # Examples
//!
//! ```
//! use azure_trace::{build_trace, generate_arrivals};
//! use simos::{SimDuration, SimTime};
//!
//! let catalog = workloads::catalog();
//! let trace = build_trace(&catalog, 7);
//! assert_eq!(trace.len(), catalog.len());
//! let arrivals = generate_arrivals(
//!     &trace,
//!     15.0,
//!     SimTime::ZERO,
//!     SimTime::ZERO + SimDuration::from_secs(60),
//!     7,
//! );
//! assert!(!arrivals.is_empty());
//! // Arrivals are time-sorted.
//! assert!(arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
//! ```

#![forbid(unsafe_code)]

pub mod cluster_replay;
pub mod generate;
pub mod replay;
pub mod resume;

pub use cluster_replay::{replay_cluster, ClusterReplayOutcome};
pub use generate::{build_trace, generate_arrivals, ArrivalPattern, TraceFunction};
pub use replay::{replay, ReplayConfig, ReplayOutcome};
pub use resume::{replay_resumable, RequestJournal, ResumeOptions, ResumeOutcome};
