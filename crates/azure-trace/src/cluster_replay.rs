//! Cluster-scale replay: the §5.3 protocol fanned over N shards.
//!
//! Same three phases as [`replay`](crate::replay::replay) — warm-up,
//! measured window, drain — but arrivals flow through a
//! [`Cluster`]'s front end instead of a single platform's submit
//! call. The trace is *not* pre-partitioned: every arrival is placed
//! by the router at the barrier round it falls into, so the partition
//! of work across shards is itself an output of the placement policy
//! under test.
//!
//! The outcome carries the cluster digest (shard checkpoints plus the
//! fleet-level front-end bytes). Two runs of the same configuration
//! must produce the same digest regardless of worker count, kill
//! schedule, or outage plan — that is the determinism contract the
//! cluster gates enforce. Every replay additionally asserts the
//! request-conservation invariant: each routed request terminated in
//! exactly one typed outcome (or is still queued for retry).

use cluster::Cluster;

use crate::generate::{generate_arrivals, TraceFunction};
use crate::replay::ReplayConfig;

/// Aggregate outcome of one cluster replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterReplayOutcome {
    /// The determinism oracle: FNV-1a over shard states and fleet
    /// front-end state at the final barrier.
    pub digest: u64,
    /// Requests that entered front-end placement (warm-up + measured
    /// window).
    pub submitted: u64,
    /// Requests completed across all shards (since the measured-window
    /// stats reset).
    pub completed: u64,
    /// Requests that terminated with a failure inside a platform.
    pub failed: u64,
    /// Cold boots started since the reset.
    pub cold_boots: u64,
    /// Frozen instances evicted under pressure since the reset.
    pub evictions: u64,
    /// Kill-recoveries across all shards.
    pub recoveries: u64,
    /// Recoveries that restarted a shard from nothing.
    pub scratch_recoveries: u64,
    /// Outage heals: durable-store re-admissions after `Down` windows.
    pub heals: u64,
    /// Shard-rounds spent unreachable.
    pub outage_rounds: u64,
    /// Migration overrides the router accepted.
    pub migrations: u64,
    /// Barrier rounds executed.
    pub rounds: u64,
    /// Requests handed to a reachable shard.
    pub delivered: u64,
    /// Requests shed at admission (overload + unroutable).
    pub shed: u64,
    /// Requests failed at the front end (deadline + retry cap).
    pub failed_frontend: u64,
    /// Retry placements performed.
    pub retries: u64,
    /// Hedge copies placed.
    pub hedges: u64,
    /// Deliveries that succeeded only through the hedge copy.
    pub hedge_wins: u64,
    /// Requests still queued for retry at the final barrier.
    pub pending_retries: u64,
}

/// Runs the warm-up / measured-window / drain protocol over `cluster`.
///
/// Shard stats reset at the warm-up boundary (journaled, so a
/// kill-recovery replays the reset at the same round); the outcome's
/// completion counters therefore cover the measured window and drain,
/// as in the single-platform driver. Front-end lifecycle counters are
/// run-lifetime, so the conservation check asserted here is exact.
pub fn replay_cluster(
    cluster: &mut Cluster,
    trace: &[TraceFunction],
    config: &ReplayConfig,
) -> ClusterReplayOutcome {
    let t0 = cluster.now();
    let warm_end = t0 + config.warmup;
    let replay_end = warm_end + config.duration;
    let drain_end = replay_end + config.drain;

    for &(t, fn_idx) in &generate_arrivals(trace, config.warmup_scale, t0, warm_end, config.seed) {
        cluster.enqueue(t, fn_idx);
    }
    cluster.advance_to(warm_end);
    cluster.reset_stats();
    for &(t, fn_idx) in &generate_arrivals(
        trace,
        config.scale,
        warm_end,
        replay_end,
        config.seed ^ 0xA5A5,
    ) {
        cluster.enqueue(t, fn_idx);
    }
    cluster.advance_to(replay_end);
    cluster.advance_to(drain_end);

    let totals = cluster.totals();
    assert!(
        totals.conservation(),
        "request conservation violated: routed={} delivered={} shed={} failed={} pending={}",
        totals.routed,
        totals.delivered,
        totals.shed(),
        totals.frontend_failed(),
        totals.pending_retries,
    );
    ClusterReplayOutcome {
        digest: cluster.digest(),
        submitted: cluster.routed(),
        completed: totals.completed,
        failed: totals.failed,
        cold_boots: totals.cold_boots,
        evictions: totals.evictions,
        recoveries: totals.recoveries,
        scratch_recoveries: totals.scratch_recoveries,
        heals: totals.heals,
        outage_rounds: totals.outage_rounds,
        migrations: cluster.migrations(),
        rounds: cluster.rounds() as u64,
        delivered: totals.delivered,
        shed: totals.shed(),
        failed_frontend: totals.frontend_failed(),
        retries: totals.retries,
        hedges: totals.hedges,
        hedge_wins: totals.hedge_wins,
        pending_retries: totals.pending_retries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::build_trace;
    use cluster::{ClusterConfig, Placement, ShardSetup};
    use faas::{OutageKind, OutagePlan, OutageWindow};
    use simos::SimDuration;

    fn quick_config() -> ReplayConfig {
        ReplayConfig {
            warmup: SimDuration::from_secs(6),
            duration: SimDuration::from_secs(16),
            scale: 8.0,
            warmup_scale: 8.0,
            seed: 9,
            drain: SimDuration::from_secs(8),
        }
    }

    fn run_once(policy: Placement, jobs: usize) -> ClusterReplayOutcome {
        let trace = build_trace(&workloads::catalog(), 9);
        let cfg = ClusterConfig {
            shards: 4,
            policy,
            jobs,
            ..ClusterConfig::default()
        };
        let mut c = Cluster::new(cfg, &ShardSetup::vanilla());
        replay_cluster(&mut c, &trace, &quick_config())
    }

    #[test]
    fn digest_is_jobs_invariant_for_every_policy() {
        for policy in [
            Placement::HashAffinity,
            Placement::LeastLoaded,
            Placement::ColdStartAware,
        ] {
            let serial = run_once(policy, 1);
            let parallel = run_once(policy, 4);
            assert!(serial.completed > 0, "{policy:?} completed nothing");
            assert_eq!(
                serial, parallel,
                "{policy:?} outcome diverged between 1 and 4 jobs"
            );
        }
    }

    #[test]
    fn policies_actually_differ() {
        // Different placement must yield different trajectories —
        // otherwise the policies are not actually plugged in.
        let a = run_once(Placement::HashAffinity, 2);
        let b = run_once(Placement::LeastLoaded, 2);
        assert_ne!(a.digest, b.digest);
    }

    fn run_outage(kind: OutageKind, jobs: usize) -> ClusterReplayOutcome {
        let trace = build_trace(&workloads::catalog(), 9);
        let cfg = ClusterConfig {
            shards: 4,
            policy: Placement::HashAffinity,
            jobs,
            ..ClusterConfig::default()
        };
        let mut c = Cluster::new(cfg, &ShardSetup::vanilla());
        c.set_outage_plan(OutagePlan {
            windows: vec![OutageWindow { shard: 1, start: 4, rounds: 3, kind, planned: false }],
        });
        replay_cluster(&mut c, &trace, &quick_config())
    }

    #[test]
    fn outage_replay_is_jobs_invariant_and_conserves_requests() {
        for kind in [OutageKind::Down, OutageKind::Partitioned] {
            let serial = run_outage(kind, 1);
            let parallel = run_outage(kind, 4);
            assert_eq!(serial, parallel, "{kind:?} outcome diverged between job counts");
            assert!(serial.outage_rounds == 3, "{kind:?}: expected 3 dark rounds");
            assert!(serial.retries > 0, "{kind:?}: stranded requests must retry");
            match kind {
                OutageKind::Down => assert!(serial.heals > 0, "Down must heal via the store"),
                OutageKind::Partitioned => {
                    assert_eq!(serial.heals, 0, "a partition needs no state rebuild")
                }
            }
        }
    }
}
