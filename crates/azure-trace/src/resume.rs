//! Crash-consistent, resumable replay over a faultable checkpoint
//! store.
//!
//! [`replay`](crate::replay::replay) drives the §5.3 protocol in three
//! monolithic `run_until` spans; if the process dies mid-run the whole
//! simulation is lost. This module re-expresses the same protocol as a
//! sequence of short *steps* with three durability primitives layered
//! on top:
//!
//! * a **write-ahead request journal**: every arrival batch is encoded
//!   as a CRC64-sealed record and appended to the journal log *before*
//!   it is submitted, so a recovered run knows exactly which requests
//!   the dead run had already injected — and a torn journal tail is
//!   detected and dropped, never mis-parsed;
//! * **incremental checkpoints** written to a [`CheckpointStore`]: a
//!   full base every [`ResumeOptions::base_every`] checkpoints, cheap
//!   O(dirty) deltas ([`Platform::checkpoint_delta`]) in between, each
//!   sealed in the CRC64-framed container format with a commit record
//!   and a monotonic epoch, the driver's own cursor riding along as an
//!   extra frame;
//! * a **last-good recovery lattice**: when an armed [`CrashPlan`]
//!   kills the event loop, the driver asks the store for the newest
//!   verifiable `(base, delta…)` chain — storage faults (torn writes,
//!   truncation, bit rot, stale commit records) cost recency, not
//!   correctness — restores it, re-reads the journal through its CRC
//!   filter, re-submits the journaled batches from the recovered step
//!   onward, and continues. When *no* stored checkpoint survives, it
//!   restarts from nothing and the journal replays the entire run.
//!
//! Because the platform is deterministic, a recovered run retraces the
//! dead run's trajectory event for event: its final checkpoint is
//! **byte-identical** to an uninterrupted control run of the same
//! driver, no matter how many times it was killed or what the storage
//! layer did to the checkpoints. The kill–recover chaos gate in
//! `bench` pins exactly that, torn-write and bit-flip schedules
//! included.

use faas::fault::CrashPlan;
use faas::platform::Platform;
use faas::{CheckpointStore, PlatformError, StorageFaultPlan};
use simos::SimTime;
use snapshot::frame::crc64;
use snapshot::{Reader, SnapError, Writer};

use crate::generate::{generate_arrivals, TraceFunction};
use crate::replay::{ReplayConfig, ReplayOutcome};

/// One journaled arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    /// Step in whose window the arrival falls.
    pub step: usize,
    /// Arrival time.
    pub at: SimTime,
    /// Catalog index of the invoked function.
    pub fn_idx: usize,
}

/// The write-ahead request journal: an append-only log of every arrival
/// the driver has committed to submitting, grouped by step.
///
/// Appending a step's batch *before* submitting it gives the recovery
/// path a complete record: requests submitted after the latest
/// checkpoint are exactly the journal entries for steps at or after the
/// checkpointed step cursor.
///
/// The durable form is [`RequestJournal::log_bytes`]: one CRC64-sealed
/// record per batch. [`RequestJournal::from_log`] re-reads it the way a
/// recovering host must — sequentially, dropping a torn or corrupt
/// tail instead of mis-parsing it. Dropping a tail record is safe
/// *because* the journal is write-ahead: a batch that never finished
/// reaching the log was never submitted, and arrival generation is
/// deterministic, so the recovered run re-derives and re-journals it.
#[derive(Debug, Clone, Default)]
pub struct RequestJournal {
    entries: Vec<JournalEntry>,
    /// Highest step journaled so far (steps are journaled in order).
    journaled_through: Option<usize>,
    /// The durable byte log: CRC-sealed records, appended write-ahead.
    log: Vec<u8>,
}

impl RequestJournal {
    /// Creates an empty journal.
    pub fn new() -> RequestJournal {
        RequestJournal::default()
    }

    /// Total journaled arrivals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `step`'s batch has already been journaled (by this run
    /// or, after a crash, by the run that died).
    pub fn contains_step(&self, step: usize) -> bool {
        self.journaled_through.is_some_and(|t| step <= t)
    }

    /// Appends `step`'s arrival batch — to the durable byte log first,
    /// then to the in-memory index. Steps must be journaled in order,
    /// exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `step` is already journaled or skips ahead.
    pub fn append_batch(&mut self, step: usize, batch: &[(SimTime, usize)]) {
        let expected = self.journaled_through.map_or(0, |t| t + 1);
        assert_eq!(step, expected, "journal batches must append in step order");
        let mut w = Writer::new();
        w.usize(step);
        w.usize(batch.len());
        for &(at, fn_idx) in batch {
            w.u64(at.0);
            w.usize(fn_idx);
        }
        let body = w.into_bytes();
        let crc = crc64(&body);
        self.log.extend_from_slice(&body);
        self.log.extend_from_slice(&crc.to_le_bytes());
        self.entries.extend(batch.iter().map(|&(at, fn_idx)| JournalEntry {
            step,
            at,
            fn_idx,
        }));
        self.journaled_through = Some(step);
    }

    /// The journaled arrivals of `step`, in submission order.
    pub fn batch(&self, step: usize) -> Vec<(SimTime, usize)> {
        self.entries
            .iter()
            .filter(|e| e.step == step)
            .map(|e| (e.at, e.fn_idx))
            .collect()
    }

    /// The durable byte log: every record, in append order.
    pub fn log_bytes(&self) -> &[u8] {
        &self.log
    }

    /// Rebuilds a journal from a durable byte log, validating each
    /// record's CRC and step ordering. Returns the journal plus the
    /// number of tail bytes dropped as torn or corrupt; parsing never
    /// panics, whatever the bytes.
    pub fn from_log(bytes: &[u8]) -> (RequestJournal, usize) {
        let mut journal = RequestJournal::new();
        let mut r = Reader::new(bytes);
        loop {
            let record_start = bytes.len() - r.remaining();
            let parsed: Result<(usize, Vec<(SimTime, usize)>), SnapError> = (|| {
                let step = r.usize()?;
                let n = r.seq_len()?;
                let mut batch = Vec::with_capacity(n);
                for _ in 0..n {
                    let at = SimTime(r.u64()?);
                    let fn_idx = r.usize()?;
                    batch.push((at, fn_idx));
                }
                let body_end = bytes.len() - r.remaining();
                let stored_crc = r.u64()?;
                let body = bytes
                    .get(record_start..body_end)
                    .ok_or(SnapError::Corrupt("journal record extent out of bounds"))?;
                if crc64(body) != stored_crc {
                    return Err(SnapError::Corrupt("journal record checksum mismatch"));
                }
                Ok((step, batch))
            })();
            match parsed {
                Ok((step, batch)) => {
                    let expected = journal.journaled_through.map_or(0, |t| t + 1);
                    if step != expected {
                        // An out-of-order record cannot come from this
                        // writer — treat everything from here as trash.
                        return (journal, bytes.len() - record_start);
                    }
                    journal.append_batch(step, &batch);
                }
                Err(_) => return (journal, bytes.len() - record_start),
            }
            if r.remaining() == 0 {
                return (journal, 0);
            }
        }
    }
}

/// Knobs of the resumable driver.
#[derive(Debug, Clone, Copy)]
pub struct ResumeOptions {
    /// Number of steps the protocol is divided into (on top of the
    /// mandatory warm-up / measured-window / drain boundaries). More
    /// steps mean finer-grained journal batches and more potential
    /// checkpoint sites.
    pub steps_per_phase: usize,
    /// Checkpoint at the start of every `checkpoint_every`-th step.
    pub checkpoint_every: usize,
    /// Every `base_every`-th checkpoint is a full base; the rest are
    /// O(dirty) deltas chained to their predecessor.
    pub base_every: usize,
    /// Storage faults to inject into checkpoint writes, if any. The
    /// request journal is not subjected to the plan — its torn-tail
    /// handling is exercised separately — so every fault lands on the
    /// recovery lattice.
    pub storage_faults: Option<StorageFaultPlan>,
}

impl Default for ResumeOptions {
    fn default() -> ResumeOptions {
        ResumeOptions {
            steps_per_phase: 8,
            checkpoint_every: 3,
            base_every: 4,
            storage_faults: None,
        }
    }
}

/// Result of a resumable (possibly killed-and-recovered) replay.
#[derive(Debug, Clone)]
pub struct ResumeOutcome {
    /// The §5.3 metrics, identical in meaning to
    /// [`replay`](crate::replay::replay)'s.
    pub outcome: ReplayOutcome,
    /// How many times the run was killed and recovered.
    pub recoveries: u64,
    /// How many of those recoveries found no usable checkpoint chain
    /// and restarted from nothing, replaying the whole journal.
    pub scratch_recoveries: u64,
    /// How many checkpoint writes had a storage fault injected.
    pub storage_faults_injected: u64,
    /// Checkpoint of the final state — the byte string the chaos gate
    /// digests. Equal states yield equal bytes.
    pub final_state: Vec<u8>,
}

/// Rates captured when the measured window closes; part of the driver
/// checkpoint frame because a later crash must not lose them (the
/// window boundary is never re-crossed after recovery past it).
#[derive(Debug, Clone, Copy)]
struct RateCapture {
    submitted: u64,
    cold_boot_rate: f64,
    throughput: f64,
    cpu_utilization: f64,
    reclaim_cpu_fraction: f64,
}

/// Container frame kind of the driver's cursor state. Anything at or
/// above [`Platform::FRAME_EXTRA_BASE`] is opaque to the platform and
/// comes back verbatim from [`Platform::restore_chain`].
const FRAME_DRIVER: u32 = Platform::FRAME_EXTRA_BASE;

/// Encodes the driver cursor (step, captured rates) as the payload of
/// a [`FRAME_DRIVER`] frame.
fn encode_driver_frame(step: usize, rates: Option<RateCapture>) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(step);
    match rates {
        None => w.bool(false),
        Some(r) => {
            w.bool(true);
            w.u64(r.submitted);
            w.f64(r.cold_boot_rate);
            w.f64(r.throughput);
            w.f64(r.cpu_utilization);
            w.f64(r.reclaim_cpu_fraction);
        }
    }
    w.into_bytes()
}

fn decode_driver_frame(payload: &[u8]) -> Result<(usize, Option<RateCapture>), SnapError> {
    let mut r = Reader::new(payload);
    let step = r.usize()?;
    let rates = if r.bool()? {
        Some(RateCapture {
            submitted: r.u64()?,
            cold_boot_rate: r.f64()?,
            throughput: r.f64()?,
            cpu_utilization: r.f64()?,
            reclaim_cpu_fraction: r.f64()?,
        })
    } else {
        None
    };
    r.finish()?;
    Ok((step, rates))
}

/// Runs the §5.3 protocol step by step with journaling and periodic
/// incremental checkpoints, killing and recovering wherever `crash`
/// dictates and corrupting checkpoint writes wherever
/// [`ResumeOptions::storage_faults`] dictates.
///
/// `make_platform` must build identically-configured platforms — the
/// recovery path constructs a fresh one and restores the best
/// available checkpoint chain into it ([`Platform::restore_chain`]
/// enforces the match by fingerprint).
///
/// With `crash: None` this is the uninterrupted control; with a crash
/// schedule — and any storage-fault plan at all — the final state is
/// byte-identical to that control.
///
/// # Panics
///
/// Panics if the platform surfaces a non-kill error or a verified
/// checkpoint chain fails to restore — both mean the simulation itself
/// is broken. The message carries the storage fault seed, the
/// checkpoint epoch involved, and the kill point's `events_handled`,
/// so a failing chaos schedule can be replayed exactly.
pub fn replay_resumable<F>(
    make_platform: F,
    trace: &[TraceFunction],
    config: &ReplayConfig,
    opts: &ResumeOptions,
    crash: Option<CrashPlan>,
) -> ResumeOutcome
where
    F: Fn() -> Platform,
{
    assert!(opts.steps_per_phase > 0, "need at least one step per phase");
    assert!(opts.checkpoint_every > 0, "checkpoint interval must be positive");
    assert!(opts.base_every > 0, "base interval must be positive");

    let mut platform = make_platform();
    let t0 = platform.now();
    let warm_end = t0 + config.warmup;
    let replay_end = warm_end + config.duration;
    let drain_end = replay_end + config.drain;

    // Step boundaries: the three protocol phases, each cut into
    // `steps_per_phase` windows. Phase edges are always boundaries, so
    // the reset/capture actions land at exactly the times `replay` uses.
    let mut bounds: Vec<SimTime> = Vec::new();
    for (lo, hi) in [(t0, warm_end), (warm_end, replay_end), (replay_end, drain_end)] {
        let span = hi.since(lo).as_nanos();
        for i in 0..opts.steps_per_phase {
            let off = span * i as u64 / opts.steps_per_phase as u64;
            let b = SimTime(lo.0 + off);
            if bounds.last() != Some(&b) {
                bounds.push(b);
            }
        }
    }
    bounds.push(drain_end);
    let n_steps = bounds.len() - 1;

    // Pre-compute the arrival batch of every step. Arrival generation
    // is deterministic, but the journal — not this table — is the
    // source of truth once a batch is committed.
    let mut arrivals = generate_arrivals(trace, config.warmup_scale, t0, warm_end, config.seed);
    arrivals.extend(generate_arrivals(
        trace,
        config.scale,
        warm_end,
        replay_end,
        config.seed ^ 0xA5A5,
    ));
    let mut batches: Vec<Vec<(SimTime, usize)>> = vec![Vec::new(); n_steps];
    for &(t, f) in &arrivals {
        let step = match bounds.binary_search(&t) {
            Ok(i) => i.min(n_steps - 1),
            Err(i) => i - 1,
        };
        batches[step].push((t, f));
    }

    let fault_seed = opts.storage_faults.map(|p| p.seed);
    let mut store = match opts.storage_faults {
        Some(plan) => CheckpointStore::with_faults(plan),
        None => CheckpointStore::new(),
    };
    let mut journal = RequestJournal::new();
    let mut rates: Option<RateCapture> = None;
    // Epoch of the last checkpoint *cut* — the parent of the next
    // delta. A faulted put still advances it: the platform cleared its
    // dirty tracking at the cut regardless of what the storage layer
    // kept, so the next delta is relative to that cut either way (the
    // recovery lattice walks past the unusable object).
    let mut parent_epoch: Option<u64> = None;
    let mut recoveries: u64 = 0;
    let mut scratch_recoveries: u64 = 0;
    if let Some(plan) = crash {
        if let Some(at) = plan.next_after(platform.events_handled()) {
            platform.arm_kill(at);
        }
    }

    let mut step = 0;
    while step < n_steps {
        let start = bounds[step];
        if step % opts.checkpoint_every == 0 {
            // Epoch = number of puts + 1: derivable from durable state
            // alone, strictly monotonic across recoveries.
            let epoch = store.len() as u64 + 1;
            let extra = vec![(FRAME_DRIVER, encode_driver_frame(step, rates))];
            let bytes = match parent_epoch {
                Some(parent) if store.len() % opts.base_every != 0 => {
                    platform.checkpoint_delta(epoch, parent, &extra)
                }
                _ => platform.checkpoint_base(epoch, &extra),
            };
            store.put(&bytes);
            parent_epoch = Some(epoch);
        }
        if start == warm_end {
            platform.reset_stats();
        }
        if start == replay_end {
            let cores = platform.config().cores;
            let stats = platform.stats();
            rates = Some(RateCapture {
                submitted: stats.submitted,
                cold_boot_rate: stats.cold_boot_rate(replay_end),
                throughput: stats.throughput(replay_end),
                cpu_utilization: stats.cpu_utilization(replay_end, cores),
                reclaim_cpu_fraction: stats.reclaim_cpu_fraction(replay_end, cores),
            });
        }
        // Write-ahead: commit the batch to the journal, then submit
        // from the journal. A recovered run finds the batch already
        // journaled and replays it verbatim.
        if !journal.contains_step(step) {
            journal.append_batch(step, &batches[step]);
        }
        for (t, f) in journal.batch(step) {
            platform.submit(t, f);
        }
        match platform.try_run_until(bounds[step + 1]) {
            Ok(()) => step += 1,
            Err(PlatformError::Killed { events_handled }) => {
                // The process died. Build a new one, restore the newest
                // verifiable checkpoint chain — or nothing, if the
                // storage layer destroyed them all — and resume; the
                // journal re-supplies every batch submitted since.
                recoveries += 1;
                platform = make_platform();
                // Re-read the journal the way a restarting host must:
                // through the CRC filter of its durable byte log.
                let (reread, dropped) = RequestJournal::from_log(journal.log_bytes());
                assert_eq!(
                    dropped, 0,
                    "in-memory journal log cannot be torn (fault seed {fault_seed:?})"
                );
                journal = reread;
                match store.recover() {
                    Some((head_epoch, chain)) => {
                        let (_, extra) = platform.restore_chain(&chain).unwrap_or_else(|e| {
                            panic!(
                                "verified chain (head epoch {head_epoch}) failed to \
                                 restore: {e} (storage fault seed {fault_seed:?}, \
                                 killed at events_handled={events_handled})"
                            )
                        });
                        let driver = extra
                            .iter()
                            .find(|(kind, _)| *kind == FRAME_DRIVER)
                            .unwrap_or_else(|| {
                                panic!(
                                    "checkpoint epoch {head_epoch} carries no driver \
                                     frame (storage fault seed {fault_seed:?}, killed \
                                     at events_handled={events_handled})"
                                )
                            });
                        let (s, r) = decode_driver_frame(&driver.1).unwrap_or_else(|e| {
                            panic!(
                                "driver frame of epoch {head_epoch} is corrupt past \
                                 its CRCs: {e} (storage fault seed {fault_seed:?}, \
                                 killed at events_handled={events_handled})"
                            )
                        });
                        step = s;
                        rates = r;
                        parent_epoch = Some(head_epoch);
                    }
                    None => {
                        // Every stored checkpoint is unusable: restart
                        // from nothing. The journal replays the whole
                        // history deterministically.
                        scratch_recoveries += 1;
                        step = 0;
                        rates = None;
                        parent_epoch = None;
                    }
                }
                if let Some(plan) = crash {
                    match plan.next_after(events_handled) {
                        Some(at) => platform.arm_kill(at),
                        None => platform.disarm_kill(),
                    }
                }
            }
            Err(e) => panic!(
                "platform invariant violated: {e} (storage fault seed {fault_seed:?}, \
                 checkpoint epoch {parent_epoch:?}, events_handled={})",
                platform.events_handled()
            ),
        }
    }
    platform.disarm_kill();

    let captured = rates.expect("measured-window boundary is always crossed");
    let stats = platform.stats();
    let mut latency = stats.latency.clone();
    let pct = |l: &mut faas::LatencyHistogram, q: f64| {
        l.percentile(q).map(|d| d.as_millis_f64()).unwrap_or(0.0)
    };
    let outcome = ReplayOutcome {
        submitted: captured.submitted,
        completed: stats.completed,
        cold_boot_rate: captured.cold_boot_rate,
        cold_boot_fraction: stats.cold_boot_fraction(),
        throughput: captured.throughput,
        cpu_utilization: captured.cpu_utilization,
        reclaim_cpu_fraction: captured.reclaim_cpu_fraction,
        evictions: stats.evictions,
        failed: stats.failed,
        retries: stats.retries,
        fault_events: stats.fault_events(),
        latency_ms: (
            pct(&mut latency, 0.50),
            pct(&mut latency, 0.90),
            pct(&mut latency, 0.95),
            pct(&mut latency, 0.99),
        ),
    };
    ResumeOutcome {
        outcome,
        recoveries,
        scratch_recoveries,
        storage_faults_injected: store.faults_injected(),
        final_state: platform.checkpoint(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::build_trace;
    use faas::platform::GcMode;
    use faas::PlatformConfig;
    use simos::SimDuration;

    fn quick_config() -> ReplayConfig {
        ReplayConfig {
            warmup: SimDuration::from_secs(8),
            duration: SimDuration::from_secs(20),
            scale: 10.0,
            warmup_scale: 10.0,
            seed: 3,
            drain: SimDuration::from_secs(12),
        }
    }

    fn make() -> Platform {
        Platform::new(
            PlatformConfig::default(),
            workloads::catalog(),
            GcMode::Vanilla,
            None,
        )
    }

    #[test]
    fn uninterrupted_resumable_matches_itself() {
        let trace = build_trace(&workloads::catalog(), 5);
        let cfg = quick_config();
        let a = replay_resumable(make, &trace, &cfg, &ResumeOptions::default(), None);
        let b = replay_resumable(make, &trace, &cfg, &ResumeOptions::default(), None);
        assert_eq!(a.recoveries, 0);
        assert_eq!(a.final_state, b.final_state);
        assert!(a.outcome.completed > 0);
        assert_eq!(a.outcome.failed, 0);
    }

    #[test]
    fn crashed_run_recovers_to_identical_state() {
        let trace = build_trace(&workloads::catalog(), 5);
        let cfg = quick_config();
        let opts = ResumeOptions::default();
        let control = replay_resumable(make, &trace, &cfg, &opts, None);
        let chaos = replay_resumable(make, &trace, &cfg, &opts, Some(CrashPlan::every(400)));
        assert!(chaos.recoveries > 0, "crash schedule never fired");
        assert_eq!(
            chaos.final_state, control.final_state,
            "recovered state diverged from the uninterrupted control"
        );
        assert_eq!(chaos.outcome.completed, control.outcome.completed);
        assert_eq!(chaos.outcome.submitted, control.outcome.submitted);
    }

    #[test]
    fn single_crash_point_recovers_once() {
        let trace = build_trace(&workloads::catalog(), 5);
        let cfg = quick_config();
        let opts = ResumeOptions::default();
        let control = replay_resumable(make, &trace, &cfg, &opts, None);
        let chaos = replay_resumable(make, &trace, &cfg, &opts, Some(CrashPlan::at(300)));
        assert_eq!(chaos.recoveries, 1);
        assert_eq!(chaos.final_state, control.final_state);
    }

    #[test]
    fn storage_faults_cost_recency_not_correctness() {
        let trace = build_trace(&workloads::catalog(), 5);
        let cfg = quick_config();
        let control = replay_resumable(make, &trace, &cfg, &ResumeOptions::default(), None);
        let opts = ResumeOptions {
            storage_faults: Some(StorageFaultPlan::uniform(41, 0.4)),
            ..ResumeOptions::default()
        };
        let chaos = replay_resumable(make, &trace, &cfg, &opts, Some(CrashPlan::every(500)));
        assert!(chaos.recoveries > 0, "crash schedule never fired");
        assert!(chaos.storage_faults_injected > 0, "fault plan never fired");
        assert_eq!(
            chaos.final_state, control.final_state,
            "storage faults changed the recovered trajectory"
        );
    }

    #[test]
    fn total_checkpoint_loss_recovers_from_journal_alone() {
        let trace = build_trace(&workloads::catalog(), 5);
        let cfg = quick_config();
        let control = replay_resumable(make, &trace, &cfg, &ResumeOptions::default(), None);
        // Every checkpoint write gets a bit flipped: recovery can never
        // use the store and must replay the journal from nothing.
        let opts = ResumeOptions {
            storage_faults: Some(StorageFaultPlan::corrupt_at(13, 100)),
            ..ResumeOptions::default()
        };
        let chaos = replay_resumable(make, &trace, &cfg, &opts, Some(CrashPlan::at(300)));
        assert_eq!(chaos.recoveries, 1);
        assert_eq!(chaos.scratch_recoveries, 1);
        assert_eq!(chaos.final_state, control.final_state);
    }

    #[test]
    fn journal_appends_in_order_and_replays_batches() {
        let mut j = RequestJournal::new();
        assert!(j.is_empty());
        j.append_batch(0, &[(SimTime(5), 1), (SimTime(9), 2)]);
        j.append_batch(1, &[]);
        j.append_batch(2, &[(SimTime(30), 0)]);
        assert_eq!(j.len(), 3);
        assert!(j.contains_step(1));
        assert!(!j.contains_step(3));
        assert_eq!(j.batch(0), vec![(SimTime(5), 1), (SimTime(9), 2)]);
        assert_eq!(j.batch(1), Vec::new());
        assert_eq!(j.batch(2), vec![(SimTime(30), 0)]);
    }

    #[test]
    #[should_panic(expected = "step order")]
    fn journal_rejects_out_of_order_batches() {
        let mut j = RequestJournal::new();
        j.append_batch(1, &[]);
    }

    #[test]
    fn journal_log_round_trips() {
        let mut j = RequestJournal::new();
        j.append_batch(0, &[(SimTime(5), 1), (SimTime(9), 2)]);
        j.append_batch(1, &[]);
        j.append_batch(2, &[(SimTime(30), 0)]);
        let (back, dropped) = RequestJournal::from_log(j.log_bytes());
        assert_eq!(dropped, 0);
        assert_eq!(back.len(), j.len());
        for step in 0..3 {
            assert_eq!(back.batch(step), j.batch(step));
        }
        assert_eq!(back.log_bytes(), j.log_bytes());
    }

    #[test]
    fn journal_drops_torn_or_corrupt_tail_without_panicking() {
        let mut j = RequestJournal::new();
        j.append_batch(0, &[(SimTime(5), 1)]);
        let clean_len = j.log_bytes().len();
        j.append_batch(1, &[(SimTime(12), 0), (SimTime(14), 2)]);
        let log = j.log_bytes().to_vec();
        // Every possible tear point: the prefix records survive, the
        // torn tail is dropped, and nothing panics.
        for cut in 0..log.len() {
            let (back, dropped) = RequestJournal::from_log(&log[..cut]);
            // The torn record's bytes — everything past the last
            // complete record — are dropped in full.
            let expected = if cut >= clean_len { cut - clean_len } else { cut };
            assert_eq!(dropped, expected, "cut at {cut}");
            if cut >= clean_len {
                assert_eq!(back.batch(0), vec![(SimTime(5), 1)]);
            }
            assert!(back.len() <= j.len());
        }
        // A corrupt (not torn) tail record is likewise dropped.
        let mut bad = log.clone();
        let last = bad.len() - 3;
        bad[last] ^= 0x80;
        let (back, dropped) = RequestJournal::from_log(&bad);
        assert_eq!(back.batch(0), vec![(SimTime(5), 1)]);
        assert!(!back.contains_step(1));
        assert!(dropped > 0);
    }
}
