//! Crash-consistent, resumable replay.
//!
//! [`replay`](crate::replay::replay) drives the §5.3 protocol in three
//! monolithic `run_until` spans; if the process dies mid-run the whole
//! simulation is lost. This module re-expresses the same protocol as a
//! sequence of short *steps* with three durability primitives layered
//! on top:
//!
//! * a **write-ahead request journal**: every arrival batch is appended
//!   to the journal *before* it is submitted, so a recovered run knows
//!   exactly which requests the dead run had already injected;
//! * **periodic checkpoints** of the full simulation state (via
//!   [`Platform::checkpoint`]) plus the small amount of driver state the
//!   platform does not own (the step cursor and the rates captured at
//!   the measured-window boundary);
//! * a **recovery loop**: when an armed [`CrashPlan`] kills the event
//!   loop, the driver builds a fresh platform, restores the latest
//!   checkpoint, re-submits the journaled batches from the checkpointed
//!   step onward, and continues.
//!
//! Because the platform is deterministic, a recovered run retraces the
//! dead run's trajectory event for event: its final checkpoint is
//! **byte-identical** to an uninterrupted control run of the same
//! driver, no matter how many times (or where) it was killed. The
//! kill–recover chaos gate in `bench` pins exactly that.

use faas::fault::CrashPlan;
use faas::platform::Platform;
use faas::PlatformError;
use simos::SimTime;

use crate::generate::{generate_arrivals, TraceFunction};
use crate::replay::{ReplayConfig, ReplayOutcome};

/// One journaled arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    /// Step in whose window the arrival falls.
    pub step: usize,
    /// Arrival time.
    pub at: SimTime,
    /// Catalog index of the invoked function.
    pub fn_idx: usize,
}

/// The write-ahead request journal: an append-only log of every arrival
/// the driver has committed to submitting, grouped by step.
///
/// Appending a step's batch *before* submitting it gives the recovery
/// path a complete record: requests submitted after the latest
/// checkpoint are exactly the journal entries for steps at or after the
/// checkpointed step cursor.
#[derive(Debug, Clone, Default)]
pub struct RequestJournal {
    entries: Vec<JournalEntry>,
    /// Highest step journaled so far (steps are journaled in order).
    journaled_through: Option<usize>,
}

impl RequestJournal {
    /// Creates an empty journal.
    pub fn new() -> RequestJournal {
        RequestJournal::default()
    }

    /// Total journaled arrivals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `step`'s batch has already been journaled (by this run
    /// or, after a crash, by the run that died).
    pub fn contains_step(&self, step: usize) -> bool {
        self.journaled_through.is_some_and(|t| step <= t)
    }

    /// Appends `step`'s arrival batch. Steps must be journaled in
    /// order, exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `step` is already journaled or skips ahead.
    pub fn append_batch(&mut self, step: usize, batch: &[(SimTime, usize)]) {
        let expected = self.journaled_through.map_or(0, |t| t + 1);
        assert_eq!(step, expected, "journal batches must append in step order");
        self.entries.extend(batch.iter().map(|&(at, fn_idx)| JournalEntry {
            step,
            at,
            fn_idx,
        }));
        self.journaled_through = Some(step);
    }

    /// The journaled arrivals of `step`, in submission order.
    pub fn batch(&self, step: usize) -> Vec<(SimTime, usize)> {
        self.entries
            .iter()
            .filter(|e| e.step == step)
            .map(|e| (e.at, e.fn_idx))
            .collect()
    }
}

/// Knobs of the resumable driver.
#[derive(Debug, Clone, Copy)]
pub struct ResumeOptions {
    /// Number of steps the protocol is divided into (on top of the
    /// mandatory warm-up / measured-window / drain boundaries). More
    /// steps mean finer-grained journal batches and more potential
    /// checkpoint sites.
    pub steps_per_phase: usize,
    /// Checkpoint at the start of every `checkpoint_every`-th step.
    pub checkpoint_every: usize,
}

impl Default for ResumeOptions {
    fn default() -> ResumeOptions {
        ResumeOptions {
            steps_per_phase: 8,
            checkpoint_every: 3,
        }
    }
}

/// Result of a resumable (possibly killed-and-recovered) replay.
#[derive(Debug, Clone)]
pub struct ResumeOutcome {
    /// The §5.3 metrics, identical in meaning to
    /// [`replay`](crate::replay::replay)'s.
    pub outcome: ReplayOutcome,
    /// How many times the run was killed and recovered.
    pub recoveries: u64,
    /// Checkpoint of the final state — the byte string the chaos gate
    /// digests. Equal states yield equal bytes.
    pub final_state: Vec<u8>,
}

/// Rates captured when the measured window closes; part of the driver
/// checkpoint because a later crash must not lose them (the window
/// boundary is never re-crossed after recovery past it).
#[derive(Debug, Clone, Copy)]
struct RateCapture {
    submitted: u64,
    cold_boot_rate: f64,
    throughput: f64,
    cpu_utilization: f64,
    reclaim_cpu_fraction: f64,
}

/// A driver checkpoint: the platform snapshot plus the step cursor and
/// any captured rates.
struct DriverCheckpoint {
    step: usize,
    rates: Option<RateCapture>,
    platform: Vec<u8>,
}

/// Runs the §5.3 protocol step by step with journaling and periodic
/// checkpoints, killing and recovering wherever `crash` dictates.
///
/// `make_platform` must build identically-configured platforms — the
/// recovery path constructs a fresh one and restores the latest
/// checkpoint into it ([`Platform::restore`] enforces the match by
/// fingerprint).
///
/// With `crash: None` this is the uninterrupted control; with a crash
/// schedule the final state is byte-identical to that control.
///
/// # Panics
///
/// Panics if the platform surfaces a non-kill error or a checkpoint
/// fails to restore — both mean the simulation itself is broken.
pub fn replay_resumable<F>(
    make_platform: F,
    trace: &[TraceFunction],
    config: &ReplayConfig,
    opts: &ResumeOptions,
    crash: Option<CrashPlan>,
) -> ResumeOutcome
where
    F: Fn() -> Platform,
{
    assert!(opts.steps_per_phase > 0, "need at least one step per phase");
    assert!(opts.checkpoint_every > 0, "checkpoint interval must be positive");

    let mut platform = make_platform();
    let t0 = platform.now();
    let warm_end = t0 + config.warmup;
    let replay_end = warm_end + config.duration;
    let drain_end = replay_end + config.drain;

    // Step boundaries: the three protocol phases, each cut into
    // `steps_per_phase` windows. Phase edges are always boundaries, so
    // the reset/capture actions land at exactly the times `replay` uses.
    let mut bounds: Vec<SimTime> = Vec::new();
    for (lo, hi) in [(t0, warm_end), (warm_end, replay_end), (replay_end, drain_end)] {
        let span = hi.since(lo).as_nanos();
        for i in 0..opts.steps_per_phase {
            let off = span * i as u64 / opts.steps_per_phase as u64;
            let b = SimTime(lo.0 + off);
            if bounds.last() != Some(&b) {
                bounds.push(b);
            }
        }
    }
    bounds.push(drain_end);
    let n_steps = bounds.len() - 1;

    // Pre-compute the arrival batch of every step. Arrival generation
    // is deterministic, but the journal — not this table — is the
    // source of truth once a batch is committed.
    let mut arrivals = generate_arrivals(trace, config.warmup_scale, t0, warm_end, config.seed);
    arrivals.extend(generate_arrivals(
        trace,
        config.scale,
        warm_end,
        replay_end,
        config.seed ^ 0xA5A5,
    ));
    let mut batches: Vec<Vec<(SimTime, usize)>> = vec![Vec::new(); n_steps];
    for &(t, f) in &arrivals {
        let step = match bounds.binary_search(&t) {
            Ok(i) => i.min(n_steps - 1),
            Err(i) => i - 1,
        };
        batches[step].push((t, f));
    }

    let mut journal = RequestJournal::new();
    let mut rates: Option<RateCapture> = None;
    let mut latest = DriverCheckpoint {
        step: 0,
        rates: None,
        platform: platform.checkpoint(),
    };
    let mut recoveries: u64 = 0;
    if let Some(plan) = crash {
        if let Some(at) = plan.next_after(platform.events_handled()) {
            platform.arm_kill(at);
        }
    }

    let mut step = 0;
    while step < n_steps {
        let start = bounds[step];
        if step % opts.checkpoint_every == 0 {
            latest = DriverCheckpoint {
                step,
                rates,
                platform: platform.checkpoint(),
            };
        }
        if start == warm_end {
            platform.reset_stats();
        }
        if start == replay_end {
            let cores = platform.config().cores;
            let stats = platform.stats();
            rates = Some(RateCapture {
                submitted: stats.submitted,
                cold_boot_rate: stats.cold_boot_rate(replay_end),
                throughput: stats.throughput(replay_end),
                cpu_utilization: stats.cpu_utilization(replay_end, cores),
                reclaim_cpu_fraction: stats.reclaim_cpu_fraction(replay_end, cores),
            });
        }
        // Write-ahead: commit the batch to the journal, then submit
        // from the journal. A recovered run finds the batch already
        // journaled and replays it verbatim.
        if !journal.contains_step(step) {
            journal.append_batch(step, &batches[step]);
        }
        for (t, f) in journal.batch(step) {
            platform.submit(t, f);
        }
        match platform.try_run_until(bounds[step + 1]) {
            Ok(()) => step += 1,
            Err(PlatformError::Killed { events_handled }) => {
                // The process died. Build a new one, load the latest
                // checkpoint, and resume from its step cursor; the
                // journal re-supplies every batch submitted since.
                recoveries += 1;
                platform = make_platform();
                platform
                    .restore(&latest.platform)
                    .expect("self-produced checkpoint must restore");
                rates = latest.rates;
                step = latest.step;
                if let Some(plan) = crash {
                    match plan.next_after(events_handled) {
                        Some(at) => platform.arm_kill(at),
                        None => platform.disarm_kill(),
                    }
                }
            }
            Err(e) => panic!("platform invariant violated: {e}"),
        }
    }
    platform.disarm_kill();

    let captured = rates.expect("measured-window boundary is always crossed");
    let stats = platform.stats();
    let mut latency = stats.latency.clone();
    let pct = |l: &mut faas::LatencyHistogram, q: f64| {
        l.percentile(q).map(|d| d.as_millis_f64()).unwrap_or(0.0)
    };
    let outcome = ReplayOutcome {
        submitted: captured.submitted,
        completed: stats.completed,
        cold_boot_rate: captured.cold_boot_rate,
        cold_boot_fraction: stats.cold_boot_fraction(),
        throughput: captured.throughput,
        cpu_utilization: captured.cpu_utilization,
        reclaim_cpu_fraction: captured.reclaim_cpu_fraction,
        evictions: stats.evictions,
        failed: stats.failed,
        retries: stats.retries,
        fault_events: stats.fault_events(),
        latency_ms: (
            pct(&mut latency, 0.50),
            pct(&mut latency, 0.90),
            pct(&mut latency, 0.95),
            pct(&mut latency, 0.99),
        ),
    };
    ResumeOutcome {
        outcome,
        recoveries,
        final_state: platform.checkpoint(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::build_trace;
    use faas::platform::GcMode;
    use faas::PlatformConfig;
    use simos::SimDuration;

    fn quick_config() -> ReplayConfig {
        ReplayConfig {
            warmup: SimDuration::from_secs(8),
            duration: SimDuration::from_secs(20),
            scale: 10.0,
            warmup_scale: 10.0,
            seed: 3,
            drain: SimDuration::from_secs(12),
        }
    }

    fn make() -> Platform {
        Platform::new(
            PlatformConfig::default(),
            workloads::catalog(),
            GcMode::Vanilla,
            None,
        )
    }

    #[test]
    fn uninterrupted_resumable_matches_itself() {
        let trace = build_trace(&workloads::catalog(), 5);
        let cfg = quick_config();
        let a = replay_resumable(make, &trace, &cfg, &ResumeOptions::default(), None);
        let b = replay_resumable(make, &trace, &cfg, &ResumeOptions::default(), None);
        assert_eq!(a.recoveries, 0);
        assert_eq!(a.final_state, b.final_state);
        assert!(a.outcome.completed > 0);
        assert_eq!(a.outcome.failed, 0);
    }

    #[test]
    fn crashed_run_recovers_to_identical_state() {
        let trace = build_trace(&workloads::catalog(), 5);
        let cfg = quick_config();
        let opts = ResumeOptions::default();
        let control = replay_resumable(make, &trace, &cfg, &opts, None);
        let chaos = replay_resumable(make, &trace, &cfg, &opts, Some(CrashPlan::every(400)));
        assert!(chaos.recoveries > 0, "crash schedule never fired");
        assert_eq!(
            chaos.final_state, control.final_state,
            "recovered state diverged from the uninterrupted control"
        );
        assert_eq!(chaos.outcome.completed, control.outcome.completed);
        assert_eq!(chaos.outcome.submitted, control.outcome.submitted);
    }

    #[test]
    fn single_crash_point_recovers_once() {
        let trace = build_trace(&workloads::catalog(), 5);
        let cfg = quick_config();
        let opts = ResumeOptions::default();
        let control = replay_resumable(make, &trace, &cfg, &opts, None);
        let chaos = replay_resumable(make, &trace, &cfg, &opts, Some(CrashPlan::at(300)));
        assert_eq!(chaos.recoveries, 1);
        assert_eq!(chaos.final_state, control.final_state);
    }

    #[test]
    fn journal_appends_in_order_and_replays_batches() {
        let mut j = RequestJournal::new();
        assert!(j.is_empty());
        j.append_batch(0, &[(SimTime(5), 1), (SimTime(9), 2)]);
        j.append_batch(1, &[]);
        j.append_batch(2, &[(SimTime(30), 0)]);
        assert_eq!(j.len(), 3);
        assert!(j.contains_step(1));
        assert!(!j.contains_step(3));
        assert_eq!(j.batch(0), vec![(SimTime(5), 1), (SimTime(9), 2)]);
        assert_eq!(j.batch(1), Vec::new());
        assert_eq!(j.batch(2), vec![(SimTime(30), 0)]);
    }

    #[test]
    #[should_panic(expected = "step order")]
    fn journal_rejects_out_of_order_batches() {
        let mut j = RequestJournal::new();
        j.append_batch(1, &[]);
    }
}
