//! The §5.3 replay protocol: warm-up, then a measured window.

use faas::platform::Platform;
use simos::SimDuration;

use crate::generate::{generate_arrivals, TraceFunction};

/// Replay parameters (paper defaults).
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Scale factor under test.
    pub scale: f64,
    /// Warm-up duration (60 s in the paper).
    pub warmup: SimDuration,
    /// Warm-up scale factor (fixed at 15 in the paper).
    pub warmup_scale: f64,
    /// Measured replay duration (180 s in the paper).
    pub duration: SimDuration,
    /// Arrival-generation seed.
    pub seed: u64,
    /// Extra drain time after the last arrival so in-flight requests
    /// finish.
    pub drain: SimDuration,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            scale: 15.0,
            warmup: SimDuration::from_secs(60),
            warmup_scale: 15.0,
            duration: SimDuration::from_secs(180),
            seed: 1,
            drain: SimDuration::from_secs(30),
        }
    }
}

/// Measured results of one replay.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Requests submitted in the measured window.
    pub submitted: u64,
    /// Requests completed in the measured window (plus drain).
    pub completed: u64,
    /// Cold boots per second.
    pub cold_boot_rate: f64,
    /// Cold-boot fraction of acquisitions.
    pub cold_boot_fraction: f64,
    /// Completed requests per second.
    pub throughput: f64,
    /// Mean CPU utilization (0..=1).
    pub cpu_utilization: f64,
    /// Reclamation share of CPU (0..=1).
    pub reclaim_cpu_fraction: f64,
    /// Evictions in the window.
    pub evictions: u64,
    /// Requests that terminated with a failure (always zero in a
    /// fault-free run — a standing inertness check).
    pub failed: u64,
    /// Retry attempts scheduled (always zero fault-free).
    pub retries: u64,
    /// Fault events of every class: boot failures, crashes, OOM kills,
    /// thaw failures, reclaim failures (always zero fault-free).
    pub fault_events: u64,
    /// Latency percentiles in milliseconds: (p50, p90, p95, p99).
    pub latency_ms: (f64, f64, f64, f64),
}

/// Runs the full §5.3 protocol on `platform`: warm up `warmup` at
/// `warmup_scale`, reset statistics, replay `duration` at `scale`, then
/// drain.
pub fn replay(platform: &mut Platform, trace: &[TraceFunction], config: &ReplayConfig) -> ReplayOutcome {
    let t0 = platform.now();
    let warm_end = t0 + config.warmup;
    for (t, f) in generate_arrivals(trace, config.warmup_scale, t0, warm_end, config.seed) {
        platform.submit(t, f);
    }
    platform.run_until(warm_end);
    platform.reset_stats();

    let replay_end = warm_end + config.duration;
    for (t, f) in generate_arrivals(trace, config.scale, warm_end, replay_end, config.seed ^ 0xA5A5) {
        platform.submit(t, f);
    }
    platform.run_until(replay_end);
    let cores = platform.config().cores;
    // Snapshot rates at the window end, then drain in-flight requests
    // so tail latencies are complete.
    let submitted = platform.stats().submitted;
    let cold_boot_rate = platform.stats().cold_boot_rate(replay_end);
    let throughput = platform.stats().throughput(replay_end);
    let cpu_utilization = platform.stats().cpu_utilization(replay_end, cores);
    let reclaim_cpu_fraction = platform.stats().reclaim_cpu_fraction(replay_end, cores);
    platform.run_until(replay_end + config.drain);

    let stats = platform.stats();
    let mut latency = stats.latency.clone();
    let pct = |l: &mut faas::LatencyHistogram, q| {
        l.percentile(q).map(|d| d.as_millis_f64()).unwrap_or(0.0)
    };
    ReplayOutcome {
        submitted,
        completed: stats.completed,
        cold_boot_rate,
        cold_boot_fraction: stats.cold_boot_fraction(),
        throughput,
        cpu_utilization,
        reclaim_cpu_fraction,
        evictions: stats.evictions,
        failed: stats.failed,
        retries: stats.retries,
        fault_events: stats.fault_events(),
        latency_ms: (
            pct(&mut latency, 0.50),
            pct(&mut latency, 0.90),
            pct(&mut latency, 0.95),
            pct(&mut latency, 0.99),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::build_trace;
    use faas::platform::GcMode;
    use faas::PlatformConfig;

    #[test]
    fn short_replay_produces_coherent_stats() {
        let catalog = workloads::catalog();
        let trace = build_trace(&catalog, 5);
        let mut p = Platform::new(PlatformConfig::default(), catalog, GcMode::Vanilla, None);
        let config = ReplayConfig {
            warmup: SimDuration::from_secs(10),
            duration: SimDuration::from_secs(30),
            scale: 10.0,
            warmup_scale: 10.0,
            seed: 3,
            drain: SimDuration::from_secs(20),
        };
        let out = replay(&mut p, &trace, &config);
        assert!(out.submitted > 0, "no load generated");
        assert!(out.completed > 0, "nothing completed");
        assert!(out.completed <= out.submitted + 50);
        assert!(out.throughput > 0.0);
        assert!(out.cpu_utilization > 0.0 && out.cpu_utilization <= 1.0);
        // No fault plan installed: the failure counters must be dead
        // zero (the fault machinery is inert by default).
        assert_eq!(out.failed, 0);
        assert_eq!(out.retries, 0);
        assert_eq!(out.fault_events, 0);
        let (p50, p90, p95, p99) = out.latency_ms;
        assert!(p50 <= p90 && p90 <= p95 && p95 <= p99, "{out:?}");
    }

    #[test]
    fn higher_scale_brings_more_load() {
        let catalog = workloads::catalog();
        let trace = build_trace(&catalog, 5);
        let mut low = Platform::new(PlatformConfig::default(), catalog.clone(), GcMode::Vanilla, None);
        let mut high = Platform::new(PlatformConfig::default(), catalog, GcMode::Vanilla, None);
        let base = ReplayConfig {
            warmup: SimDuration::from_secs(5),
            duration: SimDuration::from_secs(20),
            warmup_scale: 10.0,
            seed: 4,
            drain: SimDuration::from_secs(10),
            scale: 5.0,
        };
        let lo = replay(&mut low, &trace, &base);
        let hi = replay(&mut high, &trace, &ReplayConfig { scale: 25.0, ..base });
        assert!(hi.submitted > lo.submitted * 2, "{} vs {}", hi.submitted, lo.submitted);
    }
}
