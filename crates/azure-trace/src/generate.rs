//! Trace synthesis: per-function arrival processes with Azure-like
//! marginals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simos::{SimDuration, SimTime};
use workloads::FunctionSpec;

/// The arrival process of one trace function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalPattern {
    /// Timer-driven: fixed period with small jitter (≈45 % of Azure
    /// functions are timer-triggered).
    Periodic {
        /// Relative jitter on each gap (e.g. 0.1 = ±10 %).
        jitter: f64,
    },
    /// Memoryless HTTP-style arrivals.
    Poisson,
    /// Bursts of back-to-back invocations separated by long gaps
    /// (queue-drain behaviour).
    Bursty {
        /// Mean invocations per burst.
        burst_mean: f64,
    },
}

/// One synthesized trace function, bound to a catalog workload.
#[derive(Debug, Clone, Copy)]
pub struct TraceFunction {
    /// Index into the catalog this trace function invokes.
    pub fn_idx: usize,
    /// Arrival process.
    pub pattern: ArrivalPattern,
    /// Mean inter-arrival time at scale factor 1.
    pub base_interarrival: SimDuration,
}

/// Mean inter-arrival of the *hottest* function at scale factor 1.
/// Calibrated so the §5.3 scale-factor sweep (5–30) spans from light
/// load to CPU/memory saturation on the default platform.
const HOT_INTERARRIVAL: SimDuration = SimDuration::from_secs(8);

/// Builds one trace function per catalog entry.
///
/// Rates are heavy-tailed and anti-correlated with execution time:
/// functions are ranked by nominal duration, and the `k`-th shortest
/// function gets a mean inter-arrival of `HOT_INTERARRIVAL · 1.2^k`,
/// a Zipf-like popularity decay. Patterns are drawn 45 % periodic,
/// 35 % Poisson, 20 % bursty, matching the dataset's trigger mix.
pub fn build_trace(catalog: &[FunctionSpec], seed: u64) -> Vec<TraceFunction> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Rank by duration: shortest first.
    let mut order: Vec<usize> = (0..catalog.len()).collect();
    order.sort_by_key(|i| catalog[*i].nominal_duration(0.14));
    let mut out = vec![None; catalog.len()];
    for (rank, &fn_idx) in order.iter().enumerate() {
        let base = HOT_INTERARRIVAL.mul_f64(1.2f64.powi(rank as i32));
        let roll: f64 = rng.gen();
        let pattern = if roll < 0.45 {
            ArrivalPattern::Periodic {
                jitter: rng.gen_range(0.02..0.15),
            }
        } else if roll < 0.80 {
            ArrivalPattern::Poisson
        } else {
            ArrivalPattern::Bursty {
                burst_mean: rng.gen_range(2.0..6.0),
            }
        };
        out[fn_idx] = Some(TraceFunction {
            fn_idx,
            pattern,
            base_interarrival: base,
        });
    }
    out.into_iter().map(|t| t.expect("every slot filled")).collect()
}

/// Generates the time-sorted arrival list for `[start, end)` at the
/// given scale factor (inter-arrival times divided by `scale`, §5.3).
///
/// # Panics
///
/// Panics if `scale` is not positive or the window is empty.
pub fn generate_arrivals(
    trace: &[TraceFunction],
    scale: f64,
    start: SimTime,
    end: SimTime,
    seed: u64,
) -> Vec<(SimTime, usize)> {
    assert!(scale > 0.0, "scale factor must be positive");
    assert!(end > start, "empty replay window");
    let mut out = Vec::new();
    for (i, f) in trace.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed ^ ((i as u64 + 1) << 40));
        let mean = f.base_interarrival.mul_f64(1.0 / scale);
        if mean == SimDuration::ZERO {
            continue;
        }
        let mut t = start;
        // Random initial phase so periodic functions do not align.
        t += mean.mul_f64(rng.gen::<f64>());
        while t < end {
            match f.pattern {
                ArrivalPattern::Periodic { jitter } => {
                    out.push((t, f.fn_idx));
                    let gap = mean.mul_f64(1.0 + rng.gen_range(-jitter..jitter));
                    t += gap.max(SimDuration::from_millis(1));
                }
                ArrivalPattern::Poisson => {
                    out.push((t, f.fn_idx));
                    let u: f64 = rng.gen_range(1e-9..1.0);
                    t += mean.mul_f64(-u.ln()).max(SimDuration::from_millis(1));
                }
                ArrivalPattern::Bursty { burst_mean } => {
                    // A burst of geometric size, back to back.
                    let size = 1 + (rng.gen::<f64>() * 2.0 * burst_mean) as u32;
                    for k in 0..size {
                        let at = t + SimDuration::from_millis(20) * k as u64;
                        if at < end {
                            out.push((at, f.fn_idx));
                        }
                    }
                    // Gap sized to preserve the mean rate.
                    let u: f64 = rng.gen_range(1e-9..1.0);
                    t += mean.mul_f64(size as f64 * -u.ln()).max(SimDuration::from_millis(1));
                }
            }
        }
    }
    out.sort_by_key(|(t, idx)| (*t, *idx));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(secs: u64) -> (SimTime, SimTime) {
        (SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(secs))
    }

    #[test]
    fn trace_covers_every_function_once() {
        let catalog = workloads::catalog();
        let trace = build_trace(&catalog, 1);
        assert_eq!(trace.len(), catalog.len());
        let mut seen: Vec<_> = trace.iter().map(|t| t.fn_idx).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), catalog.len());
    }

    #[test]
    fn shorter_functions_are_hotter() {
        let catalog = workloads::catalog();
        let trace = build_trace(&catalog, 1);
        let clock = catalog.iter().position(|f| f.name == "clock").unwrap();
        let alexa = catalog.iter().position(|f| f.name == "alexa").unwrap();
        assert!(
            trace[clock].base_interarrival < trace[alexa].base_interarrival,
            "clock (1 ms) must be invoked more often than alexa (8-stage chain)"
        );
    }

    #[test]
    fn scale_factor_scales_volume_linearly_ish() {
        let catalog = workloads::catalog();
        let trace = build_trace(&catalog, 1);
        let (s, e) = window(300);
        let lo = generate_arrivals(&trace, 5.0, s, e, 9).len();
        let hi = generate_arrivals(&trace, 25.0, s, e, 9).len();
        let ratio = hi as f64 / lo as f64;
        assert!(
            (3.0..8.0).contains(&ratio),
            "5× the scale should give roughly 5× the arrivals, got {ratio}"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_in_window() {
        let catalog = workloads::catalog();
        let trace = build_trace(&catalog, 2);
        let start = SimTime(5_000_000_000);
        let end = SimTime(65_000_000_000);
        let arr = generate_arrivals(&trace, 15.0, start, end, 3);
        assert!(arr.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(arr.iter().all(|(t, _)| *t >= start && *t < end));
    }

    #[test]
    fn generation_is_deterministic() {
        let catalog = workloads::catalog();
        let trace = build_trace(&catalog, 2);
        let (s, e) = window(100);
        let a = generate_arrivals(&trace, 15.0, s, e, 3);
        let b = generate_arrivals(&trace, 15.0, s, e, 3);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
    }

    #[test]
    fn periodic_functions_have_regular_gaps() {
        let catalog = workloads::catalog();
        let mut trace = build_trace(&catalog, 2);
        // Force one function periodic and isolate it.
        trace[0].pattern = ArrivalPattern::Periodic { jitter: 0.05 };
        let solo = vec![trace[0]];
        let (s, e) = window(600);
        let arr = generate_arrivals(&solo, 10.0, s, e, 3);
        assert!(arr.len() > 3);
        let gaps: Vec<u64> = arr.windows(2).map(|w| w[1].0.since(w[0].0).as_nanos()).collect();
        let mean = gaps.iter().sum::<u64>() / gaps.len() as u64;
        for g in gaps {
            let dev = (g as f64 - mean as f64).abs() / mean as f64;
            assert!(dev < 0.2, "periodic gap deviates {dev}");
        }
    }
}
