//! Checked integer conversions for memory accounting.
//!
//! The tidy gate (`cargo run -p xtask -- tidy`) forbids bare `as`
//! integer casts in accounting code: `as` silently truncates, and a
//! truncated byte count corrupts USS/PSS/RSS totals without failing
//! any invariant check nearby. These helpers make every conversion a
//! loud panic on overflow instead — on the supported 64-bit targets
//! all of them are lossless for the value ranges the simulator
//! produces (addresses, page counts, and sizes all fit in `u64`, and
//! `u64` indexes all fit in `usize`).

/// Widens to `u64`; panics if the value cannot be represented.
#[track_caller]
pub fn to_u64<T>(v: T) -> u64
where
    u64: TryFrom<T>,
    <u64 as TryFrom<T>>::Error: core::fmt::Debug,
{
    u64::try_from(v).expect("accounting value exceeds u64") // tidy:allow(panic-reachability) -- deliberately-checked accounting cast; overflow means simulator state corruption
}

/// Converts to `usize`; panics if the value cannot be represented
/// (impossible for in-range page/slot indexes on 64-bit targets).
#[track_caller]
pub fn to_usize<T>(v: T) -> usize
where
    usize: TryFrom<T>,
    <usize as TryFrom<T>>::Error: core::fmt::Debug,
{
    usize::try_from(v).expect("accounting index exceeds usize") // tidy:allow(panic-reachability) -- deliberately-checked accounting cast; overflow means simulator state corruption
}

/// Narrows to `u32`; panics instead of truncating.
#[track_caller]
pub fn to_u32<T>(v: T) -> u32
where
    u32: TryFrom<T>,
    <u32 as TryFrom<T>>::Error: core::fmt::Debug,
{
    u32::try_from(v).expect("accounting value exceeds u32") // tidy:allow(panic-reachability) -- deliberately-checked accounting cast; overflow means simulator state corruption
}

/// Narrows to `u16`; panics instead of truncating.
#[track_caller]
pub fn to_u16<T>(v: T) -> u16
where
    u16: TryFrom<T>,
    <u16 as TryFrom<T>>::Error: core::fmt::Debug,
{
    u16::try_from(v).expect("accounting value exceeds u16") // tidy:allow(panic-reachability) -- deliberately-checked accounting cast; overflow means simulator state corruption
}

/// Converts a finite, non-negative `f64` (a sizing heuristic's output)
/// to `u64` with the same truncate-toward-zero semantics as `as`, but
/// panicking on NaN or negative inputs instead of silently yielding 0.
#[track_caller]
pub fn u64_from_f64(v: f64) -> u64 {
    assert!(
        v.is_finite() && v >= 0.0,
        "accounting value must be finite and non-negative: {v}"
    );
    v as u64
}

/// [`u64_from_f64`], then to `usize`.
#[track_caller]
pub fn usize_from_f64(v: f64) -> usize {
    to_usize(u64_from_f64(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_and_narrowing_round_trip() {
        assert_eq!(to_u64(7usize), 7u64);
        assert_eq!(to_usize(7u64), 7usize);
        assert_eq!(to_u32(65_536u64), 65_536u32);
        assert_eq!(to_u16(9u64), 9u16);
        assert_eq!(to_usize(31u32), 31usize);
    }

    #[test]
    fn f64_truncates_toward_zero_like_as() {
        assert_eq!(u64_from_f64(3.9), 3);
        assert_eq!(u64_from_f64(0.0), 0);
        assert_eq!(usize_from_f64(12.5), 12);
    }

    #[test]
    #[should_panic]
    fn narrowing_overflow_panics() {
        to_u16(1u64 << 20);
    }

    #[test]
    #[should_panic]
    fn nan_panics() {
        u64_from_f64(f64::NAN);
    }
}
