//! The machine: all processes plus the shared file page cache.
//!
//! [`System`] is the single owner of every [`AddressSpace`] and of the
//! [`FileRegistry`]. All memory operations go through it so that
//! cross-process sharing (the page cache backing `MAP_PRIVATE` library
//! mappings) stays consistent — that sharing is what distinguishes USS
//! from PSS in the paper's measurements (§3.1, Figure 8).

use std::collections::{BTreeMap, BTreeSet};

use crate::error::{SimOsError, SimOsResult};
use crate::mem::{AddressSpace, Mapping, MappingKind, Prot, TouchOutcome, VirtAddr, PAGE_SIZE};

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

/// A file identifier in the [`FileRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

/// One registered file (a shared library or runtime image).
#[derive(Debug, Clone)]
struct FileInfo {
    name: String,
    /// Per-page count of processes holding the page through the page
    /// cache (clean `MAP_PRIVATE` mappings).
    mapper_counts: Vec<u32>,
}

/// The global file registry and page cache.
///
/// Tracks, for every page of every registered file, how many processes
/// currently map it clean. A count of one means the page is *private*
/// to its process in `smaps` terms (and thus part of its USS); two or
/// more means it is *shared*.
#[derive(Debug, Clone, Default)]
pub struct FileRegistry {
    files: Vec<FileInfo>,
}

impl FileRegistry {
    /// Creates an empty registry.
    pub fn new() -> FileRegistry {
        FileRegistry::default()
    }

    /// Registers a file of `size` bytes (rounded up to pages) and
    /// returns its id.
    pub fn register(&mut self, name: &str, size: u64) -> FileId {
        let npages = size.div_ceil(PAGE_SIZE) as usize;
        self.files.push(FileInfo {
            name: name.to_string(),
            mapper_counts: vec![0; npages],
        });
        FileId(self.files.len() as u32 - 1)
    }

    /// The registered name of `file`.
    ///
    /// # Panics
    ///
    /// Panics if `file` was not produced by this registry.
    pub fn name(&self, file: FileId) -> &str {
        &self.files[file.0 as usize].name // tidy:allow(panic-reachability) -- file ids and page indices are validated when the mapping is created
    }

    /// Size of `file` in bytes.
    pub fn size(&self, file: FileId) -> u64 {
        self.files[file.0 as usize].mapper_counts.len() as u64 * PAGE_SIZE // tidy:allow(panic-reachability) -- file ids and page indices are validated when the mapping is created
    }

    /// How many processes map page `page` of `file` clean.
    pub fn mapper_count(&self, file: FileId, page: usize) -> u32 {
        self.files[file.0 as usize].mapper_counts[page] // tidy:allow(panic-reachability) -- file ids and page indices are validated when the mapping is created
    }

    /// Records one more clean mapper of a file page.
    pub(crate) fn inc_mapper(&mut self, file: FileId, page: usize) {
        self.files[file.0 as usize].mapper_counts[page] += 1; // tidy:allow(panic-reachability) -- file ids and page indices are validated when the mapping is created
    }

    /// Records one fewer clean mapper of a file page.
    pub(crate) fn dec_mapper(&mut self, file: FileId, page: usize) {
        let c = &mut self.files[file.0 as usize].mapper_counts[page]; // tidy:allow(panic-reachability) -- file ids and page indices are validated when the mapping is created
        debug_assert!(*c > 0, "mapper count underflow");
        *c = c.saturating_sub(1);
    }
}

/// The whole simulated machine.
#[derive(Debug, Clone, Default)]
pub struct System {
    files: FileRegistry,
    spaces: BTreeMap<Pid, AddressSpace>,
    next_pid: u32,
    /// Pids killed since the last checkpoint epoch, so a delta can
    /// erase them before upserting dirty spaces. Tracking state: never
    /// part of the canonical snapshot encoding.
    removed_pids: BTreeSet<Pid>,
}

impl System {
    /// Creates an empty system.
    pub fn new() -> System {
        System::default()
    }

    /// Creates a new process with an empty address space.
    pub fn spawn_process(&mut self) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.spaces.insert(pid, AddressSpace::new());
        pid
    }

    /// Destroys a process, dropping all its mappings (and page-cache
    /// references).
    pub fn kill_process(&mut self, pid: Pid) -> SimOsResult<()> {
        let space = self
            .spaces
            .remove(&pid)
            .ok_or(SimOsError::NoSuchProcess(pid))?;
        self.removed_pids.insert(pid);
        // Walk the mappings to release clean file pages from the cache;
        // the candidate pages come straight off the packed bitmaps.
        for m in space.mappings() {
            if let MappingKind::PrivateFile(file) = m.kind {
                m.for_each_clean_resident_page(|idx| self.files.dec_mapper(file, idx));
            }
        }
        Ok(())
    }

    /// Registers a file (shared library / runtime image).
    pub fn register_file(&mut self, name: &str, size: u64) -> FileId {
        self.files.register(name, size)
    }

    /// Immutable access to the file registry.
    pub fn files(&self) -> &FileRegistry {
        &self.files
    }

    /// Immutable access to a process's address space.
    pub fn space(&self, pid: Pid) -> SimOsResult<&AddressSpace> {
        self.spaces.get(&pid).ok_or(SimOsError::NoSuchProcess(pid))
    }

    fn space_and_files(
        &mut self,
        pid: Pid,
    ) -> SimOsResult<(&mut AddressSpace, &mut FileRegistry)> {
        let space = self
            .spaces
            .get_mut(&pid)
            .ok_or(SimOsError::NoSuchProcess(pid))?;
        Ok((space, &mut self.files))
    }

    /// Number of live processes.
    pub fn process_count(&self) -> usize {
        self.spaces.len()
    }

    /// All live pids, in creation order (pids are never reused).
    pub fn pids(&self) -> impl Iterator<Item = Pid> + '_ {
        self.spaces.keys().copied()
    }

    /// `mmap` in process `pid`.
    pub fn mmap(
        &mut self,
        pid: Pid,
        len: u64,
        kind: MappingKind,
        prot: Prot,
    ) -> SimOsResult<VirtAddr> {
        self.mmap_named(pid, len, kind, prot, "[anon]")
    }

    /// `mmap` with an explicit `smaps` name.
    pub fn mmap_named(
        &mut self,
        pid: Pid,
        len: u64,
        kind: MappingKind,
        prot: Prot,
        name: &str,
    ) -> SimOsResult<VirtAddr> {
        let (space, _files) = self.space_and_files(pid)?;
        space.mmap(len, kind, prot, name)
    }

    /// Maps a registered file into `pid` (at its full size) and faults
    /// in all of it read-only, as the dynamic loader effectively does
    /// for a hot library.
    pub fn map_library(&mut self, pid: Pid, file: FileId) -> SimOsResult<VirtAddr> {
        let size = self.files.size(file);
        let name = self.files.name(file).to_string();
        let (space, files) = self.space_and_files(pid)?;
        let addr = space.mmap(size, MappingKind::PrivateFile(file), Prot::Read, &name)?;
        space.touch(files, addr, size, false)?;
        Ok(addr)
    }

    /// `munmap` of the whole mapping starting at `addr`.
    pub fn munmap(&mut self, pid: Pid, addr: VirtAddr) -> SimOsResult<Mapping> {
        let (space, files) = self.space_and_files(pid)?;
        space.munmap(files, addr)
    }

    /// `mprotect` of a range; `Prot::None` uncommits (frees pages).
    pub fn mprotect(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        len: u64,
        prot: Prot,
    ) -> SimOsResult<u64> {
        let (space, files) = self.space_and_files(pid)?;
        space.mprotect(files, addr, len, prot)
    }

    /// Touches a range, faulting pages in.
    pub fn touch(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        len: u64,
        write: bool,
    ) -> SimOsResult<TouchOutcome> {
        let (space, files) = self.space_and_files(pid)?;
        space.touch(files, addr, len, write)
    }

    /// Releases the physical pages of a range (`madvise(DONTNEED)`).
    pub fn release(&mut self, pid: Pid, addr: VirtAddr, len: u64) -> SimOsResult<u64> {
        let (space, files) = self.space_and_files(pid)?;
        space.release(files, addr, len)
    }

    /// Swaps out the resident pages of a range.
    pub fn swap_out(&mut self, pid: Pid, addr: VirtAddr, len: u64) -> SimOsResult<u64> {
        let (space, files) = self.space_and_files(pid)?;
        space.swap_out(files, addr, len)
    }

    /// Resident bytes of the whole process (RSS numerator).
    pub fn resident_bytes(&self, pid: Pid) -> SimOsResult<u64> {
        Ok(self.space(pid)?.resident_bytes())
    }

    /// Resident bytes in `[addr, addr + len)` of `pid` — the `pmap`
    /// probe Desiccant uses to size HotSpot heaps (§4.5.2).
    pub fn pmap(&self, pid: Pid, addr: VirtAddr, len: u64) -> SimOsResult<u64> {
        self.space(pid)?.resident_bytes_in(addr, len)
    }

    /// First pid [`System::spawn_process`] has not yet handed out.
    /// Exposed for the delta-checkpoint encoder's control section.
    pub fn next_pid(&self) -> u32 {
        self.next_pid
    }

    /// Address spaces with any change since the last checkpoint epoch,
    /// in pid order — the delta-checkpoint upsert set.
    pub fn epoch_dirty_spaces(&self) -> impl Iterator<Item = (Pid, &AddressSpace)> {
        self.spaces
            .iter()
            .filter(|(_, s)| s.is_epoch_dirty())
            .map(|(pid, s)| (*pid, s))
    }

    /// Pids killed since the last checkpoint epoch — the
    /// delta-checkpoint erase set.
    pub fn removed_pids(&self) -> &BTreeSet<Pid> {
        &self.removed_pids
    }

    /// Marks every space clean and forgets the removed-pid set: called
    /// when a checkpoint (full or delta) captures the system.
    pub fn clear_epoch_dirty(&mut self) {
        self.removed_pids.clear();
        for space in self.spaces.values_mut() {
            space.clear_epoch_dirty();
        }
    }

    /// RSS of `pid` in bytes. See [`crate::metrics`] for definitions.
    pub fn rss(&self, pid: Pid) -> u64 {
        crate::metrics::rss(self, pid)
    }

    /// USS of `pid` in bytes.
    pub fn uss(&self, pid: Pid) -> u64 {
        crate::metrics::uss(self, pid)
    }

    /// PSS of `pid` in bytes.
    pub fn pss(&self, pid: Pid) -> f64 {
        crate::metrics::pss(self, pid)
    }
}

/// Checkpoint codec impls, kept here so exhaustive destructuring sees
/// every private field.
mod snap_impls {
    use super::*;
    use snapshot::{Reader, SnapError, Snapshot, Writer};

    impl Snapshot for Pid {
        fn snap(&self, w: &mut Writer) {
            let Self(raw) = self;
            w.u32(*raw);
        }

        fn restore(r: &mut Reader<'_>) -> Result<Pid, SnapError> {
            Ok(Pid(r.u32()?))
        }
    }

    impl Snapshot for FileId {
        fn snap(&self, w: &mut Writer) {
            let Self(raw) = self;
            w.u32(*raw);
        }

        fn restore(r: &mut Reader<'_>) -> Result<FileId, SnapError> {
            Ok(FileId(r.u32()?))
        }
    }

    impl Snapshot for FileInfo {
        fn snap(&self, w: &mut Writer) {
            let Self {
                name,
                mapper_counts,
            } = self;
            w.str(name);
            mapper_counts.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<FileInfo, SnapError> {
            Ok(FileInfo {
                name: r.str()?,
                mapper_counts: Vec::<u32>::restore(r)?,
            })
        }
    }

    impl Snapshot for FileRegistry {
        fn snap(&self, w: &mut Writer) {
            let Self { files } = self;
            files.snap(w);
        }

        fn restore(r: &mut Reader<'_>) -> Result<FileRegistry, SnapError> {
            Ok(FileRegistry {
                files: Vec::<FileInfo>::restore(r)?,
            })
        }
    }

    impl Snapshot for System {
        fn snap(&self, w: &mut Writer) {
            // `removed_pids` is checkpoint tracking, excluded from the
            // canonical bytes (see the Mapping impl in `mem`). NOTE:
            // the platform's delta-checkpoint fold re-synthesizes this
            // exact layout (files, spaces map, next_pid) from
            // per-space blobs; change the order here and the fold in
            // `faas::platform` in lockstep.
            let Self {
                files,
                spaces,
                next_pid,
                removed_pids: _,
            } = self;
            files.snap(w);
            spaces.snap(w);
            w.u32(*next_pid);
        }

        fn restore(r: &mut Reader<'_>) -> Result<System, SnapError> {
            let files = FileRegistry::restore(r)?;
            let spaces = BTreeMap::<Pid, AddressSpace>::restore(r)?;
            let next_pid = r.u32()?;
            if spaces.keys().any(|pid| pid.0 >= next_pid) {
                return Err(SnapError::Corrupt("System pid at or past next_pid"));
            }
            Ok(System {
                files,
                spaces,
                next_pid,
                removed_pids: BTreeSet::new(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_and_kill_round_trip() {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        assert_eq!(sys.process_count(), 1);
        sys.kill_process(pid).unwrap();
        assert_eq!(sys.process_count(), 0);
        assert!(matches!(
            sys.kill_process(pid),
            Err(SimOsError::NoSuchProcess(_))
        ));
    }

    #[test]
    fn kill_releases_page_cache_refs() {
        let mut sys = System::new();
        let lib = sys.register_file("libjvm.so", 4 * PAGE_SIZE);
        let p1 = sys.spawn_process();
        let p2 = sys.spawn_process();
        sys.map_library(p1, lib).unwrap();
        sys.map_library(p2, lib).unwrap();
        assert_eq!(sys.files().mapper_count(lib, 0), 2);
        sys.kill_process(p1).unwrap();
        assert_eq!(sys.files().mapper_count(lib, 0), 1);
    }

    #[test]
    fn pmap_reports_range_residency() {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        let a = sys
            .mmap(pid, 16 * PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite)
            .unwrap();
        sys.touch(pid, a, 4 * PAGE_SIZE, true).unwrap();
        assert_eq!(sys.pmap(pid, a, 16 * PAGE_SIZE).unwrap(), 4 * PAGE_SIZE);
    }

    #[test]
    fn operations_on_dead_process_fail() {
        let mut sys = System::new();
        let pid = sys.spawn_process();
        sys.kill_process(pid).unwrap();
        assert!(sys
            .mmap(pid, PAGE_SIZE, MappingKind::Anonymous, Prot::ReadWrite)
            .is_err());
        assert!(sys.resident_bytes(pid).is_err());
    }
}
